#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "util/cpu_topology.h"

namespace themis::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT COUNT(*) FROM t WHERE a = 'CA' AND b <= 30");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[2].IsSymbol("("));
  EXPECT_TRUE((*tokens)[3].IsSymbol("*"));
  bool saw_string = false, saw_le = false, saw_number = false;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kString && t.text == "CA") saw_string = true;
    if (t.IsSymbol("<=")) saw_le = true;
    if (t.type == TokenType::kNumber && t.text == "30") saw_number = true;
  }
  EXPECT_TRUE(saw_string && saw_le && saw_number);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, EscapedQuote) {
  auto tokens = Tokenize("'O''Hare'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "O'Hare");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, BadCharacterFails) {
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, SimpleCount) {
  auto stmt = Parse("SELECT COUNT(*) FROM flights");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].func, AggFunc::kCount);
  ASSERT_EQ(stmt->tables.size(), 1u);
  EXPECT_EQ(stmt->tables[0].name, "flights");
  EXPECT_TRUE(stmt->where.empty());
}

TEST(ParserTest, PointQueryShape) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM f WHERE a = 'x' AND b = 'y' AND c = 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 3u);
  EXPECT_EQ(stmt->where[0].op, CompareOp::kEq);
  EXPECT_EQ(stmt->where[0].literals[0].text, "x");
  EXPECT_TRUE(stmt->where[2].literals[0].is_number);
}

TEST(ParserTest, GroupByWithAggregatesAndAlias) {
  auto stmt = Parse(
      "SELECT o, AVG(e) AS avg_e, SUM(weight) FROM f GROUP BY o");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].func, AggFunc::kNone);
  EXPECT_EQ(stmt->items[1].func, AggFunc::kAvg);
  EXPECT_EQ(stmt->items[1].alias, "avg_e");
  EXPECT_EQ(stmt->items[2].func, AggFunc::kSum);
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0].column, "o");
}

TEST(ParserTest, InListAndComparisons) {
  auto stmt = Parse("SELECT COUNT(*) FROM f WHERE d IN ('CO','WY') AND e < 120");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_EQ(stmt->where[0].op, CompareOp::kIn);
  EXPECT_EQ(stmt->where[0].literals.size(), 2u);
  EXPECT_EQ(stmt->where[1].op, CompareOp::kLt);
}

TEST(ParserTest, SelfJoinWithQualifiedColumns) {
  auto stmt = Parse(
      "SELECT t.o, s.de, COUNT(*) FROM f t, f s "
      "WHERE t.de = s.o GROUP BY t.o, s.de");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->tables.size(), 2u);
  EXPECT_EQ(stmt->tables[0].alias, "t");
  EXPECT_EQ(stmt->tables[1].alias, "s");
  ASSERT_EQ(stmt->where.size(), 1u);
  EXPECT_TRUE(stmt->where[0].is_join);
  EXPECT_EQ(stmt->where[0].lhs.table_alias, "t");
  EXPECT_EQ(stmt->where[0].rhs_column.table_alias, "s");
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parse("SELECT COUNT(*) FROM f;").ok());
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(Parse("SELEC COUNT(*) FROM f").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(* FROM f").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM f WHERE").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM f GROUP x").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM f extra junk").ok());
}

TEST(NumericLabelTest, PlainNumbersAndBuckets) {
  EXPECT_DOUBLE_EQ(NumericValueOfLabel("42"), 42.0);
  EXPECT_DOUBLE_EQ(NumericValueOfLabel("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(NumericValueOfLabel("[30,60)"), 45.0);
  EXPECT_TRUE(std::isnan(NumericValueOfLabel("CA")));
  EXPECT_TRUE(std::isnan(NumericValueOfLabel("")));
}

/// Small weighted table for executor tests: flights-like shape.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = std::make_shared<data::Schema>();
    schema_->AddAttribute("o", {"CA", "NY", "WY"});
    schema_->AddAttribute("de", {"CA", "NY", "WY"});
    schema_->AddAttribute("e", {"[0,60)", "[60,120)", "[120,180)"});
    table_ = std::make_unique<data::Table>(schema_);
    // rows: (o, de, e, weight)
    Append("CA", "NY", "[0,60)", 2.0);
    Append("CA", "NY", "[60,120)", 3.0);
    Append("CA", "WY", "[120,180)", 1.0);
    Append("NY", "CA", "[0,60)", 4.0);
    Append("WY", "CA", "[60,120)", 5.0);
    executor_.RegisterTable("f", table_.get());
  }

  void Append(const char* o, const char* de, const char* e, double w) {
    table_->AppendRowLabels({o, de, e});
    table_->set_weight(table_->num_rows() - 1, w);
  }

  data::SchemaPtr schema_;
  std::unique_ptr<data::Table> table_;
  Executor executor_;
};

TEST_F(ExecutorTest, GlobalCountSumsWeights) {
  auto result = executor_.Query("SELECT COUNT(*) FROM f");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 15.0);
}

TEST_F(ExecutorTest, PointQueryFiltersEquality) {
  auto result =
      executor_.Query("SELECT COUNT(*) FROM f WHERE o = 'CA' AND de = 'NY'");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 5.0);
}

TEST_F(ExecutorTest, MissingValueMatchesNothing) {
  auto result = executor_.Query("SELECT COUNT(*) FROM f WHERE o = 'ZZ'");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 0.0);
}

TEST_F(ExecutorTest, GroupByCount) {
  auto result = executor_.Query("SELECT o, COUNT(*) FROM f GROUP BY o");
  ASSERT_TRUE(result.ok());
  auto map = result->ValueMap();
  EXPECT_DOUBLE_EQ(map["CA"], 6.0);
  EXPECT_DOUBLE_EQ(map["NY"], 4.0);
  EXPECT_DOUBLE_EQ(map["WY"], 5.0);
}

TEST_F(ExecutorTest, RangePredicateOnBuckets) {
  // e < 120 keeps the [0,60) and [60,120) buckets (midpoints 30 / 90).
  auto result = executor_.Query("SELECT COUNT(*) FROM f WHERE e < 120");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 14.0);
}

TEST_F(ExecutorTest, AvgIsWeighted) {
  // AVG(e) over o = CA: weights 2,3,1 on midpoints 30,90,150 -> 480/6 = 80.
  auto result = executor_.Query("SELECT AVG(e) FROM f WHERE o = 'CA'");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 80.0);
}

TEST_F(ExecutorTest, SumIsWeighted) {
  auto result = executor_.Query("SELECT SUM(e) FROM f WHERE o = 'CA'");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 480.0);
}

TEST_F(ExecutorTest, InPredicate) {
  auto result =
      executor_.Query("SELECT COUNT(*) FROM f WHERE o IN ('CA', 'WY')");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 11.0);
}

TEST_F(ExecutorTest, NotEqualPredicate) {
  auto result = executor_.Query("SELECT COUNT(*) FROM f WHERE o <> 'CA'");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 9.0);
}

TEST_F(ExecutorTest, SelfJoinMultipliesWeights) {
  // Layover join: f t, f s WHERE t.de = s.o. Pairs:
  //  t=(CA,NY,w2) & s=(NY,CA,w4): 8      t=(CA,NY,w3) & s=(NY,CA,w4): 12
  //  t=(CA,WY,w1) & s=(WY,CA,w5): 5
  //  t=(NY,CA,w4) & s rows with o=CA: w2,w3,w1 -> 8+12+4
  //  t=(WY,CA,w5) & same: 10+15+5
  auto result = executor_.Query(
      "SELECT COUNT(*) FROM f t, f s WHERE t.de = s.o");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 8 + 12 + 5 + 24 + 30);
}

TEST_F(ExecutorTest, JoinWithGroupByAndFilter) {
  auto result = executor_.Query(
      "SELECT t.o, COUNT(*) FROM f t, f s "
      "WHERE t.de = s.o AND t.de IN ('WY') GROUP BY t.o");
  ASSERT_TRUE(result.ok());
  auto map = result->ValueMap();
  EXPECT_DOUBLE_EQ(map["CA"], 5.0);  // (CA,WY,1) x (WY,CA,5)
}

TEST_F(ExecutorTest, UnknownTableAndColumnFail) {
  EXPECT_FALSE(executor_.Query("SELECT COUNT(*) FROM nope").ok());
  EXPECT_FALSE(executor_.Query("SELECT COUNT(*) FROM f WHERE zz = 'x'").ok());
}

TEST_F(ExecutorTest, AmbiguousColumnFails) {
  EXPECT_FALSE(
      executor_.Query("SELECT COUNT(*) FROM f a, f b WHERE o = 'CA' AND a.de = b.o")
          .ok());
}

TEST_F(ExecutorTest, OrderedComparisonOnNonNumericFails) {
  EXPECT_FALSE(
      executor_.Query("SELECT COUNT(*) FROM f WHERE o < 'CA'").ok());
}

TEST_F(ExecutorTest, ValueMapAndToString) {
  auto result = executor_.Query("SELECT o, COUNT(*) FROM f GROUP BY o");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ValueMap().size(), 3u);
  EXPECT_NE(result->ToString().find("CA"), std::string::npos);
}

/// A table big enough (> 2x the 8192-row shard) to trigger the sharded
/// scan: results must be bitwise identical across pool sizes, and — with
/// exactly representable weights — equal to the pool-less sequential scan.
TEST(ExecutorShardingTest, ShardedScanMatchesSequentialAcrossPoolSizes) {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("g", {"a", "b", "c", "d"});
  schema->AddAttribute("v", {"1", "2", "3"});
  data::Table table(schema);
  for (size_t r = 0; r < 20000; ++r) {
    table.AppendRow({static_cast<data::ValueCode>(r % 4),
                     static_cast<data::ValueCode>((r / 7) % 3)});
    table.set_weight(r, static_cast<double>(r % 5) + 0.5);
  }
  Executor executor;
  executor.RegisterTable("t", &table);

  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM t",
      "SELECT g, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY g",
      "SELECT g, v, COUNT(*) FROM t WHERE v <> '2' GROUP BY g, v",
  };
  for (const std::string& sql : sqls) {
    auto sequential = executor.Query(sql);
    ASSERT_TRUE(sequential.ok()) << sql;
    std::vector<QueryResult> sharded;
    for (size_t threads : {1u, 2u, 4u}) {
      util::ThreadPool pool(threads);
      auto result = executor.Query(sql, &pool);
      ASSERT_TRUE(result.ok()) << sql;
      sharded.push_back(std::move(*result));
    }
    for (const QueryResult& result : sharded) {
      ASSERT_EQ(result.rows.size(), sequential->rows.size()) << sql;
      for (size_t i = 0; i < result.rows.size(); ++i) {
        EXPECT_EQ(result.rows[i].group, sequential->rows[i].group);
        ASSERT_EQ(result.rows[i].values.size(),
                  sequential->rows[i].values.size());
        for (size_t j = 0; j < result.rows[i].values.size(); ++j) {
          // Bitwise across pool sizes (same shard layout and merge
          // order); the x.5 weights sum exactly, so the pool-less scan
          // agrees bit-for-bit too.
          EXPECT_EQ(result.rows[i].values[j], sharded[0].rows[i].values[j])
              << sql;
          EXPECT_DOUBLE_EQ(result.rows[i].values[j],
                           sequential->rows[i].values[j])
              << sql;
        }
      }
    }
  }
}

/// Cooperative cancellation in the sharded scan: an un-fired token leaves
/// the answer bitwise identical and counts every shard; a fired token
/// unwinds with kCancelled / kDeadlineExceeded before scanning (never a
/// partial aggregate), shards_executed stays short of the total, and
/// queries_cancelled counts each unwound query. Explicit cancellation
/// wins over an expired deadline.
TEST(ExecutorShardingTest, CancelledQueryUnwindsWithoutPartialAggregates) {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("g", {"a", "b", "c", "d"});
  schema->AddAttribute("v", {"1", "2", "3"});
  data::Table table(schema);
  for (size_t r = 0; r < 20000; ++r) {
    table.AppendRow({static_cast<data::ValueCode>(r % 4),
                     static_cast<data::ValueCode>((r / 7) % 3)});
    table.set_weight(r, static_cast<double>(r % 5) + 0.5);
  }
  Executor executor;
  executor.RegisterTable("t", &table);
  const std::string sql = "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g";
  util::ThreadPool pool(4);
  constexpr size_t kShardRows = 1000;  // 20000 rows -> 20 shards

  auto expected = executor.Query(sql, &pool, kShardRows);
  ASSERT_TRUE(expected.ok());
  const uint64_t baseline_shards = executor.stats().shards_executed;
  EXPECT_EQ(baseline_shards, 20u);

  // An un-fired token is invisible: bitwise-identical answer, every
  // shard executed, nothing counted as cancelled.
  util::CancelToken idle;
  auto with_token = executor.Query(sql, &pool, kShardRows, &idle);
  ASSERT_TRUE(with_token.ok());
  ASSERT_EQ(with_token->rows.size(), expected->rows.size());
  for (size_t i = 0; i < expected->rows.size(); ++i) {
    EXPECT_EQ(with_token->rows[i].group, expected->rows[i].group);
    EXPECT_EQ(with_token->rows[i].values, expected->rows[i].values);
  }
  EXPECT_EQ(executor.stats().shards_executed, 2 * baseline_shards);
  EXPECT_EQ(executor.stats().queries_cancelled, 0u);

  // Fired before entry: kCancelled, zero further shards executed — far
  // fewer than the 20 a completed query scans — and no partial result.
  util::CancelToken fired;
  fired.Cancel();
  auto cancelled = executor.Query(sql, &pool, kShardRows, &fired);
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(executor.stats().shards_executed, 2 * baseline_shards);
  EXPECT_EQ(executor.stats().queries_cancelled, 1u);

  // An already-lapsed deadline unwinds with kDeadlineExceeded.
  util::CancelToken expired(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto late = executor.Query(sql, &pool, kShardRows, &expired);
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executor.stats().queries_cancelled, 2u);

  // A disconnected client whose deadline also lapsed reports kCancelled:
  // explicit cancellation wins.
  expired.Cancel();
  auto both = executor.Query(sql, &pool, kShardRows, &expired);
  EXPECT_EQ(both.status().code(), StatusCode::kCancelled);

  // The sequential (pool-less) chunk loop polls the same token.
  auto sequential = executor.Query(sql, nullptr, kShardRows, &fired);
  EXPECT_EQ(sequential.status().code(), StatusCode::kCancelled);
}

/// A hash join whose probe side exceeds 2x the shard size: the build side
/// stays sequential, the probe shards by row range, and the merged answer
/// must be bitwise identical across pool sizes (and — with exactly
/// representable weights — equal to the pool-less sequential probe).
TEST(ExecutorShardingTest, ShardedJoinProbeMatchesSequentialAcrossPoolSizes) {
  auto build_schema = std::make_shared<data::Schema>();
  build_schema->AddAttribute("k", {"x", "y", "z"});
  build_schema->AddAttribute("side", {"l", "r"});
  data::Table build_table(build_schema);
  for (size_t r = 0; r < 60; ++r) {
    build_table.AppendRow({static_cast<data::ValueCode>(r % 3),
                           static_cast<data::ValueCode>(r % 2)});
    build_table.set_weight(r, static_cast<double>(r % 3) + 0.5);
  }
  auto probe_schema = std::make_shared<data::Schema>();
  probe_schema->AddAttribute("k", {"x", "y", "z", "w"});
  probe_schema->AddAttribute("g", {"a", "b", "c"});
  data::Table probe_table(probe_schema);
  for (size_t r = 0; r < 20000; ++r) {
    probe_table.AppendRow({static_cast<data::ValueCode>(r % 4),
                           static_cast<data::ValueCode>((r / 11) % 3)});
    probe_table.set_weight(r, static_cast<double>(r % 4) * 0.25 + 0.25);
  }
  Executor executor;
  executor.RegisterTable("f", &build_table);
  executor.RegisterTable("p", &probe_table);

  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM f, p WHERE f.k = p.k",
      "SELECT g, COUNT(*) FROM f a, p b WHERE a.k = b.k GROUP BY g",
      "SELECT g, side, COUNT(*) FROM f a, p b WHERE a.k = b.k "
      "AND side = 'l' GROUP BY g, side",
  };
  for (const std::string& sql : sqls) {
    auto sequential = executor.Query(sql);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString() << sql;
    std::vector<QueryResult> sharded;
    for (size_t threads : {1u, 2u, 4u}) {
      util::ThreadPool pool(threads);
      auto result = executor.Query(sql, &pool);
      ASSERT_TRUE(result.ok()) << sql;
      sharded.push_back(std::move(*result));
    }
    for (const QueryResult& result : sharded) {
      ASSERT_EQ(result.rows.size(), sequential->rows.size()) << sql;
      for (size_t i = 0; i < result.rows.size(); ++i) {
        EXPECT_EQ(result.rows[i].group, sequential->rows[i].group);
        ASSERT_EQ(result.rows[i].values.size(),
                  sequential->rows[i].values.size());
        for (size_t j = 0; j < result.rows[i].values.size(); ++j) {
          // Bitwise across pool sizes (fixed shard layout, shard-order
          // merge); the quarter-integer weights multiply and sum exactly,
          // so the pool-less probe agrees bit-for-bit too.
          EXPECT_EQ(result.rows[i].values[j], sharded[0].rows[i].values[j])
              << sql;
          EXPECT_DOUBLE_EQ(result.rows[i].values[j],
                           sequential->rows[i].values[j])
              << sql;
        }
      }
    }
  }
}

/// Scan-path counters: rows scanned/passed, groups emitted, and join
/// build/probe rows accumulate across queries.
TEST_F(ExecutorTest, StatsCountScanAndJoin) {
  EXPECT_EQ(executor_.stats().rows_scanned, 0u);
  ASSERT_TRUE(executor_.Query("SELECT o, COUNT(*) FROM f "
                              "WHERE o IN ('CA', 'NY') GROUP BY o")
                  .ok());
  ExecutorStats stats = executor_.stats();
  EXPECT_EQ(stats.rows_scanned, 5u);
  EXPECT_EQ(stats.rows_passed, 4u);   // 3x CA + 1x NY
  EXPECT_EQ(stats.groups_emitted, 2u);
  EXPECT_EQ(stats.join_build_rows, 0u);
  // Kernel counters: the one filter evaluated all 5 rows; the 4 selected
  // rows batched through the gather/pack stage. The active backend is the
  // host's best (or the THEMIS_SIMD override), never empty.
  EXPECT_EQ(stats.filter_kernel_rows, 5u);
  EXPECT_EQ(stats.gather_kernel_rows, 4u);
  EXPECT_FALSE(stats.simd_backend.empty());
  EXPECT_EQ(stats.simd_backend,
            simd::BackendName(simd::FromEnv()));

  ASSERT_TRUE(
      executor_.Query("SELECT COUNT(*) FROM f t, f s WHERE t.de = s.o")
          .ok());
  stats = executor_.stats();
  EXPECT_EQ(stats.rows_scanned, 5u + 10u);  // both join sides scanned
  EXPECT_EQ(stats.join_build_rows, 5u);
  EXPECT_EQ(stats.join_probe_rows, 5u);
  EXPECT_EQ(stats.groups_emitted, 2u + 1u);
  // Unfiltered join sides add no filter-kernel rows; build keys (5) and
  // probe codes (5) both batch through the gather kernels.
  EXPECT_EQ(stats.filter_kernel_rows, 5u);
  EXPECT_EQ(stats.gather_kernel_rows, 4u + 5u + 5u);

  // The reference path is a measurement oracle and leaves stats alone.
  auto stmt = Parse("SELECT COUNT(*) FROM f");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(executor_.ExecuteReference(*stmt).ok());
  EXPECT_EQ(executor_.stats().rows_scanned, stats.rows_scanned);
}

/// The auto shard size targets an AutoShardTargetBytes() per-shard
/// working set over the scanned columns — probed from the host's cache
/// topology (half the L2, clamped to [256 KiB, 2 MiB]) — with the row
/// count clamped to [1024, 262144]; explicit and environment overrides
/// still win, and no column information falls back to 8192.
TEST(ExecutorShardingTest, CacheAwareAutoShardRows) {
  EXPECT_EQ(ResolveShardRows(0, 0), 8192u);  // unknown working set
  const size_t two_columns = data::Table::ScanBytesPerRow(2);
  EXPECT_EQ(two_columns, 16u);
  EXPECT_EQ(ResolveShardRows(0, two_columns),
            AutoShardTargetBytes() / two_columns);
  EXPECT_EQ(ResolveShardRows(123, two_columns), 123u);
  ASSERT_EQ(setenv("THEMIS_SHARD_ROWS", "777", 1), 0);
  EXPECT_EQ(ShardRowsEnvOverride(), 777u);
  EXPECT_EQ(ResolveShardRows(0, two_columns), 777u);
  ASSERT_EQ(unsetenv("THEMIS_SHARD_ROWS"), 0);
  EXPECT_EQ(ShardRowsEnvOverride(), 0u);
}

/// Regression pin on the documented auto-shard row clamp [1024, 262144]
/// (executor.h): the bounds hold on ANY host because the probed byte
/// target is itself clamped to [256 KiB, 2 MiB] — 1 byte/row divides to
/// >= 262144 rows everywhere (clamped above) and 1 MiB/row divides to
/// <= 2 rows everywhere (clamped below). Also pins the target's own
/// bounds, with the probed topology as input.
TEST(ExecutorShardingTest, AutoShardRowClampBounds) {
  EXPECT_EQ(ResolveShardRows(0, 1), 262144u);      // clamp above
  EXPECT_EQ(ResolveShardRows(0, 1 << 20), 1024u);  // clamp below
  const size_t target = AutoShardTargetBytes();
  EXPECT_GE(target, 256u * 1024u);
  EXPECT_LE(target, 2u * 1024u * 1024u);
  const util::CpuTopology& topo = util::CpuTopology::Host();
  if (topo.probed && topo.l2_bytes > 0) {
    EXPECT_EQ(target, std::clamp<size_t>(topo.l2_bytes / 2, 256u * 1024u,
                                         2u * 1024u * 1024u));
  }
  if (!topo.probed) {
    EXPECT_EQ(target, util::kFallbackShardTargetBytes);
  }
}

/// The shard size is configurable: ThemisOptions::shard_rows (explicit)
/// beats THEMIS_SHARD_ROWS (environment) beats the 8192-row default, a
/// small size engages sharding on tables the default would scan inline,
/// and any fixed size stays bitwise identical across pool sizes.
TEST(ExecutorShardingTest, ConfigurableShardRows) {
  EXPECT_EQ(ResolveShardRows(0), 8192u);
  EXPECT_EQ(ResolveShardRows(123), 123u);
  ASSERT_EQ(setenv("THEMIS_SHARD_ROWS", "777", 1), 0);
  EXPECT_EQ(ResolveShardRows(0), 777u);
  EXPECT_EQ(ResolveShardRows(123), 123u);  // explicit beats environment
  ASSERT_EQ(unsetenv("THEMIS_SHARD_ROWS"), 0);
  EXPECT_EQ(ResolveShardRows(0), 8192u);

  // 2000 rows: unsharded under the default, sharded at small sizes.
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("g", {"a", "b", "c", "d"});
  schema->AddAttribute("v", {"1", "2", "3"});
  data::Table table(schema);
  for (size_t r = 0; r < 2000; ++r) {
    table.AppendRow({static_cast<data::ValueCode>(r % 4),
                     static_cast<data::ValueCode>((r / 7) % 3)});
    table.set_weight(r, static_cast<double>(r % 5) + 0.5);
  }
  Executor executor;
  executor.RegisterTable("t", &table);

  const std::string sql = "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g";
  auto sequential = executor.Query(sql);
  ASSERT_TRUE(sequential.ok());
  for (const size_t shard_rows : {size_t{100}, size_t{333}, size_t{1000}}) {
    std::vector<QueryResult> sharded;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      util::ThreadPool pool(threads);
      auto result = executor.Query(sql, &pool, shard_rows);
      ASSERT_TRUE(result.ok()) << shard_rows;
      sharded.push_back(std::move(*result));
    }
    for (const QueryResult& result : sharded) {
      ASSERT_EQ(result.rows.size(), sequential->rows.size());
      for (size_t i = 0; i < result.rows.size(); ++i) {
        EXPECT_EQ(result.rows[i].group, sequential->rows[i].group);
        for (size_t j = 0; j < result.rows[i].values.size(); ++j) {
          // Bitwise across pool sizes at a fixed shard size; the x.5
          // weights sum exactly, so every layout agrees bit-for-bit with
          // the sequential scan too.
          EXPECT_EQ(result.rows[i].values[j], sharded[0].rows[i].values[j])
              << "shard_rows " << shard_rows;
          EXPECT_EQ(result.rows[i].values[j], sequential->rows[i].values[j])
              << "shard_rows " << shard_rows;
        }
      }
    }
  }
}

}  // namespace
}  // namespace themis::sql
