#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "aggregate/aggregate_io.h"
#include "core/themis_db.h"
#include "data/csv.h"
#include "reweight/ipf.h"
#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "workload/experiment.h"
#include "workload/flights.h"
#include "workload/queries.h"
#include "workload/sampler.h"

namespace themis {
namespace {

using workload::FlightsAttrs;

TEST(AggregateIoTest, RoundTrip) {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("a", {"x", "y"});
  schema->AddAttribute("b", {"0", "1", "2"});
  data::Table t(schema);
  t.AppendRowLabels({"x", "0"});
  t.AppendRowLabels({"x", "2"});
  t.AppendRowLabels({"y", "2"});
  aggregate::AggregateSpec spec = aggregate::ComputeAggregate(t, {0, 1});
  const std::string path =
      std::filesystem::temp_directory_path() / "themis_agg_rt.csv";
  ASSERT_TRUE(aggregate::WriteAggregateCsv(spec, *schema, path).ok());
  auto loaded = aggregate::ReadAggregateCsv(*schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->attrs, spec.attrs);
  EXPECT_EQ(loaded->groups, spec.groups);
  std::remove(path.c_str());
}

TEST(AggregateIoTest, UnsortedHeaderColumnsAreNormalized) {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("a", {"x", "y"});
  schema->AddAttribute("b", {"0", "1"});
  const std::string path =
      std::filesystem::temp_directory_path() / "themis_agg_rev.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("b,a,count\n0,x,7\n1,y,3\n", f);
    std::fclose(f);
  }
  auto loaded = aggregate::ReadAggregateCsv(*schema, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->attrs, (std::vector<size_t>{0, 1}));
  stats::FreqTable ft = loaded->ToFreqTable();
  EXPECT_DOUBLE_EQ(ft.Mass({0, 0}), 7.0);  // a=x, b=0
  EXPECT_DOUBLE_EQ(ft.Mass({1, 1}), 3.0);  // a=y, b=1
  std::remove(path.c_str());
}

TEST(AggregateIoTest, PublishedValuesNotInSampleAreInterned) {
  // A report can mention domain values the sample has never seen — that is
  // the whole point of the open world.
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("a", {"x"});
  const std::string path =
      std::filesystem::temp_directory_path() / "themis_agg_new.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,count\nx,5\nz,2\n", f);
    std::fclose(f);
  }
  auto loaded = aggregate::ReadAggregateCsv(*schema, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(schema->domain(0).size(), 2u);  // "z" interned
  std::remove(path.c_str());
}

TEST(AggregateIoTest, Rejections) {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("a", {"x"});
  const std::string path =
      std::filesystem::temp_directory_path() / "themis_agg_bad.csv";
  auto write = [&](const char* content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content, f);
    std::fclose(f);
  };
  write("a\nx\n");  // no count column
  EXPECT_FALSE(aggregate::ReadAggregateCsv(*schema, path).ok());
  write("zz,count\nx,1\n");  // unknown attribute
  EXPECT_FALSE(aggregate::ReadAggregateCsv(*schema, path).ok());
  write("a,count\nx,-3\n");  // negative count
  EXPECT_FALSE(aggregate::ReadAggregateCsv(*schema, path).ok());
  write("a,count\nx\n");  // ragged
  EXPECT_FALSE(aggregate::ReadAggregateCsv(*schema, path).ok());
  EXPECT_FALSE(aggregate::ReadAggregateCsv(*schema, "/nope.csv").ok());
  std::remove(path.c_str());
}

/// Robustness: Sec 3 says aggregates may be noisy; the pipeline must keep
/// working and degrade smoothly.
class NoisyAggregateTest : public ::testing::TestWithParam<double> {};

TEST_P(NoisyAggregateTest, PipelineSurvivesNoise) {
  const double sigma = GetParam();
  data::Table population = workload::GenerateFlights({20000, 91});
  auto sample = workload::MakeFlightsSample(population, "SCorners", 0.1, 92);
  ASSERT_TRUE(sample.ok());
  aggregate::AggregateSet aggregates(population.schema());
  Rng noise_rng(93);
  for (auto attrs : std::vector<std::vector<size_t>>{
           {FlightsAttrs::kOrigin},
           {FlightsAttrs::kDate},
           {FlightsAttrs::kOrigin, FlightsAttrs::kDest}}) {
    aggregate::AggregateSpec spec =
        aggregate::ComputeAggregate(population, attrs);
    aggregate::PerturbAggregate(spec, sigma, noise_rng);
    aggregates.Add(std::move(spec));
  }
  core::ThemisOptions options;
  options.bn_group_by_samples = 2;
  options.bn_sample_rows = 200;
  options.population_size = static_cast<double>(population.num_rows());
  auto model =
      core::ThemisModel::Build(sample->Clone(), aggregates, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Weights stay non-negative; CPTs stay simplexes; queries answer.
  for (double w : model->reweighted_sample().weights()) EXPECT_GE(w, 0.0);
  for (size_t v = 0; v < model->network()->num_nodes(); ++v) {
    EXPECT_TRUE(model->network()->cpt(v).RowsAreSimplexes(1e-5));
  }
  core::HybridEvaluator evaluator(&*model);
  auto estimate = evaluator.PointEstimate(
      {FlightsAttrs::kOrigin},
      {*population.schema()->domain(FlightsAttrs::kOrigin).Code("CA")});
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(*estimate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoisyAggregateTest,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

TEST(NoisyAggregateTest, MildNoiseOnlyMildlyHurtsIpf) {
  data::Table population = workload::GenerateFlights({20000, 94});
  auto sample = workload::MakeFlightsSample(population, "SCorners", 0.1, 95);
  ASSERT_TRUE(sample.ok());
  Rng query_rng(96);
  auto queries = workload::MakePointQueries(
      population, {FlightsAttrs::kOrigin}, workload::HitterClass::kHeavy, 30,
      query_rng);

  auto error_with_noise = [&](double sigma) {
    aggregate::AggregateSet aggregates(population.schema());
    aggregate::AggregateSpec spec = aggregate::ComputeAggregate(
        population, {FlightsAttrs::kOrigin});
    Rng noise_rng(97);
    aggregate::PerturbAggregate(spec, sigma, noise_rng);
    aggregates.Add(std::move(spec));
    data::Table s = sample->Clone();
    reweight::IpfReweighter rw;
    THEMIS_CHECK_OK(
        rw.Reweight(s, aggregates, population.num_rows()));
    double total = 0;
    for (const auto& q : queries) {
      auto groups = s.GroupWeights(q.attrs);
      auto it = groups.find(q.values);
      total += stats::PercentDifference(
          q.true_count, it == groups.end() ? 0.0 : it->second);
    }
    return total / static_cast<double>(queries.size());
  };

  const double clean = error_with_noise(0.0);
  const double noisy = error_with_noise(0.05);
  EXPECT_LT(clean, 1.0);            // exact aggregate -> near-exact marginal
  EXPECT_LT(noisy, clean + 10.0);   // 5% noise costs only a few points
}

TEST(IpfOrderingTest, LaterConstraintsHoldExactlyWhenInfeasible) {
  // With an infeasible system, IPF's end-of-sweep state satisfies the
  // *last* constraints exactly — the property the bench configs exploit by
  // putting 1D marginals last. Documented behaviour, pinned here.
  data::Table population = workload::GenerateFlights({20000, 98});
  auto sample = workload::MakeFlightsSample(population, "Corners", 0.1, 99);
  ASSERT_TRUE(sample.ok());
  aggregate::AggregateSet aggregates(population.schema());
  aggregates.Add(aggregate::ComputeAggregate(
      population, {FlightsAttrs::kDate, FlightsAttrs::kDest}));
  aggregates.Add(
      aggregate::ComputeAggregate(population, {FlightsAttrs::kDate}));
  data::Table s = sample->Clone();
  reweight::IpfReweighter rw;
  ASSERT_TRUE(rw.Reweight(s, aggregates, population.num_rows()).ok());
  // The trailing 1D date aggregate is satisfied on the sample's support.
  auto truth = population.GroupWeights({FlightsAttrs::kDate});
  auto estimate = s.GroupWeights({FlightsAttrs::kDate});
  for (const auto& [key, est] : estimate) {
    EXPECT_NEAR(est, truth[key], 1e-6 * truth[key] + 1e-6);
  }
}

TEST(ThemisDbTest, FileBasedWorkflow) {
  // The CLI path: sample CSV + aggregate CSV from disk into a ThemisDb.
  data::Table population = workload::GenerateFlights({5000, 100});
  Rng rng(101);
  data::Table sample = workload::UniformSample(population, 0.1, rng);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string sample_path = dir / "themis_wf_sample.csv";
  const std::string agg_path = dir / "themis_wf_agg.csv";
  ASSERT_TRUE(data::WriteCsv(sample, sample_path).ok());
  ASSERT_TRUE(aggregate::WriteAggregateCsv(
                  aggregate::ComputeAggregate(population,
                                              {FlightsAttrs::kOrigin}),
                  *population.schema(), agg_path)
                  .ok());

  auto loaded_sample = data::ReadCsv(sample_path);
  ASSERT_TRUE(loaded_sample.ok());
  auto loaded_agg =
      aggregate::ReadAggregateCsv(*loaded_sample->schema(), agg_path);
  ASSERT_TRUE(loaded_agg.ok()) << loaded_agg.status().ToString();

  core::ThemisOptions options;
  options.bn_group_by_samples = 2;
  options.bn_sample_rows = 100;
  options.population_size = static_cast<double>(population.num_rows());
  core::ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("sample", std::move(loaded_sample).value()).ok());
  ASSERT_TRUE(
      db.InsertAggregate("sample", std::move(loaded_agg).value()).ok());
  ASSERT_TRUE(db.Build().ok());
  auto result =
      db.Query("SELECT origin_state, COUNT(*) FROM sample GROUP BY "
               "origin_state");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rows.size(), 10u);
  std::remove(sample_path.c_str());
  std::remove(agg_path.c_str());
}

}  // namespace
}  // namespace themis
