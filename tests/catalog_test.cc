// Tests for the multi-relation core::Catalog and the ThemisDb facade over
// it: lifecycle + precise error codes, bitwise equivalence of catalog
// relations vs dedicated single-relation instances under every AnswerMode,
// relation-stamped plan fingerprints and per-relation cache isolation,
// cross-relation batch stress across pool sizes, drop-and-rebuild memo
// invalidation, and the shared cache-byte budget split.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "core/themis_db.h"
#include "util/thread_pool.h"

namespace themis::core {
namespace {

/// Two small relations with disjoint schemas: the paper's running flights
/// example (Sec 2 / Example 3.1) plus a "shops" relation, so one catalog
/// holds two independently-modeled samples side by side.
class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flights_schema_ = std::make_shared<data::Schema>();
    flights_schema_->AddAttribute("date", {"01", "02"});
    flights_schema_->AddAttribute("o_st", {"FL", "NC", "NY"});
    flights_schema_->AddAttribute("d_st", {"FL", "NC", "NY"});
    flights_population_ = std::make_unique<data::Table>(flights_schema_);
    const char* fp[][3] = {
        {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
        {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
        {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
        {"02", "NY", "NY"}};
    for (const auto& r : fp) {
      flights_population_->AppendRowLabels({r[0], r[1], r[2]});
    }
    flights_sample_ = std::make_unique<data::Table>(flights_schema_);
    const char* fs[][3] = {{"01", "FL", "FL"},
                           {"01", "FL", "FL"},
                           {"02", "NC", "NY"},
                           {"01", "NY", "NC"}};
    for (const auto& r : fs) {
      flights_sample_->AppendRowLabels({r[0], r[1], r[2]});
    }

    shops_schema_ = std::make_shared<data::Schema>();
    shops_schema_->AddAttribute("city", {"AA", "BB", "CC"});
    shops_schema_->AddAttribute("kind", {"K1", "K2"});
    shops_population_ = std::make_unique<data::Table>(shops_schema_);
    const char* sp[][2] = {{"AA", "K1"}, {"AA", "K1"}, {"AA", "K2"},
                           {"BB", "K1"}, {"BB", "K2"}, {"BB", "K2"},
                           {"CC", "K1"}, {"CC", "K2"}, {"CC", "K2"},
                           {"CC", "K2"}, {"AA", "K2"}, {"BB", "K1"}};
    for (const auto& r : sp) {
      shops_population_->AppendRowLabels({r[0], r[1]});
    }
    shops_sample_ = std::make_unique<data::Table>(shops_schema_);
    const char* ss[][2] = {
        {"AA", "K1"}, {"BB", "K2"}, {"CC", "K2"}, {"CC", "K2"}, {"AA", "K2"}};
    for (const auto& r : ss) shops_sample_->AppendRowLabels({r[0], r[1]});
  }

  ThemisOptions FastOptions() const {
    ThemisOptions options;
    options.bn_group_by_samples = 5;
    options.bn_sample_rows = 50;
    return options;
  }

  /// Inserts both relations (sample + aggregates) into `db`.
  void InsertBoth(ThemisDb& db) const {
    ASSERT_TRUE(db.InsertSample("flights", flights_sample_->Clone()).ok());
    ASSERT_TRUE(
        db.InsertAggregateFrom("flights", *flights_population_, {"date"})
            .ok());
    ASSERT_TRUE(db.InsertAggregateFrom("flights", *flights_population_,
                                       {"o_st", "d_st"})
                    .ok());
    ASSERT_TRUE(db.InsertSample("shops", shops_sample_->Clone()).ok());
    ASSERT_TRUE(
        db.InsertAggregateFrom("shops", *shops_population_, {"city"}).ok());
    ASSERT_TRUE(db.InsertAggregateFrom("shops", *shops_population_,
                                       {"city", "kind"})
                    .ok());
  }

  std::vector<std::string> FlightsQueries() const {
    return {
        // In-sample point, BN-answered point, out-of-domain point.
        "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'",
        "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
        "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'",
        // GROUP BYs and a non-point global aggregate.
        "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
        "SELECT date, COUNT(*) FROM flights GROUP BY date",
        "SELECT COUNT(*) FROM flights WHERE date <> '02'",
    };
  }

  std::vector<std::string> ShopsQueries() const {
    return {
        "SELECT COUNT(*) FROM shops WHERE city = 'AA' AND kind = 'K1'",
        "SELECT COUNT(*) FROM shops WHERE city = 'BB' AND kind = 'K1'",
        "SELECT COUNT(*) FROM shops WHERE city = 'QQ'",
        "SELECT city, kind, COUNT(*) FROM shops GROUP BY city, kind",
        "SELECT kind, COUNT(*) FROM shops GROUP BY kind",
        "SELECT COUNT(*) FROM shops WHERE kind <> 'K2'",
    };
  }

  static void ExpectBitwiseEqual(const sql::QueryResult& a,
                                 const sql::QueryResult& b,
                                 const std::string& context) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << context;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].group, b.rows[i].group) << context;
      ASSERT_EQ(a.rows[i].values.size(), b.rows[i].values.size()) << context;
      for (size_t j = 0; j < a.rows[i].values.size(); ++j) {
        // Bitwise double equality, not approximate.
        EXPECT_EQ(a.rows[i].values[j], b.rows[i].values[j]) << context;
      }
    }
  }

  data::SchemaPtr flights_schema_, shops_schema_;
  std::unique_ptr<data::Table> flights_population_, flights_sample_;
  std::unique_ptr<data::Table> shops_population_, shops_sample_;
};

TEST_F(CatalogTest, LifecycleAndPreciseErrorCodes) {
  Catalog catalog(FastOptions());
  EXPECT_EQ(catalog.num_relations(), 0u);
  EXPECT_FALSE(catalog.all_built());
  EXPECT_EQ(catalog.BuildAll().code(), StatusCode::kFailedPrecondition);

  // Empty names and empty samples are rejected.
  EXPECT_EQ(catalog.InsertSample("", flights_sample_->Clone()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      catalog.InsertSample("flights", data::Table(flights_schema_)).code(),
      StatusCode::kInvalidArgument);

  ASSERT_TRUE(catalog.InsertSample("flights", flights_sample_->Clone()).ok());
  EXPECT_EQ(catalog.InsertSample("flights", flights_sample_->Clone()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.InsertAggregate("nope", {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(
      catalog.InsertAggregateFrom("nope", *flights_population_, {"date"})
          .code(),
      StatusCode::kNotFound);
  EXPECT_EQ(catalog.Build("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.DropRelation("nope").code(), StatusCode::kNotFound);

  // Registered but unbuilt: queries fail with FailedPrecondition; unknown
  // FROM tables with NotFound; unparseable routing text with ParseError.
  EXPECT_TRUE(catalog.Has("flights"));
  EXPECT_FALSE(catalog.built("flights"));
  EXPECT_EQ(
      catalog.Query("SELECT COUNT(*) FROM flights").status().code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ(catalog.Query("SELECT COUNT(*) FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.Query("definitely not sql").status().code(),
            StatusCode::kParseError);

  ASSERT_TRUE(
      catalog.InsertAggregateFrom("flights", *flights_population_, {"date"})
          .ok());
  ASSERT_TRUE(catalog.Build("flights").ok());
  EXPECT_TRUE(catalog.built("flights"));
  EXPECT_TRUE(catalog.all_built());
  EXPECT_TRUE(catalog.Query("SELECT COUNT(*) FROM flights").ok());

  // Adding knowledge un-builds only the touched relation.
  ASSERT_TRUE(catalog
                  .InsertAggregateFrom("flights", *flights_population_,
                                       {"o_st", "d_st"})
                  .ok());
  EXPECT_FALSE(catalog.built("flights"));
  ASSERT_TRUE(catalog.Build("flights").ok());
  EXPECT_TRUE(catalog.built("flights"));
}

/// Flights and shops coexist in one ThemisDb; every query under every
/// AnswerMode answers bitwise identically to (a) a dedicated
/// single-relation ThemisDb and (b) a raw dedicated ThemisModel +
/// HybridEvaluator built from the same inputs.
TEST_F(CatalogTest, TwoRelationsMatchDedicatedInstancesBitwise) {
  ThemisDb combined(FastOptions());
  InsertBoth(combined);
  ASSERT_TRUE(combined.Build().ok());  // both models learn in parallel
  EXPECT_TRUE(combined.built());
  EXPECT_EQ(combined.catalog().num_relations(), 2u);

  ThemisDb flights_only(FastOptions());
  ASSERT_TRUE(
      flights_only.InsertSample("flights", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      flights_only.InsertAggregateFrom("flights", *flights_population_,
                                       {"date"})
          .ok());
  ASSERT_TRUE(flights_only
                  .InsertAggregateFrom("flights", *flights_population_,
                                       {"o_st", "d_st"})
                  .ok());
  ASSERT_TRUE(flights_only.Build().ok());

  ThemisDb shops_only(FastOptions());
  ASSERT_TRUE(shops_only.InsertSample("shops", shops_sample_->Clone()).ok());
  ASSERT_TRUE(
      shops_only.InsertAggregateFrom("shops", *shops_population_, {"city"})
          .ok());
  ASSERT_TRUE(shops_only
                  .InsertAggregateFrom("shops", *shops_population_,
                                       {"city", "kind"})
                  .ok());
  ASSERT_TRUE(shops_only.Build().ok());

  // Raw dedicated instances, bypassing the catalog entirely.
  aggregate::AggregateSet flights_aggs(flights_schema_);
  flights_aggs.Add(aggregate::ComputeAggregate(*flights_population_, {0}));
  flights_aggs.Add(aggregate::ComputeAggregate(*flights_population_, {1, 2}));
  auto raw_model = ThemisModel::Build(flights_sample_->Clone(), flights_aggs,
                                      FastOptions());
  ASSERT_TRUE(raw_model.ok());
  HybridEvaluator raw_evaluator(&*raw_model, "flights");

  for (AnswerMode mode : {AnswerMode::kHybrid, AnswerMode::kSampleOnly,
                          AnswerMode::kBnOnly}) {
    const std::string mode_tag = std::to_string(static_cast<int>(mode));
    for (const std::string& sql : FlightsQueries()) {
      auto from_combined = combined.Query(sql, mode);
      auto from_dedicated = flights_only.Query(sql, mode);
      auto from_raw = raw_evaluator.Query(sql, mode);
      ASSERT_TRUE(from_combined.ok()) << sql;
      ASSERT_TRUE(from_dedicated.ok() && from_raw.ok()) << sql;
      ExpectBitwiseEqual(*from_combined, *from_dedicated,
                         sql + " vs dedicated db, mode " + mode_tag);
      ExpectBitwiseEqual(*from_combined, *from_raw,
                         sql + " vs raw evaluator, mode " + mode_tag);
    }
    for (const std::string& sql : ShopsQueries()) {
      auto from_combined = combined.Query(sql, mode);
      auto from_dedicated = shops_only.Query(sql, mode);
      ASSERT_TRUE(from_combined.ok()) << sql;
      ASSERT_TRUE(from_dedicated.ok()) << sql;
      ExpectBitwiseEqual(*from_combined, *from_dedicated,
                         sql + " vs dedicated db, mode " + mode_tag);
    }
  }

  // Routed point queries match the dedicated instances too; the
  // single-relation convenience overload now requires naming.
  auto combined_point =
      combined.PointQuery("flights", {{"o_st", "FL"}, {"d_st", "NY"}});
  auto dedicated_point =
      flights_only.PointQuery({{"o_st", "FL"}, {"d_st", "NY"}});
  ASSERT_TRUE(combined_point.ok() && dedicated_point.ok());
  EXPECT_EQ(*combined_point, *dedicated_point);
  EXPECT_EQ(combined.PointQuery({{"o_st", "FL"}}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(combined.model(), nullptr);
  EXPECT_NE(combined.model("flights"), nullptr);
  EXPECT_NE(flights_only.model(), nullptr);
}

/// Same SQL text planned by two relations (registered under one SQL table
/// name) yields different fingerprints, and each relation's plan cache,
/// result memo, and inference cache move independently.
TEST_F(CatalogTest, FingerprintsAndCachesAreIsolatedPerRelation) {
  Catalog catalog(FastOptions());
  RelationConfig mirror_a;
  mirror_a.table_name = "sample";
  RelationConfig mirror_b;
  mirror_b.table_name = "sample";
  ASSERT_TRUE(catalog
                  .InsertSample("flights", flights_sample_->Clone(),
                                std::move(mirror_a))
                  .ok());
  ASSERT_TRUE(catalog
                  .InsertSample("mirror", flights_sample_->Clone(),
                                std::move(mirror_b))
                  .ok());
  for (const char* name : {"flights", "mirror"}) {
    ASSERT_TRUE(
        catalog.InsertAggregateFrom(name, *flights_population_, {"date"})
            .ok());
    ASSERT_TRUE(catalog
                    .InsertAggregateFrom(name, *flights_population_,
                                         {"o_st", "d_st"})
                    .ok());
  }
  ASSERT_TRUE(catalog.BuildAll().ok());

  // Identical text, identical table name — distinct fingerprints.
  const std::string group_by =
      "SELECT o_st, COUNT(*) FROM sample GROUP BY o_st";
  auto plan_a = catalog.evaluator("flights")->Plan(group_by);
  auto plan_b = catalog.evaluator("mirror")->Plan(group_by);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  EXPECT_EQ((*plan_a)->relation, "flights");
  EXPECT_EQ((*plan_b)->relation, "mirror");
  EXPECT_NE((*plan_a)->fingerprint, (*plan_b)->fingerprint);

  // Result memos are isolated: traffic on one relation never warms (or
  // pollutes) the other's.
  ASSERT_TRUE(catalog.QueryOn("flights", group_by).ok());
  ASSERT_TRUE(catalog.QueryOn("flights", group_by).ok());
  EXPECT_EQ(catalog.evaluator("flights")->result_memo_stats().hits, 1u);
  EXPECT_EQ(catalog.evaluator("mirror")->result_memo_stats().hits, 0u);
  EXPECT_EQ(catalog.evaluator("mirror")->result_memo_stats().misses, 0u);

  // Inference caches too: a BN-answered point on one relation leaves the
  // other's engine untouched.
  const std::string bn_point =
      "SELECT COUNT(*) FROM sample WHERE o_st = 'FL' AND d_st = 'NY'";
  ASSERT_TRUE(catalog.QueryOn("mirror", bn_point).ok());
  EXPECT_GT(catalog.evaluator("mirror")->inference_engine()->cache_stats()
                .misses,
            0u);
  EXPECT_EQ(catalog.evaluator("flights")->inference_engine()->cache_stats()
                .misses,
            0u);

  // FROM-routing resolves relation names, not table names: "sample" is a
  // table alias shared by both relations, so it is not routable.
  EXPECT_EQ(catalog.Query(group_by).status().code(), StatusCode::kNotFound);
}

/// 200 queries interleaving two relations, pool sizes {1, 2, hw}: batch
/// answers bitwise-equal to a sequential Query() loop under every mode.
TEST_F(CatalogTest, CrossRelationBatchStressAcrossPoolSizes) {
  std::vector<std::string> sqls;
  {
    const std::vector<std::string> flights = FlightsQueries();
    const std::vector<std::string> shops = ShopsQueries();
    size_t i = 0;
    while (sqls.size() < 200) {
      // Strict interleave: flights, shops, flights, shops, ...
      sqls.push_back(flights[i % flights.size()]);
      sqls.push_back(shops[i % shops.size()]);
      ++i;
    }
  }
  ASSERT_GE(sqls.size(), 200u);

  const size_t hw = util::DefaultParallelism();
  for (size_t threads : std::vector<size_t>{1, 2, hw}) {
    ThemisOptions options = FastOptions();
    options.num_threads = threads;
    // Honest comparison: the loop must execute, not read the batch's memo.
    options.enable_result_memo = false;
    ThemisDb db(options);
    InsertBoth(db);
    ASSERT_TRUE(db.Build().ok());
    for (AnswerMode mode : {AnswerMode::kHybrid, AnswerMode::kSampleOnly,
                            AnswerMode::kBnOnly}) {
      auto batch = db.QueryBatch(sqls, mode);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      ASSERT_EQ(batch->size(), sqls.size());
      for (size_t q = 0; q < sqls.size(); ++q) {
        auto sequential = db.Query(sqls[q], mode);
        ASSERT_TRUE(sequential.ok());
        ExpectBitwiseEqual(*sequential, (*batch)[q],
                           sqls[q] + " threads=" + std::to_string(threads));
      }
    }
  }
}

/// Dropping and rebuilding a relation invalidates its result memo and
/// inference cache without touching its neighbors'.
TEST_F(CatalogTest, DropAndRebuildInvalidateBothMemos) {
  ThemisDb db(FastOptions());
  InsertBoth(db);
  ASSERT_TRUE(db.Build().ok());

  const std::string flights_sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
  const std::string shops_sql =
      "SELECT city, COUNT(*) FROM shops GROUP BY city";
  const std::string flights_bn_point =
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
  auto before = db.Query(flights_sql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db.Query(flights_sql).ok());
  ASSERT_TRUE(db.Query(flights_bn_point).ok());
  ASSERT_TRUE(db.Query(shops_sql).ok());
  ASSERT_TRUE(db.Query(shops_sql).ok());
  EXPECT_EQ(db.evaluator("flights")->result_memo_stats().hits, 1u);
  EXPECT_GT(
      db.evaluator("flights")->inference_engine()->cache_stats().entries, 0u);
  EXPECT_EQ(db.evaluator("shops")->result_memo_stats().hits, 1u);

  // Rebuild flights only (new knowledge arrived): both flights memos die,
  // shops' stay warm.
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *flights_population_, {"o_st"}).ok());
  EXPECT_FALSE(db.built("flights"));
  EXPECT_EQ(db.Query(flights_sql).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db.Build("flights").ok());
  EXPECT_EQ(db.evaluator("flights")->result_memo_stats().hits, 0u);
  EXPECT_EQ(db.evaluator("flights")->result_memo_stats().entries, 0u);
  EXPECT_EQ(
      db.evaluator("flights")->inference_engine()->cache_stats().entries, 0u);
  EXPECT_EQ(db.evaluator("shops")->result_memo_stats().hits, 1u);
  auto after = db.Query(flights_sql);
  ASSERT_TRUE(after.ok());

  // Dropping removes the relation outright; re-inserting starts fresh.
  ASSERT_TRUE(db.DropRelation("shops").ok());
  EXPECT_FALSE(db.catalog().Has("shops"));
  EXPECT_EQ(db.Query(shops_sql).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.Query(flights_sql).ok());  // neighbor unaffected
  ASSERT_TRUE(db.InsertSample("shops", shops_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("shops", *shops_population_, {"city"}).ok());
  ASSERT_TRUE(db.Build("shops").ok());
  EXPECT_EQ(db.evaluator("shops")->result_memo_stats().hits, 0u);
  EXPECT_TRUE(db.Query(shops_sql).ok());
}

/// BuildAll is incremental: already-built relations keep their models,
/// evaluators, and warm caches; only un-built ones learn.
TEST_F(CatalogTest, BuildAllSkipsAlreadyBuiltRelations) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *flights_population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string flights_sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
  ASSERT_TRUE(db.Query(flights_sql).ok());
  ASSERT_TRUE(db.Query(flights_sql).ok());
  const HybridEvaluator* flights_evaluator = db.evaluator("flights");
  EXPECT_EQ(flights_evaluator->result_memo_stats().hits, 1u);

  // A new relation arrives; rebuilding the db must not touch flights.
  ASSERT_TRUE(db.InsertSample("shops", shops_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("shops", *shops_population_, {"city"}).ok());
  ASSERT_TRUE(db.Build().ok());
  EXPECT_EQ(db.evaluator("flights"), flights_evaluator);  // same object
  EXPECT_EQ(db.evaluator("flights")->result_memo_stats().hits, 1u);
  EXPECT_TRUE(db.built("shops"));

  // An explicit per-relation Build is the forced rebuild.
  ASSERT_TRUE(db.Build("flights").ok());
  EXPECT_EQ(db.evaluator("flights")->result_memo_stats().hits, 0u);
}

/// Name/table-name shadowing that would mislead FROM-routing is rejected
/// at InsertSample time.
TEST_F(CatalogTest, ShadowingTableNamesRejected) {
  Catalog catalog(FastOptions());
  ASSERT_TRUE(catalog.InsertSample("flights", flights_sample_->Clone()).ok());
  RelationConfig alias;
  alias.table_name = "sample";
  ASSERT_TRUE(catalog
                  .InsertSample("mirror", flights_sample_->Clone(),
                                std::move(alias))
                  .ok());

  // A new relation whose table name shadows an existing relation name.
  RelationConfig shadows_flights;
  shadows_flights.table_name = "flights";
  EXPECT_EQ(catalog
                .InsertSample("other", shops_sample_->Clone(),
                              std::move(shadows_flights))
                .code(),
            StatusCode::kInvalidArgument);
  // A new relation whose *name* shadows an existing table alias.
  EXPECT_EQ(catalog.InsertSample("sample", shops_sample_->Clone()).code(),
            StatusCode::kInvalidArgument);
  // Sharing a non-routable alias stays allowed (the MethodSuite setup).
  RelationConfig shared_alias;
  shared_alias.table_name = "sample";
  EXPECT_TRUE(catalog
                  .InsertSample("mirror2", flights_sample_->Clone(),
                                std::move(shared_alias))
                  .ok());
}

/// The catalog-wide cache-byte budgets split evenly across relations at
/// Build time; entry-count bounds are untouched.
TEST_F(CatalogTest, SharedCacheByteBudgetSplitsAcrossRelations) {
  ThemisOptions options = FastOptions();
  options.inference_cache_bytes = 10000;
  options.result_memo_bytes = 8192;
  ThemisDb db(options);
  InsertBoth(db);
  ASSERT_TRUE(db.Build().ok());
  for (const char* name : {"flights", "shops"}) {
    ASSERT_NE(db.model(name), nullptr) << name;
    EXPECT_EQ(db.model(name)->options().inference_cache_bytes, 5000u) << name;
    EXPECT_EQ(db.model(name)->options().result_memo_bytes, 4096u) << name;
    EXPECT_EQ(db.model(name)->options().inference_cache_capacity,
              options.inference_cache_capacity)
        << name;
  }

  // A dedicated single-relation instance keeps the whole budget.
  ThemisDb solo(options);
  ASSERT_TRUE(solo.InsertSample("flights", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      solo.InsertAggregateFrom("flights", *flights_population_, {"date"})
          .ok());
  ASSERT_TRUE(solo.Build().ok());
  EXPECT_EQ(solo.model()->options().inference_cache_bytes, 10000u);
  EXPECT_EQ(solo.model()->options().result_memo_bytes, 8192u);
}

/// Dropping a relation re-inflates the survivors' cache-byte shares
/// immediately and in place — warm entries survive and keep hitting; no
/// rebuild required (the ROADMAP's budget-rebalancing item).
TEST_F(CatalogTest, DropRelationReinflatesSurvivorsCacheBudgets) {
  ThemisOptions options = FastOptions();
  options.inference_cache_bytes = 10000;
  options.result_memo_bytes = 8192;
  ThemisDb db(options);
  InsertBoth(db);
  ASSERT_TRUE(db.Build().ok());

  // Warm the flights caches so survival through the resize is visible.
  const std::string group_by =
      "SELECT date, COUNT(*) FROM flights GROUP BY date";
  ASSERT_TRUE(db.Query(group_by).ok());
  auto before = db.catalog().StatsFor("flights");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->result_memo.capacity, 4096u);   // half of 8192
  EXPECT_EQ(before->inference_cache.capacity, 5000u);  // half of 10000
  ASSERT_GE(before->result_memo.entries, 1u);

  ASSERT_TRUE(db.DropRelation("shops").ok());
  auto after = db.catalog().StatsFor("flights");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result_memo.capacity, 8192u);    // whole budget now
  EXPECT_EQ(after->inference_cache.capacity, 10000u);
  // Growth never evicts: the warm entries are still resident and hit.
  EXPECT_EQ(after->result_memo.entries, before->result_memo.entries);
  const size_t hits_before = after->result_memo.hits;
  ASSERT_TRUE(db.Query(group_by).ok());
  auto warmed = db.catalog().StatsFor("flights");
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(warmed->result_memo.hits, hits_before + 1);

  // StatsFor's own taxonomy: the dropped relation is NotFound, while a
  // registered-but-unbuilt one answers OK with built=false and all-zero
  // counters.
  EXPECT_EQ(db.catalog().StatsFor("shops").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(db.InsertSample("pending", shops_sample_->Clone()).ok());
  auto pending = db.catalog().StatsFor("pending");
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->built);
  EXPECT_EQ(pending->result_memo.capacity, 0u);
}

/// Rebalancing is grow-only: a survivor that built when the catalog was
/// smaller (and so holds more than the fresh even split) keeps its larger
/// share — someone else's drop never evicts warm entries.
TEST_F(CatalogTest, RebalanceNeverShrinksAnEarlierBuiltSurvivor) {
  ThemisOptions options = FastOptions();
  options.result_memo_bytes = 8192;
  ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("flights", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *flights_population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());  // alone: the whole 8192-byte budget
  ASSERT_EQ(db.catalog().StatsFor("flights")->result_memo.capacity, 8192u);

  ASSERT_TRUE(db.InsertSample("shops", shops_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("shops", *shops_population_, {"city"}).ok());
  ASSERT_TRUE(db.InsertSample("mirror", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("mirror", *flights_population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());  // shops+mirror build at n=3: 2730 each
  EXPECT_EQ(db.catalog().StatsFor("flights")->result_memo.capacity, 8192u);
  EXPECT_EQ(db.catalog().StatsFor("shops")->result_memo.capacity, 2730u);

  ASSERT_TRUE(db.DropRelation("mirror").ok());
  // flights' fresh even share would be 4096 — a shrink, so it keeps 8192;
  // shops genuinely grows to the n=2 split.
  EXPECT_EQ(db.catalog().StatsFor("flights")->result_memo.capacity, 8192u);
  EXPECT_EQ(db.catalog().StatsFor("shops")->result_memo.capacity, 4096u);
}

}  // namespace
}  // namespace themis::core
