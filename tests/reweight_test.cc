#include <gtest/gtest.h>

#include <cmath>

#include "reweight/incidence.h"
#include "reweight/ipf.h"
#include "reweight/linreg.h"
#include "reweight/uniform.h"
#include "workload/flights.h"
#include "workload/sampler.h"

namespace themis::reweight {
namespace {

/// The paper's running example (Examples 3.1 / 4.1 / 4.2): population of
/// 10 flights, sample of 4, Γ = {date; (o_st, d_st)}.
struct Example {
  static data::SchemaPtr MakeSchema() {
    auto schema = std::make_shared<data::Schema>();
    schema->AddAttribute("date", {"01", "02"});
    schema->AddAttribute("o_st", {"FL", "NC", "NY"});
    schema->AddAttribute("d_st", {"FL", "NC", "NY"});
    return schema;
  }

  data::SchemaPtr schema = MakeSchema();
  data::Table population{schema};
  data::Table sample{schema};
  aggregate::AggregateSet aggregates;

  Example() {
    const char* prows[][3] = {
        {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
        {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
        {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
        {"02", "NY", "NY"}};
    for (const auto& r : prows) population.AppendRowLabels({r[0], r[1], r[2]});
    const char* srows[][3] = {{"01", "FL", "FL"},
                              {"01", "FL", "FL"},
                              {"02", "NC", "NY"},
                              {"01", "NY", "NC"}};
    for (const auto& r : srows) sample.AppendRowLabels({r[0], r[1], r[2]});
    aggregates = aggregate::AggregateSet(schema);
    aggregates.Add(aggregate::ComputeAggregate(population, {0}));
    aggregates.Add(aggregate::ComputeAggregate(population, {1, 2}));
  }
};

TEST(IncidenceTest, MatchesExample41) {
  Example ex;
  IncidenceSystem sys = BuildIncidence(ex.sample, ex.aggregates);
  // 2 date groups + 7 (o_st, d_st) groups = 9 rows over 4 tuples.
  ASSERT_EQ(sys.g.rows(), 9u);
  EXPECT_EQ(sys.g.cols(), 4u);
  ASSERT_EQ(sys.y.size(), 9u);
  // y = [5 5 | 2 1 1 3 1 1 1] (group order: sorted keys).
  EXPECT_DOUBLE_EQ(sys.y[0], 5.0);
  EXPECT_DOUBLE_EQ(sys.y[1], 5.0);
  // date=01 row touches sample tuples {0, 1, 3}; date=02 touches {2}.
  linalg::Vector ones(4, 1.0);
  EXPECT_DOUBLE_EQ(sys.g.RowDot(0, ones), 3.0);
  EXPECT_DOUBLE_EQ(sys.g.RowDot(1, ones), 1.0);
  // (FL,FL) count 2 touches {0,1}; (FL,NY) count 1 touches nobody.
  EXPECT_DOUBLE_EQ(sys.y[2], 2.0);
  EXPECT_DOUBLE_EQ(sys.g.RowDot(2, ones), 2.0);
  EXPECT_DOUBLE_EQ(sys.y[3], 1.0);
  EXPECT_TRUE(sys.g.Row(3).empty());
}

TEST(UniformTest, EqualWeightsSummingToN) {
  Example ex;
  UniformReweighter rw;
  ASSERT_TRUE(rw.Reweight(ex.sample, ex.aggregates, 10.0).ok());
  for (size_t r = 0; r < ex.sample.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(ex.sample.weight(r), 2.5);  // 10 / 4
  }
}

TEST(SumNormalizeTest, RescalesToPopulation) {
  Example ex;
  ex.sample.set_weight(0, 2);
  ex.sample.set_weight(1, 2);
  ex.sample.set_weight(2, 4);
  ex.sample.set_weight(3, 8);
  SumNormalize(ex.sample, 32.0);
  EXPECT_DOUBLE_EQ(ex.sample.TotalWeight(), 32.0);
  EXPECT_DOUBLE_EQ(ex.sample.weight(3), 16.0);
}

TEST(IpfTest, FirstSweepMatchesExample42) {
  // Run exactly one IPF sweep and compare with the worked table: after
  // j = 9, iter = 1 the weights are [1, 1, 3, 1].
  Example ex;
  IpfOptions options;
  options.max_iterations = 1;
  IpfReweighter rw(options);
  ASSERT_TRUE(rw.Reweight(ex.sample, ex.aggregates, 10.0).ok());
  EXPECT_NEAR(ex.sample.weight(0), 1.0, 1e-9);
  EXPECT_NEAR(ex.sample.weight(1), 1.0, 1e-9);
  EXPECT_NEAR(ex.sample.weight(2), 3.0, 1e-9);
  EXPECT_NEAR(ex.sample.weight(3), 1.0, 1e-9);
}

TEST(IpfTest, DoesNotConvergeOnExample42) {
  // The sample misses FL-bound tuples, so IPF cannot satisfy all the
  // aggregates (Example 4.2); it must report non-convergence but still
  // deliver approximate positive weights.
  Example ex;
  IpfOptions options;
  options.max_iterations = 50;
  IpfReweighter rw(options);
  ASSERT_TRUE(rw.Reweight(ex.sample, ex.aggregates, 10.0).ok());
  EXPECT_FALSE(rw.stats().converged);
  EXPECT_GT(rw.stats().max_violation, 0.01);
  for (size_t r = 0; r < ex.sample.num_rows(); ++r) {
    EXPECT_GT(ex.sample.weight(r), 0.0);
  }
}

TEST(IpfTest, ConvergesOnFeasibleSystem) {
  // Sample = population: every aggregate is exactly satisfiable with
  // weights of one... but IPF must also converge from a perturbed start.
  Example ex;
  data::Table full = ex.population.Clone();
  IpfReweighter rw;
  ASSERT_TRUE(rw.Reweight(full, ex.aggregates, 10.0).ok());
  EXPECT_TRUE(rw.stats().converged);
  IncidenceSystem sys = BuildIncidence(full, ex.aggregates);
  for (size_t j = 0; j < sys.g.rows(); ++j) {
    if (sys.g.Row(j).empty()) continue;
    EXPECT_NEAR(sys.g.RowDot(j, full.weights()), sys.y[j], 1e-6);
  }
}

TEST(IpfTest, SatisfiedMarginalsStayPut) {
  // With only the satisfiable date aggregate, IPF converges and matches it.
  Example ex;
  aggregate::AggregateSet date_only(ex.schema);
  date_only.Add(aggregate::ComputeAggregate(ex.population, {0}));
  IpfReweighter rw;
  ASSERT_TRUE(rw.Reweight(ex.sample, date_only, 10.0).ok());
  EXPECT_TRUE(rw.stats().converged);
  // date=01 has 3 sample tuples sharing count 5; date=02 has 1 with 5.
  EXPECT_NEAR(ex.sample.weight(0), 5.0 / 3.0, 1e-9);
  EXPECT_NEAR(ex.sample.weight(2), 5.0, 1e-9);
}

TEST(IpfTest, EmptyAggregatesFallsBackToUniform) {
  Example ex;
  aggregate::AggregateSet empty(ex.schema);
  IpfReweighter rw;
  ASSERT_TRUE(rw.Reweight(ex.sample, empty, 10.0).ok());
  EXPECT_DOUBLE_EQ(ex.sample.weight(0), 2.5);
}

TEST(IpfTest, EmptySampleFails) {
  Example ex;
  data::Table empty(ex.schema);
  IpfReweighter rw;
  EXPECT_FALSE(rw.Reweight(empty, ex.aggregates, 10.0).ok());
}

TEST(LinRegTest, WeightsPositiveAndNormalized) {
  Example ex;
  LinRegReweighter rw;
  ASSERT_TRUE(rw.Reweight(ex.sample, ex.aggregates, 10.0).ok());
  EXPECT_NEAR(ex.sample.TotalWeight(), 10.0, 1e-9);
  for (size_t r = 0; r < ex.sample.num_rows(); ++r) {
    EXPECT_GT(ex.sample.weight(r), 0.0);
  }
  // β ≥ 0 (the paper's constrained least squares).
  for (double b : rw.beta()) EXPECT_GE(b, -1e-12);
}

TEST(LinRegTest, RecoversUniformOnUnbiasedFeasibleCase) {
  // Sample = population: weights of one satisfy everything, so after
  // normalization to n the weights must all be n/nS = 1.
  Example ex;
  data::Table full = ex.population.Clone();
  LinRegReweighter rw;
  ASSERT_TRUE(rw.Reweight(full, ex.aggregates, 10.0).ok());
  for (size_t r = 0; r < full.num_rows(); ++r) {
    EXPECT_NEAR(full.weight(r), 1.0, 0.2);
  }
}

TEST(LinRegTest, EmptyAggregatesFallsBackToUniform) {
  Example ex;
  aggregate::AggregateSet empty(ex.schema);
  LinRegReweighter rw;
  ASSERT_TRUE(rw.Reweight(ex.sample, empty, 10.0).ok());
  EXPECT_DOUBLE_EQ(ex.sample.weight(1), 2.5);
}

/// Property sweep over biased flights samples: every reweighter yields
/// strictly positive weights, and IPF satisfies any single satisfiable
/// marginal far better than uniform.
class ReweighterPropertyTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ReweighterPropertyTest, PositiveWeightsOnBiasedSamples) {
  workload::FlightsConfig config;
  config.num_rows = 8000;
  data::Table population = workload::GenerateFlights(config);
  auto sample = workload::MakeFlightsSample(population, GetParam(), 0.1, 21);
  ASSERT_TRUE(sample.ok());
  aggregate::AggregateSet aggregates(population.schema());
  aggregates.Add(aggregate::ComputeAggregate(
      population, {workload::FlightsAttrs::kOrigin}));
  aggregates.Add(aggregate::ComputeAggregate(
      population, {workload::FlightsAttrs::kDate}));

  for (int method = 0; method < 3; ++method) {
    data::Table s = sample->Clone();
    Status status;
    if (method == 0) {
      UniformReweighter rw;
      status = rw.Reweight(s, aggregates, population.num_rows());
    } else if (method == 1) {
      LinRegReweighter rw;
      status = rw.Reweight(s, aggregates, population.num_rows());
    } else {
      IpfReweighter rw;
      status = rw.Reweight(s, aggregates, population.num_rows());
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (size_t r = 0; r < s.num_rows(); ++r) {
      EXPECT_GE(s.weight(r), 0.0);
    }
    EXPECT_GT(s.TotalWeight(), 0.0);
  }
}

TEST_P(ReweighterPropertyTest, IpfFixesTheBiasedMarginal) {
  workload::FlightsConfig config;
  config.num_rows = 8000;
  data::Table population = workload::GenerateFlights(config);
  auto sample = workload::MakeFlightsSample(population, GetParam(), 0.1, 22);
  ASSERT_TRUE(sample.ok());
  aggregate::AggregateSet aggregates(population.schema());
  const size_t attr = workload::FlightsAttrs::kOrigin;
  aggregates.Add(aggregate::ComputeAggregate(population, {attr}));

  data::Table s = sample->Clone();
  IpfReweighter rw;
  ASSERT_TRUE(rw.Reweight(s, aggregates, population.num_rows()).ok());
  auto truth = population.GroupWeights({attr});
  auto estimate = s.GroupWeights({attr});
  for (const auto& [key, est] : estimate) {
    EXPECT_NEAR(est, truth[key], 1e-3 * truth[key] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, ReweighterPropertyTest,
                         ::testing::Values("Unif", "June", "SCorners",
                                           "Corners"));

}  // namespace
}  // namespace themis::reweight
