// Tests for the shared execution runtime: util::ThreadPool (FIFO
// ordering, exception propagation through futures, nested submission and
// nested ParallelFor without deadlock), DefaultParallelism/
// ResolveParallelism, the cost-aware LruCache admission policy, and the
// util::SingleFlight duplicate-suppression map (leader/follower value
// sharing, follower-deadline detach, leader-cancel promotion).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/lru_cache.h"
#include "util/single_flight.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace themis::util {
namespace {

TEST(DefaultParallelismTest, PositiveAndEnvOverridable) {
  unsetenv("THEMIS_NUM_THREADS");
  EXPECT_GE(DefaultParallelism(), 1u);

  setenv("THEMIS_NUM_THREADS", "3", 1);
  EXPECT_EQ(DefaultParallelism(), 3u);
  // Garbage and zero fall back to the hardware default.
  setenv("THEMIS_NUM_THREADS", "0", 1);
  EXPECT_GE(DefaultParallelism(), 1u);
  unsetenv("THEMIS_NUM_THREADS");
}

TEST(DefaultParallelismTest, ResolveHonorsExplicitRequest) {
  EXPECT_EQ(ResolveParallelism(7), 7u);
  EXPECT_EQ(ResolveParallelism(0), DefaultParallelism());
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool stays usable after a task threw.
  auto ok = pool.Submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.ParallelFor(0, kN, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(5, 6, [&](size_t i) {
    EXPECT_EQ(i, 5u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 64, [&](size_t i) {
      if (i % 3 == 1) throw std::invalid_argument(std::to_string(i));
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "1");  // lowest failing index, deterministic
  }
  // Every non-throwing shard still ran to completion (21 of 64 throw).
  EXPECT_EQ(completed.load(), 64 - 21);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  for (size_t workers : {1u, 2u}) {
    ThreadPool pool(workers);
    std::atomic<int> inner_calls{0};
    pool.ParallelFor(0, 8, [&](size_t) {
      pool.ParallelFor(0, 8, [&](size_t) { inner_calls.fetch_add(1); });
    });
    EXPECT_EQ(inner_calls.load(), 64);
  }
}

TEST(ThreadPoolTest, NestedSubmitWithGetHelpingDoesNotDeadlock) {
  // A task on a saturated 1-worker pool submits a subtask and blocks on
  // it; GetHelping runs queued work while waiting, so this completes.
  ThreadPool pool(1);
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([] { return 13; });
    return pool.GetHelping(inner) + 1;
  });
  EXPECT_EQ(pool.GetHelping(outer), 14);
}

TEST(ThreadPoolTest, DeeplyNestedMixedSubmissionCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(0, 4, [&](size_t) {
    auto mid = pool.Submit([&] {
      pool.ParallelFor(0, 4, [&](size_t) { leaves.fetch_add(1); });
    });
    pool.GetHelping(mid);
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(LruCacheCostTest, CostAwareEvictionFreesEnoughSpace) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 60));
  EXPECT_TRUE(cache.Put(2, 20, 30));
  EXPECT_EQ(cache.total_cost(), 90u);
  // Inserting 50 must evict key 1 (LRU, cost 60) to fit.
  EXPECT_TRUE(cache.Put(3, 30, 50));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_EQ(cache.total_cost(), 80u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheCostTest, OversizedEntryIsRejectedNotAdmitted) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 40));
  // Costlier than the whole capacity: rejected, resident entries survive.
  EXPECT_FALSE(cache.Put(2, 20, 101));
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.rejections(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheCostTest, OverwriteReplacesCost) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 80));
  EXPECT_TRUE(cache.Put(1, 11, 20));  // same key, smaller cost
  EXPECT_EQ(cache.total_cost(), 20u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheCostTest, UnitCostsKeepEntryCountSemantics) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_cost(), 2u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(SingleFlightTest, LeaderExecutesOnceAndFollowersShareTheValue) {
  SingleFlight<Result<int>> flights;
  std::promise<void> leader_entered;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> executions{0};

  std::vector<Result<int>> answers(3, Result<int>(Status::Internal("unset")));
  std::thread leader([&] {
    answers[0] = flights.Run("key", nullptr, [&](const util::CancelToken*) {
      executions.fetch_add(1);
      leader_entered.set_value();
      released.wait();
      return Result<int>(42);
    });
  });
  leader_entered.get_future().wait();  // the flight is in the map

  std::vector<std::thread> follower_threads;
  for (size_t i = 1; i <= 2; ++i) {
    follower_threads.emplace_back([&flights, &answers, i] {
      // Executing here would be the bug this layer exists to prevent.
      answers[i] = flights.Run("key", nullptr, [](const util::CancelToken*) {
        ADD_FAILURE() << "duplicate key re-executed";
        return Result<int>(-1);
      });
    });
  }
  while (flights.stats().followers < 2) std::this_thread::yield();
  release.set_value();
  leader.join();
  for (std::thread& t : follower_threads) t.join();

  EXPECT_EQ(executions.load(), 1);
  for (const auto& answer : answers) {
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(*answer, 42);
  }
  const SingleFlightStats stats = flights.stats();
  EXPECT_EQ(stats.flights, 1u);
  EXPECT_EQ(stats.followers, 2u);
  EXPECT_EQ(stats.detached, 0u);
}

TEST(SingleFlightTest, ReentrantDuplicateOnALeadingThreadExecutesDirectly) {
  // The ThreadPool runs queued tasks while waiting (GetHelping /
  // ParallelFor), so a leader mid-execution can pick up a queued
  // duplicate of its own in-flight key. Following would deadlock — the
  // flight completes only when this very thread returns — so the nested
  // call must execute directly. Without the re-entrancy guard this test
  // hangs instead of failing.
  SingleFlight<Result<int>> flights;
  auto result = flights.Run("key", nullptr, [&](const util::CancelToken*) {
    auto nested =
        flights.Run("key", nullptr,
                    [](const util::CancelToken*) { return Result<int>(5); });
    EXPECT_TRUE(nested.ok());
    return Result<int>(*nested + 1);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 6);
  // The nested execution bypassed the map: one flight, no followers.
  EXPECT_EQ(flights.stats().flights, 1u);
  EXPECT_EQ(flights.stats().followers, 0u);
}

TEST(SingleFlightTest, AThrowingLeaderStillResolvesItsFollowers) {
  SingleFlight<Result<int>> flights;
  std::promise<void> leader_entered;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();

  Result<int> leader_answer(Status::Internal("unset"));
  std::thread leader([&] {
    leader_answer =
        flights.Run("key", nullptr,
                    [&](const util::CancelToken*) -> Result<int> {
                      leader_entered.set_value();
                      released.wait();
                      throw std::runtime_error("executor blew up");
                    });
  });
  leader_entered.get_future().wait();

  Result<int> follower_answer(Status::Internal("unset"));
  std::thread follower([&] {
    follower_answer = flights.Run(
        "key", nullptr,
        [](const util::CancelToken*) { return Result<int>(-1); });
  });
  while (flights.stats().followers < 1) std::this_thread::yield();
  release.set_value();
  leader.join();
  follower.join();

  // Both get the wrapped failure; neither hangs on a poisoned key.
  EXPECT_EQ(leader_answer.status().code(), StatusCode::kInternal);
  EXPECT_EQ(follower_answer.status().code(), StatusCode::kInternal);
  // And the key is usable again afterwards.
  auto retry = flights.Run(
      "key", nullptr, [](const util::CancelToken*) { return Result<int>(3); });
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 3);
}

TEST(SingleFlightTest, SequentialRunsDoNotCoalesce) {
  // Coalescing is a property of *concurrent* presentation; sequential
  // duplicates belong to the memo layer above.
  SingleFlight<Result<int>> flights;
  auto once = [](const util::CancelToken*) { return Result<int>(7); };
  EXPECT_EQ(*flights.Run("key", nullptr, once), 7);
  EXPECT_EQ(*flights.Run("key", nullptr, once), 7);
  EXPECT_EQ(flights.stats().flights, 2u);
  EXPECT_EQ(flights.stats().followers, 0u);
}

TEST(SingleFlightTest, SoloFlightDelegatesToTheLeadersToken) {
  SingleFlight<Result<int>> flights;
  util::CancelToken own;
  own.Cancel();
  // With no followers the flight token must answer exactly as the
  // leader's own token would — a lone request is untouched by coalescing.
  auto result = flights.Run("key", &own, [](const util::CancelToken* token) {
    return Result<int>(token->Check());
  });
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(SingleFlightTest, FollowerDeadlineDetachesWithoutCancellingTheLeader) {
  SingleFlight<Result<int>> flights;
  std::promise<void> leader_entered;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();

  Result<int> leader_answer(Status::Internal("unset"));
  std::thread leader([&] {
    leader_answer =
        flights.Run("key", nullptr, [&](const util::CancelToken* token) {
          leader_entered.set_value();
          released.wait();
          // The follower detached long ago; governance is back with the
          // (token-less) leader, so the flight is still live.
          return Result<int>(token->Check().ok() ? 7 : -1);
        });
  });
  leader_entered.get_future().wait();

  // A follower whose own 1ms budget lapses while the leader is parked
  // must answer DeadlineExceeded itself — and must NOT kill the flight.
  util::CancelToken short_deadline(/*deadline_ms=*/1);
  auto follower_answer =
      flights.Run("key", &short_deadline, [](const util::CancelToken*) {
        ADD_FAILURE() << "duplicate key re-executed";
        return Result<int>(-1);
      });
  EXPECT_EQ(follower_answer.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(flights.stats().detached, 1u);

  release.set_value();
  leader.join();
  ASSERT_TRUE(leader_answer.ok()) << leader_answer.status().ToString();
  EXPECT_EQ(*leader_answer, 7);
}

TEST(SingleFlightTest, LeaderCancellationPromotesAnAttachedFollower) {
  SingleFlight<Result<int>> flights;
  std::promise<void> leader_entered;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  util::CancelToken leader_token;

  Result<int> leader_answer(Status::Internal("unset"));
  std::atomic<bool> flight_survived{false};
  std::thread leader([&] {
    leader_answer =
        flights.Run("key", &leader_token, [&](const util::CancelToken* token) {
          leader_entered.set_value();
          released.wait();
          // The leader's token has fired, but a follower is attached: the
          // collective token must keep the execution alive for it.
          flight_survived.store(token->Check().ok());
          return Result<int>(9);
        });
  });
  leader_entered.get_future().wait();

  Result<int> follower_answer(Status::Internal("unset"));
  std::thread follower([&] {
    follower_answer =
        flights.Run("key", nullptr, [](const util::CancelToken*) {
          ADD_FAILURE() << "duplicate key re-executed";
          return Result<int>(-1);
        });
  });
  while (flights.stats().followers < 1) std::this_thread::yield();

  leader_token.Cancel();
  release.set_value();
  leader.join();
  follower.join();

  EXPECT_TRUE(flight_survived.load());
  // The follower got the published value; the leader answers its own
  // cancellation even though the work completed.
  ASSERT_TRUE(follower_answer.ok()) << follower_answer.status().ToString();
  EXPECT_EQ(*follower_answer, 9);
  EXPECT_EQ(leader_answer.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(flights.stats().detached, 0u);
}

}  // namespace
}  // namespace themis::util
