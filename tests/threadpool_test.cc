// Tests for the shared execution runtime: util::ThreadPool (FIFO
// ordering, exception propagation through futures, nested submission and
// nested ParallelFor without deadlock), DefaultParallelism/
// ResolveParallelism, and the cost-aware LruCache admission policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace themis::util {
namespace {

TEST(DefaultParallelismTest, PositiveAndEnvOverridable) {
  unsetenv("THEMIS_NUM_THREADS");
  EXPECT_GE(DefaultParallelism(), 1u);

  setenv("THEMIS_NUM_THREADS", "3", 1);
  EXPECT_EQ(DefaultParallelism(), 3u);
  // Garbage and zero fall back to the hardware default.
  setenv("THEMIS_NUM_THREADS", "0", 1);
  EXPECT_GE(DefaultParallelism(), 1u);
  unsetenv("THEMIS_NUM_THREADS");
}

TEST(DefaultParallelismTest, ResolveHonorsExplicitRequest) {
  EXPECT_EQ(ResolveParallelism(7), 7u);
  EXPECT_EQ(ResolveParallelism(0), DefaultParallelism());
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool stays usable after a task threw.
  auto ok = pool.Submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.ParallelFor(0, kN, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(5, 6, [&](size_t i) {
    EXPECT_EQ(i, 5u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 64, [&](size_t i) {
      if (i % 3 == 1) throw std::invalid_argument(std::to_string(i));
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "1");  // lowest failing index, deterministic
  }
  // Every non-throwing shard still ran to completion (21 of 64 throw).
  EXPECT_EQ(completed.load(), 64 - 21);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  for (size_t workers : {1u, 2u}) {
    ThreadPool pool(workers);
    std::atomic<int> inner_calls{0};
    pool.ParallelFor(0, 8, [&](size_t) {
      pool.ParallelFor(0, 8, [&](size_t) { inner_calls.fetch_add(1); });
    });
    EXPECT_EQ(inner_calls.load(), 64);
  }
}

TEST(ThreadPoolTest, NestedSubmitWithGetHelpingDoesNotDeadlock) {
  // A task on a saturated 1-worker pool submits a subtask and blocks on
  // it; GetHelping runs queued work while waiting, so this completes.
  ThreadPool pool(1);
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([] { return 13; });
    return pool.GetHelping(inner) + 1;
  });
  EXPECT_EQ(pool.GetHelping(outer), 14);
}

TEST(ThreadPoolTest, DeeplyNestedMixedSubmissionCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(0, 4, [&](size_t) {
    auto mid = pool.Submit([&] {
      pool.ParallelFor(0, 4, [&](size_t) { leaves.fetch_add(1); });
    });
    pool.GetHelping(mid);
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(LruCacheCostTest, CostAwareEvictionFreesEnoughSpace) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 60));
  EXPECT_TRUE(cache.Put(2, 20, 30));
  EXPECT_EQ(cache.total_cost(), 90u);
  // Inserting 50 must evict key 1 (LRU, cost 60) to fit.
  EXPECT_TRUE(cache.Put(3, 30, 50));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_EQ(cache.total_cost(), 80u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheCostTest, OversizedEntryIsRejectedNotAdmitted) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 40));
  // Costlier than the whole capacity: rejected, resident entries survive.
  EXPECT_FALSE(cache.Put(2, 20, 101));
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.rejections(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheCostTest, OverwriteReplacesCost) {
  LruCache<int, int> cache(100);
  EXPECT_TRUE(cache.Put(1, 10, 80));
  EXPECT_TRUE(cache.Put(1, 11, 20));  // same key, smaller cost
  EXPECT_EQ(cache.total_cost(), 20u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheCostTest, UnitCostsKeepEntryCountSemantics) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_cost(), 2u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

}  // namespace
}  // namespace themis::util
