#include <gtest/gtest.h>

#include <cmath>

#include "bn/inference.h"
#include "bn/learn.h"
#include "bn/parameter_learning.h"
#include "bn/score.h"
#include "bn/structure_learning.h"
#include "util/random.h"

namespace themis::bn {
namespace {

/// Synthetic data with a strong A -> B dependency and an independent C.
struct DependentData {
  static data::SchemaPtr MakeSchema() {
    auto schema = std::make_shared<data::Schema>();
    schema->AddAttribute("A", {"0", "1"});
    schema->AddAttribute("B", {"0", "1"});
    schema->AddAttribute("C", {"0", "1", "2"});
    return schema;
  }

  data::SchemaPtr schema = MakeSchema();
  data::Table population{schema};
  data::Table sample{schema};
  aggregate::AggregateSet aggregates;

  explicit DependentData(size_t n = 4000, uint64_t seed = 31) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const data::ValueCode a = rng.Bernoulli(0.3) ? 1 : 0;
      const data::ValueCode b =
          rng.Bernoulli(a == 1 ? 0.9 : 0.1) ? 1 : 0;  // B tracks A
      const data::ValueCode c = static_cast<data::ValueCode>(
          rng.UniformInt(0, 2));
      population.AppendRow({a, b, c});
    }
    // Biased sample: mostly A = 1 rows.
    for (size_t r = 0; r < population.num_rows(); ++r) {
      const bool keep = population.Get(r, 0) == 1 ? rng.Bernoulli(0.25)
                                                  : rng.Bernoulli(0.03);
      if (keep) {
        sample.AppendRow({population.Get(r, 0), population.Get(r, 1),
                          population.Get(r, 2)});
      }
    }
    aggregates = aggregate::AggregateSet(schema);
    aggregates.Add(aggregate::ComputeAggregate(population, {0, 1}));
    aggregates.Add(aggregate::ComputeAggregate(population, {0}));
  }
};

TEST(ScoreTest, SampleSourceAlwaysHasSupport) {
  DependentData d;
  SampleScoreSource source(&d.sample);
  EXPECT_TRUE(source.HasSupport({0, 1, 2}));
  EXPECT_DOUBLE_EQ(source.total(), d.sample.TotalWeight());
}

TEST(ScoreTest, AggregateSourceSupportFollowsGamma) {
  DependentData d;
  AggregateScoreSource source(&d.aggregates);
  EXPECT_TRUE(source.HasSupport({0, 1}));
  EXPECT_TRUE(source.HasSupport({1}));
  EXPECT_FALSE(source.HasSupport({1, 2}));
  EXPECT_DOUBLE_EQ(source.total(), d.population.num_rows());
}

TEST(ScoreTest, DependentEdgeScoresAboveIndependence) {
  DependentData d;
  SampleScoreSource source(&d.population);
  auto with_edge = FamilyBicScore(source, *d.schema, 1, {0});
  auto without_edge = FamilyBicScore(source, *d.schema, 1, {});
  ASSERT_TRUE(with_edge.ok() && without_edge.ok());
  EXPECT_GT(*with_edge, *without_edge);
}

TEST(ScoreTest, IndependentEdgePenalized) {
  DependentData d;
  SampleScoreSource source(&d.population);
  auto with_edge = FamilyBicScore(source, *d.schema, 2, {0});
  auto without_edge = FamilyBicScore(source, *d.schema, 2, {});
  ASSERT_TRUE(with_edge.ok() && without_edge.ok());
  EXPECT_LT(*with_edge, *without_edge);  // BIC penalty dominates
}

TEST(ScoreTest, UnsupportedFamilyReportsNotFound) {
  DependentData d;
  AggregateScoreSource source(&d.aggregates);
  EXPECT_FALSE(FamilyBicScore(source, *d.schema, 2, {1}).ok());
}

TEST(StructureLearningTest, FindsTheDependentEdgeFromAggregates) {
  DependentData d;
  StructureLearnOptions options;
  options.source = StructureSource::kAggregatesOnly;
  auto result = LearnStructure(d.schema, nullptr, &d.aggregates, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->dag.HasEdge(0, 1) || result->dag.HasEdge(1, 0));
  // C is uncovered by Γ: must stay disconnected in the Γ-only phase.
  EXPECT_TRUE(result->dag.Parents(2).empty());
  EXPECT_TRUE(result->dag.Children(2).empty());
}

TEST(StructureLearningTest, LocksGammaEdges) {
  DependentData d;
  StructureLearnOptions options;
  options.source = StructureSource::kBoth;
  auto result = LearnStructure(d.schema, &d.sample, &d.aggregates, options);
  ASSERT_TRUE(result.ok());
  // Every locked edge must still be present after phase 2.
  for (const auto& [from, to] : result->locked_edges) {
    EXPECT_TRUE(result->dag.HasEdge(from, to));
  }
  EXPECT_FALSE(result->locked_edges.empty());
}

TEST(StructureLearningTest, TreeRestrictionHolds) {
  DependentData d;
  StructureLearnOptions options;
  options.max_parents = 1;
  auto result = LearnStructure(d.schema, &d.sample, &d.aggregates, options);
  ASSERT_TRUE(result.ok());
  for (size_t v = 0; v < result->dag.num_nodes(); ++v) {
    EXPECT_LE(result->dag.Parents(v).size(), 1u);
  }
}

TEST(StructureLearningTest, MaxParentsTwoAllowsWiderFamilies) {
  DependentData d;
  StructureLearnOptions options;
  options.max_parents = 2;
  auto result = LearnStructure(d.schema, &d.sample, &d.aggregates, options);
  ASSERT_TRUE(result.ok());
  for (size_t v = 0; v < result->dag.num_nodes(); ++v) {
    EXPECT_LE(result->dag.Parents(v).size(), 2u);
  }
}

TEST(StructureLearningTest, RequiresSomeSource) {
  DependentData d;
  StructureLearnOptions options;
  EXPECT_FALSE(LearnStructure(d.schema, nullptr, nullptr, options).ok());
}

TEST(ParameterLearningTest, SampleOnlyMatchesEmpirical) {
  DependentData d;
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  BayesianNetwork network(d.schema, dag);
  ParameterLearnOptions options;
  options.source = ParameterSource::kSampleOnly;
  ASSERT_TRUE(LearnParameters(network, &d.sample, nullptr, options).ok());
  // Pr(B=1 | A=1) empirical from the sample.
  auto groups = d.sample.GroupWeights({0, 1});
  const double a1 = groups[{1, 0}] + groups[{1, 1}];
  EXPECT_NEAR(network.cpt(1).Prob(1, 1), (groups[{1, 1}] / a1), 1e-9);
  EXPECT_TRUE(network.cpt(1).RowsAreSimplexes());
}

TEST(ParameterLearningTest, AggregateConstraintsAreSatisfied) {
  DependentData d;
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  BayesianNetwork network(d.schema, dag);
  ParameterLearnStats stats;
  ASSERT_TRUE(
      LearnParameters(network, &d.sample, &d.aggregates, {}, &stats).ok());
  EXPECT_GT(stats.constrained_nodes, 0);
  EXPECT_LT(stats.max_violation, 1e-6);
  // The learned model must reproduce the population joint over (A, B)
  // despite the heavily biased sample.
  VariableElimination ve(&network);
  const double n = d.population.num_rows();
  auto truth = d.population.GroupWeights({0, 1});
  for (const auto& [key, count] : truth) {
    auto p = ve.Probability({{0, key[0]}, {1, key[1]}});
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, count / n, 1e-6) << "key " << key[0] << "," << key[1];
  }
}

TEST(ParameterLearningTest, MarginalizedAggregateConstrainsRoot) {
  // Only a 2D aggregate over (A, B) exists; when solving root A it must be
  // marginalized to a direct constraint on Pr(A) (Example 5.1).
  DependentData d;
  aggregate::AggregateSet only2d(d.schema);
  only2d.Add(aggregate::ComputeAggregate(d.population, {0, 1}));
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  BayesianNetwork network(d.schema, dag);
  ASSERT_TRUE(LearnParameters(network, &d.sample, &only2d, {}).ok());
  auto truth = d.population.GroupWeights({0});
  const double n = d.population.num_rows();
  EXPECT_NEAR(network.cpt(0).Prob(0, 1), truth[{1}] / n, 1e-6);
}

TEST(ParameterLearningTest, UnconstrainedNodeUsesClosedForm) {
  DependentData d;
  Dag dag(3);
  BayesianNetwork network(d.schema, dag);
  ParameterLearnStats stats;
  ASSERT_TRUE(
      LearnParameters(network, &d.sample, &d.aggregates, {}, &stats).ok());
  // C has no aggregate: closed-form sample MLE.
  auto c_counts = d.sample.GroupWeights({2});
  const double total = d.sample.TotalWeight();
  for (data::ValueCode c = 0; c < 3; ++c) {
    EXPECT_NEAR(network.cpt(2).Prob(0, c), c_counts[{c}] / total, 1e-9);
  }
}

TEST(LearnBayesNetTest, VariantNames) {
  EXPECT_STREQ(BnVariantName(BnVariant::kSS), "SS");
  EXPECT_STREQ(BnVariantName(BnVariant::kSB), "SB");
  EXPECT_STREQ(BnVariantName(BnVariant::kBS), "BS");
  EXPECT_STREQ(BnVariantName(BnVariant::kBB), "BB");
  EXPECT_STREQ(BnVariantName(BnVariant::kAB), "AB");
}

class LearnVariantTest : public ::testing::TestWithParam<BnVariant> {};

TEST_P(LearnVariantTest, ProducesValidNetwork) {
  DependentData d;
  BnLearnOptions options;
  options.variant = GetParam();
  BnLearnStats stats;
  auto network =
      LearnBayesNet(d.schema, &d.sample, &d.aggregates, options, &stats);
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  for (size_t v = 0; v < network->num_nodes(); ++v) {
    EXPECT_TRUE(network->cpt(v).RowsAreSimplexes()) << "node " << v;
  }
  // Joint normalizes.
  VariableElimination ve(&*network);
  auto marginal = ve.Marginal({0, 1, 2});
  ASSERT_TRUE(marginal.ok());
  EXPECT_NEAR(marginal->TotalMass(), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LearnVariantTest,
                         ::testing::Values(BnVariant::kSS, BnVariant::kSB,
                                           BnVariant::kBS, BnVariant::kBB,
                                           BnVariant::kAB));

TEST(LearnBayesNetTest, AbKeepsUncoveredAttributesUniform) {
  DependentData d;
  BnLearnOptions options;
  options.variant = BnVariant::kAB;
  auto network = LearnBayesNet(d.schema, &d.sample, &d.aggregates, options);
  ASSERT_TRUE(network.ok());
  // C (uncovered by Γ) must be disconnected and uniform.
  EXPECT_TRUE(network->dag().Parents(2).empty());
  for (data::ValueCode c = 0; c < 3; ++c) {
    EXPECT_NEAR(network->cpt(2).Prob(0, c), 1.0 / 3.0, 1e-12);
  }
}

TEST(LearnBayesNetTest, BbBeatsSsUnderBias) {
  // The headline Sec 6.6 effect: with a biased sample, using aggregates
  // for parameters (BB) recovers the population joint better than SS.
  DependentData d;
  auto build = [&](BnVariant variant) {
    BnLearnOptions options;
    options.variant = variant;
    auto network =
        LearnBayesNet(d.schema, &d.sample, &d.aggregates, options);
    THEMIS_CHECK(network.ok());
    return std::move(network).value();
  };
  BayesianNetwork bb = build(BnVariant::kBB);
  BayesianNetwork ss = build(BnVariant::kSS);
  const double n = d.population.num_rows();
  auto truth = d.population.GroupWeights({0, 1});
  double bb_err = 0, ss_err = 0;
  for (const auto& [key, count] : truth) {
    VariableElimination ve_bb(&bb), ve_ss(&ss);
    bn::Evidence ev{{0, key[0]}, {1, key[1]}};
    bb_err += std::abs(*ve_bb.Probability(ev) - count / n);
    ss_err += std::abs(*ve_ss.Probability(ev) - count / n);
  }
  EXPECT_LT(bb_err, ss_err);
}

TEST(LearnBayesNetTest, StatsTimingsPopulated) {
  DependentData d;
  BnLearnStats stats;
  auto network = LearnBayesNet(d.schema, &d.sample, &d.aggregates, {}, &stats);
  ASSERT_TRUE(network.ok());
  EXPECT_GE(stats.structure_seconds, 0.0);
  EXPECT_GE(stats.parameter_seconds, 0.0);
}

}  // namespace
}  // namespace themis::bn
