#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/nnls.h"
#include "linalg/vector_ops.h"
#include "util/random.h"

namespace themis::linalg {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
}

TEST(VectorOpsTest, AxpyScale) {
  Vector x = {1, 1}, y = {2, 3};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
}

TEST(VectorOpsTest, MinMaxAddSubtract) {
  Vector a = {3, -1, 2};
  EXPECT_DOUBLE_EQ(Max(a), 3.0);
  EXPECT_DOUBLE_EQ(Min(a), -1.0);
  Vector s = Subtract(a, {1, 1, 1});
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  Vector p = Add(a, {1, 1, 1});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(MatrixTest, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector y = m.MatVec({1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, TransposeMatVec) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector y = m.TransposeMatVec({1, 1});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix p = m.MatMul(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(p(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(MatrixTest, MatMulKnown) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  Matrix b = Matrix::FromRows({{1}, {2}, {3}});
  Matrix p = a.MatMul(b);
  EXPECT_EQ(p.rows(), 1u);
  EXPECT_EQ(p.cols(), 1u);
  EXPECT_DOUBLE_EQ(p(0, 0), 14.0);
}

TEST(MatrixTest, GramIsAtA) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = a.Gram();
  Matrix expected = a.Transpose().MatMul(a);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, AppendRowGrowsMatrix) {
  Matrix m;
  m.AppendRow({1, 2, 3});
  m.AppendRow({4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(CholeskyTest, FactorAndSolve) {
  // SPD matrix [[4,2],[2,3]].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve({8, 7});  // solution [1.25, 1.5]
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, LogDet) {
  Matrix a = Matrix::FromRows({{4, 0}, {0, 9}});
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(36.0), 1e-12);
}

TEST(LeastSquaresTest, ExactSystem) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  Vector b = {1, 2, 3};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  // Fit y = c to {1, 2, 3}: best c is the mean 2.
  Matrix a = Matrix::FromRows({{1}, {1}, {1}});
  auto x = LeastSquares(a, {1, 2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
}

TEST(LeastSquaresTest, RankDeficientStillSolves) {
  // Duplicate columns: ridge fallback must kick in.
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  auto x = LeastSquares(a, {2, 4, 6});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0] + (*x)[1], 2.0, 1e-3);
}

TEST(NnlsTest, UnconstrainedOptimumIsFeasible) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  auto r = Nnls(a, {2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 2.0, 1e-9);
  EXPECT_NEAR(r->x[1], 3.0, 1e-9);
  EXPECT_NEAR(r->residual_norm, 0.0, 1e-9);
}

TEST(NnlsTest, ClampsNegativeComponent) {
  // Unconstrained solution of x = -1: NNLS must return 0.
  Matrix a = Matrix::FromRows({{1}});
  auto r = Nnls(a, {-1});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->x[0], 0.0);
  EXPECT_NEAR(r->residual_norm, 1.0, 1e-12);
}

TEST(NnlsTest, KktConditionsHold) {
  // Random overdetermined system; verify the KKT conditions:
  // x >= 0, and gradient g = A^T(Ax-b) satisfies g_i >= -tol, with
  // g_i ~ 0 where x_i > 0.
  Rng rng(11);
  Matrix a(20, 6);
  Vector b(20);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 6; ++j) a(i, j) = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 1);
  }
  auto r = Nnls(a, b);
  ASSERT_TRUE(r.ok());
  Vector g = a.TransposeMatVec(Subtract(a.MatVec(r->x), b));
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_GE(r->x[j], 0.0);
    EXPECT_GE(g[j], -1e-6);
    if (r->x[j] > 1e-9) EXPECT_NEAR(g[j], 0.0, 1e-6);
  }
}

TEST(NnlsTest, RecoversNonNegativeGroundTruth) {
  Rng rng(13);
  Matrix a(30, 4);
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 4; ++j) a(i, j) = std::abs(rng.Normal(0, 1));
  }
  Vector truth = {0.5, 0.0, 2.0, 1.0};
  Vector b = a.MatVec(truth);
  auto r = Nnls(a, b);
  ASSERT_TRUE(r.ok());
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(r->x[j], truth[j], 1e-6);
}

TEST(NnlsTest, DimensionMismatchFails) {
  Matrix a(3, 2);
  EXPECT_FALSE(Nnls(a, {1, 2}).ok());
}

TEST(BinaryCsrTest, RowAccessAndMatVec) {
  BinaryCsrMatrix g(4);
  g.AppendRow({0, 1, 3});
  g.AppendRow({2});
  g.AppendRow({});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.nonzeros(), 4u);
  Vector w = {1, 2, 3, 4};
  Vector y = g.MatVec(w);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(g.RowDot(0, w), 7.0);
}

TEST(BinaryCsrTest, MultiplyDense) {
  BinaryCsrMatrix g(3);
  g.AppendRow({0, 2});
  g.AppendRow({1});
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix p = g.MultiplyDense(x);
  EXPECT_DOUBLE_EQ(p(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

/// Property sweep: NNLS solutions are always non-negative and never worse
/// than the zero vector, across random problem sizes.
class NnlsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NnlsPropertyTest, FeasibleAndNoWorseThanZero) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t m = 5 + static_cast<size_t>(rng.UniformInt(0, 20));
  const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 8));
  Matrix a(m, n);
  Vector b(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 2);
  }
  auto r = Nnls(a, b);
  ASSERT_TRUE(r.ok());
  for (double v : r->x) EXPECT_GE(v, 0.0);
  EXPECT_LE(r->residual_norm, Norm2(b) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace themis::linalg
