#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/bucketize.h"
#include "data/csv.h"
#include "data/domain.h"
#include "data/schema.h"
#include "data/table.h"

namespace themis::data {
namespace {

TEST(DomainTest, InternAssignsSequentialCodes) {
  Domain d("state");
  EXPECT_EQ(d.Intern("CA"), 0);
  EXPECT_EQ(d.Intern("NY"), 1);
  EXPECT_EQ(d.Intern("CA"), 0);  // idempotent
  EXPECT_EQ(d.size(), 2u);
}

TEST(DomainTest, FixedDomainLookup) {
  Domain d("m", {"01", "02", "03"});
  EXPECT_EQ(d.size(), 3u);
  auto code = d.Code("02");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 1);
  EXPECT_FALSE(d.Code("04").ok());
  EXPECT_TRUE(d.Contains("03"));
  EXPECT_FALSE(d.Contains("x"));
  EXPECT_EQ(d.Label(2), "03");
}

TEST(SchemaTest, AttributeIndexing) {
  Schema s;
  EXPECT_EQ(s.AddAttribute("a"), 0u);
  EXPECT_EQ(s.AddAttribute("b", {"x", "y"}), 1u);
  EXPECT_EQ(s.num_attributes(), 2u);
  auto idx = s.AttributeIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s.AttributeIndex("zzz").ok());
  EXPECT_EQ(s.AttributeNames(), (std::vector<std::string>{"a", "b"}));
}

SchemaPtr TwoAttrSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddAttribute("x", {"a", "b", "c"});
  schema->AddAttribute("y", {"0", "1"});
  return schema;
}

TEST(TableTest, AppendAndGet) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 1});
  t.AppendRowLabels({"c", "0"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), 0);
  EXPECT_EQ(t.Get(1, 0), 2);
  EXPECT_EQ(t.Get(1, 1), 0);
}

TEST(TableTest, WeightsDefaultToOne) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 0});
  t.AppendRow({1, 1});
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 2.0);
  t.set_weight(0, 5.0);
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 6.0);
  t.FillWeights(2.0);
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 4.0);
}

TEST(TableTest, GroupRowsAndWeights) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 0});
  t.AppendRow({0, 1});
  t.AppendRow({0, 0});
  t.set_weight(2, 3.0);
  auto groups = t.GroupRows({0, 1});
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ((groups[{0, 0}].size()), 2u);
  auto weights = t.GroupWeights({0, 1});
  EXPECT_DOUBLE_EQ((weights[{0, 0}]), 4.0);
  EXPECT_DOUBLE_EQ((weights[{0, 1}]), 1.0);
}

TEST(TableTest, GroupBySubsetOfAttrs) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 0});
  t.AppendRow({1, 0});
  t.AppendRow({0, 1});
  auto groups = t.GroupWeights({1});
  EXPECT_DOUBLE_EQ(groups[{0}], 2.0);
  EXPECT_DOUBLE_EQ(groups[{1}], 1.0);
}

TEST(TableTest, FilterPreservesWeights) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 0});
  t.AppendRow({1, 1});
  t.set_weight(1, 7.0);
  Table f = t.Filter({false, true});
  EXPECT_EQ(f.num_rows(), 1u);
  EXPECT_EQ(f.Get(0, 0), 1);
  EXPECT_DOUBLE_EQ(f.weight(0), 7.0);
}

TEST(TableTest, CloneIsIndependent) {
  Table t(TwoAttrSchema());
  t.AppendRow({0, 0});
  Table c = t.Clone();
  c.set_weight(0, 9.0);
  EXPECT_DOUBLE_EQ(t.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(c.weight(0), 9.0);
}

TEST(BucketizerTest, BucketsAndClamping) {
  EquiWidthBucketizer b(0, 100, 10);
  EXPECT_EQ(b.Bucket(0), 0u);
  EXPECT_EQ(b.Bucket(5), 0u);
  EXPECT_EQ(b.Bucket(10), 1u);
  EXPECT_EQ(b.Bucket(99.9), 9u);
  EXPECT_EQ(b.Bucket(100), 9u);   // clamped
  EXPECT_EQ(b.Bucket(-5), 0u);    // clamped
  EXPECT_EQ(b.Bucket(1e9), 9u);   // clamped
}

TEST(BucketizerTest, LabelsAndMidpoints) {
  EquiWidthBucketizer b(0, 30, 3);
  EXPECT_EQ(b.Label(0), "[0,10)");
  EXPECT_EQ(b.Label(2), "[20,30)");
  EXPECT_DOUBLE_EQ(b.Midpoint(1), 15.0);
  EXPECT_EQ(b.Labels().size(), 3u);
}

TEST(CsvTest, RoundTrip) {
  Table t(TwoAttrSchema());
  t.AppendRowLabels({"a", "1"});
  t.AppendRowLabels({"b", "0"});
  t.set_weight(0, 2.5);
  const std::string path = std::filesystem::temp_directory_path() /
                           "themis_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->schema()->num_attributes(), 2u);
  EXPECT_EQ(loaded->schema()->domain(0).Label(loaded->Get(0, 0)), "a");
  EXPECT_DOUBLE_EQ(loaded->weight(0), 2.5);
  EXPECT_DOUBLE_EQ(loaded->weight(1), 1.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path.csv").ok());
}

TEST(CsvTest, RaggedRowFails) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "themis_csv_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,b,weight\n1,2,1\n1\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace themis::data
