// Unit tests for the SIMD kernel layer: every kernel of every backend
// the host supports is compared against the scalar oracle on adversarial
// inputs — lengths straddling vector widths (0, 1, width-1, width,
// width+1, several widths plus a tail), unaligned heads, all-pass /
// all-fail / sparse match tables, negative and out-of-domain codes, and
// packed keys at maximum shift. Also covers backend selection: name
// parsing, THEMIS_SIMD resolution, capability degradation, and the
// probed cache topology feeding the shard policy.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "simd/simd.h"
#include "util/cpu_topology.h"

namespace themis::simd {
namespace {

/// The backends actually runnable on this host, scalar always included.
std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends = {Backend::kScalar};
  for (const Backend b : {Backend::kSse4, Backend::kAvx2, Backend::kNeon}) {
    if (Supported(b)) backends.push_back(b);
  }
  return backends;
}

/// Lengths that straddle every vector width in use (4 and 8 lanes):
/// empty, single, width +/- 1, and multi-vector with every tail size.
const std::vector<size_t>& AdversarialLengths() {
  static const std::vector<size_t> lengths = {0,  1,  2,  3,  4,  5,  7, 8,
                                              9,  15, 16, 17, 31, 32, 33, 63,
                                              64, 65, 100, 257};
  return lengths;
}

/// Deterministic code column with negative and >= domain_size outliers
/// sprinkled in, so the bounds check of every backend is exercised.
std::vector<int32_t> MakeCodes(size_t n, uint32_t domain_size) {
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 13 == 5) {
      codes[i] = -1 - static_cast<int32_t>(i);  // negative: must fail
    } else if (i % 13 == 9) {
      codes[i] = static_cast<int32_t>(domain_size + i % 7);  // out of domain
    } else {
      codes[i] = static_cast<int32_t>((i * 31 + 7) % domain_size);
    }
  }
  return codes;
}

/// A match table padded by kMatchPadBytes, with poison in the padding so
/// a kernel that honors a padded byte as a match would be caught.
std::vector<uint8_t> MakeMatch(uint32_t domain_size, int variant) {
  std::vector<uint8_t> match(domain_size + kMatchPadBytes, 0);
  for (uint32_t c = 0; c < domain_size; ++c) {
    switch (variant) {
      case 0: match[c] = 1; break;                    // all pass
      case 1: match[c] = 0; break;                    // all fail
      case 2: match[c] = c % 2; break;                // alternating
      default: match[c] = (c % 5 == 3) ? 1 : 0; break;  // sparse
    }
  }
  for (size_t p = 0; p < kMatchPadBytes; ++p) {
    match[domain_size + p] = 0xFF;  // poison: out-of-domain must not pass
  }
  return match;
}

TEST(SimdKernelTest, FilterScanMatchesScalarOnAdversarialInputs) {
  const Kernels& scalar = ScalarKernels();
  constexpr uint32_t kDomain = 23;
  for (const Backend backend : SupportedBackends()) {
    const Kernels& kernels = KernelsFor(backend);
    ASSERT_EQ(kernels.backend, backend);
    for (const size_t n : AdversarialLengths()) {
      const std::vector<int32_t> codes = MakeCodes(n + 11, kDomain);
      for (int variant = 0; variant < 4; ++variant) {
        const std::vector<uint8_t> match = MakeMatch(kDomain, variant);
        // Unaligned head: lo = 3 offsets the vector loop start.
        for (const uint32_t lo : {uint32_t{0}, uint32_t{3}}) {
          const uint32_t hi = lo + static_cast<uint32_t>(n);
          std::vector<uint32_t> expected(n + 1, 0xDEAD);
          std::vector<uint32_t> actual(n + 1, 0xBEEF);
          const size_t expected_n = scalar.FilterScan(
              codes.data(), lo, hi, match.data(), kDomain, expected.data());
          const size_t actual_n = kernels.FilterScan(
              codes.data(), lo, hi, match.data(), kDomain, actual.data());
          ASSERT_EQ(actual_n, expected_n)
              << BackendName(backend) << " n=" << n << " lo=" << lo
              << " variant=" << variant;
          for (size_t i = 0; i < expected_n; ++i) {
            ASSERT_EQ(actual[i], expected[i])
                << BackendName(backend) << " n=" << n << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, FilterCompactMatchesScalarOnAdversarialInputs) {
  const Kernels& scalar = ScalarKernels();
  constexpr uint32_t kDomain = 17;
  for (const Backend backend : SupportedBackends()) {
    const Kernels& kernels = KernelsFor(backend);
    for (const size_t n : AdversarialLengths()) {
      const std::vector<int32_t> codes = MakeCodes(4 * n + 7, kDomain);
      for (int variant = 0; variant < 4; ++variant) {
        const std::vector<uint8_t> match = MakeMatch(kDomain, variant);
        // Non-contiguous, non-monotonic-stride selection vector.
        std::vector<uint32_t> sel(n);
        for (size_t i = 0; i < n; ++i) {
          sel[i] = static_cast<uint32_t>((i * 3 + 1) % (4 * n + 7));
        }
        std::vector<uint32_t> expected = sel;
        std::vector<uint32_t> actual = sel;
        const size_t expected_n = scalar.FilterCompact(
            codes.data(), match.data(), kDomain, expected.data(), n);
        const size_t actual_n = kernels.FilterCompact(
            codes.data(), match.data(), kDomain, actual.data(), n);
        ASSERT_EQ(actual_n, expected_n)
            << BackendName(backend) << " n=" << n << " variant=" << variant;
        for (size_t i = 0; i < expected_n; ++i) {
          ASSERT_EQ(actual[i], expected[i])
              << BackendName(backend) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, GatherPackMatchesScalarIncludingMaxShift) {
  const Kernels& scalar = ScalarKernels();
  for (const Backend backend : SupportedBackends()) {
    const Kernels& kernels = KernelsFor(backend);
    for (const size_t n : AdversarialLengths()) {
      std::vector<int32_t> col(2 * n + 5);
      for (size_t i = 0; i < col.size(); ++i) {
        // Full unsigned 31-bit range: the widest code a column may hold.
        col[i] = static_cast<int32_t>((i * 2654435761u) & 0x7FFFFFFF);
      }
      std::vector<uint32_t> sel(n);
      for (size_t i = 0; i < n; ++i) {
        sel[i] = static_cast<uint32_t>((i * 7 + 2) % col.size());
      }
      // shift 32 is the max the executor uses for a second 32-bit-wide
      // component; shift 63 pins the top-bit edge.
      for (const uint32_t shift : {0u, 5u, 31u, 32u, 63u}) {
        for (const bool first : {true, false}) {
          std::vector<uint64_t> expected(n + 1, 0x0102030405060708ull);
          std::vector<uint64_t> actual = expected;
          scalar.GatherPack(col.data(), sel.data(), n, shift,
                            expected.data(), first);
          kernels.GatherPack(col.data(), sel.data(), n, shift, actual.data(),
                             first);
          ASSERT_EQ(actual, expected)
              << BackendName(backend) << " n=" << n << " shift=" << shift
              << " first=" << first;
        }
      }
    }
  }
}

TEST(SimdKernelTest, GatherAndTranslateMatchScalar) {
  const Kernels& scalar = ScalarKernels();
  for (const Backend backend : SupportedBackends()) {
    const Kernels& kernels = KernelsFor(backend);
    for (const size_t n : AdversarialLengths()) {
      std::vector<int32_t> col(3 * n + 9);
      std::vector<double> weights(col.size());
      for (size_t i = 0; i < col.size(); ++i) {
        col[i] = static_cast<int32_t>((i * 17 + 3) % 97);
        weights[i] = static_cast<double>(i) * 0.25 + 0.5;
      }
      std::vector<uint32_t> sel(n);
      for (size_t i = 0; i < n; ++i) {
        sel[i] = static_cast<uint32_t>((i * 11 + 4) % col.size());
      }
      std::vector<int32_t> table(97);
      std::vector<double> numeric(97);
      for (size_t i = 0; i < table.size(); ++i) {
        table[i] = static_cast<int32_t>(96 - i);
        numeric[i] = static_cast<double>(i) - 48.0;
      }

      std::vector<int32_t> exp_codes(n + 1, -7), act_codes(n + 1, -7);
      scalar.GatherCodes(col.data(), sel.data(), n, exp_codes.data());
      kernels.GatherCodes(col.data(), sel.data(), n, act_codes.data());
      ASSERT_EQ(act_codes, exp_codes) << BackendName(backend) << " n=" << n;

      std::vector<int32_t> exp_tr(n + 1, -7), act_tr(n + 1, -7);
      scalar.TranslateCodes(exp_codes.data(), table.data(), n, exp_tr.data());
      kernels.TranslateCodes(exp_codes.data(), table.data(), n,
                             act_tr.data());
      ASSERT_EQ(act_tr, exp_tr) << BackendName(backend) << " n=" << n;

      std::vector<double> exp_w(n + 1, -1.0), act_w(n + 1, -1.0);
      scalar.GatherDoubles(weights.data(), sel.data(), n, exp_w.data());
      kernels.GatherDoubles(weights.data(), sel.data(), n, act_w.data());
      ASSERT_EQ(act_w, exp_w) << BackendName(backend) << " n=" << n;

      std::vector<double> exp_v(n + 1, -1.0), act_v(n + 1, -1.0);
      scalar.GatherNumeric(col.data(), sel.data(), numeric.data(), n,
                           exp_v.data());
      kernels.GatherNumeric(col.data(), sel.data(), numeric.data(), n,
                            act_v.data());
      ASSERT_EQ(act_v, exp_v) << BackendName(backend) << " n=" << n;
    }
  }
}

TEST(SimdDispatchTest, ParseBackendNamesAndAuto) {
  bool ok = false;
  EXPECT_EQ(ParseBackend("scalar", &ok), Backend::kScalar);
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend("SSE4", &ok), Backend::kSse4);
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend("Avx2", &ok), Backend::kAvx2);
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend("neon", &ok), Backend::kNeon);
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend("auto", &ok), BestSupported());
  EXPECT_TRUE(ok);
  // Empty and unset mean "auto": recognized defaults, not errors.
  EXPECT_EQ(ParseBackend("", &ok), BestSupported());
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend(nullptr, &ok), BestSupported());
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseBackend("quantum", &ok), BestSupported());
  EXPECT_FALSE(ok);
}

TEST(SimdDispatchTest, KernelsForDegradesToSupportedBackend) {
  // Whatever is requested, the returned table must be executable here and
  // the degradation order never skips past a supported backend.
  for (const Backend requested :
       {Backend::kScalar, Backend::kSse4, Backend::kAvx2, Backend::kNeon}) {
    const Kernels& kernels = KernelsFor(requested);
    EXPECT_TRUE(Supported(kernels.backend)) << BackendName(requested);
    if (Supported(requested)) {
      EXPECT_EQ(kernels.backend, requested);
    }
  }
  EXPECT_TRUE(Supported(Backend::kScalar));
  EXPECT_TRUE(Supported(BestSupported()));
  EXPECT_EQ(KernelsFor(Backend::kScalar).backend, Backend::kScalar);
}

TEST(SimdDispatchTest, FromEnvHonorsOverrideAndDefaultsToAuto) {
  const char* prev = std::getenv("THEMIS_SIMD");
  const std::string saved = prev ? prev : "";

  setenv("THEMIS_SIMD", "scalar", 1);
  EXPECT_EQ(FromEnv(), Backend::kScalar);
  setenv("THEMIS_SIMD", "auto", 1);
  EXPECT_EQ(FromEnv(), BestSupported());
  unsetenv("THEMIS_SIMD");
  EXPECT_EQ(FromEnv(), BestSupported());
  // An unsupported request degrades rather than failing; on any host the
  // result must still be executable.
  setenv("THEMIS_SIMD", "avx2", 1);
  EXPECT_TRUE(Supported(FromEnv()));
  setenv("THEMIS_SIMD", "neon", 1);
  EXPECT_TRUE(Supported(FromEnv()));

  if (prev) {
    setenv("THEMIS_SIMD", saved.c_str(), 1);
  } else {
    unsetenv("THEMIS_SIMD");
  }
}

TEST(SimdDispatchTest, BackendNamesAreStable) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kSse4), "sse4");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
  EXPECT_STREQ(BackendName(Backend::kNeon), "neon");
}

TEST(CpuTopologyTest, ParseCacheSizeToBytes) {
  using util::ParseCacheSizeToBytes;
  EXPECT_EQ(ParseCacheSizeToBytes("48K"), 48u * 1024);
  EXPECT_EQ(ParseCacheSizeToBytes("2048K"), 2048u * 1024);
  EXPECT_EQ(ParseCacheSizeToBytes("12M"), 12u * 1024 * 1024);
  EXPECT_EQ(ParseCacheSizeToBytes("1G"), 1024u * 1024 * 1024);
  EXPECT_EQ(ParseCacheSizeToBytes("131072"), 131072u);
  EXPECT_EQ(ParseCacheSizeToBytes("48k"), 48u * 1024);
  EXPECT_EQ(ParseCacheSizeToBytes(""), 0u);
  EXPECT_EQ(ParseCacheSizeToBytes("K"), 0u);
  EXPECT_EQ(ParseCacheSizeToBytes("12X"), 0u);
  EXPECT_EQ(ParseCacheSizeToBytes("12K extra"), 0u);
}

TEST(CpuTopologyTest, ShardTargetBytesPolicy) {
  using util::CpuTopology;
  using util::kFallbackShardTargetBytes;

  CpuTopology topo;  // nothing probed
  EXPECT_EQ(topo.ShardTargetBytes(), kFallbackShardTargetBytes);

  topo.l2_bytes = 1024 * 1024;  // half-L2 policy
  EXPECT_EQ(topo.ShardTargetBytes(), 512u * 1024);

  topo.l2_bytes = 64 * 1024;  // tiny L2 clamps up to the floor
  EXPECT_EQ(topo.ShardTargetBytes(), kFallbackShardTargetBytes);

  topo.l2_bytes = 64 * 1024 * 1024;  // huge L2 clamps down to 2 MiB
  EXPECT_EQ(topo.ShardTargetBytes(), 2u * 1024 * 1024);

  topo.l2_bytes = 0;
  topo.l1d_bytes = 48 * 1024;  // L1-only probe: 8x L1d
  EXPECT_EQ(topo.ShardTargetBytes(), 384u * 1024);
}

TEST(CpuTopologyTest, HostProbeIsCachedAndSane) {
  const util::CpuTopology& host = util::CpuTopology::Host();
  EXPECT_EQ(&host, &util::CpuTopology::Host());  // same cached instance
  EXPECT_GE(host.num_cpus, 1u);
  EXPECT_GT(host.cache_line_bytes, 0u);
  EXPECT_GE(host.ShardTargetBytes(), util::kFallbackShardTargetBytes);
  EXPECT_LE(host.ShardTargetBytes(), 2u * 1024 * 1024);
  EXPECT_FALSE(host.ToString().empty());
  if (host.probed) {
    EXPECT_TRUE(host.l1d_bytes > 0 || host.l2_bytes > 0 ||
                host.l3_bytes > 0);
  }
}

}  // namespace
}  // namespace themis::simd
