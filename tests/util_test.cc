#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace themis {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotConverged,
        StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  THEMIS_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(bad.ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  ab \t\n"), "ab");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUPS", "group"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, CsvEscapePassesPlainFields) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(StringUtilTest, CsvEscapeQuotesSpecials) {
  EXPECT_EQ(CsvEscape("[0,30)"), "\"[0,30)\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(StringUtilTest, SplitCsvLineBasics) {
  auto fields = SplitCsvLine("a,b,,c");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[2], "");
}

TEST(StringUtilTest, SplitCsvLineQuoted) {
  auto fields = SplitCsvLine("\"[0,30)\",x,\"a\"\"b\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "[0,30)");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "a\"b");
}

TEST(StringUtilTest, CsvEscapeRoundTrip) {
  const std::vector<std::string> inputs = {"plain", "[0,30)", "a\"b", "",
                                           "x,y,z"};
  std::string line;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvEscape(inputs[i]);
  }
  EXPECT_EQ(SplitCsvLine(line), inputs);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, CategoricalRespectsZeroWeights) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.Categorical({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(CategoricalSamplerTest, MatchesWeights) {
  Rng rng(3);
  CategoricalSampler sampler({1.0, 3.0});
  int counts[2] = {0, 0};
  for (int i = 0; i < 20000; ++i) counts[sampler.Sample(rng)]++;
  const double frac = static_cast<double>(counts[1]) / 20000.0;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(CategoricalSamplerTest, SingleOutcome) {
  Rng rng(4);
  CategoricalSampler sampler({5.0});
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(RngTest, ZipfSkewsTowardsSmallIndices) {
  Rng rng(5);
  int low = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  EXPECT_GT(low, trials / 2);  // heavy head
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_LT(t.Seconds(), 10.0);
}

}  // namespace
}  // namespace themis
