#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/model.h"
#include "core/themis_db.h"

namespace themis::core {
namespace {

/// Fixture reproducing the paper's running example (Sec 2 / Example 3.1):
/// population of 10 flights, biased sample of 4, Γ = {date; (o_st, d_st)}.
class Example31Test : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = std::make_shared<data::Schema>();
    schema_->AddAttribute("date", {"01", "02"});
    schema_->AddAttribute("o_st", {"FL", "NC", "NY"});
    schema_->AddAttribute("d_st", {"FL", "NC", "NY"});
    population_ = std::make_unique<data::Table>(schema_);
    const char* prows[][3] = {
        {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
        {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
        {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
        {"02", "NY", "NY"}};
    for (const auto& r : prows) {
      population_->AppendRowLabels({r[0], r[1], r[2]});
    }
    sample_ = std::make_unique<data::Table>(schema_);
    const char* srows[][3] = {{"01", "FL", "FL"},
                              {"01", "FL", "FL"},
                              {"02", "NC", "NY"},
                              {"01", "NY", "NC"}};
    for (const auto& r : srows) sample_->AppendRowLabels({r[0], r[1], r[2]});
    aggregates_ = aggregate::AggregateSet(schema_);
    aggregates_.Add(aggregate::ComputeAggregate(*population_, {0}));
    aggregates_.Add(aggregate::ComputeAggregate(*population_, {1, 2}));
  }

  ThemisOptions FastOptions() const {
    ThemisOptions options;
    options.bn_group_by_samples = 5;
    options.bn_sample_rows = 50;
    return options;
  }

  data::SchemaPtr schema_;
  std::unique_ptr<data::Table> population_;
  std::unique_ptr<data::Table> sample_;
  aggregate::AggregateSet aggregates_;
};

TEST_F(Example31Test, BuildInfersPopulationSize) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_DOUBLE_EQ(model->population_size(), 10.0);
  EXPECT_NE(model->network(), nullptr);
  EXPECT_EQ(model->bn_samples().size(), 5u);
}

TEST_F(Example31Test, ExplicitPopulationSizeWins) {
  ThemisOptions options = FastOptions();
  options.population_size = 42;
  auto model = ThemisModel::Build(sample_->Clone(), aggregates_, options);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->population_size(), 42.0);
}

TEST_F(Example31Test, EmptySampleRejected) {
  data::Table empty(schema_);
  EXPECT_FALSE(ThemisModel::Build(std::move(empty), aggregates_, {}).ok());
}

TEST_F(Example31Test, HybridUsesSampleForPresentTuples) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model);
  // (FL, FL) is in the sample; IPF weight must hit the aggregate count 2.
  auto estimate = evaluator.PointEstimate({1, 2}, {0, 0});
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-6);
  EXPECT_TRUE(evaluator.SampleContains({1, 2}, {0, 0}));
}

TEST_F(Example31Test, HybridUsesBnForMissingTuples) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model);
  // (FL, NY) exists in P (count 1) but not in S: must be answered by the
  // BN, and the (o_st, d_st) aggregate pins it exactly.
  EXPECT_FALSE(evaluator.SampleContains({1, 2}, {0, 2}));
  auto hybrid = evaluator.PointEstimate({1, 2}, {0, 2});
  ASSERT_TRUE(hybrid.ok());
  EXPECT_NEAR(*hybrid, 1.0, 1e-5);
  // Sample-only answer for the same tuple is 0 (the failure hybrid fixes).
  auto sample_only =
      evaluator.PointEstimate({1, 2}, {0, 2}, AnswerMode::kSampleOnly);
  ASSERT_TRUE(sample_only.ok());
  EXPECT_DOUBLE_EQ(*sample_only, 0.0);
}

TEST_F(Example31Test, ModesDisagreeOnlyWhereExpected) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model);
  // For an in-sample tuple hybrid == sample-only.
  auto h = evaluator.PointEstimate({1, 2}, {1, 2});
  auto s = evaluator.PointEstimate({1, 2}, {1, 2}, AnswerMode::kSampleOnly);
  ASSERT_TRUE(h.ok() && s.ok());
  EXPECT_DOUBLE_EQ(*h, *s);
}

TEST_F(Example31Test, GroupByUnionsBnOnlyGroups) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model, "flights");
  auto result = evaluator.Query(
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st");
  ASSERT_TRUE(result.ok());
  // The sample only has 3 distinct (o, d) pairs; the population has 7.
  // Hybrid must return more groups than the sample alone.
  auto sample_result = evaluator.Query(
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
      AnswerMode::kSampleOnly);
  ASSERT_TRUE(sample_result.ok());
  EXPECT_EQ(sample_result->rows.size(), 3u);
  EXPECT_GT(result->rows.size(), sample_result->rows.size());
}

TEST_F(Example31Test, DisabledBnStillAnswers) {
  ThemisOptions options = FastOptions();
  options.enable_bn = false;
  auto model = ThemisModel::Build(sample_->Clone(), aggregates_, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->network(), nullptr);
  HybridEvaluator evaluator(&*model);
  auto estimate = evaluator.PointEstimate({1, 2}, {0, 2});
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 0.0);  // falls back to the sample
}

TEST_F(Example31Test, BuildStatsPopulated) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->build_stats().aggregates_used, 2u);
  EXPECT_GE(model->build_stats().reweight_seconds, 0.0);
}

TEST_F(Example31Test, ThemisDbEndToEnd) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  EXPECT_TRUE(db.built());
  auto count = db.PointQuery({{"o_st", "FL"}, {"d_st", "FL"}});
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(*count, 2.0, 1e-6);
  auto missing = db.PointQuery({{"o_st", "FL"}, {"d_st", "NY"}});
  ASSERT_TRUE(missing.ok());
  EXPECT_NEAR(*missing, 1.0, 1e-5);
  auto sql_result =
      db.Query("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st");
  ASSERT_TRUE(sql_result.ok());
  EXPECT_EQ(sql_result->rows.size(), 3u);
}

TEST_F(Example31Test, ThemisDbLifecycleErrors) {
  ThemisDb db(FastOptions());
  EXPECT_FALSE(db.Build().ok());  // no sample yet
  EXPECT_FALSE(db.Query("SELECT COUNT(*) FROM flights").ok());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  // A second relation under a fresh name is welcome now; re-registering a
  // taken name is the error.
  ASSERT_TRUE(db.InsertSample("again", sample_->Clone()).ok());
  EXPECT_EQ(db.InsertSample("flights", sample_->Clone()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.InsertAggregate("wrong_table", {}).code(),
            StatusCode::kNotFound);
  aggregate::AggregateSpec bad;
  bad.attrs = {99};
  EXPECT_FALSE(db.InsertAggregate("flights", bad).ok());
  // Registered but unbuilt relations answer with FailedPrecondition;
  // unknown FROM tables with NotFound.
  EXPECT_EQ(db.Query("SELECT COUNT(*) FROM flights").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Query("SELECT COUNT(*) FROM nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(db.DropRelation("again").ok());
  EXPECT_EQ(db.DropRelation("again").code(), StatusCode::kNotFound);
}

TEST_F(Example31Test, PointQueryUnknownValueReturnsZero) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());
  auto result = db.PointQuery({{"o_st", "ZZ"}});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 0.0);
  EXPECT_FALSE(db.PointQuery({{"nope", "FL"}}).ok());
}

TEST_F(Example31Test, SqlPointQueryRoutesThroughExactInference) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model, "flights");
  // (FL, NY) is absent from the sample: the SQL path must match the exact
  // hybrid point estimate (BN inference), not the sampled group-by answer.
  auto sql_result = evaluator.Query(
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'");
  ASSERT_TRUE(sql_result.ok());
  ASSERT_EQ(sql_result->rows.size(), 1u);
  auto direct = evaluator.PointEstimate({1, 2}, {0, 2});
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(sql_result->rows[0].values[0], *direct);
  EXPECT_NEAR(sql_result->rows[0].values[0], 1.0, 1e-5);
}

TEST_F(Example31Test, SqlPointQueryUnknownValueIsZero) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model, "flights");
  auto result = evaluator.Query(
      "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->rows[0].values[0], 0.0);
}

TEST_F(Example31Test, NonPointSqlStillUsesGroupByPath) {
  auto model =
      ThemisModel::Build(sample_->Clone(), aggregates_, FastOptions());
  ASSERT_TRUE(model.ok());
  HybridEvaluator evaluator(&*model, "flights");
  // Range predicate disqualifies the point fast-path; must still answer.
  auto result = evaluator.Query(
      "SELECT COUNT(*) FROM flights WHERE date <> '02'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GT(result->rows[0].values[0], 0.0);
}

TEST(ReweightMethodNameTest, AllNamed) {
  EXPECT_STREQ(ReweightMethodName(ReweightMethod::kUniform), "AQP");
  EXPECT_STREQ(ReweightMethodName(ReweightMethod::kLinReg), "LinReg");
  EXPECT_STREQ(ReweightMethodName(ReweightMethod::kIpf), "IPF");
}

}  // namespace
}  // namespace themis::core
