// Tests for the observability layer: the log-bucketed latency histogram
// (bucket round-trip, quantile goldens, exact merge-order invariance,
// concurrent recording), the per-request TraceContext span accounting,
// the bounded worst-K slow-query log, and the Prometheus text builders
// (cumulative monotone buckets, +Inf == count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"

namespace themis::obs {
namespace {

TEST(HistogramTest, BucketIndexRoundTripsRepresentativeValues) {
  // Every value's bucket upper bound must be >= the value (quantiles never
  // under-report) and within the 1/32 relative-error contract.
  std::vector<int64_t> values = {0, 1, 5, 63, 64, 65, 100, 127, 128,
                                 1000, 4095, 4096, 65535, 1 << 20,
                                 (1ll << 31) + 12345, 1ll << 40,
                                 (1ll << 62) - 1};
  for (int64_t v : values) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    const int64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_GE(upper, v) << "bucket under-covers " << v;
    if (v >= 64) {
      // Relative error bound: upper bound within ~1/32 above the value.
      EXPECT_LE(static_cast<double>(upper - v),
                static_cast<double>(v) / 16.0)
          << "bucket too wide at " << v;
    } else {
      EXPECT_EQ(upper, v) << "sub-64 values are exact";
    }
  }
  // Negative values clamp to bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
}

TEST(HistogramTest, BucketUpperBoundsStrictlyIncrease) {
  int64_t prev = -1;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
}

TEST(HistogramTest, QuantileGoldens) {
  Histogram h;
  // 1..100 exact-ish values well below the first log range boundary
  // distortion: use sub-64 values where buckets are exact.
  for (int64_t v = 0; v < 64; ++v) h.Record(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 64u);
  EXPECT_EQ(snap.max, 63);
  // Sub-64 buckets are exact, so quantiles are exact order statistics
  // (rank = max(1, q*count + 0.5), value = rank-th smallest, 1-based).
  EXPECT_EQ(snap.Quantile(0.5), 31);   // rank 32 of 0..63
  EXPECT_EQ(snap.Quantile(0.99), 62);  // rank 63 of 0..63
  EXPECT_EQ(snap.Quantile(1.0), 63);
  EXPECT_EQ(snap.Quantile(0.0), 0);

  // At larger magnitudes the quantile reports the bucket upper bound:
  // within 1/16 above the true value, never below it.
  Histogram big;
  for (int64_t v = 1; v <= 1000; ++v) big.Record(v * 1000);  // 1us..1ms
  const Histogram::Snapshot big_snap = big.TakeSnapshot();
  const int64_t p50 = big_snap.Quantile(0.5);
  EXPECT_GE(p50, 500000);
  EXPECT_LE(p50, 500000 + 500000 / 16);
  const int64_t p99 = big_snap.Quantile(0.99);
  EXPECT_GE(p99, 990000);
  EXPECT_LE(p99, 990000 + 990000 / 16);
  // q=1 reports the exact max, not a bucket bound.
  EXPECT_EQ(big_snap.Quantile(1.0), 1000000);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, MergeIsOrderInvariant) {
  // Three snapshots with different shapes; merging in any order must give
  // bitwise-identical state because everything is integer arithmetic.
  std::mt19937_64 rng(42);
  Histogram a, b, c;
  for (int i = 0; i < 10000; ++i) a.Record(static_cast<int64_t>(rng() % 1000));
  for (int i = 0; i < 5000; ++i) {
    b.Record(static_cast<int64_t>(rng() % 10000000));
  }
  for (int i = 0; i < 100; ++i) {
    c.Record(static_cast<int64_t>(rng() % (1ll << 40)));
  }
  const Histogram::Snapshot sa = a.TakeSnapshot();
  const Histogram::Snapshot sb = b.TakeSnapshot();
  const Histogram::Snapshot sc = c.TakeSnapshot();

  Histogram::Snapshot abc = sa;
  abc.Merge(sb);
  abc.Merge(sc);
  Histogram::Snapshot cba = sc;
  cba.Merge(sb);
  cba.Merge(sa);
  Histogram::Snapshot bac = sb;
  bac.Merge(sa);
  bac.Merge(sc);

  EXPECT_EQ(abc.count, cba.count);
  EXPECT_EQ(abc.sum, cba.sum);
  EXPECT_EQ(abc.max, cba.max);
  EXPECT_EQ(abc.buckets, cba.buckets);
  EXPECT_EQ(abc.buckets, bac.buckets);
  EXPECT_EQ(abc.Quantile(0.99), cba.Quantile(0.99));
  EXPECT_EQ(abc.count, 15100u);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<int64_t>(t) * 1000 + i % 997);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t n : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(TraceContextTest, SpansAccumulatePerStage) {
  TraceContext trace;
  const int64_t t0 = trace.start_ns();
  trace.RecordSpan(Stage::kParse, t0, t0 + 100);
  trace.RecordSpan(Stage::kExecute, t0 + 200, t0 + 1200);
  trace.RecordSpan(Stage::kExecute, t0 + 1300, t0 + 1800);
  EXPECT_EQ(trace.StageCount(Stage::kParse), 1u);
  EXPECT_EQ(trace.StageTotalNs(Stage::kParse), 100);
  EXPECT_EQ(trace.StageCount(Stage::kExecute), 2u);
  EXPECT_EQ(trace.StageTotalNs(Stage::kExecute), 1500);
  EXPECT_EQ(trace.StageCount(Stage::kSerialize), 0u);

  trace.SetSql("SELECT 1");
  trace.SetPlanInfo("flights", "fp123");
  trace.SetStatus("OK");
  const SlowQueryEntry entry = trace.Finish(2000);
  EXPECT_EQ(entry.sql, "SELECT 1");
  EXPECT_EQ(entry.relation, "flights");
  EXPECT_EQ(entry.fingerprint, "fp123");
  EXPECT_EQ(entry.total_ns, 2000);
  const StageSpan& execute =
      entry.stages[static_cast<size_t>(Stage::kExecute)];
  EXPECT_EQ(execute.count, 2u);
  EXPECT_EQ(execute.total_ns, 1500);
  // Relative begin/end: first execute span begins 200ns in, the last ends
  // 1800ns in — what the span-ordering test asserts over the wire.
  EXPECT_EQ(execute.first_begin_rel_ns, 200);
  EXPECT_EQ(execute.last_end_rel_ns, 1800);
  const StageSpan& serialize =
      entry.stages[static_cast<size_t>(Stage::kSerialize)];
  EXPECT_EQ(serialize.count, 0u);
  EXPECT_EQ(serialize.first_begin_rel_ns, -1);
}

TEST(TraceContextTest, ScopedSpanOnNullTraceIsANoop) {
  // Compiles to a pointer check; must not crash and must not record.
  ScopedSpan span(nullptr, Stage::kExecute);
}

TEST(SlowQueryLogTest, KeepsWorstK) {
  SlowQueryLog log(3);
  for (int64_t ms : {5, 1, 9, 3, 7, 2, 8}) {
    SlowQueryEntry entry;
    entry.sql = "q" + std::to_string(ms);
    entry.total_ns = ms * 1000000;
    log.Offer(std::move(entry));
  }
  const std::vector<SlowQueryEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].sql, "q9");
  EXPECT_EQ(snapshot[1].sql, "q8");
  EXPECT_EQ(snapshot[2].sql, "q7");

  // A faster entry than the resident minimum is refused.
  SlowQueryEntry fast;
  fast.total_ns = 1;
  EXPECT_FALSE(log.Offer(std::move(fast)));
  EXPECT_EQ(log.Snapshot().size(), 3u);
}

TEST(SlowQueryLogTest, ZeroCapacityAcceptsNothing) {
  SlowQueryLog log(0);
  SlowQueryEntry entry;
  entry.total_ns = 100;
  EXPECT_FALSE(log.Offer(std::move(entry)));
  EXPECT_TRUE(log.Snapshot().empty());
}

/// Parses "name{...le="X"...} value" lines of one histogram family out of
/// an exposition string; returns (le, value) in file order.
std::vector<std::pair<double, double>> ExtractBuckets(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<double, double>> buckets;
  std::istringstream in(text);
  std::string line;
  const std::string prefix = family + "_bucket{";
  while (std::getline(in, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    const size_t le_pos = line.find("le=\"");
    const size_t le_end = line.find('"', le_pos + 4);
    const std::string le_text = line.substr(le_pos + 4, le_end - le_pos - 4);
    const double le = le_text == "+Inf"
                          ? std::numeric_limits<double>::infinity()
                          : std::stod(le_text);
    const double value = std::stod(line.substr(line.rfind(' ') + 1));
    buckets.emplace_back(le, value);
  }
  return buckets;
}

TEST(PromTest, HistogramExpositionIsCumulativeAndMonotone) {
  Histogram h;
  // Latencies across several ladder rungs: 50us, 3ms, 40ms, 2s.
  h.Record(50000);
  h.Record(3000000);
  h.Record(3000000);
  h.Record(40000000);
  h.Record(2000000000);
  std::string out;
  prom::AppendHeader(&out, "x_seconds", "test", "histogram");
  prom::AppendHistogramNs(&out, "x_seconds", {}, h.TakeSnapshot());

  const auto buckets = ExtractBuckets(out, "x_seconds");
  ASSERT_FALSE(buckets.empty());
  // Monotone non-decreasing cumulative counts, le strictly increasing.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first);
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);
  }
  // +Inf present and equal to the count.
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_EQ(buckets.back().second, 5.0);
  EXPECT_NE(out.find("x_seconds_count 5"), std::string::npos);
  // The 50us sample must be counted at or below the 1e-4 rung — collapse
  // is conservative (never under-counts a latency at its rung).
  for (const auto& [le, value] : buckets) {
    if (le >= 1e-4 - 1e-12) {
      EXPECT_GE(value, 1.0) << "50us sample missing at le=" << le;
      break;
    }
  }
  // Sum in seconds: 0.00005 + 0.003*2 + 0.04 + 2.0.
  const size_t sum_pos = out.find("x_seconds_sum ");
  ASSERT_NE(sum_pos, std::string::npos);
  const double sum = std::stod(out.substr(sum_pos + 14));
  EXPECT_NEAR(sum, 2.04605, 1e-9);
}

TEST(PromTest, LabelsAndEscaping) {
  std::string out;
  prom::AppendHeader(&out, "x_total", "help text", "counter");
  prom::AppendSample(&out, "x_total", {{"relation", "a\"b\\c\nd"}}, 7);
  EXPECT_NE(out.find("# TYPE x_total counter"), std::string::npos);
  EXPECT_NE(out.find("x_total{relation=\"a\\\"b\\\\c\\nd\"} 7"),
            std::string::npos);
}

}  // namespace
}  // namespace themis::obs
