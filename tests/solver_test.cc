#include <gtest/gtest.h>

#include <cmath>

#include "solver/constrained_mle.h"
#include "util/random.h"

namespace themis::solver {
namespace {

TEST(ConstrainedMleTest, UnconstrainedIsEmpiricalMle) {
  ConstrainedMleProblem p;
  p.counts = {3, 1};
  p.groups = {{{0, 1}}};
  ConstrainedMleOptions options;
  options.smoothing = 0;
  auto sol = SolveConstrainedMle(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->theta[0], 0.75, 1e-9);
  EXPECT_NEAR(sol->theta[1], 0.25, 1e-9);
  EXPECT_TRUE(sol->converged);
}

TEST(ConstrainedMleTest, DirectEqualityConstraint) {
  // Root-node style: θ_j pinned by the aggregate regardless of counts.
  ConstrainedMleProblem p;
  p.counts = {9, 1};
  p.groups = {{{0, 1}}};
  p.constraints = {{{{0, 1.0}}, 0.2}, {{{1, 1.0}}, 0.8}};
  auto sol = SolveConstrainedMle(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  EXPECT_NEAR(sol->theta[0], 0.2, 1e-6);
  EXPECT_NEAR(sol->theta[1], 0.8, 1e-6);
}

TEST(ConstrainedMleTest, ZeroCountStateGetsConstrainedMass) {
  // The sample never saw state 2 but the aggregate demands 30% of it —
  // the "no 500-mile flights in S" situation of Sec 4.2.1.
  ConstrainedMleProblem p;
  p.counts = {6, 4, 0};
  p.groups = {{{0, 1, 2}}};
  p.constraints = {{{{2, 1.0}}, 0.3}};
  auto sol = SolveConstrainedMle(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  EXPECT_NEAR(sol->theta[2], 0.3, 1e-6);
  // Remaining mass keeps the empirical 6:4 ratio (I-projection).
  EXPECT_NEAR(sol->theta[0] / sol->theta[1], 1.5, 1e-4);
}

TEST(ConstrainedMleTest, WeightedCrossGroupConstraint) {
  // Two parent configs with known marginals 0.4/0.6; the aggregate pins
  // the child marginal Σ_k m_k θ_{j=0,k} = 0.5.
  ConstrainedMleProblem p;
  p.counts = {1, 1, 1, 1};  // uniform counts
  p.groups = {{{0, 1}}, {{2, 3}}};
  p.constraints = {{{{0, 0.4}, {2, 0.6}}, 0.5}};
  auto sol = SolveConstrainedMle(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  const double got = 0.4 * sol->theta[0] + 0.6 * sol->theta[2];
  EXPECT_NEAR(got, 0.5, 1e-6);
  // Simplexes hold.
  EXPECT_NEAR(sol->theta[0] + sol->theta[1], 1.0, 1e-9);
  EXPECT_NEAR(sol->theta[2] + sol->theta[3], 1.0, 1e-9);
}

TEST(ConstrainedMleTest, InfeasibleReportsNonConvergence) {
  // Two contradicting direct constraints on the same variable.
  ConstrainedMleProblem p;
  p.counts = {1, 1};
  p.groups = {{{0, 1}}};
  p.constraints = {{{{0, 1.0}}, 0.2}, {{{0, 1.0}}, 0.9}};
  ConstrainedMleOptions options;
  options.max_iterations = 100;
  auto sol = SolveConstrainedMle(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->converged);
  EXPECT_GT(sol->max_violation, 0.01);
}

TEST(ConstrainedMleTest, EmptyGroupBecomesUniform) {
  ConstrainedMleProblem p;
  p.counts = {0, 0, 0};
  p.groups = {{{0, 1, 2}}};
  ConstrainedMleOptions options;
  options.smoothing = 0;
  auto sol = SolveConstrainedMle(p, options);
  ASSERT_TRUE(sol.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(sol->theta[i], 1.0 / 3, 1e-9);
}

TEST(ConstrainedMleTest, RejectsVariableInTwoGroups) {
  ConstrainedMleProblem p;
  p.counts = {1, 1};
  p.groups = {{{0, 1}}, {{1}}};
  EXPECT_FALSE(SolveConstrainedMle(p).ok());
}

TEST(ConstrainedMleTest, RejectsUncoveredVariable) {
  ConstrainedMleProblem p;
  p.counts = {1, 1};
  p.groups = {{{0}}};
  EXPECT_FALSE(SolveConstrainedMle(p).ok());
}

TEST(ConstrainedMleTest, RejectsNegativeInputs) {
  ConstrainedMleProblem p;
  p.counts = {-1, 1};
  p.groups = {{{0, 1}}};
  EXPECT_FALSE(SolveConstrainedMle(p).ok());
  p.counts = {1, 1};
  p.constraints = {{{{0, -2.0}}, 0.5}};
  EXPECT_FALSE(SolveConstrainedMle(p).ok());
}

TEST(ConstrainedMleTest, LogLikelihoodReported) {
  ConstrainedMleProblem p;
  p.counts = {2, 2};
  p.groups = {{{0, 1}}};
  ConstrainedMleOptions options;
  options.smoothing = 0;
  auto sol = SolveConstrainedMle(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->log_likelihood, 4.0 * std::log(0.5), 1e-9);
}

/// Property sweep: random feasible problems converge with simplexes intact
/// and likelihood no better than the unconstrained optimum.
class ConstrainedMlePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstrainedMlePropertyTest, FeasibleProblemsConverge) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const size_t num_groups = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
  const size_t group_size = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
  ConstrainedMleProblem p;
  // Ground-truth distribution; constraints derived from it are feasible.
  std::vector<double> truth;
  for (size_t g = 0; g < num_groups; ++g) {
    SimplexGroup group;
    double total = 0;
    std::vector<double> row(group_size);
    for (size_t j = 0; j < group_size; ++j) {
      row[j] = 0.1 + rng.UniformDouble();
      total += row[j];
      group.vars.push_back(g * group_size + j);
      p.counts.push_back(std::floor(10 * rng.UniformDouble()));
    }
    for (double v : row) truth.push_back(v / total);
    p.groups.push_back(std::move(group));
  }
  // One cross-group constraint consistent with the ground truth.
  LinearConstraint c;
  double target = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t var = g * group_size;
    const double coeff = 0.5 + rng.UniformDouble();
    c.terms.emplace_back(var, coeff);
    target += coeff * truth[var];
  }
  c.target = target;
  p.constraints.push_back(c);

  auto sol = SolveConstrainedMle(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged) << "violation " << sol->max_violation;
  for (const auto& group : p.groups) {
    double s = 0;
    for (size_t v : group.vars) {
      EXPECT_GE(sol->theta[v], 0.0);
      s += sol->theta[v];
    }
    EXPECT_NEAR(s, 1.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedMlePropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace themis::solver
