#include <gtest/gtest.h>

#include <set>

#include "stats/freq_table.h"
#include "stats/info.h"
#include "workload/child.h"
#include "workload/experiment.h"
#include "workload/flights.h"
#include "workload/imdb.h"
#include "workload/queries.h"
#include "workload/reuse_baseline.h"
#include "workload/sampler.h"

namespace themis::workload {
namespace {

TEST(FlightsGeneratorTest, SchemaShape) {
  data::Table t = GenerateFlights({5000, 1});
  EXPECT_EQ(t.num_rows(), 5000u);
  ASSERT_EQ(t.schema()->num_attributes(), 5u);
  EXPECT_EQ(t.schema()->attribute_name(FlightsAttrs::kOrigin),
            "origin_state");
  EXPECT_EQ(t.schema()->domain(FlightsAttrs::kDate).size(), 12u);
  EXPECT_EQ(t.schema()->domain(FlightsAttrs::kOrigin).size(), 51u);
  EXPECT_EQ(t.schema()->domain(FlightsAttrs::kElapsed).size(), 20u);
  EXPECT_EQ(t.schema()->domain(FlightsAttrs::kDistance).size(), 15u);
}

TEST(FlightsGeneratorTest, DeterministicPerSeed) {
  data::Table a = GenerateFlights({1000, 9});
  data::Table b = GenerateFlights({1000, 9});
  for (size_t r = 0; r < 50; ++r) {
    for (size_t c = 0; c < 5; ++c) EXPECT_EQ(a.Get(r, c), b.Get(r, c));
  }
}

TEST(FlightsGeneratorTest, OriginSkewTowardsBigStates) {
  data::Table t = GenerateFlights({20000, 2});
  auto counts = t.GroupWeights({FlightsAttrs::kOrigin});
  const auto& domain = t.schema()->domain(FlightsAttrs::kOrigin);
  auto code = [&](const char* s) { return *domain.Code(s); };
  EXPECT_GT(counts[{code("CA")}], counts[{code("WY")}] * 5);
  EXPECT_GT(counts[{code("TX")}], counts[{code("VT")}] * 5);
}

TEST(FlightsGeneratorTest, ElapsedTracksDistance) {
  data::Table t = GenerateFlights({20000, 3});
  stats::FreqTable joint = stats::FreqTable::FromTable(
      t, {FlightsAttrs::kElapsed, FlightsAttrs::kDistance});
  // The correlation the paper blames for LinReg's failures must be strong.
  EXPECT_GT(stats::MutualInformation(joint), 0.8);
}

TEST(ImdbGeneratorTest, SchemaShape) {
  data::Table t = GenerateImdb({3000, 500, 1});
  EXPECT_EQ(t.num_rows(), 3000u);
  ASSERT_EQ(t.schema()->num_attributes(), 8u);
  EXPECT_EQ(t.schema()->domain(ImdbAttrs::kName).size(), 500u);
  EXPECT_EQ(t.schema()->domain(ImdbAttrs::kRating).size(), 10u);
  EXPECT_EQ(t.schema()->domain(ImdbAttrs::kCountry).size(), 3u);
}

TEST(ImdbGeneratorTest, TopRankConcentratesAtHighRatings) {
  data::Table t = GenerateImdb({40000, 500, 2});
  double ranked_high = 0, ranked_low = 0, high = 0, low = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const bool is_high = t.Get(r, ImdbAttrs::kRating) >= 7;  // rating >= 8
    const bool ranked = t.Get(r, ImdbAttrs::kTopRank) != 0;
    (is_high ? high : low) += 1;
    if (ranked) (is_high ? ranked_high : ranked_low) += 1;
  }
  EXPECT_GT(ranked_high / high, 5 * (ranked_low / low));
}

TEST(ChildGeneratorTest, MatchesNetworkSchema) {
  data::Table t = GenerateChild({2000, 7, 3});
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_EQ(t.schema()->num_attributes(), 20u);
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 2000.0);
}

TEST(SamplerTest, UniformSampleSizeAndWeights) {
  data::Table pop = GenerateFlights({10000, 4});
  Rng rng(1);
  data::Table s = UniformSample(pop, 0.1, rng);
  EXPECT_EQ(s.num_rows(), 1000u);
  EXPECT_DOUBLE_EQ(s.TotalWeight(), 1000.0);  // weights start at 1
}

TEST(SamplerTest, BiasedSampleComposition) {
  data::Table pop = GenerateFlights({20000, 5});
  Rng rng(2);
  SelectionCriterion june{FlightsAttrs::kDate, {"06"}};
  auto s = BiasedSample(pop, 0.1, 0.9, june, rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 2000u);
  const auto& domain = s->schema()->domain(FlightsAttrs::kDate);
  double june_rows = 0;
  for (size_t r = 0; r < s->num_rows(); ++r) {
    if (domain.Label(s->Get(r, FlightsAttrs::kDate)) == "06") ++june_rows;
  }
  EXPECT_NEAR(june_rows / 2000.0, 0.9, 0.02);
}

TEST(SamplerTest, FullBiasExcludesNonMatching) {
  data::Table pop = GenerateFlights({20000, 6});
  Rng rng(3);
  SelectionCriterion corners{FlightsAttrs::kOrigin, {"CA", "NY", "FL", "WA"}};
  auto s = BiasedSample(pop, 0.1, 1.0, corners, rng);
  ASSERT_TRUE(s.ok());
  const auto& domain = s->schema()->domain(FlightsAttrs::kOrigin);
  std::set<std::string> allowed = {"CA", "NY", "FL", "WA"};
  for (size_t r = 0; r < s->num_rows(); ++r) {
    EXPECT_TRUE(
        allowed.count(domain.Label(s->Get(r, FlightsAttrs::kOrigin))));
  }
}

TEST(SamplerTest, NamedSamplesResolve) {
  data::Table fpop = GenerateFlights({5000, 7});
  for (const char* name : {"Unif", "June", "SCorners", "Corners"}) {
    EXPECT_TRUE(MakeFlightsSample(fpop, name, 0.1, 1).ok()) << name;
  }
  EXPECT_FALSE(MakeFlightsSample(fpop, "Nope", 0.1, 1).ok());
  data::Table ipop = GenerateImdb({5000, 200, 8});
  for (const char* name : {"Unif", "GB", "SR159", "R159"}) {
    EXPECT_TRUE(MakeImdbSample(ipop, name, 0.1, 1).ok()) << name;
  }
  EXPECT_FALSE(MakeImdbSample(ipop, "Nope", 0.1, 1).ok());
}

TEST(SamplerTest, BadParametersRejected) {
  data::Table pop = GenerateFlights({1000, 8});
  Rng rng(1);
  SelectionCriterion c{FlightsAttrs::kDate, {"06"}};
  EXPECT_FALSE(BiasedSample(pop, 0.0, 0.9, c, rng).ok());
  EXPECT_FALSE(BiasedSample(pop, 0.1, 1.5, c, rng).ok());
  SelectionCriterion bad{FlightsAttrs::kDate, {"13"}};
  EXPECT_FALSE(BiasedSample(pop, 0.1, 0.9, bad, rng).ok());
}

TEST(QueriesTest, HeavyHittersHaveLargerCounts) {
  data::Table pop = GenerateFlights({20000, 9});
  Rng rng(4);
  auto heavy = MakePointQueries(
      pop, {FlightsAttrs::kOrigin, FlightsAttrs::kDate},
      HitterClass::kHeavy, 50, rng);
  auto light = MakePointQueries(
      pop, {FlightsAttrs::kOrigin, FlightsAttrs::kDate},
      HitterClass::kLight, 50, rng);
  ASSERT_EQ(heavy.size(), 50u);
  ASSERT_EQ(light.size(), 50u);
  double heavy_min = 1e18, light_max = 0;
  for (const auto& q : heavy) heavy_min = std::min(heavy_min, q.true_count);
  for (const auto& q : light) light_max = std::max(light_max, q.true_count);
  EXPECT_GE(heavy_min, light_max);
}

TEST(QueriesTest, TrueCountsMatchPopulation) {
  data::Table pop = GenerateFlights({5000, 10});
  Rng rng(5);
  auto queries = MakePointQueries(pop, {FlightsAttrs::kOrigin},
                                  HitterClass::kRandom, 20, rng);
  for (const auto& q : queries) {
    auto groups = pop.GroupWeights(q.attrs);
    EXPECT_DOUBLE_EQ(groups[q.values], q.true_count);
    EXPECT_GT(q.true_count, 0.0);  // existing values only
  }
}

TEST(QueriesTest, MixedDimensionsWithinRange) {
  data::Table pop = GenerateFlights({5000, 11});
  Rng rng(6);
  auto queries =
      MakeMixedPointQueries(pop, 2, 4, HitterClass::kRandom, 30, rng);
  ASSERT_EQ(queries.size(), 30u);
  for (const auto& q : queries) {
    EXPECT_GE(q.attrs.size(), 2u);
    EXPECT_LE(q.attrs.size(), 4u);
  }
}

TEST(AllSubsetsTest, CountsAreBinomial) {
  std::vector<size_t> attrs = {0, 1, 2, 3, 4};
  EXPECT_EQ(AllSubsets(attrs, 1).size(), 5u);
  EXPECT_EQ(AllSubsets(attrs, 2).size(), 10u);
  EXPECT_EQ(AllSubsets(attrs, 3).size(), 10u);
  EXPECT_EQ(AllSubsets(attrs, 5).size(), 1u);
  EXPECT_TRUE(AllSubsets(attrs, 6).empty());
  // Paper: 26 attribute sets of size 2..5 over the 5 Flights attributes.
  size_t total = 0;
  for (size_t d = 2; d <= 5; ++d) total += AllSubsets(attrs, d).size();
  EXPECT_EQ(total, 26u);
}

TEST(ReuseBaselineTest, UsesKnownMarginalWhenAvailable) {
  data::Table pop = GenerateFlights({20000, 12});
  auto sample = MakeFlightsSample(pop, "Corners", 0.1, 13);
  ASSERT_TRUE(sample.ok());
  aggregate::AggregateSet aggs(pop.schema());
  aggs.Add(aggregate::ComputeAggregate(pop, {FlightsAttrs::kOrigin}));

  ReuseBaseline baseline(&*sample, &aggs, pop.num_rows());
  auto est = baseline.GroupByPair(FlightsAttrs::kOrigin,
                                  FlightsAttrs::kDest);
  ASSERT_TRUE(est.ok());
  // Marginal over O implied by the estimate must match the aggregate for
  // origins present in the sample (Pr(A) is reused, conditionals sum to 1).
  auto truth_o = pop.GroupWeights({FlightsAttrs::kOrigin});
  std::unordered_map<data::ValueCode, double> est_o;
  for (const auto& [key, v] : *est) est_o[key[0]] += v;
  const auto& domain = pop.schema()->domain(FlightsAttrs::kOrigin);
  for (const char* state : {"CA", "NY", "FL", "WA"}) {
    const data::ValueCode code = *domain.Code(state);
    EXPECT_NEAR(est_o[code], truth_o[{code}], truth_o[{code}] * 0.01 + 1e-9);
  }
}

TEST(ReuseBaselineTest, NoPriorFallsBackToSample) {
  data::Table pop = GenerateFlights({10000, 14});
  Rng rng(15);
  data::Table sample = UniformSample(pop, 0.1, rng);
  ReuseBaseline baseline(&sample, nullptr, pop.num_rows());
  auto est = baseline.GroupByPair(FlightsAttrs::kDistance,
                                  FlightsAttrs::kDest);
  ASSERT_TRUE(est.ok());
  // Total estimated mass ≈ n (the sample joint scaled uniformly).
  double total = 0;
  for (const auto& [k, v] : *est) total += v;
  EXPECT_NEAR(total, pop.num_rows(), pop.num_rows() * 0.01);
}

TEST(MethodSuiteTest, AllMethodsAnswer) {
  data::Table pop = GenerateFlights({8000, 16});
  auto sample = MakeFlightsSample(pop, "SCorners", 0.1, 17);
  ASSERT_TRUE(sample.ok());
  auto aggs = MakeAggregates(
      pop, {{FlightsAttrs::kOrigin}, {FlightsAttrs::kDate},
            {FlightsAttrs::kOrigin, FlightsAttrs::kDest}});
  core::ThemisOptions options;
  options.bn_group_by_samples = 3;
  options.bn_sample_rows = 400;
  auto suite = MethodSuite::Build(*sample, aggs, pop.num_rows(), options);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  Rng rng(18);
  auto queries = MakePointQueries(pop, {FlightsAttrs::kOrigin},
                                  HitterClass::kHeavy, 20, rng);
  for (const std::string& method : MethodSuite::MethodNames()) {
    auto errors = suite->Errors(method, queries);
    ASSERT_TRUE(errors.ok()) << method;
    EXPECT_EQ(errors->size(), queries.size());
  }
  EXPECT_FALSE(suite->Errors("nope", queries).ok());
}

TEST(EnvScaleTest, DefaultsToOne) {
  // THEMIS_SCALE unset in the test environment.
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
}

}  // namespace
}  // namespace themis::workload
