#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/freq_table.h"
#include "stats/info.h"
#include "stats/metrics.h"

namespace themis::stats {
namespace {

data::Table MakeTable() {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("x", {"a", "b"});
  schema->AddAttribute("y", {"0", "1"});
  data::Table t(schema);
  t.AppendRow({0, 0});
  t.AppendRow({0, 1});
  t.AppendRow({1, 0});
  t.AppendRow({1, 1});
  return t;
}

TEST(FreqTableTest, FromTableSumsWeights) {
  data::Table t = MakeTable();
  t.set_weight(0, 3.0);
  FreqTable ft = FreqTable::FromTable(t, {0, 1});
  EXPECT_EQ(ft.num_groups(), 4u);
  EXPECT_DOUBLE_EQ(ft.Mass({0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(ft.Mass({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ft.TotalMass(), 6.0);
  EXPECT_DOUBLE_EQ(ft.Mass({7, 7}), 0.0);
}

TEST(FreqTableTest, NormalizedSumsToOne) {
  FreqTable ft({0});
  ft.Add({0}, 3);
  ft.Add({1}, 1);
  FreqTable n = ft.Normalized();
  EXPECT_DOUBLE_EQ(n.TotalMass(), 1.0);
  EXPECT_DOUBLE_EQ(n.Mass({0}), 0.75);
}

TEST(FreqTableTest, MarginalizeTo) {
  FreqTable ft({2, 5});
  ft.Add({0, 0}, 1);
  ft.Add({0, 1}, 2);
  ft.Add({1, 1}, 3);
  FreqTable m = ft.MarginalizeTo({2});
  EXPECT_DOUBLE_EQ(m.Mass({0}), 3.0);
  EXPECT_DOUBLE_EQ(m.Mass({1}), 3.0);
  FreqTable m5 = ft.MarginalizeTo({5});
  EXPECT_DOUBLE_EQ(m5.Mass({1}), 5.0);
}

TEST(InfoTest, EntropyUniform) {
  FreqTable ft({0});
  ft.Add({0}, 1);
  ft.Add({1}, 1);
  ft.Add({2}, 1);
  ft.Add({3}, 1);
  EXPECT_NEAR(Entropy(ft), std::log(4.0), 1e-12);
}

TEST(InfoTest, EntropyDegenerate) {
  FreqTable ft({0});
  ft.Add({0}, 5);
  EXPECT_NEAR(Entropy(ft), 0.0, 1e-12);
}

TEST(InfoTest, MutualInformationIndependent) {
  // p(x,y) = p(x)p(y) -> MI = 0.
  FreqTable ft({0, 1});
  for (data::ValueCode x = 0; x < 2; ++x) {
    for (data::ValueCode y = 0; y < 3; ++y) {
      ft.Add({x, y}, (x == 0 ? 0.3 : 0.7) * (y == 0 ? 0.5 : 0.25));
    }
  }
  EXPECT_NEAR(MutualInformation(ft), 0.0, 1e-12);
}

TEST(InfoTest, MutualInformationPerfectlyDependent) {
  FreqTable ft({0, 1});
  ft.Add({0, 0}, 0.5);
  ft.Add({1, 1}, 0.5);
  EXPECT_NEAR(MutualInformation(ft), std::log(2.0), 1e-12);
}

TEST(InfoTest, InformationContentThreeWay) {
  // Fully dependent triple: I = 3H - H = 2 log 2.
  FreqTable ft({0, 1, 2});
  ft.Add({0, 0, 0}, 0.5);
  ft.Add({1, 1, 1}, 0.5);
  EXPECT_NEAR(InformationContent(ft), 2.0 * std::log(2.0), 1e-12);
}

TEST(InfoTest, KlDivergenceZeroForEqual) {
  FreqTable p({0});
  p.Add({0}, 2);
  p.Add({1}, 2);
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(InfoTest, KlDivergencePositive) {
  FreqTable p({0}), q({0});
  p.Add({0}, 9);
  p.Add({1}, 1);
  q.Add({0}, 5);
  q.Add({1}, 5);
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(InfoTest, KlDivergenceInfiniteOffSupport) {
  FreqTable p({0}), q({0});
  p.Add({0}, 1);
  p.Add({1}, 1);
  q.Add({0}, 1);
  EXPECT_TRUE(std::isinf(KlDivergence(p, q)));
  EXPECT_TRUE(std::isfinite(KlDivergence(p, q, 1e-6)));
}

TEST(DescriptiveTest, MeanMedianPercentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Median(xs), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 75), 7.5);
}

TEST(DescriptiveTest, SummarizeBoxplot) {
  BoxplotSummary s = Summarize({4, 1, 3, 2, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(DescriptiveTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  BoxplotSummary s = Summarize({});
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(MetricsTest, PercentDifferenceBasics) {
  EXPECT_DOUBLE_EQ(PercentDifference(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(PercentDifference(10, 0), 200.0);   // missed
  EXPECT_DOUBLE_EQ(PercentDifference(0, 10), 200.0);   // phantom
  EXPECT_DOUBLE_EQ(PercentDifference(0, 0), 0.0);
  // 2*|100-50|/150 * 100 = 66.67
  EXPECT_NEAR(PercentDifference(100, 50), 200.0 / 3.0, 1e-9);
}

TEST(MetricsTest, PercentDifferenceSymmetric) {
  EXPECT_DOUBLE_EQ(PercentDifference(3, 7), PercentDifference(7, 3));
}

TEST(MetricsTest, PercentDifferenceBounded) {
  for (double t : {0.0, 0.5, 1.0, 100.0}) {
    for (double e : {0.0, 0.5, 1.0, 100.0}) {
      const double pd = PercentDifference(t, e);
      EXPECT_GE(pd, 0.0);
      EXPECT_LE(pd, kMaxPercentDifference);
    }
  }
}

TEST(MetricsTest, GroupByMissingAndPhantom) {
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> truth{
      {{0}, 10.0}, {{1}, 5.0}};
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> est{
      {{0}, 10.0}, {{2}, 1.0}};  // misses {1}, phantom {2}
  // errors: 0 (exact), 200 (missed), 200 (phantom) -> mean 400/3.
  EXPECT_NEAR(GroupByPercentDifference(truth, est), 400.0 / 3.0, 1e-9);
}

TEST(MetricsTest, GroupByEmptyBoth) {
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> empty;
  EXPECT_DOUBLE_EQ(GroupByPercentDifference(empty, empty), 0.0);
}

}  // namespace
}  // namespace themis::stats
