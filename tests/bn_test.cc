#include <gtest/gtest.h>

#include <cmath>

#include "bn/bayes_net.h"
#include "bn/child_network.h"
#include "bn/cpt.h"
#include "bn/dag.h"
#include "bn/inference.h"

namespace themis::bn {
namespace {

TEST(DagTest, AddRemoveEdges) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
  EXPECT_EQ(dag.num_edges(), 1u);
  EXPECT_FALSE(dag.AddEdge(0, 1).ok());  // duplicate
  ASSERT_TRUE(dag.RemoveEdge(0, 1).ok());
  EXPECT_EQ(dag.num_edges(), 0u);
  EXPECT_FALSE(dag.RemoveEdge(0, 1).ok());  // absent
}

TEST(DagTest, RejectsCycles) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_TRUE(dag.WouldCreateCycle(2, 0));
  EXPECT_FALSE(dag.AddEdge(2, 0).ok());
  EXPECT_FALSE(dag.AddEdge(0, 0).ok());  // self loop
}

TEST(DagTest, ReverseEdge) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.ReverseEdge(0, 1).ok());
  EXPECT_TRUE(dag.HasEdge(1, 0));
  EXPECT_FALSE(dag.HasEdge(0, 1));
}

TEST(DagTest, ReverseRollsBackOnCycle) {
  Dag dag(3);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(2, 1).ok());
  // Reversing 0 -> 1 gives 1 -> 0; with 0 -> 2 -> 1 that's a cycle.
  EXPECT_FALSE(dag.ReverseEdge(0, 1).ok());
  EXPECT_TRUE(dag.HasEdge(0, 1));  // rolled back
}

TEST(DagTest, TopologicalOrder) {
  Dag dag(4);
  ASSERT_TRUE(dag.AddEdge(2, 0).ok());
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
}

TEST(DagTest, AncestorsAndChildren) {
  Dag dag(4);
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_EQ(dag.Ancestors(2), (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(dag.Ancestors(0).empty());
  EXPECT_EQ(dag.Children(0), (std::vector<size_t>{1}));
}

TEST(CptTest, ConfigIndexRoundTrip) {
  Cpt cpt(0, 3, {1, 2}, {2, 4});
  EXPECT_EQ(cpt.num_configs(), 8u);
  for (size_t cfg = 0; cfg < 8; ++cfg) {
    EXPECT_EQ(cpt.ConfigIndex(cpt.DecodeConfig(cfg)), cfg);
  }
}

TEST(CptTest, UniformAndNormalize) {
  Cpt cpt(0, 4, {}, {});
  cpt.FillUniform();
  EXPECT_TRUE(cpt.RowsAreSimplexes());
  EXPECT_DOUBLE_EQ(cpt.Prob(0, 2), 0.25);
  cpt.SetProb(0, 0, 3.0);
  cpt.SetProb(0, 1, 1.0);
  cpt.SetProb(0, 2, 0.0);
  cpt.SetProb(0, 3, 0.0);
  cpt.NormalizeRows();
  EXPECT_DOUBLE_EQ(cpt.Prob(0, 0), 0.75);
  EXPECT_TRUE(cpt.RowsAreSimplexes());
}

TEST(CptTest, NormalizeZeroRowBecomesUniform) {
  Cpt cpt(0, 2, {}, {});
  cpt.NormalizeRows();
  EXPECT_DOUBLE_EQ(cpt.Prob(0, 0), 0.5);
}

TEST(CptTest, FreeParameters) {
  Cpt cpt(0, 3, {1}, {4});
  EXPECT_EQ(cpt.NumFreeParameters(), 8u);  // 4 * (3-1)
}

TEST(CptTest, SampleRespectsDistribution) {
  Cpt cpt(0, 2, {}, {});
  cpt.SetProb(0, 0, 0.9);
  cpt.SetProb(0, 1, 0.1);
  Rng rng(3);
  int zeros = 0;
  for (int i = 0; i < 5000; ++i) {
    if (cpt.Sample(0, rng) == 0) ++zeros;
  }
  EXPECT_NEAR(zeros / 5000.0, 0.9, 0.02);
}

/// A tiny 3-node chain network A -> B -> C over binary domains with known
/// parameters, used by the inference tests.
BayesianNetwork ChainNetwork() {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("A", {"0", "1"});
  schema->AddAttribute("B", {"0", "1"});
  schema->AddAttribute("C", {"0", "1"});
  Dag dag(3);
  THEMIS_CHECK_OK(dag.AddEdge(0, 1));
  THEMIS_CHECK_OK(dag.AddEdge(1, 2));
  BayesianNetwork network(schema, dag);
  // Pr(A=1) = 0.3.
  network.mutable_cpt(0).SetProb(0, 0, 0.7);
  network.mutable_cpt(0).SetProb(0, 1, 0.3);
  // Pr(B=1 | A=0) = 0.2; Pr(B=1 | A=1) = 0.8.
  network.mutable_cpt(1).SetProb(0, 0, 0.8);
  network.mutable_cpt(1).SetProb(0, 1, 0.2);
  network.mutable_cpt(1).SetProb(1, 0, 0.2);
  network.mutable_cpt(1).SetProb(1, 1, 0.8);
  // Pr(C=1 | B=0) = 0.1; Pr(C=1 | B=1) = 0.6.
  network.mutable_cpt(2).SetProb(0, 0, 0.9);
  network.mutable_cpt(2).SetProb(0, 1, 0.1);
  network.mutable_cpt(2).SetProb(1, 0, 0.4);
  network.mutable_cpt(2).SetProb(1, 1, 0.6);
  return network;
}

TEST(BayesNetTest, JointProbabilityIsFactorProduct) {
  BayesianNetwork network = ChainNetwork();
  // Pr(A=1,B=1,C=1) = 0.3 * 0.8 * 0.6.
  EXPECT_NEAR(network.JointProbability({1, 1, 1}), 0.144, 1e-12);
  EXPECT_NEAR(network.JointProbability({0, 0, 0}), 0.7 * 0.8 * 0.9, 1e-12);
}

TEST(BayesNetTest, JointSumsToOne) {
  BayesianNetwork network = ChainNetwork();
  double total = 0;
  for (data::ValueCode a = 0; a < 2; ++a) {
    for (data::ValueCode b = 0; b < 2; ++b) {
      for (data::ValueCode c = 0; c < 2; ++c) {
        total += network.JointProbability({a, b, c});
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BayesNetTest, ForwardSamplingMatchesMarginals) {
  BayesianNetwork network = ChainNetwork();
  Rng rng(17);
  int a1 = 0, b1 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    auto tuple = network.SampleTuple(rng);
    a1 += tuple[0];
    b1 += tuple[1];
  }
  EXPECT_NEAR(a1 / static_cast<double>(trials), 0.3, 0.02);
  // Pr(B=1) = 0.7*0.2 + 0.3*0.8 = 0.38.
  EXPECT_NEAR(b1 / static_cast<double>(trials), 0.38, 0.02);
}

TEST(BayesNetTest, SampleTableWeightsScaleToPopulation) {
  BayesianNetwork network = ChainNetwork();
  Rng rng(5);
  data::Table table = network.SampleTable(100, 5000.0, rng);
  EXPECT_EQ(table.num_rows(), 100u);
  EXPECT_NEAR(table.TotalWeight(), 5000.0, 1e-9);
  EXPECT_DOUBLE_EQ(table.weight(0), 50.0);
}

TEST(InferenceTest, FullEvidenceEqualsJoint) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  auto p = ve.Probability({{0, 1}, {1, 1}, {2, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.144, 1e-12);
}

TEST(InferenceTest, PartialEvidenceMarginalizes) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  // Pr(B=1) = 0.38; Pr(C=1) = 0.62*0.1 + 0.38*0.6 = 0.29.
  auto pb = ve.Probability({{1, 1}});
  ASSERT_TRUE(pb.ok());
  EXPECT_NEAR(*pb, 0.38, 1e-12);
  auto pc = ve.Probability({{2, 1}});
  ASSERT_TRUE(pc.ok());
  EXPECT_NEAR(*pc, 0.29, 1e-12);
}

TEST(InferenceTest, NonAdjacentPair) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  // Pr(A=1, C=1) = 0.3 * (0.8*0.6 + 0.2*0.1) = 0.3*0.5 = 0.15.
  auto p = ve.Probability({{0, 1}, {2, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.15, 1e-12);
}

TEST(InferenceTest, MarginalDistribution) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  auto marginal = ve.Marginal({1});
  ASSERT_TRUE(marginal.ok());
  EXPECT_NEAR(marginal->Mass({1}), 0.38, 1e-12);
  EXPECT_NEAR(marginal->Mass({0}), 0.62, 1e-12);
}

TEST(InferenceTest, ConditionalMarginal) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  auto marginal = ve.Marginal({2}, {{1, 1}});
  ASSERT_TRUE(marginal.ok());
  EXPECT_NEAR(marginal->Mass({1}), 0.6, 1e-12);
}

TEST(InferenceTest, JointMarginalOverTwoTargets) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  auto marginal = ve.Marginal({0, 2});
  ASSERT_TRUE(marginal.ok());
  EXPECT_NEAR(marginal->Mass({1, 1}), 0.15, 1e-12);
  EXPECT_NEAR(marginal->TotalMass(), 1.0, 1e-9);
}

TEST(InferenceTest, RejectsBadEvidence) {
  BayesianNetwork network = ChainNetwork();
  VariableElimination ve(&network);
  EXPECT_FALSE(ve.Probability({{9, 0}}).ok());
  EXPECT_FALSE(ve.Probability({{0, 9}}).ok());
  EXPECT_FALSE(ve.Marginal({0}, {{0, 1}}).ok());  // overlap
}

TEST(ChildNetworkTest, StructureMatchesPublishedShape) {
  BayesianNetwork child = MakeChildNetwork();
  EXPECT_EQ(child.num_nodes(), 20u);
  EXPECT_EQ(child.dag().num_edges(), 25u);
  auto disease = child.schema()->AttributeIndex("Disease");
  auto asphyxia = child.schema()->AttributeIndex("BirthAsphyxia");
  ASSERT_TRUE(disease.ok() && asphyxia.ok());
  EXPECT_TRUE(child.dag().HasEdge(*asphyxia, *disease));
  EXPECT_EQ(child.dag().Children(*disease).size(), 7u);
}

TEST(ChildNetworkTest, CptsAreValidAndDeterministic) {
  BayesianNetwork a = MakeChildNetwork(7);
  BayesianNetwork b = MakeChildNetwork(7);
  for (size_t v = 0; v < a.num_nodes(); ++v) {
    EXPECT_TRUE(a.cpt(v).RowsAreSimplexes());
    EXPECT_EQ(a.cpt(v).flat(), b.cpt(v).flat());
  }
}

TEST(ChildNetworkTest, InferenceRunsOnFullNetwork) {
  BayesianNetwork child = MakeChildNetwork();
  VariableElimination ve(&child);
  auto disease = child.schema()->AttributeIndex("Disease");
  ASSERT_TRUE(disease.ok());
  auto marginal = ve.Marginal({*disease});
  ASSERT_TRUE(marginal.ok());
  EXPECT_NEAR(marginal->TotalMass(), 1.0, 1e-9);
  EXPECT_EQ(marginal->num_groups(), 6u);
}

}  // namespace
}  // namespace themis::bn
