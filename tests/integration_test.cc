#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "workload/experiment.h"
#include "workload/flights.h"
#include "workload/queries.h"
#include "workload/sampler.h"

namespace themis {
namespace {

using workload::FlightsAttrs;

/// Full-pipeline fixture: a flights population, the SCorners biased sample
/// and a Γ with full 1D coverage plus informative 2D aggregates — a scaled
/// version of the paper's main experimental configuration.
class FullPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    population_ = new data::Table(workload::GenerateFlights({40000, 77}));
    auto sample = workload::MakeFlightsSample(*population_, "SCorners", 0.1,
                                              78);
    THEMIS_CHECK(sample.ok());
    sample_ = new data::Table(std::move(sample).value());
    // 2D aggregates first, 1D marginals last: Alg 1 sweeps constraints in
    // order, so when the sparse 2D constraints make the system infeasible
    // the trustworthy 1D marginals still hold exactly at sweep end
    // (standard raking practice).
    std::vector<std::vector<size_t>> sets = {
        {FlightsAttrs::kElapsed, FlightsAttrs::kDistance},
        {FlightsAttrs::kDest, FlightsAttrs::kDistance},
        {FlightsAttrs::kOrigin, FlightsAttrs::kDistance},
        {FlightsAttrs::kDate, FlightsAttrs::kDest},
        {FlightsAttrs::kDate},
        {FlightsAttrs::kOrigin},
        {FlightsAttrs::kDest},
        {FlightsAttrs::kElapsed},
        {FlightsAttrs::kDistance}};
    core::ThemisOptions options;
    options.bn_group_by_samples = 3;
    options.bn_sample_rows = 2000;
    auto suite = workload::MethodSuite::Build(
        *sample_, workload::MakeAggregates(*population_, sets),
        population_->num_rows(), options);
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    suite_ = new workload::MethodSuite(std::move(suite).value());
  }

  static void TearDownTestSuite() {
    delete suite_;
    delete sample_;
    delete population_;
    suite_ = nullptr;
    sample_ = nullptr;
    population_ = nullptr;
  }

  static data::Table* population_;
  static data::Table* sample_;
  static workload::MethodSuite* suite_;
};

data::Table* FullPipelineTest::population_ = nullptr;
data::Table* FullPipelineTest::sample_ = nullptr;
workload::MethodSuite* FullPipelineTest::suite_ = nullptr;

TEST_F(FullPipelineTest, IpfBeatsAqpOnHeavyHitters) {
  // The paper's headline claim (Table 4): large median improvement over
  // uniform reweighting for heavy hitter queries on biased samples.
  Rng rng(1);
  auto queries = workload::MakeMixedPointQueries(
      *population_, 2, 2, workload::HitterClass::kHeavy, 60, rng);
  auto aqp = suite_->Errors("AQP", queries);
  auto ipf = suite_->Errors("IPF", queries);
  ASSERT_TRUE(aqp.ok() && ipf.ok());
  EXPECT_LT(stats::Median(*ipf), 0.6 * stats::Median(*aqp));
}

TEST_F(FullPipelineTest, HybridBeatsReweightingOnLightHitters) {
  // Fig 3's light-hitter panel: reweighting saturates at 200 for tuples
  // missing from the sample; the hybrid's BN fallback does far better.
  Rng rng(2);
  auto queries = workload::MakeMixedPointQueries(
      *population_, 2, 2, workload::HitterClass::kLight, 60, rng);
  auto ipf = suite_->Errors("IPF", queries);
  auto hybrid = suite_->Errors("Hybrid", queries);
  ASSERT_TRUE(ipf.ok() && hybrid.ok());
  EXPECT_LT(stats::Mean(*hybrid), stats::Mean(*ipf));
}

TEST_F(FullPipelineTest, HybridMatchesIpfOnInSampleTuples) {
  Rng rng(3);
  auto queries = workload::MakePointQueries(
      *population_, {FlightsAttrs::kOrigin}, workload::HitterClass::kHeavy,
      20, rng);
  auto ipf = suite_->Errors("IPF", queries);
  auto hybrid = suite_->Errors("Hybrid", queries);
  ASSERT_TRUE(ipf.ok() && hybrid.ok());
  // Heavy 1D hitters are always in the sample: hybrid routes to IPF.
  for (size_t i = 0; i < ipf->size(); ++i) {
    EXPECT_DOUBLE_EQ((*ipf)[i], (*hybrid)[i]);
  }
}

TEST_F(FullPipelineTest, GroupByCountsApproximatePopulation) {
  auto result = suite_->Query(
      "Hybrid",
      "SELECT origin_state, COUNT(*) FROM sample GROUP BY origin_state");
  ASSERT_TRUE(result.ok());
  auto truth = population_->GroupWeights({FlightsAttrs::kOrigin});
  const auto& domain =
      population_->schema()->domain(FlightsAttrs::kOrigin);
  // Heavy states must be close after IPF debiasing, and strictly better
  // than uniform reweighting (the paper's comparative claim).
  auto aqp_result = suite_->Query(
      "AQP",
      "SELECT origin_state, COUNT(*) FROM sample GROUP BY origin_state");
  ASSERT_TRUE(aqp_result.ok());
  auto map = result->ValueMap();
  auto aqp_map = aqp_result->ValueMap();
  for (const char* state : {"CA", "TX", "NY", "FL"}) {
    const double t = truth[{*domain.Code(state)}];
    ASSERT_TRUE(map.count(state)) << state;
    EXPECT_NEAR(map[state], t, 0.25 * t) << state;
    EXPECT_LT(std::abs(map[state] - t), std::abs(aqp_map[state] - t))
        << state;
  }
}

TEST_F(FullPipelineTest, SqlAvgQueryRuns) {
  auto result = suite_->Query(
      "Hybrid",
      "SELECT origin_state, AVG(elapsed_time) FROM sample "
      "WHERE dest_state = 'CA' GROUP BY origin_state");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows.size(), 0u);
  for (const auto& row : result->rows) {
    EXPECT_GT(row.values[0], 0.0);
    EXPECT_LT(row.values[0], 600.0);
  }
}

TEST_F(FullPipelineTest, SelfJoinQueryRuns) {
  auto result = suite_->Query(
      "IPF",
      "SELECT t.origin_state, COUNT(*) FROM sample t, sample s "
      "WHERE t.dest_state = s.origin_state AND t.dest_state IN ('WY') "
      "GROUP BY t.origin_state");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(FullPipelineTest, BnSamplesShareSchemaAndScale) {
  const auto& model = suite_->full_model();
  ASSERT_EQ(model.bn_samples().size(), 3u);
  for (const auto& table : model.bn_samples()) {
    EXPECT_EQ(table.schema(), model.reweighted_sample().schema());
    EXPECT_NEAR(table.TotalWeight(), model.population_size(), 1e-6);
  }
}

TEST_F(FullPipelineTest, ReweightedSampleSumsToPopulation) {
  EXPECT_NEAR(suite_->full_model().reweighted_sample().TotalWeight(),
              suite_->full_model().population_size(),
              0.05 * suite_->full_model().population_size());
}

}  // namespace
}  // namespace themis
