// Tests for the async serving front-end: the line-delimited JSON wire
// protocol, server::QueryServer on the catalog's shared thread pool, and
// server::Client. Proves N concurrent clients receive answers bitwise
// identical to a sequential in-process Query() loop at pool sizes 1/2/hw,
// that batched requests ride the catalog's cross-relation QueryBatch,
// the error mapping over the wire (NotFound / FailedPrecondition /
// InvalidArgument / ResourceExhausted), the STATS verb, admission
// control, and graceful drain-on-shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/themis_db.h"
#include "server/client.h"
#include "server/query_server.h"
#include "server/wire.h"
#include "simd/simd.h"
#include "sql/executor.h"
#include "util/cpu_topology.h"
#include "util/thread_pool.h"

namespace themis::server {
namespace {

using core::AnswerMode;
using core::ThemisDb;
using core::ThemisOptions;

/// The catalog_test fixture's two small relations (flights + shops), plus
/// a third that is registered but never built.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flights_schema_ = std::make_shared<data::Schema>();
    flights_schema_->AddAttribute("date", {"01", "02"});
    flights_schema_->AddAttribute("o_st", {"FL", "NC", "NY"});
    flights_schema_->AddAttribute("d_st", {"FL", "NC", "NY"});
    flights_population_ = std::make_unique<data::Table>(flights_schema_);
    const char* fp[][3] = {
        {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
        {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
        {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
        {"02", "NY", "NY"}};
    for (const auto& r : fp) {
      flights_population_->AppendRowLabels({r[0], r[1], r[2]});
    }
    flights_sample_ = std::make_unique<data::Table>(flights_schema_);
    const char* fs[][3] = {{"01", "FL", "FL"},
                           {"01", "FL", "FL"},
                           {"02", "NC", "NY"},
                           {"01", "NY", "NC"}};
    for (const auto& r : fs) {
      flights_sample_->AppendRowLabels({r[0], r[1], r[2]});
    }

    shops_schema_ = std::make_shared<data::Schema>();
    shops_schema_->AddAttribute("city", {"AA", "BB", "CC"});
    shops_schema_->AddAttribute("kind", {"K1", "K2"});
    shops_population_ = std::make_unique<data::Table>(shops_schema_);
    const char* sp[][2] = {{"AA", "K1"}, {"AA", "K1"}, {"AA", "K2"},
                           {"BB", "K1"}, {"BB", "K2"}, {"BB", "K2"},
                           {"CC", "K1"}, {"CC", "K2"}, {"CC", "K2"},
                           {"CC", "K2"}, {"AA", "K2"}, {"BB", "K1"}};
    for (const auto& r : sp) {
      shops_population_->AppendRowLabels({r[0], r[1]});
    }
    shops_sample_ = std::make_unique<data::Table>(shops_schema_);
    const char* ss[][2] = {
        {"AA", "K1"}, {"BB", "K2"}, {"CC", "K2"}, {"CC", "K2"}, {"AA", "K2"}};
    for (const auto& r : ss) shops_sample_->AppendRowLabels({r[0], r[1]});
  }

  ThemisOptions FastOptions(size_t num_threads = 0) const {
    ThemisOptions options;
    options.bn_group_by_samples = 5;
    options.bn_sample_rows = 50;
    options.num_threads = num_threads;
    return options;
  }

  /// Builds flights + shops and registers (without building) "pending".
  std::unique_ptr<ThemisDb> MakeDb(ThemisOptions options) const {
    auto db = std::make_unique<ThemisDb>(options);
    EXPECT_TRUE(db->InsertSample("flights", flights_sample_->Clone()).ok());
    EXPECT_TRUE(
        db->InsertAggregateFrom("flights", *flights_population_, {"date"})
            .ok());
    EXPECT_TRUE(db->InsertAggregateFrom("flights", *flights_population_,
                                        {"o_st", "d_st"})
                    .ok());
    EXPECT_TRUE(db->InsertSample("shops", shops_sample_->Clone()).ok());
    EXPECT_TRUE(
        db->InsertAggregateFrom("shops", *shops_population_, {"city"}).ok());
    EXPECT_TRUE(db->InsertAggregateFrom("shops", *shops_population_,
                                        {"city", "kind"})
                    .ok());
    EXPECT_TRUE(db->Build("flights").ok());
    EXPECT_TRUE(db->Build("shops").ok());
    EXPECT_TRUE(db->InsertSample("pending", shops_sample_->Clone()).ok());
    return db;
  }

  /// Interleaved cross-relation workload covering point, GROUP BY, and
  /// non-point global aggregates on both relations.
  std::vector<std::string> MixedQueries() const {
    return {
        "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'",
        "SELECT COUNT(*) FROM shops WHERE city = 'AA' AND kind = 'K1'",
        "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
        "SELECT city, kind, COUNT(*) FROM shops GROUP BY city, kind",
        "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
        "SELECT COUNT(*) FROM shops WHERE city = 'QQ'",
        "SELECT date, COUNT(*) FROM flights GROUP BY date",
        "SELECT kind, COUNT(*) FROM shops GROUP BY kind",
        "SELECT COUNT(*) FROM flights WHERE date <> '02'",
        "SELECT COUNT(*) FROM shops WHERE kind <> 'K2'",
    };
  }

  static void ExpectBitwiseEqual(const sql::QueryResult& actual,
                                 const sql::QueryResult& expected,
                                 const std::string& context) {
    EXPECT_EQ(actual.group_names, expected.group_names) << context;
    EXPECT_EQ(actual.value_names, expected.value_names) << context;
    ASSERT_EQ(actual.rows.size(), expected.rows.size()) << context;
    for (size_t i = 0; i < actual.rows.size(); ++i) {
      EXPECT_EQ(actual.rows[i].group, expected.rows[i].group) << context;
      ASSERT_EQ(actual.rows[i].values.size(), expected.rows[i].values.size())
          << context;
      for (size_t j = 0; j < actual.rows[i].values.size(); ++j) {
        // Bitwise double equality, not approximate.
        EXPECT_EQ(actual.rows[i].values[j], expected.rows[i].values[j])
            << context << " row " << i << " value " << j;
      }
    }
  }

  data::SchemaPtr flights_schema_;
  std::unique_ptr<data::Table> flights_population_;
  std::unique_ptr<data::Table> flights_sample_;
  data::SchemaPtr shops_schema_;
  std::unique_ptr<data::Table> shops_population_;
  std::unique_ptr<data::Table> shops_sample_;
};

TEST_F(ServerTest, QueryOverTheWireMatchesInProcessAcrossModes) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (const AnswerMode mode :
       {AnswerMode::kHybrid, AnswerMode::kSampleOnly, AnswerMode::kBnOnly}) {
    for (const std::string& sql : MixedQueries()) {
      auto expected = db->Query(sql, mode);
      ASSERT_TRUE(expected.ok()) << sql;
      auto actual = client->Query(sql, "", mode);
      ASSERT_TRUE(actual.ok()) << sql << ": " << actual.status().ToString();
      ExpectBitwiseEqual(*actual, *expected, sql);
    }
  }
  // Pinning the relation explicitly answers identically for these
  // relations (their names are their SQL table names).
  auto pinned = client->Query(MixedQueries()[0], "flights");
  ASSERT_TRUE(pinned.ok());
  ExpectBitwiseEqual(*pinned, *db->Query(MixedQueries()[0]), "pinned");
  server.Stop();
}

/// The acceptance bar: N concurrent clients, each streaming the mixed
/// cross-relation workload, all bitwise identical to a sequential
/// in-process Query() loop — at pool sizes 1, 2, and hardware.
TEST_F(ServerTest, ConcurrentClientsBitwiseIdenticalAcrossPoolSizes) {
  const std::vector<std::string> sqls = MixedQueries();
  for (const size_t pool_size : {size_t{1}, size_t{2}, size_t{0}}) {
    auto db = MakeDb(FastOptions(pool_size));
    // The sequential in-process baseline, computed before any server
    // traffic exists.
    std::vector<sql::QueryResult> expected;
    for (const std::string& sql : sqls) {
      auto result = db->Query(sql);
      ASSERT_TRUE(result.ok()) << sql;
      expected.push_back(std::move(*result));
    }

    QueryServer server(&db->catalog());
    ASSERT_TRUE(server.Start().ok());
    constexpr size_t kClients = 4;
    constexpr size_t kRounds = 3;  // repeats exercise the warm memo paths
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto client = Client::Connect(server.port());
        if (!client.ok()) {
          failures[c] = client.status().ToString();
          return;
        }
        for (size_t round = 0; round < kRounds; ++round) {
          // Stagger the starting offset so clients interleave relations.
          for (size_t i = 0; i < sqls.size(); ++i) {
            const size_t q = (i + c) % sqls.size();
            auto actual = client->Query(sqls[q]);
            if (!actual.ok()) {
              failures[c] = sqls[q] + ": " + actual.status().ToString();
              return;
            }
            if (actual->rows.size() != expected[q].rows.size()) {
              failures[c] = sqls[q] + ": row count mismatch";
              return;
            }
            for (size_t r = 0; r < actual->rows.size(); ++r) {
              if (actual->rows[r].group != expected[q].rows[r].group ||
                  actual->rows[r].values != expected[q].rows[r].values) {
                failures[c] = sqls[q] + ": bitwise mismatch";
                return;
              }
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (size_t c = 0; c < kClients; ++c) {
      EXPECT_TRUE(failures[c].empty())
          << "pool " << pool_size << " client " << c << ": " << failures[c];
    }
    server.Stop();
  }
}

TEST_F(ServerTest, BatchRequestRidesCrossRelationQueryBatch) {
  auto db = MakeDb(FastOptions(2));
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::vector<std::string> sqls = MixedQueries();
  auto batch = client->QueryBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto expected = db->Query(sqls[i]);
    ASSERT_TRUE(expected.ok());
    ExpectBitwiseEqual((*batch)[i], *expected, sqls[i]);
  }
  // A batch with one bad query fails as a whole, before any execution.
  auto bad = client->QueryBatch({sqls[0], "SELECT COUNT(*) FROM nosuch"});
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  server.Stop();
}

/// The satellite's error-mapping table, each asserted over the wire.
TEST_F(ServerTest, ErrorMappingOverTheWire) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // Unknown relation -> NotFound (both FROM-routed and pinned).
  auto unknown = client->Query("SELECT COUNT(*) FROM nosuch");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("nosuch"), std::string::npos);
  auto pinned = client->Query("SELECT COUNT(*) FROM flights", "nosuch");
  EXPECT_EQ(pinned.status().code(), StatusCode::kNotFound);

  // Registered-but-unbuilt relation -> FailedPrecondition.
  auto unbuilt = client->Query("SELECT COUNT(*) FROM pending");
  EXPECT_EQ(unbuilt.status().code(), StatusCode::kFailedPrecondition);

  // Malformed JSON -> InvalidArgument.
  auto raw = client->RoundTrip("{\"sql\": oops");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("\"InvalidArgument\""), std::string::npos) << *raw;
  // Valid JSON, invalid request shapes -> InvalidArgument.
  auto no_sql = client->RoundTrip("{}");
  ASSERT_TRUE(no_sql.ok());
  EXPECT_NE(no_sql->find("\"InvalidArgument\""), std::string::npos);
  auto bad_mode = client->Query("SELECT COUNT(*) FROM flights");
  ASSERT_TRUE(bad_mode.ok());  // sanity: the connection still works
  auto bad_mode_raw = client->RoundTrip(
      "{\"sql\": \"SELECT COUNT(*) FROM flights\", \"mode\": \"psychic\"}");
  ASSERT_TRUE(bad_mode_raw.ok());
  EXPECT_NE(bad_mode_raw->find("\"InvalidArgument\""), std::string::npos);

  // Bad SQL -> InvalidArgument (the parser's kParseError never crosses
  // the wire).
  auto bad_sql = client->Query("SELEC COUNT(*) FROM flights");
  EXPECT_EQ(bad_sql.status().code(), StatusCode::kInvalidArgument);

  // The session survives every error above and still answers.
  auto alive = client->Query("SELECT date, COUNT(*) FROM flights GROUP BY date");
  EXPECT_TRUE(alive.ok());
  server.Stop();
}

/// Admission control: with max_inflight=1 and the only slot held open by
/// a hook-blocked request, the next query bounces with ResourceExhausted
/// — deterministically, no timing. STATS bypasses admission so the
/// overload stays observable while it is happening.
TEST_F(ServerTest, OverloadRejectsWithResourceExhausted) {
  auto db = MakeDb(FastOptions(1));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  QueryServer::Options options;
  options.max_inflight = 1;
  options.request_hook = [released] { released.wait(); };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  auto holder = Client::Connect(server.port());
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(
      holder->Send("{\"sql\": \"SELECT COUNT(*) FROM flights\"}").ok());
  // Wait until the server has admitted the held request.
  auto observer = Client::Connect(server.port());
  ASSERT_TRUE(observer.ok());
  for (;;) {
    auto stats = observer->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->server.max_inflight, 1u);
    if (stats->server.inflight >= 1) break;
    std::this_thread::yield();
  }

  auto rejected = observer->Query("SELECT COUNT(*) FROM shops");
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  release.set_value();
  auto held = holder->Receive();
  ASSERT_TRUE(held.ok());
  auto decoded = DecodeResultResponse(*held);
  EXPECT_TRUE(decoded.ok()) << *held;

  auto stats = observer->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->server.rejected_overload, 1u);
  EXPECT_EQ(stats->server.served_ok, 1u);
  // After the slot freed, the observer is admitted again.
  EXPECT_TRUE(observer->Query("SELECT COUNT(*) FROM shops").ok());
  server.Stop();
}

TEST_F(ServerTest, StatsVerbExposesLiveCacheCounters) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::string group_by =
      "SELECT date, COUNT(*) FROM flights GROUP BY date";
  ASSERT_TRUE(client->Query(group_by).ok());
  ASSERT_TRUE(client->Query(group_by).ok());  // warm repeat

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->server.served_ok, 2u);
  EXPECT_EQ(stats->server.rejected_overload, 0u);
  EXPECT_GE(stats->server.accepted_connections, 1u);
  EXPECT_GE(stats->server.active_connections, 1u);

  // Same text twice: the first request misses every tier and encodes
  // once; the repeat is served from the response byte cache on the I/O
  // thread, never reaching the result memo (its hit count stays 0).
  EXPECT_EQ(stats->server.response_cache_misses, 1u);
  EXPECT_EQ(stats->server.response_cache_hits, 1u);
  EXPECT_EQ(stats->server.response_cache_entries, 1u);
  EXPECT_GT(stats->server.response_cache_bytes, 0u);
  EXPECT_EQ(stats->server.responses_encoded, 1u);

  ASSERT_EQ(stats->relations.size(), 3u);
  const core::RelationStats& flights = stats->relations.at("flights");
  EXPECT_TRUE(flights.built);
  EXPECT_GE(flights.plan_cache_hits, 1u);
  EXPECT_GE(flights.plan_cache_misses, 1u);
  EXPECT_EQ(flights.result_memo.hits, 0u);
  EXPECT_EQ(flights.result_memo.misses, 1u);
  EXPECT_EQ(flights.result_memo.entries, 1u);
  // The BN-backed GROUP BY ran inference; shops stayed cold; pending is
  // registered but unbuilt.
  EXPECT_TRUE(stats->relations.at("shops").built);
  EXPECT_EQ(stats->relations.at("shops").result_memo.misses, 0u);
  EXPECT_FALSE(stats->relations.at("pending").built);

  // Host capability snapshot round-trips: topology, SIMD backend, and
  // shard target match the in-process probes, and the executor counters
  // carry the active backend plus nonzero kernel-row counts (the GROUP BY
  // above ran the scan pipeline).
  const util::CpuTopology& topo = util::CpuTopology::Host();
  EXPECT_EQ(stats->host.num_cpus, topo.num_cpus);
  EXPECT_EQ(stats->host.l1d_bytes, topo.l1d_bytes);
  EXPECT_EQ(stats->host.l2_bytes, topo.l2_bytes);
  EXPECT_EQ(stats->host.l3_bytes, topo.l3_bytes);
  EXPECT_EQ(stats->host.cache_line_bytes, topo.cache_line_bytes);
  EXPECT_EQ(stats->host.cache_probed, topo.probed);
  EXPECT_EQ(stats->host.simd_backend,
            simd::BackendName(simd::FromEnv()));
  EXPECT_EQ(stats->host.shard_target_bytes, sql::AutoShardTargetBytes());
  EXPECT_EQ(flights.executor.simd_backend, stats->host.simd_backend);
  EXPECT_GT(flights.executor.rows_scanned, 0u);
  server.Stop();
}

/// Stop() with a request still executing: the response is written before
/// the connection closes — in-flight work drains, nothing is dropped.
TEST_F(ServerTest, GracefulShutdownDrainsInflightRequests) {
  auto db = MakeDb(FastOptions(2));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  QueryServer::Options options;
  options.request_hook = [released] { released.wait(); };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  const std::string sql = "SELECT date, COUNT(*) FROM flights GROUP BY date";
  ASSERT_TRUE(client->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (server.counters().inflight < 1) std::this_thread::yield();

  std::thread stopper([&server] { server.Stop(); });
  release.set_value();
  stopper.join();
  EXPECT_FALSE(server.running());

  // The drained response arrived despite the shutdown racing it.
  auto response = client->Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto decoded = DecodeResultResponse(*response);
  ASSERT_TRUE(decoded.ok()) << *response;
  auto expected = db->Query(sql);
  ASSERT_TRUE(expected.ok());
  ExpectBitwiseEqual(*decoded, *expected, "drained");
}

/// Deadline determinism: with one pool thread and one I/O thread, a
/// hook-stalled query whose 1 ms budget lapses while it waits answers
/// kDeadlineExceeded, while the unstalled query pipelined behind it on
/// the same session still succeeds — and the responses arrive in request
/// order. No sleeps on the pass path; the only timed wait is the one
/// that guarantees the deadline has lapsed.
TEST_F(ServerTest, DeadlineExpiredRequestAnswersDeadlineExceeded) {
  auto db = MakeDb(FastOptions(1));  // serial pool: task order is FIFO
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryServer::Options options;
  options.io_threads = 1;
  // One-shot latch: only the first admitted request (the deadline one,
  // by pool FIFO order) stalls; everything behind it runs normally.
  options.request_hook = [released, first] {
    if (first->exchange(false)) released.wait();
  };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  const std::string stalled = "SELECT date, COUNT(*) FROM flights GROUP BY date";
  const std::string quick = "SELECT kind, COUNT(*) FROM shops GROUP BY kind";
  ASSERT_TRUE(
      client->Send("{\"sql\": \"" + stalled + "\", \"deadline_ms\": 1}").ok());
  ASSERT_TRUE(client->Send("{\"sql\": \"" + quick + "\"}").ok());
  while (server.counters().inflight < 1) std::this_thread::yield();
  // The stalled request is parked in the hook; outlive its 1 ms budget,
  // then let it run into the expired token.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.set_value();

  auto response1 = client->Receive();
  ASSERT_TRUE(response1.ok()) << response1.status().ToString();
  auto decoded1 = DecodeResultResponse(*response1);
  EXPECT_EQ(decoded1.status().code(), StatusCode::kDeadlineExceeded)
      << *response1;
  EXPECT_NE(response1->find("\"DeadlineExceeded\""), std::string::npos)
      << *response1;

  // FIFO held: the second response is the second request's, and its
  // missing deadline_ms (with no server default) means no budget at all.
  auto response2 = client->Receive();
  ASSERT_TRUE(response2.ok());
  auto decoded2 = DecodeResultResponse(*response2);
  ASSERT_TRUE(decoded2.ok()) << *response2;
  auto expected = db->Query(quick);
  ASSERT_TRUE(expected.ok());
  ExpectBitwiseEqual(*decoded2, *expected, quick);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->server.served_deadline_exceeded, 1u);
  EXPECT_EQ(stats->server.served_error, 1u);
  EXPECT_EQ(stats->server.served_ok, 1u);
  EXPECT_EQ(stats->server.served_cancelled, 0u);
  server.Stop();
}

/// A client that disconnects mid-query fires the request's cancel token:
/// the abandoned work unwinds as kCancelled (served_cancelled counts it)
/// instead of running to completion. The EOF-processed handshake is
/// deterministic: with one I/O thread, two full STATS round trips after
/// the close guarantee the loop has handled the holder's EPOLLRDHUP.
TEST_F(ServerTest, DisconnectMidQueryCancelsExecution) {
  auto db = MakeDb(FastOptions(1));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryServer::Options options;
  options.io_threads = 1;
  options.request_hook = [released, first] {
    if (first->exchange(false)) released.wait();
  };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  {
    auto holder = Client::Connect(server.port());
    ASSERT_TRUE(holder.ok());
    ASSERT_TRUE(
        holder->Send("{\"sql\": \"SELECT COUNT(*) FROM flights\"}").ok());
    while (server.counters().inflight < 1) std::this_thread::yield();
    // ~holder closes the socket with the request still executing.
  }
  auto observer = Client::Connect(server.port());
  ASSERT_TRUE(observer.ok());
  ASSERT_TRUE(observer->Stats().ok());
  ASSERT_TRUE(observer->Stats().ok());  // EOF definitely processed now
  release.set_value();

  for (;;) {
    auto stats = observer->Stats();
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->server.served_ok, 0u);  // never ran to completion
    if (stats->server.served_cancelled >= 1) {
      EXPECT_EQ(stats->server.served_cancelled, 1u);
      EXPECT_EQ(stats->server.served_error, 1u);
      EXPECT_EQ(stats->server.served_deadline_exceeded, 0u);
      break;
    }
    std::this_thread::yield();
  }
  server.Stop();
}

/// Micro-batching determinism: with the single I/O loop parked by a
/// one-shot loop_hook while one session pipelines four queries, the
/// first drain pass after release parses all four and submits them as
/// ONE batch task (batches_formed == 1, batched_requests == 4) — and
/// the responses come back in request order, bitwise identical to the
/// per-request in-process answers.
TEST_F(ServerTest, PipelinedBurstFormsOneMicroBatch) {
  auto db = MakeDb(FastOptions(2));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryServer::Options options;
  options.io_threads = 1;
  options.loop_hook = [released, first] {
    if (first->exchange(false)) released.wait();
  };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  // The loop is parked before its first epoll_wait: the connection sits
  // in the kernel backlog and all four lines buffer on the socket, so
  // the drain pass after release sees every request at once.
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> sqls = {
      "SELECT date, COUNT(*) FROM flights GROUP BY date",
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
      "SELECT kind, COUNT(*) FROM shops GROUP BY kind",
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'",
  };
  for (const std::string& sql : sqls) {
    ASSERT_TRUE(client->Send("{\"sql\": \"" + sql + "\"}").ok());
  }
  release.set_value();

  for (const std::string& sql : sqls) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto decoded = DecodeResultResponse(*response);
    ASSERT_TRUE(decoded.ok()) << *response;
    auto expected = db->Query(sql);
    ASSERT_TRUE(expected.ok());
    ExpectBitwiseEqual(*decoded, *expected, sql);
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.batches_formed, 1u);
  EXPECT_EQ(counters.batched_requests, 4u);
  EXPECT_EQ(counters.served_ok, 4u);
  server.Stop();
}

/// Requests from two *different* sessions parsed in the same drain pass
/// also coalesce into one micro-batch: batching is per drain pass, not
/// per connection. Both answers stay bitwise identical to the
/// per-request in-process baseline.
TEST_F(ServerTest, CrossSessionDrainFormsOneMicroBatch) {
  auto db = MakeDb(FastOptions(2));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryServer::Options options;
  options.io_threads = 1;
  options.loop_hook = [released, first] {
    if (first->exchange(false)) released.wait();
  };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  // Both connections queue in the backlog while the loop is parked; the
  // release's accept burst adopts both, and their already-buffered
  // requests become readable in the same epoll wakeup.
  auto a = Client::Connect(server.port());
  ASSERT_TRUE(a.ok());
  auto b = Client::Connect(server.port());
  ASSERT_TRUE(b.ok());
  const std::string sql_a = "SELECT date, COUNT(*) FROM flights GROUP BY date";
  const std::string sql_b = "SELECT kind, COUNT(*) FROM shops GROUP BY kind";
  ASSERT_TRUE(a->Send("{\"sql\": \"" + sql_a + "\"}").ok());
  ASSERT_TRUE(b->Send("{\"sql\": \"" + sql_b + "\"}").ok());
  release.set_value();

  auto response_a = a->Receive();
  ASSERT_TRUE(response_a.ok()) << response_a.status().ToString();
  auto decoded_a = DecodeResultResponse(*response_a);
  ASSERT_TRUE(decoded_a.ok()) << *response_a;
  auto response_b = b->Receive();
  ASSERT_TRUE(response_b.ok()) << response_b.status().ToString();
  auto decoded_b = DecodeResultResponse(*response_b);
  ASSERT_TRUE(decoded_b.ok()) << *response_b;
  auto expected_a = db->Query(sql_a);
  ASSERT_TRUE(expected_a.ok());
  ExpectBitwiseEqual(*decoded_a, *expected_a, sql_a);
  auto expected_b = db->Query(sql_b);
  ASSERT_TRUE(expected_b.ok());
  ExpectBitwiseEqual(*decoded_b, *expected_b, sql_b);

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.batches_formed, 1u);
  EXPECT_EQ(counters.batched_requests, 2u);
  EXPECT_EQ(counters.served_ok, 2u);
  server.Stop();
}

/// Single-flight over the wire: two sessions issue the same query while
/// the first execution is parked mid-flight; the second attaches to the
/// in-flight leader (coalesced_hits) instead of re-executing. Both
/// sessions get bitwise identical OK answers, STATS counts BOTH logical
/// requests in served_ok, and the relation's memo stats expose the
/// coalescing.
TEST_F(ServerTest, DuplicateQueriesAcrossSessionsCoalesce) {
  auto db = MakeDb(FastOptions(4));
  const core::HybridEvaluator* flights = db->catalog().evaluator("flights");
  ASSERT_NE(flights, nullptr);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  flights->set_uncached_execute_hook([released, first] {
    if (first->exchange(false)) released.wait();
  });
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
  auto leader = Client::Connect(server.port());
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(leader->Send("{\"sql\": \"" + sql + "\"}").ok());
  // The hook fires after the flight is registered: once coalesced_flights
  // ticks, the leader is parked and any duplicate must attach.
  while (flights->result_memo_stats().coalesced_flights < 1) {
    std::this_thread::yield();
  }
  auto follower = Client::Connect(server.port());
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (flights->result_memo_stats().coalesced_hits < 1) {
    std::this_thread::yield();
  }
  release.set_value();

  auto leader_response = leader->Receive();
  ASSERT_TRUE(leader_response.ok()) << leader_response.status().ToString();
  auto decoded_leader = DecodeResultResponse(*leader_response);
  ASSERT_TRUE(decoded_leader.ok()) << *leader_response;
  auto follower_response = follower->Receive();
  ASSERT_TRUE(follower_response.ok()) << follower_response.status().ToString();
  auto decoded_follower = DecodeResultResponse(*follower_response);
  ASSERT_TRUE(decoded_follower.ok()) << *follower_response;
  auto expected = db->Query(sql);
  ASSERT_TRUE(expected.ok());
  ExpectBitwiseEqual(*decoded_leader, *expected, "leader");
  ExpectBitwiseEqual(*decoded_follower, *expected, "follower");

  auto stats = leader->Stats();
  ASSERT_TRUE(stats.ok());
  // A coalesced follower is still one logical request in the serving
  // counters — nothing about dedup hides work from STATS.
  EXPECT_EQ(stats->server.served_ok, 2u);
  EXPECT_EQ(stats->server.served_error, 0u);
  const core::ResultMemoStats& memo =
      stats->relations.at("flights").result_memo;
  EXPECT_EQ(memo.coalesced_flights, 1u);
  EXPECT_EQ(memo.coalesced_hits, 1u);
  EXPECT_EQ(memo.coalesced_detached, 0u);
  flights->set_uncached_execute_hook(nullptr);
  server.Stop();
}

/// STATS accounting across a follower's deadline expiry: the follower
/// detaches and answers kDeadlineExceeded (served_deadline_exceeded +
/// served_error, per logical request) while the leader — released later
/// — still answers OK (served_ok). The flight survives the expiry.
TEST_F(ServerTest, CoalescedFollowerDeadlineCountsPerLogicalRequest) {
  auto db = MakeDb(FastOptions(4));
  const core::HybridEvaluator* flights = db->catalog().evaluator("flights");
  ASSERT_NE(flights, nullptr);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  flights->set_uncached_execute_hook([released, first] {
    if (first->exchange(false)) released.wait();
  });
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
  auto leader = Client::Connect(server.port());
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(leader->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (flights->result_memo_stats().coalesced_flights < 1) {
    std::this_thread::yield();
  }
  // A generous-but-finite budget: long enough to attach over localhost,
  // short enough that it lapses while the leader stays parked.
  auto follower = Client::Connect(server.port());
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(
      follower->Send("{\"sql\": \"" + sql + "\", \"deadline_ms\": 40}").ok());
  auto follower_response = follower->Receive();
  ASSERT_TRUE(follower_response.ok())
      << follower_response.status().ToString();
  auto decoded_follower = DecodeResultResponse(*follower_response);
  EXPECT_EQ(decoded_follower.status().code(), StatusCode::kDeadlineExceeded)
      << *follower_response;
  {
    const core::ResultMemoStats memo = flights->result_memo_stats();
    EXPECT_EQ(memo.coalesced_hits, 1u);
    EXPECT_EQ(memo.coalesced_detached, 1u);
  }
  release.set_value();

  auto leader_response = leader->Receive();
  ASSERT_TRUE(leader_response.ok()) << leader_response.status().ToString();
  auto decoded_leader = DecodeResultResponse(*leader_response);
  ASSERT_TRUE(decoded_leader.ok()) << *leader_response;
  auto expected = db->Query(sql);
  ASSERT_TRUE(expected.ok());
  ExpectBitwiseEqual(*decoded_leader, *expected, "leader");

  auto stats = leader->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->server.served_ok, 1u);
  EXPECT_EQ(stats->server.served_deadline_exceeded, 1u);
  EXPECT_EQ(stats->server.served_error, 1u);
  EXPECT_EQ(stats->server.served_cancelled, 0u);
  flights->set_uncached_execute_hook(nullptr);
  server.Stop();
}

/// Pulls "name value" (no labels) out of a Prometheus exposition; -1
/// when absent.
double MetricValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stod(text.substr(pos + needle.size()));
    }
    pos += needle.size();
  }
  return -1.0;
}

TEST_F(ServerTest, MetricsVerbExposesPrometheusTextWithCountIdentity) {
  auto db = MakeDb(FastOptions(4));
  QueryServer::Options options;
  options.trace_sample_n = 1;  // trace everything: stage histograms fill
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  for (const std::string& sql : MixedQueries()) {
    auto result = client->Query(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  }
  // One error outcome: a registered-but-unbuilt relation.
  auto pending = client->Query("SELECT COUNT(*) FROM pending");
  EXPECT_EQ(pending.status().code(), StatusCode::kFailedPrecondition);

  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE themis_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      text->find("# TYPE themis_request_latency_seconds histogram"),
      std::string::npos);
  // Traced requests populate the per-stage histograms.
  EXPECT_NE(text->find("themis_stage_latency_seconds_bucket{stage=\"execute\""),
            std::string::npos);
  EXPECT_NE(
      text->find(
          "themis_stage_latency_seconds_bucket{stage=\"plan_lookup\""),
      std::string::npos);
  // Per-relation families carry the relation label.
  EXPECT_NE(text->find("themis_plan_cache_misses_total{relation=\"flights\"}"),
            std::string::npos);

  // The acceptance invariant: the request-latency histogram records once
  // per served request, so its count equals served_ok + served_error
  // (METRICS and STATS answer inline and are excluded from both sides).
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  const double expected_count = static_cast<double>(
      stats->server.served_ok + stats->server.served_error);
  EXPECT_EQ(MetricValue(*text, "themis_request_latency_seconds_count"),
            expected_count);
  EXPECT_EQ(MetricValue(*text, "themis_requests_total{outcome=\"ok\"}"),
            static_cast<double>(stats->server.served_ok));
  EXPECT_EQ(MetricValue(*text, "themis_requests_total{outcome=\"error\"}"),
            static_cast<double>(stats->server.served_error));
  server.Stop();
}

TEST_F(ServerTest, TracingOnOffAnswersBitwiseIdentical) {
  auto db = MakeDb(FastOptions(4));
  std::vector<sql::QueryResult> traced_answers;
  for (const bool traced : {false, true}) {
    QueryServer::Options options;
    options.trace_sample_n = traced ? 1 : 0;
    QueryServer server(&db->catalog(), options);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    size_t i = 0;
    for (const std::string& sql : MixedQueries()) {
      auto result = client->Query(sql);
      ASSERT_TRUE(result.ok()) << sql;
      if (!traced) {
        traced_answers.push_back(std::move(*result));
      } else {
        ExpectBitwiseEqual(*result, traced_answers[i], sql);
      }
      ++i;
    }
    server.Stop();
  }
}

/// The deterministic trace test from the issue: with one I/O thread and
/// every request traced, a parked leader and an attached follower must
/// leave distinguishable traces — the leader records execution, the
/// follower records a single-flight wait and NO execution — and the
/// leader's spans must be well-ordered (parse -> admission -> queue wait
/// -> plan lookup -> execute -> serialize).
TEST_F(ServerTest, CoalescedFollowerTraceRecordsWaitAndNoExecution) {
  auto db = MakeDb(FastOptions(4));
  const core::HybridEvaluator* flights = db->catalog().evaluator("flights");
  ASSERT_NE(flights, nullptr);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  flights->set_uncached_execute_hook([released, first] {
    if (first->exchange(false)) released.wait();
  });
  QueryServer::Options options;
  options.io_threads = 1;
  options.trace_sample_n = 1;
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
  auto leader = Client::Connect(server.port());
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(leader->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (flights->result_memo_stats().coalesced_flights < 1) {
    std::this_thread::yield();
  }
  auto follower = Client::Connect(server.port());
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(follower->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (flights->result_memo_stats().coalesced_hits < 1) {
    std::this_thread::yield();
  }
  release.set_value();
  ASSERT_TRUE(leader->Receive().ok());
  ASSERT_TRUE(follower->Receive().ok());

  auto stats = leader->Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->slow_queries.size(), 2u);

  const auto stage = [](const obs::SlowQueryEntry& entry, obs::Stage s)
      -> const obs::StageSpan& {
    return entry.stages[static_cast<size_t>(s)];
  };
  // Classify the two entries by their execution span: exactly one of the
  // two logical requests actually executed the plan.
  const obs::SlowQueryEntry* leader_entry = nullptr;
  const obs::SlowQueryEntry* follower_entry = nullptr;
  for (const obs::SlowQueryEntry& entry : stats->slow_queries) {
    EXPECT_EQ(entry.sql, sql);
    EXPECT_EQ(entry.status, "OK");
    if (stage(entry, obs::Stage::kExecute).count > 0) {
      leader_entry = &entry;
    } else {
      follower_entry = &entry;
    }
  }
  ASSERT_NE(leader_entry, nullptr);
  ASSERT_NE(follower_entry, nullptr);

  // The follower: parked in the single-flight wait, zero execution.
  EXPECT_EQ(stage(*follower_entry, obs::Stage::kExecute).count, 0u);
  EXPECT_EQ(stage(*follower_entry, obs::Stage::kExecutorScan).count, 0u);
  EXPECT_GE(stage(*follower_entry, obs::Stage::kSingleFlightWait).count, 1u);
  EXPECT_GT(stage(*follower_entry, obs::Stage::kSingleFlightWait).total_ns,
            0);
  // The leader: executed, never waited on anyone.
  EXPECT_EQ(stage(*leader_entry, obs::Stage::kSingleFlightWait).count, 0u);
  EXPECT_GT(stage(*leader_entry, obs::Stage::kExecute).total_ns, 0);
  EXPECT_GE(stage(*leader_entry, obs::Stage::kExecutorScan).count, 1u);
  EXPECT_EQ(leader_entry->relation, "flights");
  EXPECT_FALSE(leader_entry->fingerprint.empty());

  // Span ordering on the leader's trace, via the relative begin/end
  // stamps: each stage begins no earlier than its predecessor's begin,
  // and execution finishes before serialization begins.
  const auto& parse = stage(*leader_entry, obs::Stage::kParse);
  const auto& admission = stage(*leader_entry, obs::Stage::kAdmission);
  const auto& queue = stage(*leader_entry, obs::Stage::kQueueWait);
  const auto& plan = stage(*leader_entry, obs::Stage::kPlanLookup);
  const auto& execute = stage(*leader_entry, obs::Stage::kExecute);
  const auto& serialize = stage(*leader_entry, obs::Stage::kSerialize);
  ASSERT_EQ(parse.count, 1u);
  ASSERT_EQ(admission.count, 1u);
  ASSERT_EQ(queue.count, 1u);
  ASSERT_GE(plan.count, 1u);
  ASSERT_EQ(serialize.count, 1u);
  EXPECT_EQ(parse.first_begin_rel_ns, 0);
  EXPECT_GE(admission.first_begin_rel_ns, parse.last_end_rel_ns);
  EXPECT_GE(queue.first_begin_rel_ns, admission.last_end_rel_ns);
  EXPECT_GE(plan.first_begin_rel_ns, queue.last_end_rel_ns);
  EXPECT_GE(execute.first_begin_rel_ns, plan.first_begin_rel_ns);
  EXPECT_GE(serialize.first_begin_rel_ns, execute.last_end_rel_ns);
  EXPECT_GE(leader_entry->total_ns, execute.total_ns);

  flights->set_uncached_execute_hook(nullptr);
  server.Stop();
}

/// TSan lane: STATS and METRICS scrapes racing live traffic on every
/// counter and histogram shard must be clean under the sanitizer.
TEST_F(ServerTest, StatsAndMetricsRaceTrafficCleanly) {
  auto db = MakeDb(FastOptions(4));
  QueryServer::Options options;
  options.trace_sample_n = 2;
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kQueryThreads = 3;
  constexpr int kScrapeThreads = 2;
  constexpr int kIterations = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<std::string> queries = MixedQueries();
      for (int i = 0; i < kIterations; ++i) {
        if (!client->Query(queries[(t + i) % queries.size()]).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kScrapeThreads; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect(server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        if (!client->Stats().ok()) failures.fetch_add(1);
        if (!client->Metrics().ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto text = client->Metrics();
  ASSERT_TRUE(text.ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  // The count identity holds after the dust settles, scrapes included.
  EXPECT_EQ(MetricValue(*text, "themis_request_latency_seconds_count"),
            static_cast<double>(stats->server.served_ok +
                                stats->server.served_error));
  server.Stop();
}

/// The response byte cache's bitwise contract: with the cache ON, every
/// response line — across modes, repeats, explicit deadlines, errors,
/// and pipelined bursts — is byte-identical to a cache-OFF server over
/// the same catalog. Raw lines are compared, not decoded results: the
/// cache serves stored bytes, so the proof must be at the byte level.
TEST_F(ServerTest, ResponseCacheDifferentialBitwiseIdentical) {
  auto db = MakeDb(FastOptions(2));
  QueryServer::Options off_options;
  off_options.enable_response_cache = false;
  QueryServer off(&db->catalog(), off_options);
  ASSERT_TRUE(off.Start().ok());
  QueryServer::Options on_options;
  on_options.enable_response_cache = true;
  QueryServer on(&db->catalog(), on_options);
  ASSERT_TRUE(on.Start().ok());

  auto off_client = Client::Connect(off.port());
  ASSERT_TRUE(off_client.ok());
  auto on_client = Client::Connect(on.port());
  ASSERT_TRUE(on_client.ok());

  std::vector<std::string> lines;
  for (const char* mode : {"hybrid", "sample", "bn"}) {
    for (const std::string& sql : MixedQueries()) {
      lines.push_back("{\"sql\": \"" + sql + "\", \"mode\": \"" + mode +
                      "\"}");
    }
  }
  // Modes ride the cache key: the same SQL under another mode may answer
  // differently and must never collide. Deadlines do not (they bound
  // execution, not the answer); errors are never cached but still answer
  // identically.
  lines.push_back("{\"sql\": \"" + MixedQueries()[0] +
                  "\", \"deadline_ms\": 10000}");
  lines.push_back("{\"sql\": \"SELECT COUNT(*) FROM nosuch\"}");
  lines.push_back("{\"sql\": \"SELEC oops\"}");
  // Two passes: pass 1 misses and admits on the cached server, pass 2
  // serves from bytes. Both must match the uncached server exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& line : lines) {
      auto expected = off_client->RoundTrip(line);
      ASSERT_TRUE(expected.ok()) << line;
      auto actual = on_client->RoundTrip(line);
      ASSERT_TRUE(actual.ok()) << line;
      EXPECT_EQ(*actual, *expected) << "pass " << pass << ": " << line;
    }
  }
  // Pipelined repeats (a mix of inline byte-cache hits and pool-served
  // lines on one session) come back in order, byte-identical again.
  for (const std::string& line : lines) {
    ASSERT_TRUE(on_client->Send(line).ok());
  }
  for (const std::string& line : lines) {
    auto expected = off_client->RoundTrip(line);
    ASSERT_TRUE(expected.ok());
    auto actual = on_client->Receive();
    ASSERT_TRUE(actual.ok()) << line;
    EXPECT_EQ(*actual, *expected) << "pipelined: " << line;
  }
  const ServerCounters counters = on.counters();
  EXPECT_GT(counters.response_cache_hits, 0u);
  EXPECT_LT(counters.responses_encoded, counters.served_ok);
  EXPECT_EQ(off.counters().response_cache_hits, 0u);
  EXPECT_EQ(off.counters().response_cache_capacity, 0u);
  on.Stop();
  off.Stop();
}

/// The acceptance criterion in counter form: a hot repeated point query
/// encodes exactly once — every repeat is served from cached bytes on
/// the I/O thread with zero EncodeResponse calls, while served_ok keeps
/// climbing and the count identities hold.
TEST_F(ServerTest, HotRepeatServesWithZeroEncodes) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::string sql =
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'";
  constexpr size_t kRepeats = 50;
  auto first = client->Query(sql);
  ASSERT_TRUE(first.ok());
  for (size_t i = 1; i < kRepeats; ++i) {
    auto repeat = client->Query(sql);
    ASSERT_TRUE(repeat.ok());
    ExpectBitwiseEqual(*repeat, *first, sql);
  }
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->server.served_ok, kRepeats);
  EXPECT_EQ(stats->server.responses_encoded, 1u);
  EXPECT_EQ(stats->server.response_cache_hits, kRepeats - 1);
  EXPECT_EQ(stats->server.response_cache_misses, 1u);
  server.Stop();
}

/// Invalidation correctness: a mutation (drop, re-insert with a
/// different sample, rebuild) between two identical requests must never
/// let the second be served from the pre-mutation bytes. The
/// post-mutation answer equals a fresh in-process query — and actually
/// differs from the stale one, so serving stale bytes would have been
/// caught.
TEST_F(ServerTest, ResponseCacheInvalidatedOnRebuild) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::string sql =
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'";
  auto before = client->Query(sql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(client->Query(sql).ok());  // cached now
  ASSERT_GE(server.counters().response_cache_hits, 1u);

  // Mutate: re-register flights against a population that gained two
  // more FL->FL rows — the {o_st,d_st} aggregate covering the point
  // query changes, so the served answer must change too.
  ASSERT_TRUE(db->DropRelation("flights").ok());
  data::Table new_population = flights_population_->Clone();
  new_population.AppendRowLabels({"02", "FL", "FL"});
  new_population.AppendRowLabels({"01", "FL", "FL"});
  ASSERT_TRUE(db->InsertSample("flights", flights_sample_->Clone()).ok());
  ASSERT_TRUE(
      db->InsertAggregateFrom("flights", new_population, {"date"}).ok());
  ASSERT_TRUE(db->InsertAggregateFrom("flights", new_population,
                                      {"o_st", "d_st"})
                  .ok());
  ASSERT_TRUE(db->Build("flights").ok());

  auto after = client->Query(sql);
  ASSERT_TRUE(after.ok());
  auto expected = db->Query(sql);
  ASSERT_TRUE(expected.ok());
  ExpectBitwiseEqual(*after, *expected, "post-rebuild");
  // The answer really changed — a stale-bytes bug could not hide.
  ASSERT_EQ(before->rows.size(), 1u);
  ASSERT_EQ(after->rows.size(), 1u);
  EXPECT_NE(after->rows[0].values[0], before->rows[0].values[0]);
  server.Stop();
}

/// The `set` verb: session defaults apply to later unmoded requests
/// (bitwise equal to the explicit-mode answer), explicit fields still
/// win, the mode is part of the byte-cache key, and a session default
/// deadline expires a stalled request exactly like an explicit one.
TEST_F(ServerTest, SetVerbInstallsSessionDefaults) {
  auto db = MakeDb(FastOptions());
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::string sql = "SELECT date, COUNT(*) FROM flights GROUP BY date";
  // Warm the hybrid answer into the byte cache first: if the mode were
  // not part of the probe key, the sample-mode request below would be
  // served the hybrid bytes.
  auto hybrid = client->Query(sql);
  ASSERT_TRUE(hybrid.ok());

  ASSERT_TRUE(client->SetDefaults(AnswerMode::kSampleOnly).ok());
  auto defaulted = client->Query(sql);
  ASSERT_TRUE(defaulted.ok());
  auto expected_sample = db->Query(sql, AnswerMode::kSampleOnly);
  ASSERT_TRUE(expected_sample.ok());
  ExpectBitwiseEqual(*defaulted, *expected_sample, "session default mode");

  // An explicit mode overrides the session default.
  auto explicit_bn = client->Query(sql, "", AnswerMode::kBnOnly);
  ASSERT_TRUE(explicit_bn.ok());
  auto expected_bn = db->Query(sql, AnswerMode::kBnOnly);
  ASSERT_TRUE(expected_bn.ok());
  ExpectBitwiseEqual(*explicit_bn, *expected_bn, "explicit mode wins");

  // Defaults are per-session: a fresh connection still answers hybrid.
  auto other = Client::Connect(server.port());
  ASSERT_TRUE(other.ok());
  auto other_answer = other->Query(sql);
  ASSERT_TRUE(other_answer.ok());
  ExpectBitwiseEqual(*other_answer, *hybrid, "fresh session stays hybrid");

  // A `set` line carrying a query is the client's mistake.
  auto invalid = client->RoundTrip(
      "{\"verb\": \"set\", \"sql\": \"SELECT 1\"}");
  ASSERT_TRUE(invalid.ok());
  EXPECT_NE(invalid->find("\"InvalidArgument\""), std::string::npos);
  server.Stop();
}

/// Session default deadlines behave exactly like explicit ones: a
/// stalled request with no deadline_ms of its own expires under the
/// session default, and clearing the default (explicit 0) restores
/// no-budget behavior.
TEST_F(ServerTest, SetVerbDefaultDeadlineExpiresStalledRequest) {
  auto db = MakeDb(FastOptions(1));
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  QueryServer::Options options;
  options.io_threads = 1;
  options.request_hook = [released, first] {
    if (first->exchange(false)) released.wait();
  };
  QueryServer server(&db->catalog(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SetDefaults(std::nullopt, uint64_t{1}).ok());
  const std::string sql = "SELECT kind, COUNT(*) FROM shops GROUP BY kind";
  ASSERT_TRUE(client->Send("{\"sql\": \"" + sql + "\"}").ok());
  while (server.counters().inflight < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.set_value();
  auto response = client->Receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(DecodeResultResponse(*response).status().code(),
            StatusCode::kDeadlineExceeded)
      << *response;

  // Clearing the default (explicit 0) removes the session budget.
  ASSERT_TRUE(client->SetDefaults(std::nullopt, uint64_t{0}).ok());
  EXPECT_TRUE(client->Query(sql).ok());
  server.Stop();
}

/// TSan lane: inline byte-cache hits on the I/O threads racing a
/// DropRelation on another thread. The hit path touches no catalog
/// state, so cached bytes may be served while the relation dies; once
/// the invalidation lands, requests fall through to execution and get
/// NotFound. Either answer is sound — the assertion is no race, no
/// crash, no torn bytes.
TEST_F(ServerTest, ByteCacheHitsRaceDropRelationCleanly) {
  auto db = MakeDb(FastOptions(2));
  QueryServer server(&db->catalog());
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT COUNT(*) FROM shops WHERE city = 'AA' AND kind = 'K1'";
  {
    auto warm = Client::Connect(server.port());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm->Query(sql).ok());  // admit the bytes
    ASSERT_TRUE(warm->Query(sql).ok());  // prove they hit
  }
  ASSERT_GE(server.counters().response_cache_hits, 1u);

  constexpr int kThreads = 3;
  constexpr int kIterations = 40;
  std::atomic<int> transport_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect(server.port());
      if (!client.ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        auto raw = client->RoundTrip("{\"sql\": \"" + sql + "\"}");
        // OK-from-cache before the drop, NotFound after — both fine;
        // only transport failures are bugs.
        if (!raw.ok()) transport_failures.fetch_add(1);
      }
    });
  }
  ASSERT_TRUE(db->DropRelation("shops").ok());
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(transport_failures.load(), 0);

  // The drop invalidated the cached bytes: the query now answers
  // NotFound, never the stale count.
  auto check = Client::Connect(server.port());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->Query(sql).status().code(), StatusCode::kNotFound);
  server.Stop();
}

/// JSON round-trip fidelity: escapes, unicode, and 17-digit doubles.
TEST(WireTest, JsonRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,-3e-2,true,false,null],\"b\":\"q\\\"\\\\\\n\\u00e9\","
      "\"c\":{\"nested\":\"\\u0041\"}}";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto reparsed = JsonValue::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed->Dump(), reparsed->Dump());
  const JsonValue* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->items().size(), 6u);
  EXPECT_EQ(a->items()[1].number_value(), 2.5);
  EXPECT_EQ(parsed->Find("b")->string_value(), "q\"\\\n\xc3\xa9");

  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());

  // Doubles survive the wire bitwise at 17 significant digits.
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  JsonValue number = JsonValue::Number(awkward);
  auto back = JsonValue::Parse(number.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->number_value(), awkward);
}

TEST(WireTest, RequestParsing) {
  auto query = ParseRequest(
      "{\"sql\": \"SELECT 1\", \"relation\": \"r\", \"mode\": \"bn\"}");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, WireRequest::Verb::kQuery);
  EXPECT_EQ(query->sql, "SELECT 1");
  EXPECT_EQ(query->relation, "r");
  EXPECT_EQ(query->mode, AnswerMode::kBnOnly);

  auto batch = ParseRequest("{\"batch\": [\"a\", \"b\"]}");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->verb, WireRequest::Verb::kBatch);
  EXPECT_EQ(batch->batch.size(), 2u);
  EXPECT_EQ(batch->mode, AnswerMode::kHybrid);

  auto stats = ParseRequest("{\"verb\": \"STATS\"}");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, WireRequest::Verb::kStats);

  // Exactly one of sql/batch; batch rejects a pinned relation.
  EXPECT_FALSE(ParseRequest("{}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"sql\": \"a\", \"batch\": [\"b\"]}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"batch\": [\"a\"], \"relation\": \"r\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"sql\": 7}").ok());
  EXPECT_FALSE(ParseRequest("{\"sql\": \"a\", \"verb\": \"put\"}").ok());
  EXPECT_EQ(ParseRequest("not json").status().code(),
            StatusCode::kInvalidArgument);
}

/// deadline_ms over the wire: missing and zero both mean "no per-request
/// deadline", absurd values clamp instead of failing, malformed values
/// are the client's mistake, and EncodeRequest/ParseRequest round-trip.
TEST(WireTest, DeadlineRoundTrip) {
  // Missing -> 0 (server default applies).
  auto missing = ParseRequest("{\"sql\": \"SELECT 1\"}");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->deadline_ms, 0u);

  // Explicit zero is the same as missing.
  auto zero = ParseRequest("{\"sql\": \"SELECT 1\", \"deadline_ms\": 0}");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->deadline_ms, 0u);

  auto plain = ParseRequest("{\"sql\": \"SELECT 1\", \"deadline_ms\": 250}");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->deadline_ms, 250u);

  // Fractional milliseconds truncate; batches carry deadlines too.
  auto fractional =
      ParseRequest("{\"batch\": [\"a\"], \"deadline_ms\": 12.9}");
  ASSERT_TRUE(fractional.ok());
  EXPECT_EQ(fractional->deadline_ms, 12u);

  // Absurdly large budgets clamp to the one-year ceiling, keeping the
  // absolute-deadline arithmetic far from time_point overflow.
  auto absurd =
      ParseRequest("{\"sql\": \"SELECT 1\", \"deadline_ms\": 1e30}");
  ASSERT_TRUE(absurd.ok());
  EXPECT_EQ(absurd->deadline_ms, kMaxDeadlineMs);

  // Negative, NaN-ish, and non-number values are InvalidArgument.
  EXPECT_EQ(
      ParseRequest("{\"sql\": \"a\", \"deadline_ms\": -1}").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseRequest("{\"sql\": \"a\", \"deadline_ms\": \"5\"}").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseRequest("{\"sql\": \"a\", \"deadline_ms\": null}").status().code(),
      StatusCode::kInvalidArgument);

  // EncodeRequest is ParseRequest's inverse: a deadline survives the
  // round trip, and 0 is omitted from the wire form entirely.
  WireRequest request;
  request.verb = WireRequest::Verb::kQuery;
  request.sql = "SELECT COUNT(*) FROM flights";
  request.relation = "flights";
  request.mode = AnswerMode::kBnOnly;
  request.has_mode = true;  // an unset mode no longer rides the wire
  request.deadline_ms = 750;
  auto round = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->sql, request.sql);
  EXPECT_EQ(round->relation, request.relation);
  EXPECT_EQ(round->mode, request.mode);
  EXPECT_EQ(round->deadline_ms, 750u);
  request.deadline_ms = 0;
  EXPECT_EQ(EncodeRequest(request).find("deadline_ms"), std::string::npos);

  // The new status codes cross the wire by name and decode back.
  for (const Status& status :
       {Status::DeadlineExceeded("too slow"), Status::Cancelled("gone")}) {
    const std::string line = EncodeErrorResponse(status);
    auto decoded = DecodeResultResponse(line);
    EXPECT_EQ(decoded.status().code(), status.code()) << line;
    EXPECT_EQ(decoded.status().message(), status.message());
  }
}

}  // namespace
}  // namespace themis::server
