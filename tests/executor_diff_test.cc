// Differential test of the vectorized executor against the retained
// row-at-a-time reference implementation: ~100 generated queries across
// filters x GROUP BY arities x joins x pool sizes must be bitwise
// identical on both paths. Row weights are multiples of 0.25, so sums are
// exact and every shard layout (sequential, auto, forced-small) must
// agree bit for bit as well. A second executor pinned to the scalar SIMD
// backend (THEMIS_SIMD=scalar at construction) runs every query too, so
// on SIMD-capable hosts each check is three-way:
// simd == scalar == reference, bit for bit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/table.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/thread_pool.h"

// TSan instrumentation slows the reference path ~50x; a reduced query
// count still races every parallel code path (sharded scan, sharded
// build, sharded probe, packed and wide keys) on every pool size.
#if defined(__SANITIZE_THREAD__)
#define THEMIS_DIFF_TEST_QUERIES 25
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define THEMIS_DIFF_TEST_QUERIES 25
#endif
#endif
#ifndef THEMIS_DIFF_TEST_QUERIES
#define THEMIS_DIFF_TEST_QUERIES 100
#endif

namespace themis::sql {
namespace {

constexpr size_t kNumQueries = THEMIS_DIFF_TEST_QUERIES;

void ExpectBitwiseEqual(const QueryResult& a, const QueryResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.group_names, b.group_names) << what;
  ASSERT_EQ(a.value_names, b.value_names) << what;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].group, b.rows[i].group) << what;
    ASSERT_EQ(a.rows[i].values.size(), b.rows[i].values.size()) << what;
    for (size_t j = 0; j < a.rows[i].values.size(); ++j) {
      // Bitwise double equality, not approximate.
      EXPECT_EQ(a.rows[i].values[j], b.rows[i].values[j])
          << what << " row " << i << " value " << j;
    }
  }
}

/// Fixture: a probe-sized table `t` and a smaller build-side table `u`
/// whose join domains only partially overlap (and are distinct Domain
/// objects, exercising the probe-side code translation).
class ExecutorDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto label_range = [](const std::string& prefix, size_t lo, size_t n) {
      std::vector<std::string> labels;
      for (size_t i = 0; i < n; ++i) {
        labels.push_back(prefix + std::to_string(lo + i));
      }
      return labels;
    };
    auto numbers = [](size_t n) {
      std::vector<std::string> labels;
      for (size_t i = 0; i < n; ++i) labels.push_back(std::to_string(i));
      return labels;
    };

    auto t_schema = std::make_shared<data::Schema>();
    t_schema->AddAttribute("g1", label_range("g1_", 0, 7));
    t_schema->AddAttribute("g2", label_range("g2_", 0, 13));
    t_schema->AddAttribute("v", numbers(9));
    t_schema->AddAttribute("c", label_range("c", 0, 5));
    // A fairly selective join key keeps the reference path's per-pair
    // cost bounded across the ~100 generated queries.
    t_schema->AddAttribute("k", label_range("k", 0, 199));
    t_ = std::make_unique<data::Table>(t_schema);
    std::mt19937_64 rng(11);
    for (size_t r = 0; r < 12000; ++r) {
      t_->AppendRow({static_cast<data::ValueCode>(rng() % 7),
                     static_cast<data::ValueCode>(rng() % 13),
                     static_cast<data::ValueCode>(rng() % 9),
                     static_cast<data::ValueCode>(rng() % 5),
                     static_cast<data::ValueCode>(rng() % 199)});
      t_->set_weight(r, static_cast<double>(rng() % 16) * 0.25 + 0.25);
    }

    auto u_schema = std::make_shared<data::Schema>();
    u_schema->AddAttribute("k2", label_range("k", 50, 199));  // k50..k248
    u_schema->AddAttribute("h", label_range("h", 0, 4));
    u_schema->AddAttribute("w", numbers(6));
    u_ = std::make_unique<data::Table>(u_schema);
    for (size_t r = 0; r < 2000; ++r) {
      u_->AppendRow({static_cast<data::ValueCode>(rng() % 199),
                     static_cast<data::ValueCode>(rng() % 4),
                     static_cast<data::ValueCode>(rng() % 6)});
      u_->set_weight(r, static_cast<double>(rng() % 8) * 0.25 + 0.5);
    }

    executor_.RegisterTable("t", t_.get());
    executor_.RegisterTable("u", u_.get());

    // The scalar twin: an executor whose kernel table was pinned to the
    // scalar backend at construction, regardless of host capability.
    const char* prev = std::getenv("THEMIS_SIMD");
    const std::string saved = prev ? prev : "";
    setenv("THEMIS_SIMD", "scalar", 1);
    scalar_executor_ = std::make_unique<Executor>();
    if (prev) {
      setenv("THEMIS_SIMD", saved.c_str(), 1);
    } else {
      unsetenv("THEMIS_SIMD");
    }
    ASSERT_EQ(scalar_executor_->stats().simd_backend, "scalar");
    scalar_executor_->RegisterTable("t", t_.get());
    scalar_executor_->RegisterTable("u", u_.get());
  }

  /// Runs `sql` on both paths across execution configurations and checks
  /// every answer is bitwise identical to the pool-less reference.
  void CheckQuery(const std::string& sql) {
    auto stmt = Parse(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    auto reference = executor_.ExecuteReference(*stmt);
    ASSERT_TRUE(reference.ok()) << sql;
    auto vectorized = executor_.Execute(*stmt);
    ASSERT_TRUE(vectorized.ok()) << sql;
    ExpectBitwiseEqual(*vectorized, *reference, "sequential: " + sql);
    auto scalar = scalar_executor_->Execute(*stmt);
    ASSERT_TRUE(scalar.ok()) << sql;
    ExpectBitwiseEqual(*scalar, *reference, "scalar sequential: " + sql);

    for (util::ThreadPool* pool : pools()) {
      for (const size_t shard_rows : {size_t{0}, size_t{1000}}) {
        const std::string what = sql + " [pool " +
                                 std::to_string(pool->num_threads()) +
                                 " shard " + std::to_string(shard_rows) + "]";
        auto ref_pooled = executor_.ExecuteReference(*stmt, pool, shard_rows);
        ASSERT_TRUE(ref_pooled.ok()) << what;
        auto vec_pooled = executor_.Execute(*stmt, pool, shard_rows);
        ASSERT_TRUE(vec_pooled.ok()) << what;
        ExpectBitwiseEqual(*vec_pooled, *ref_pooled, "pooled: " + what);
        // Exact weights: every layout agrees with the sequential answer.
        ExpectBitwiseEqual(*vec_pooled, *reference, "vs sequential: " + what);
        auto scalar_pooled =
            scalar_executor_->Execute(*stmt, pool, shard_rows);
        ASSERT_TRUE(scalar_pooled.ok()) << what;
        ExpectBitwiseEqual(*vec_pooled, *scalar_pooled,
                           "simd vs scalar: " + what);
      }
    }
  }

  /// Pool sizes 1, 2, and hardware, created once for the whole test.
  std::vector<util::ThreadPool*> pools() {
    if (pools_.empty()) {
      const size_t hw =
          std::max<size_t>(2, std::thread::hardware_concurrency());
      for (const size_t threads : {size_t{1}, size_t{2}, hw}) {
        pools_.push_back(std::make_unique<util::ThreadPool>(threads));
      }
    }
    std::vector<util::ThreadPool*> out;
    for (auto& pool : pools_) out.push_back(pool.get());
    return out;
  }

  std::unique_ptr<data::Table> t_;
  std::unique_ptr<data::Table> u_;
  std::vector<std::unique_ptr<util::ThreadPool>> pools_;
  Executor executor_;
  std::unique_ptr<Executor> scalar_executor_;
};

TEST_F(ExecutorDiffTest, RandomizedQueriesBitwiseIdentical) {
  std::mt19937_64 rng(2026);
  const std::vector<std::string> t_filters = {
      "g1 = 'g1_2'",         "g2 <> 'g2_5'", "c IN ('c0', 'c2', 'c4')",
      "v < 6",               "v >= 2",       "k IN ('k1', 'k4', 'k9')",
      "g1 IN ('g1_0', 'g1_6')"};
  const std::vector<std::string> u_filters = {
      "h = 'h1'", "h <> 'h3'", "w > 1", "k2 IN ('k3', 'k7', 'k12')"};
  const std::vector<std::string> t_groups = {"g1", "g2", "c", "v"};
  const std::vector<std::string> u_groups = {"h", "w"};
  const std::vector<std::string> t_aggs = {"SUM(v)", "AVG(v)"};
  const std::vector<std::string> u_aggs = {"SUM(w)", "AVG(w)"};

  auto pick = [&rng](const std::vector<std::string>& from, size_t count) {
    std::vector<std::string> out(from);
    for (size_t i = 0; i < out.size(); ++i) {
      std::swap(out[i], out[i + rng() % (out.size() - i)]);
    }
    out.resize(std::min(count, out.size()));
    return out;
  };

  size_t checked = 0;
  for (size_t i = 0; i < kNumQueries && !HasFailure(); ++i) {
    const bool join = i % 10 >= 7;  // 30% joins
    std::vector<std::string> filters;
    std::vector<std::string> groups;
    std::vector<std::string> aggs = {"COUNT(*)"};
    std::string from;
    if (join) {
      from = "u b, t p WHERE b.k2 = p.k";
      for (const auto& f : pick(u_filters, rng() % 2)) {
        filters.push_back(f);
      }
      for (const auto& f : pick(t_filters, rng() % 2)) {
        filters.push_back(f);
      }
      groups = pick(rng() % 2 == 0 ? t_groups : u_groups, rng() % 3);
      for (const auto& a : pick(rng() % 2 == 0 ? t_aggs : u_aggs, rng() % 3)) {
        aggs.push_back(a);
      }
    } else {
      from = "t";
      for (const auto& f : pick(t_filters, rng() % 3)) {
        filters.push_back(f);
      }
      groups = pick(t_groups, rng() % 3);
      for (const auto& a : pick(t_aggs, rng() % 3)) {
        aggs.push_back(a);
      }
    }
    std::string sql = "SELECT ";
    for (const auto& g : groups) sql += g + ", ";
    for (size_t a = 0; a < aggs.size(); ++a) {
      sql += aggs[a] + (a + 1 < aggs.size() ? ", " : " ");
    }
    sql += "FROM " + from;
    for (size_t f = 0; f < filters.size(); ++f) {
      sql += (f == 0 && !join ? " WHERE " : " AND ") + filters[f];
    }
    if (!groups.empty()) {
      sql += " GROUP BY ";
      for (size_t g = 0; g < groups.size(); ++g) {
        sql += groups[g] + (g + 1 < groups.size() ? ", " : "");
      }
    }
    CheckQuery(sql);
    ++checked;
  }
  EXPECT_EQ(checked, kNumQueries);
}

/// 10 group columns x 100-label domains = ~70 key bits: exercises the
/// TupleKey fallback for both grouping and join keys.
TEST(ExecutorWideKeyTest, WideGroupAndJoinKeysMatchReference) {
  auto labels100 = [] {
    std::vector<std::string> labels;
    for (size_t i = 0; i < 100; ++i) labels.push_back(std::to_string(i));
    return labels;
  }();
  auto schema = std::make_shared<data::Schema>();
  for (size_t a = 0; a < 10; ++a) {
    schema->AddAttribute("a" + std::to_string(a), labels100);
  }
  data::Table wide(schema);
  std::mt19937_64 rng(5);
  for (size_t r = 0; r < 3000; ++r) {
    std::vector<data::ValueCode> codes;
    for (size_t a = 0; a < 10; ++a) {
      // Narrow value range so groups and join keys repeat.
      codes.push_back(static_cast<data::ValueCode>(rng() % 3 * 7));
    }
    wide.AppendRow(codes);
    wide.set_weight(r, static_cast<double>(rng() % 4) * 0.25 + 0.25);
  }
  Executor executor;
  executor.RegisterTable("wide", &wide);

  std::string all_cols;
  std::string join_on;
  for (size_t a = 0; a < 10; ++a) {
    all_cols += "a" + std::to_string(a) + ", ";
    join_on += std::string(a == 0 ? "" : " AND ") + "x.a" + std::to_string(a) +
               " = y.a" + std::to_string(a);
  }
  const std::vector<std::string> sqls = {
      "SELECT " + all_cols + "COUNT(*) FROM wide GROUP BY " +
          all_cols.substr(0, all_cols.size() - 2),
      "SELECT COUNT(*) FROM wide x, wide y WHERE " + join_on,
      "SELECT x.a0, COUNT(*) FROM wide x, wide y WHERE " + join_on +
          " GROUP BY x.a0",
  };
  util::ThreadPool pool(3);
  for (const std::string& sql : sqls) {
    auto stmt = Parse(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                &pool}) {
      auto reference = executor.ExecuteReference(*stmt, p, 500);
      ASSERT_TRUE(reference.ok()) << sql;
      auto vectorized = executor.Execute(*stmt, p, 500);
      ASSERT_TRUE(vectorized.ok()) << sql;
      ExpectBitwiseEqual(*vectorized, *reference, sql);
      ASSERT_FALSE(reference->rows.empty()) << sql;
    }
  }
}

}  // namespace
}  // namespace themis::sql
