#include <gtest/gtest.h>

#include <set>

#include "aggregate/aggregate.h"
#include "aggregate/pruning.h"
#include "workload/child.h"
#include "workload/experiment.h"

namespace themis::aggregate {
namespace {

data::Table Example31Population() {
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("date", {"01", "02"});
  schema->AddAttribute("o_st", {"FL", "NC", "NY"});
  schema->AddAttribute("d_st", {"FL", "NC", "NY"});
  data::Table pop(schema);
  const char* rows[][3] = {
      {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
      {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
      {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
      {"02", "NY", "NY"}};
  for (const auto& r : rows) pop.AppendRowLabels({r[0], r[1], r[2]});
  return pop;
}

TEST(AggregateTest, ComputeMatchesExample31Gamma1) {
  data::Table pop = Example31Population();
  AggregateSpec g1 = ComputeAggregate(pop, {0});
  ASSERT_EQ(g1.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(g1.TotalCount(), 10.0);
  // Γ1 = {([01], 5), ([02], 5)}
  EXPECT_DOUBLE_EQ(g1.groups[0].second, 5.0);
  EXPECT_DOUBLE_EQ(g1.groups[1].second, 5.0);
}

TEST(AggregateTest, ComputeMatchesExample31Gamma2) {
  data::Table pop = Example31Population();
  AggregateSpec g2 = ComputeAggregate(pop, {1, 2});
  // Γ2 has 7 groups: (FL,FL)=2 (FL,NY)=1 (NC,FL)=1 (NC,NY)=3 (NY,FL)=1
  // (NY,NC)=1 (NY,NY)=1.
  ASSERT_EQ(g2.num_groups(), 7u);
  EXPECT_DOUBLE_EQ(g2.TotalCount(), 10.0);
  stats::FreqTable ft = g2.ToFreqTable();
  EXPECT_DOUBLE_EQ(ft.Mass({0, 0}), 2.0);  // FL,FL
  EXPECT_DOUBLE_EQ(ft.Mass({1, 2}), 3.0);  // NC,NY
}

TEST(AggregateTest, AttrsSortedRegardlessOfInputOrder) {
  data::Table pop = Example31Population();
  AggregateSpec spec = ComputeAggregate(pop, {2, 0});
  EXPECT_EQ(spec.attrs, (std::vector<size_t>{0, 2}));
}

TEST(AggregateTest, PerturbKeepsNonNegative) {
  data::Table pop = Example31Population();
  AggregateSpec spec = ComputeAggregate(pop, {1});
  Rng rng(1);
  PerturbAggregate(spec, 0.5, rng);
  for (const auto& [k, c] : spec.groups) EXPECT_GE(c, 0.0);
}

TEST(AggregateSetTest, CoveredAttributesAndTotalGroups) {
  data::Table pop = Example31Population();
  AggregateSet set(pop.schema());
  set.Add(ComputeAggregate(pop, {0}));
  set.Add(ComputeAggregate(pop, {1, 2}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.CoveredAttributes(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(set.TotalGroups(), 9u);
}

TEST(AggregateSetTest, FindByAttrs) {
  data::Table pop = Example31Population();
  AggregateSet set(pop.schema());
  set.Add(ComputeAggregate(pop, {1, 2}));
  EXPECT_NE(set.Find({1, 2}), nullptr);
  EXPECT_NE(set.Find({2, 1}), nullptr);  // order-insensitive
  EXPECT_EQ(set.Find({0, 1}), nullptr);
}

TEST(AggregateSetTest, JointSupport) {
  data::Table pop = Example31Population();
  AggregateSet set(pop.schema());
  set.Add(ComputeAggregate(pop, {0}));
  set.Add(ComputeAggregate(pop, {1, 2}));
  EXPECT_TRUE(set.HasJointSupport({0}));
  EXPECT_TRUE(set.HasJointSupport({1, 2}));
  EXPECT_TRUE(set.HasJointSupport({1}));      // marginal of the 2D
  EXPECT_FALSE(set.HasJointSupport({0, 1}));  // never together
}

TEST(AggregateSetTest, JointDistributionMarginalizes) {
  data::Table pop = Example31Population();
  AggregateSet set(pop.schema());
  set.Add(ComputeAggregate(pop, {1, 2}));
  auto dist = set.JointDistribution({1});
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(dist->Mass({0}), 3.0);  // FL origins
  EXPECT_DOUBLE_EQ(dist->Mass({1}), 4.0);  // NC origins
  EXPECT_FALSE(set.JointDistribution({0, 1}).ok());
}

TEST(PruningTest, RespectsBudget) {
  data::Table child = workload::GenerateChild({5000, 7, 3});
  std::vector<size_t> attrs;
  for (size_t a = 0; a < 8; ++a) attrs.push_back(a);
  std::vector<AggregateSpec> candidates;
  for (const auto& pair : workload::AllSubsets(attrs, 2)) {
    candidates.push_back(ComputeAggregate(child, pair));
  }
  auto selected = SelectAggregatesTCherry(candidates, 5);
  EXPECT_LE(selected.size(), 5u);
  EXPECT_GE(selected.size(), 1u);
  // No duplicates.
  std::set<size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST(PruningTest, PrefersInformativePairs) {
  // Build a table where (0,1) are perfectly dependent and (2,3) are
  // independent; with budget 1 the t-cherry pick must be a high-MI pair
  // involving the dependent attributes.
  auto schema = std::make_shared<data::Schema>();
  for (const char* name : {"a", "b", "c", "d"}) {
    schema->AddAttribute(name, {"0", "1"});
  }
  data::Table t(schema);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    data::ValueCode a = rng.Bernoulli(0.5) ? 1 : 0;
    data::ValueCode c = rng.Bernoulli(0.5) ? 1 : 0;
    data::ValueCode d = rng.Bernoulli(0.5) ? 1 : 0;
    t.AppendRow({a, a, c, d});  // b == a
  }
  std::vector<AggregateSpec> candidates;
  for (const auto& pair : workload::AllSubsets({0, 1, 2, 3}, 2)) {
    candidates.push_back(ComputeAggregate(t, pair));
  }
  auto selected = SelectAggregatesTCherry(candidates, 1);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(candidates[selected[0]].attrs, (std::vector<size_t>{0, 1}));
}

TEST(PruningTest, MultipleTreesWhenBudgetExceedsAttrs) {
  data::Table child = workload::GenerateChild({3000, 7, 4});
  std::vector<size_t> attrs = {0, 1, 2, 3};
  std::vector<AggregateSpec> candidates;
  for (const auto& pair : workload::AllSubsets(attrs, 2)) {
    candidates.push_back(ComputeAggregate(child, pair));
  }
  // 6 candidates over 4 attrs; one tree covers them with 3 clusters, so a
  // budget of 5 needs a second tree.
  auto selected = SelectAggregatesTCherry(candidates, 5);
  EXPECT_EQ(selected.size(), 5u);
}

TEST(PruningTest, RandomSelectionIsBounded) {
  data::Table pop = Example31Population();
  std::vector<AggregateSpec> candidates = {ComputeAggregate(pop, {0, 1}),
                                           ComputeAggregate(pop, {1, 2}),
                                           ComputeAggregate(pop, {0, 2})};
  Rng rng(9);
  auto selected = SelectAggregatesRandom(candidates, 2, rng);
  EXPECT_EQ(selected.size(), 2u);
  auto all = SelectAggregatesRandom(candidates, 10, rng);
  EXPECT_EQ(all.size(), 3u);
}

TEST(PruningTest, ZeroBudgetSelectsNothing) {
  data::Table pop = Example31Population();
  std::vector<AggregateSpec> candidates = {ComputeAggregate(pop, {1, 2})};
  EXPECT_TRUE(SelectAggregatesTCherry(candidates, 0).empty());
}

}  // namespace
}  // namespace themis::aggregate
