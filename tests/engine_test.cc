// Tests for the unified inference engine and plan-based query path: the
// memoizing bn::InferenceEngine (hit/miss accounting, LRU bound, bitwise
// cache-on/off identity), the core::QueryPlanner (point detection, plan
// cache, SQL normalization), and ThemisDb::QueryBatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bn/inference.h"
#include "bn/inference_engine.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "core/query_plan.h"
#include "core/themis_db.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace themis::core {
namespace {

/// The paper's running example (Sec 2 / Example 3.1): population of 10
/// flights, biased sample of 4, Γ = {date; (o_st, d_st)}.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = std::make_shared<data::Schema>();
    schema_->AddAttribute("date", {"01", "02"});
    schema_->AddAttribute("o_st", {"FL", "NC", "NY"});
    schema_->AddAttribute("d_st", {"FL", "NC", "NY"});
    population_ = std::make_unique<data::Table>(schema_);
    const char* prows[][3] = {
        {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
        {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
        {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
        {"02", "NY", "NY"}};
    for (const auto& r : prows) {
      population_->AppendRowLabels({r[0], r[1], r[2]});
    }
    sample_ = std::make_unique<data::Table>(schema_);
    const char* srows[][3] = {{"01", "FL", "FL"},
                              {"01", "FL", "FL"},
                              {"02", "NC", "NY"},
                              {"01", "NY", "NC"}};
    for (const auto& r : srows) sample_->AppendRowLabels({r[0], r[1], r[2]});
    aggregates_ = aggregate::AggregateSet(schema_);
    aggregates_.Add(aggregate::ComputeAggregate(*population_, {0}));
    aggregates_.Add(aggregate::ComputeAggregate(*population_, {1, 2}));
  }

  ThemisOptions FastOptions() const {
    ThemisOptions options;
    options.bn_group_by_samples = 5;
    options.bn_sample_rows = 50;
    return options;
  }

  ThemisModel BuildModel(const ThemisOptions& options) const {
    auto model = ThemisModel::Build(sample_->Clone(), aggregates_, options);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(model).value();
  }

  data::SchemaPtr schema_;
  std::unique_ptr<data::Table> population_;
  std::unique_ptr<data::Table> sample_;
  aggregate::AggregateSet aggregates_;
};

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(*cache.Get(1), 10);  // 1 is now most-recently used
  cache.Put(3, 30);              // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, UnboundedWhenCapacityZero) {
  LruCache<int, int> cache(0);
  for (int i = 0; i < 100; ++i) cache.Put(i, i);
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, PutOverwritesInPlace) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(NormalizeSqlTest, CollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(NormalizeSql("  SELECT   COUNT(*)\n FROM  f  "),
            "SELECT COUNT(*) FROM f");
  // Whitespace inside single-quoted literals is semantic; two literals
  // differing only in internal spacing must not share a cache key.
  EXPECT_NE(NormalizeSql("SELECT COUNT(*) FROM f WHERE a = 'x  y'"),
            NormalizeSql("SELECT COUNT(*) FROM f WHERE a = 'x y'"));
}

TEST_F(EngineTest, EngineMatchesVariableElimination) {
  ThemisModel model = BuildModel(FastOptions());
  ASSERT_NE(model.network(), nullptr);
  bn::InferenceEngine engine(model.network());
  bn::VariableElimination ve(model.network());
  const bn::Evidence evidence = {{1, 0}, {2, 2}};  // o_st=FL, d_st=NY
  auto from_engine = engine.Probability(evidence);
  auto from_ve = ve.Probability(evidence);
  ASSERT_TRUE(from_engine.ok() && from_ve.ok());
  EXPECT_EQ(*from_engine, *from_ve);

  auto m_engine = engine.Marginal({1, 2});
  auto m_ve = ve.Marginal({1, 2});
  ASSERT_TRUE(m_engine.ok() && m_ve.ok());
  ASSERT_EQ(m_engine->attrs(), m_ve->attrs());
  EXPECT_EQ(m_engine->num_groups(), m_ve->num_groups());
  for (const auto& [key, mass] : m_ve->entries()) {
    EXPECT_DOUBLE_EQ(m_engine->Mass(key), mass);
  }
}

TEST_F(EngineTest, RepeatedQueriesHitTheCache) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine engine(model.network());
  const bn::Evidence evidence = {{1, 0}, {2, 2}};
  auto first = engine.Probability(evidence);
  auto second = engine.Probability(evidence);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);  // bitwise: the cached double comes back
  bn::InferenceCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST_F(EngineTest, MarginalCacheIsOrderInsensitive) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine engine(model.network());
  auto forward = engine.Marginal({1, 2});
  auto backward = engine.Marginal({2, 1});
  ASSERT_TRUE(forward.ok() && backward.ok());
  // (2,1) is served from the (1,2) entry, reordered.
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  for (const auto& [key, mass] : forward->entries()) {
    EXPECT_EQ(backward->Mass({key[1], key[0]}), mass);
  }
}

TEST_F(EngineTest, LruEvictionRespectsConfiguredBound) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine::Options options;
  options.cache_capacity = 2;
  bn::InferenceEngine engine(model.network(), options);
  ASSERT_TRUE(engine.Probability({{1, 0}}).ok());
  ASSERT_TRUE(engine.Probability({{1, 1}}).ok());
  ASSERT_TRUE(engine.Probability({{1, 2}}).ok());  // evicts {{1,0}}
  bn::InferenceCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // The evicted entry misses again.
  ASSERT_TRUE(engine.Probability({{1, 0}}).ok());
  EXPECT_EQ(engine.cache_stats().misses, 4u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

TEST_F(EngineTest, DisabledCacheComputesAndCountsNothing) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine::Options options;
  options.enable_cache = false;
  bn::InferenceEngine engine(model.network(), options);
  auto first = engine.Probability({{1, 0}, {2, 2}});
  auto second = engine.Probability({{1, 0}, {2, 2}});
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
  bn::InferenceCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(EngineTest, AnswersIdenticalWithCacheOnAndOff) {
  ThemisModel model = BuildModel(FastOptions());
  HybridEvaluator evaluator(&model, "flights");
  bn::InferenceEngine* engine = evaluator.mutable_inference_engine();
  ASSERT_NE(engine, nullptr);

  const std::vector<std::string> sqls = {
      // In-sample point, BN-answered point, out-of-domain point.
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'FL'",
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
      "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'",
      // GROUP BY and a non-point global aggregate.
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
      "SELECT COUNT(*) FROM flights WHERE date <> '02'",
  };
  for (AnswerMode mode : {AnswerMode::kHybrid, AnswerMode::kSampleOnly,
                          AnswerMode::kBnOnly}) {
    for (const std::string& sql : sqls) {
      engine->ClearCache();
      engine->set_cache_enabled(false);
      auto uncached = evaluator.Query(sql, mode);
      engine->ClearCache();
      engine->set_cache_enabled(true);
      auto cold = evaluator.Query(sql, mode);   // populates the cache
      auto warm = evaluator.Query(sql, mode);   // served from it
      ASSERT_EQ(uncached.ok(), cold.ok()) << sql;
      if (!uncached.ok()) continue;
      ASSERT_TRUE(warm.ok()) << sql;
      for (const auto* cached : {&*cold, &*warm}) {
        ASSERT_EQ(uncached->rows.size(), cached->rows.size()) << sql;
        for (size_t i = 0; i < uncached->rows.size(); ++i) {
          EXPECT_EQ(uncached->rows[i].group, cached->rows[i].group) << sql;
          ASSERT_EQ(uncached->rows[i].values.size(),
                    cached->rows[i].values.size());
          for (size_t j = 0; j < uncached->rows[i].values.size(); ++j) {
            // Bitwise identity, not approximate equality.
            EXPECT_EQ(uncached->rows[i].values[j], cached->rows[i].values[j])
                << sql;
          }
        }
      }
    }
  }
}

TEST_F(EngineTest, PointQueryHitRateIncreasesOnRepeats) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  // (FL, NY) is missing from the sample, so every hybrid answer runs BN
  // inference — the second time from the memo table.
  const std::string sql =
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
  ASSERT_TRUE(db.Query(sql).ok());
  const bn::InferenceCacheStats before =
      db.evaluator()->inference_engine()->cache_stats();
  ASSERT_TRUE(db.Query(sql).ok());
  const bn::InferenceCacheStats after =
      db.evaluator()->inference_engine()->cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.HitRate(), before.HitRate());
}

TEST_F(EngineTest, PlannerClassifiesShapes) {
  ThemisModel model = BuildModel(FastOptions());
  HybridEvaluator evaluator(&model, "flights");

  auto point = evaluator.Plan(
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ((*point)->kind, PlanKind::kPoint);
  EXPECT_EQ((*point)->point_attrs, (std::vector<size_t>{1, 2}));
  EXPECT_EQ((*point)->point_values, (data::TupleKey{0, 2}));
  EXPECT_FALSE((*point)->out_of_domain);

  auto oob = evaluator.Plan("SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'");
  ASSERT_TRUE(oob.ok());
  EXPECT_EQ((*oob)->kind, PlanKind::kPoint);
  EXPECT_TRUE((*oob)->out_of_domain);

  auto group_by = evaluator.Plan(
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st");
  ASSERT_TRUE(group_by.ok());
  EXPECT_EQ((*group_by)->kind, PlanKind::kGroupBy);

  auto range = evaluator.Plan(
      "SELECT COUNT(*) FROM flights WHERE date <> '02'");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)->kind, PlanKind::kGroupBy);

  EXPECT_FALSE(evaluator.Plan("not sql at all").ok());
}

TEST_F(EngineTest, PlannerWithoutBnPlansPassthrough) {
  ThemisOptions options = FastOptions();
  options.enable_bn = false;
  ThemisModel model = BuildModel(options);
  HybridEvaluator evaluator(&model, "flights");
  auto plan = evaluator.Plan(
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, PlanKind::kPassthrough);
}

TEST_F(EngineTest, PlanCacheSharesNormalizedText) {
  ThemisModel model = BuildModel(FastOptions());
  HybridEvaluator evaluator(&model, "flights");
  auto a = evaluator.Plan("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st");
  auto b = evaluator.Plan(
      "SELECT  o_st,   COUNT(*)\nFROM flights\nGROUP BY o_st");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get());  // one shared plan object
  EXPECT_EQ(evaluator.planner().cache_hits(), 1u);
  EXPECT_EQ(evaluator.planner().cache_misses(), 1u);
}

TEST_F(EngineTest, QueryBatchMatchesSequentialLoop) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());

  const std::vector<std::string> sqls = {
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
      "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
      "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'",
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
      "SELECT date, COUNT(*) FROM flights GROUP BY date",
  };
  for (AnswerMode mode : {AnswerMode::kHybrid, AnswerMode::kSampleOnly,
                          AnswerMode::kBnOnly}) {
    auto batch = db.QueryBatch(sqls, mode);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), sqls.size());
    for (size_t q = 0; q < sqls.size(); ++q) {
      auto sequential = db.Query(sqls[q], mode);
      ASSERT_TRUE(sequential.ok());
      const sql::QueryResult& batched = (*batch)[q];
      ASSERT_EQ(sequential->rows.size(), batched.rows.size()) << sqls[q];
      for (size_t i = 0; i < sequential->rows.size(); ++i) {
        EXPECT_EQ(sequential->rows[i].group, batched.rows[i].group);
        EXPECT_EQ(sequential->rows[i].values, batched.rows[i].values);
      }
    }
  }
}

TEST_F(EngineTest, ByteBudgetWeighsMarginalsOverProbabilities) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine::Options options;
  options.cache_bytes = 4096;
  bn::InferenceEngine engine(model.network(), options);
  ASSERT_TRUE(engine.Probability({{1, 0}}).ok());
  const size_t prob_cost = engine.cache_stats().cost;
  EXPECT_GT(prob_cost, 0u);
  ASSERT_TRUE(engine.Marginal({1, 2}).ok());
  const size_t with_marginal = engine.cache_stats().cost;
  // A 9-group marginal table costs more than a scalar probability entry.
  EXPECT_GT(with_marginal - prob_cost, prob_cost);
  EXPECT_EQ(engine.cache_stats().entries, 2u);
}

TEST_F(EngineTest, TinyByteBudgetRejectsHugeMarginals) {
  ThemisModel model = BuildModel(FastOptions());
  bn::InferenceEngine::Options options;
  options.cache_bytes = 96;  // fits a probability, not a marginal table
  bn::InferenceEngine engine(model.network(), options);
  ASSERT_TRUE(engine.Probability({{1, 0}}).ok());
  EXPECT_EQ(engine.cache_stats().entries, 1u);
  auto first = engine.Marginal({1, 2});
  auto second = engine.Marginal({1, 2});
  ASSERT_TRUE(first.ok() && second.ok());
  // The marginal was never admitted: both calls miss, the probability
  // entry survives, and answers are unaffected.
  EXPECT_GE(engine.cache_stats().rejections, 2u);
  EXPECT_EQ(engine.cache_stats().entries, 1u);
  ASSERT_TRUE(engine.Probability({{1, 0}}).ok());
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  for (const auto& [key, mass] : first->entries()) {
    EXPECT_EQ(second->Mass(key), mass);
  }
}

TEST_F(EngineTest, ResultMemoServesRepeatedGroupByTraffic) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
  auto cold = db.Query(sql);
  ASSERT_TRUE(cold.ok());
  ResultMemoStats stats = db.evaluator()->result_memo_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  auto warm = db.Query(sql);
  ASSERT_TRUE(warm.ok());
  stats = db.evaluator()->result_memo_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  ASSERT_EQ(cold->rows.size(), warm->rows.size());
  for (size_t i = 0; i < cold->rows.size(); ++i) {
    EXPECT_EQ(cold->rows[i].group, warm->rows[i].group);
    EXPECT_EQ(cold->rows[i].values, warm->rows[i].values);  // bitwise
  }

  // Point queries bypass the memo (the inference cache already covers
  // them) and memoization is per (fingerprint, mode).
  ASSERT_TRUE(
      db.Query("SELECT COUNT(*) FROM flights WHERE o_st = 'FL'").ok());
  EXPECT_EQ(db.evaluator()->result_memo_stats().misses, 1u);
  ASSERT_TRUE(db.Query(sql, AnswerMode::kSampleOnly).ok());
  EXPECT_EQ(db.evaluator()->result_memo_stats().misses, 2u);
}

/// The result memo's cost-aware admission: under a `result_memo_bytes`
/// budget entries weigh their approximate result bytes, oversized answers
/// are rejected outright, and the stats surface evictions/rejections/cost.
TEST_F(EngineTest, ResultMemoCostAwareAdmissionAndStats) {
  auto make_db = [&](const ThemisOptions& options) {
    auto db = std::make_unique<ThemisDb>(options);
    EXPECT_TRUE(db->InsertSample("flights", sample_->Clone()).ok());
    EXPECT_TRUE(
        db->InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
            .ok());
    EXPECT_TRUE(db->Build().ok());
    return db;
  };
  const std::string group_by_1d =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
  const std::string group_by_2d =
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";

  {
    // Entry-count LRU bound: the second distinct fingerprint evicts the
    // first, and the unit-cost accounting shows up in `cost`.
    ThemisOptions options = FastOptions();
    options.result_memo_capacity = 1;
    auto db = make_db(options);
    ASSERT_TRUE(db->Query(group_by_1d).ok());
    ASSERT_TRUE(db->Query(group_by_2d).ok());
    ResultMemoStats stats = db->evaluator()->result_memo_stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.rejections, 0u);
    EXPECT_EQ(stats.cost, 1u);
  }
  {
    // A byte budget too small for any answer: every Put is rejected, so
    // repeats keep missing — but answers are unaffected.
    ThemisOptions options = FastOptions();
    options.result_memo_bytes = 32;
    auto db = make_db(options);
    auto first = db->Query(group_by_1d);
    auto second = db->Query(group_by_1d);
    ASSERT_TRUE(first.ok() && second.ok());
    ResultMemoStats stats = db->evaluator()->result_memo_stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_GE(stats.rejections, 2u);
    for (size_t i = 0; i < first->rows.size(); ++i) {
      EXPECT_EQ(first->rows[i].values, second->rows[i].values);
    }
  }
  {
    // An ample byte budget admits entries at their approximate byte cost
    // (well above the unit cost) and serves repeats.
    ThemisOptions options = FastOptions();
    options.result_memo_bytes = 1 << 20;
    auto db = make_db(options);
    ASSERT_TRUE(db->Query(group_by_1d).ok());
    ASSERT_TRUE(db->Query(group_by_1d).ok());
    ResultMemoStats stats = db->evaluator()->result_memo_stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.rejections, 0u);
    EXPECT_GT(stats.cost, 100u);
    // The 9-group 2D answer weighs more than the 3-group 1D one.
    const size_t cost_1d = stats.cost;
    ASSERT_TRUE(db->Query(group_by_2d).ok());
    stats = db->evaluator()->result_memo_stats();
    EXPECT_GT(stats.cost - cost_1d, cost_1d);
  }
}

TEST_F(EngineTest, ResultMemoInvalidatedOnRebuild) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
  auto before = db.Query(sql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db.Query(sql).ok());  // memoized now
  EXPECT_EQ(db.evaluator()->result_memo_stats().hits, 1u);

  // New knowledge arrives and the model is rebuilt: the memo must not
  // serve stale answers.
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  ResultMemoStats stats = db.evaluator()->result_memo_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
  auto after = db.Query(sql);
  ASSERT_TRUE(after.ok());
  // The (o_st, d_st) aggregate reweights the sample, so the answer
  // actually changes — the fresh memo recomputed it.
  EXPECT_NE(before->ValueMap(), after->ValueMap());
}

/// 200+ mixed point/GROUP BY queries, pool sizes {1, 2, hw}: batch answers
/// bitwise-equal to a sequential Query() loop under every mode, and the
/// result memo pays off on a repeat pass.
TEST_F(EngineTest, QueryBatchStressAcrossPoolSizes) {
  std::vector<std::string> sqls;
  const char* states[] = {"FL", "NC", "NY", "ZZ"};
  for (const char* o : states) {
    for (const char* d : states) {
      sqls.push_back(std::string("SELECT COUNT(*) FROM flights WHERE "
                                 "o_st = '") +
                     o + "' AND d_st = '" + d + "'");
    }
  }
  for (const char* date : {"01", "02"}) {
    for (const char* o : states) {
      sqls.push_back(std::string("SELECT d_st, COUNT(*) FROM flights "
                                 "WHERE date = '") +
                     date + "' AND o_st = '" + o + "' GROUP BY d_st");
    }
  }
  sqls.push_back("SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st");
  sqls.push_back("SELECT date, COUNT(*) FROM flights GROUP BY date");
  sqls.push_back("SELECT COUNT(*) FROM flights WHERE date <> '01'");
  // Repeat the mix until the workload tops 200 queries.
  const size_t distinct = sqls.size();
  while (sqls.size() < 200) {
    sqls.push_back(sqls[sqls.size() % distinct]);
  }
  ASSERT_GE(sqls.size(), 200u);

  const size_t hw = util::DefaultParallelism();
  for (size_t threads : std::vector<size_t>{1, 2, hw}) {
    ThemisOptions options = FastOptions();
    options.num_threads = threads;
    // Honest comparison: the loop must execute, not read the batch's memo.
    options.enable_result_memo = false;
    ThemisDb db(options);
    ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
    ASSERT_TRUE(
        db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
    ASSERT_TRUE(
        db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
            .ok());
    ASSERT_TRUE(db.Build().ok());
    for (AnswerMode mode : {AnswerMode::kHybrid, AnswerMode::kSampleOnly,
                            AnswerMode::kBnOnly}) {
      auto batch = db.QueryBatch(sqls, mode);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      ASSERT_EQ(batch->size(), sqls.size());
      for (size_t q = 0; q < sqls.size(); ++q) {
        auto sequential = db.Query(sqls[q], mode);
        ASSERT_TRUE(sequential.ok());
        const sql::QueryResult& batched = (*batch)[q];
        ASSERT_EQ(sequential->rows.size(), batched.rows.size())
            << sqls[q] << " threads=" << threads;
        for (size_t i = 0; i < sequential->rows.size(); ++i) {
          EXPECT_EQ(sequential->rows[i].group, batched.rows[i].group);
          // Bitwise equality, any pool size.
          EXPECT_EQ(sequential->rows[i].values, batched.rows[i].values)
              << sqls[q] << " threads=" << threads;
        }
      }
    }
  }

  // Repeat pass with the memo on: the second batch is served from it.
  ThemisOptions options = FastOptions();
  options.num_threads = 2;
  ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  auto first = db.QueryBatch(sqls, AnswerMode::kHybrid);
  ASSERT_TRUE(first.ok());
  const ResultMemoStats cold = db.evaluator()->result_memo_stats();
  auto second = db.QueryBatch(sqls, AnswerMode::kHybrid);
  ASSERT_TRUE(second.ok());
  const ResultMemoStats warm = db.evaluator()->result_memo_stats();
  EXPECT_GT(warm.hits, cold.hits);
  // Every non-point query of the repeat pass hit (the first pass already
  // memoized all distinct fingerprints it saw).
  EXPECT_EQ(warm.misses, cold.misses);
  for (size_t q = 0; q < sqls.size(); ++q) {
    ASSERT_EQ((*first)[q].rows.size(), (*second)[q].rows.size());
    for (size_t i = 0; i < (*first)[q].rows.size(); ++i) {
      EXPECT_EQ((*first)[q].rows[i].values, (*second)[q].rows[i].values);
    }
  }
}

/// Single-flight coalescing at the evaluator: a duplicate burst executes
/// the plan exactly once. The leader is parked deterministically by the
/// uncached-execute hook, followers attach while it is parked (observable
/// via coalesced_hits), and every answer — including a fresh post-clear
/// execution — is bitwise identical.
TEST_F(EngineTest, ConcurrentDuplicateGroupBysExecuteOnce) {
  ThemisOptions options = FastOptions();
  options.num_threads = 2;
  ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";

  constexpr size_t kCallers = 4;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<size_t> uncached_executions{0};
  auto first = std::make_shared<std::atomic<bool>>(true);
  db.evaluator()->set_uncached_execute_hook([&, first] {
    uncached_executions.fetch_add(1);
    if (first->exchange(false)) released.wait();  // park only the leader
  });

  std::vector<Result<sql::QueryResult>> answers(
      kCallers, Result<sql::QueryResult>(Status::Internal("unset")));
  std::vector<std::thread> callers;
  for (size_t i = 0; i < kCallers; ++i) {
    callers.emplace_back(
        [&db, &answers, &sql, i] { answers[i] = db.Query(sql); });
  }
  // The leader is parked inside the hook; wait until every other caller
  // has attached to its flight, then let it run.
  while (db.evaluator()->result_memo_stats().coalesced_hits < kCallers - 1) {
    std::this_thread::yield();
  }
  release.set_value();
  for (std::thread& t : callers) t.join();
  db.evaluator()->set_uncached_execute_hook(nullptr);

  EXPECT_EQ(uncached_executions.load(), 1u);
  const ResultMemoStats stats = db.evaluator()->result_memo_stats();
  EXPECT_EQ(stats.coalesced_flights, 1u);
  EXPECT_EQ(stats.coalesced_hits, kCallers - 1);
  EXPECT_EQ(stats.coalesced_detached, 0u);

  // Bitwise: all coalesced answers equal a fresh uncoalesced execution.
  db.evaluator()->ClearResultMemo();
  auto fresh = db.Query(sql);
  ASSERT_TRUE(fresh.ok());
  for (const auto& answer : answers) {
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_EQ(answer->rows.size(), fresh->rows.size());
    for (size_t i = 0; i < fresh->rows.size(); ++i) {
      EXPECT_EQ(answer->rows[i].group, fresh->rows[i].group);
      EXPECT_EQ(answer->rows[i].values, fresh->rows[i].values);
    }
  }
}

/// A follower whose own deadline lapses mid-flight detaches and answers
/// kDeadlineExceeded itself; the leader's execution is untouched and
/// still publishes an OK answer.
TEST_F(EngineTest, FollowerDeadlineDetachesWithoutKillingTheFlight) {
  ThemisOptions options = FastOptions();
  options.num_threads = 2;
  ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  db.evaluator()->set_uncached_execute_hook([released, first] {
    if (first->exchange(false)) released.wait();
  });

  Result<sql::QueryResult> leader_answer(Status::Internal("unset"));
  std::thread leader(
      [&db, &leader_answer, &sql] { leader_answer = db.Query(sql); });
  while (db.evaluator()->result_memo_stats().coalesced_flights < 1) {
    std::this_thread::yield();
  }

  // Attach with a 1ms budget while the leader is parked: this call must
  // come back DeadlineExceeded on its own, well before the leader runs.
  util::CancelToken short_deadline(/*deadline_ms=*/1);
  auto follower_answer =
      db.evaluator()->Query(sql, AnswerMode::kHybrid, &short_deadline);
  EXPECT_EQ(follower_answer.status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(db.evaluator()->result_memo_stats().coalesced_detached, 1u);

  release.set_value();
  leader.join();
  db.evaluator()->set_uncached_execute_hook(nullptr);
  ASSERT_TRUE(leader_answer.ok()) << leader_answer.status().ToString();
}

/// The leader's cancellation does not kill work a follower still wants:
/// the collective flight token ignores the (fired) leader token while a
/// follower is attached, the value is published to the follower, and the
/// leader alone answers kCancelled.
TEST_F(EngineTest, LeaderCancellationPromotesAnAttachedFollower) {
  ThemisOptions options = FastOptions();
  options.num_threads = 2;
  ThemisDb db(options);
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"o_st", "d_st"})
          .ok());
  ASSERT_TRUE(db.Build().ok());
  const std::string sql =
      "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto first = std::make_shared<std::atomic<bool>>(true);
  db.evaluator()->set_uncached_execute_hook([released, first] {
    if (first->exchange(false)) released.wait();
  });

  util::CancelToken leader_token;
  Result<sql::QueryResult> leader_answer(Status::Internal("unset"));
  std::thread leader([&db, &leader_answer, &sql, &leader_token] {
    leader_answer =
        db.evaluator()->Query(sql, AnswerMode::kHybrid, &leader_token);
  });
  while (db.evaluator()->result_memo_stats().coalesced_flights < 1) {
    std::this_thread::yield();
  }

  Result<sql::QueryResult> follower_answer(Status::Internal("unset"));
  std::thread follower(
      [&db, &follower_answer, &sql] { follower_answer = db.Query(sql); });
  while (db.evaluator()->result_memo_stats().coalesced_hits < 1) {
    std::this_thread::yield();
  }

  leader_token.Cancel();  // fires while a follower is attached
  release.set_value();
  leader.join();
  follower.join();
  db.evaluator()->set_uncached_execute_hook(nullptr);

  ASSERT_TRUE(follower_answer.ok()) << follower_answer.status().ToString();
  EXPECT_EQ(leader_answer.status().code(), StatusCode::kCancelled);

  // The promoted execution's answer is the bitwise answer.
  db.evaluator()->ClearResultMemo();
  auto fresh = db.Query(sql);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(follower_answer->rows.size(), fresh->rows.size());
  for (size_t i = 0; i < fresh->rows.size(); ++i) {
    EXPECT_EQ(follower_answer->rows[i].values, fresh->rows[i].values);
  }
}

TEST_F(EngineTest, QueryBatchRequiresBuild) {
  ThemisDb db(FastOptions());
  const std::vector<std::string> sqls = {"SELECT COUNT(*) FROM flights"};
  EXPECT_FALSE(db.QueryBatch(sqls).ok());
}

TEST_F(EngineTest, QueryBatchFailsFastOnMalformedSql) {
  ThemisDb db(FastOptions());
  ASSERT_TRUE(db.InsertSample("flights", sample_->Clone()).ok());
  ASSERT_TRUE(
      db.InsertAggregateFrom("flights", *population_, {"date"}).ok());
  ASSERT_TRUE(db.Build().ok());
  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM flights", "definitely not sql"};
  EXPECT_FALSE(db.QueryBatch(sqls).ok());
}

}  // namespace
}  // namespace themis::core
