#!/usr/bin/env python3
"""Validate a Prometheus text exposition written by the METRICS verb.

Usage:
    tools/check_metrics.py METRICS.txt [--expect-count N]

Checks, in order:
  1. The file parses as Prometheus text format 0.0.4: every non-comment
     line is `name{labels} value` with a valid metric name and a finite
     value; every `# TYPE` / `# HELP` names a valid family.
  2. Every sample's family was declared with a `# TYPE` line before its
     first sample (the exposition groups families).
  3. Histogram families are well-formed per label set: cumulative
     `_bucket` counts are monotone non-decreasing in `le`, a `+Inf`
     bucket exists, and it equals the family's `_count` sample.
  4. The required families for the serving path are present:
     themis_requests_total, themis_request_latency_seconds,
     themis_responses_encoded_total, themis_response_cache_hits_total
     (the response-cache families are emitted — as zeros — even when the
     cache is disabled, so their absence always means a broken
     exposition).
  5. With --expect-count N, themis_request_latency_seconds_count == N
     (the serving invariant: one histogram record per served request,
     so the count must equal served_ok + served_error).

Exit 0 when every check passes, 1 on a validation failure, 2 on
unreadable/malformed input.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)

REQUIRED_FAMILIES = [
    "themis_requests_total",
    "themis_request_latency_seconds",
    "themis_responses_encoded_total",
    "themis_response_cache_hits_total",
]


def parse_labels(text):
    """Returns the label dict, or None on malformed label syntax."""
    if text is None or text.strip() == "":
        return {}
    labels = {}
    pos = 0
    while pos < len(text):
        m = LABEL_RE.match(text, pos)
        if m is None:
            return None
        labels[m.group("key")] = m.group("val")
        pos = m.end()
    return labels


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def base_family(name, types):
    """The declared family a sample name belongs to (histogram samples use
    the family name plus a _bucket/_sum/_count suffix)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument(
        "--expect-count",
        type=int,
        default=None,
        help="required themis_request_latency_seconds_count value",
    )
    args = parser.parse_args()

    try:
        with open(args.path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_metrics: cannot read {args.path}: {e}", file=sys.stderr)
        return 2

    types = {}  # family -> declared type
    samples = []  # (name, labels dict, value, line number)
    errors = []

    for lineno, line in enumerate(lines, start=1):
        if line.strip() == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                family = parts[2]
                if not NAME_RE.match(family):
                    errors.append(f"line {lineno}: bad family name {family!r}")
                elif parts[1] == "TYPE":
                    if family in types:
                        errors.append(
                            f"line {lineno}: duplicate TYPE for {family}"
                        )
                    types[family] = parts[3].strip() if len(parts) > 3 else ""
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        labels = parse_labels(m.group("labels"))
        if labels is None:
            errors.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        value = parse_value(m.group("value"))
        if value is None:
            errors.append(f"line {lineno}: bad value: {m.group('value')!r}")
            continue
        samples.append((m.group("name"), labels, value, lineno))

    if not samples:
        errors.append("no samples found")

    # Every sample must belong to a declared family.
    for name, _labels, _value, lineno in samples:
        if base_family(name, types) is None:
            errors.append(
                f"line {lineno}: sample {name} has no # TYPE declaration"
            )

    # Histogram checks per (family, non-le label set).
    for family, ftype in types.items():
        if ftype != "histogram":
            continue
        buckets = {}  # frozen labels -> list of (le, value)
        counts = {}  # frozen labels -> value
        for name, labels, value, _lineno in samples:
            non_le = frozenset(
                (k, v) for k, v in labels.items() if k != "le"
            )
            if name == family + "_bucket":
                le = parse_value(labels.get("le", ""))
                if le is None:
                    errors.append(f"{family}: bucket with bad le label")
                    continue
                buckets.setdefault(non_le, []).append((le, value))
            elif name == family + "_count":
                counts[non_le] = value
        if not buckets:
            errors.append(f"{family}: histogram with no _bucket samples")
        for non_le, series in buckets.items():
            label_desc = dict(sorted(non_le)) or "{}"
            series.sort(key=lambda p: p[0])
            prev = -math.inf
            for le, value in series:
                if value < prev:
                    errors.append(
                        f"{family}{label_desc}: non-monotone bucket at "
                        f"le={le} ({value} < {prev})"
                    )
                prev = value
            if not series or not math.isinf(series[-1][0]):
                errors.append(f"{family}{label_desc}: missing +Inf bucket")
            else:
                inf_value = series[-1][1]
                if non_le not in counts:
                    errors.append(f"{family}{label_desc}: missing _count")
                elif counts[non_le] != inf_value:
                    errors.append(
                        f"{family}{label_desc}: +Inf bucket {inf_value} != "
                        f"_count {counts[non_le]}"
                    )

    for family in REQUIRED_FAMILIES:
        if family not in types:
            errors.append(f"required family missing: {family}")

    if args.expect_count is not None:
        observed = [
            value
            for name, labels, value, _lineno in samples
            if name == "themis_request_latency_seconds_count"
        ]
        if not observed:
            errors.append(
                "expect-count: themis_request_latency_seconds_count absent"
            )
        elif observed[0] != args.expect_count:
            errors.append(
                f"expect-count: themis_request_latency_seconds_count "
                f"{observed[0]:.0f} != expected {args.expect_count}"
            )

    if errors:
        for err in errors:
            print(f"check_metrics: FAIL {err}")
        return 1
    n_hist = sum(1 for t in types.values() if t == "histogram")
    print(
        f"check_metrics: OK — {len(samples)} samples, {len(types)} "
        f"families ({n_hist} histograms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
