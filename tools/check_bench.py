#!/usr/bin/env python3
"""Compare a fresh bench --json snapshot against a committed baseline.

Usage:
    tools/check_bench.py BASELINE.json CURRENT.json [--tolerance 0.20]

Both files are snapshots written by `bench_executor --json` or
`bench_serving --json`. Only the metrics in each file's "gate" object are
compared. Metrics are higher-is-better ratios (speedups, q/s) unless the
key ends in `_ms`, which marks a lower-is-better latency: those fail when
they rise more than `--ms-tolerance` (default 300%) above the baseline.
The latency headroom is deliberately generous — absolute milliseconds
vary across runners far more than ratios do, and the gate exists to catch
order-of-magnitude regressions (a lost epoll wakeup, a serialization
stall), not scheduler noise. A higher-is-better metric that dropped more
than `tolerance` (default 20%) below the baseline fails the check;
everything else — including new metrics absent from the baseline — is
reported but passes.

Concurrency-dependent gates need a host that can express concurrency:
when the current snapshot reports a top-level "hardware_concurrency" of
1, the `multi_client_speedup` metric is demoted to informational — a
single hardware thread cannot demonstrate a multi-client serving win,
and near-1.0 ratios there are the machine's fault, not a regression.

Latency gates additionally require a trustworthy measurement: a snapshot
whose gate contains `*_ms` metrics must carry a top-level "rounds" of at
least 2 (single-round percentiles are dominated by cold-start noise and
make both a useless baseline and a flaky current run). Such snapshots are
rejected as malformed (exit 2) rather than compared.

Exit code 0 when every shared gate metric is within tolerance, 1 on any
regression, 2 on malformed input.
"""

import argparse
import json
import sys


def load_gate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    gate = snapshot.get("gate")
    if not isinstance(gate, dict) or not gate:
        print(f"check_bench: {path} has no gate object", file=sys.stderr)
        sys.exit(2)
    bad = {k: v for k, v in gate.items() if not isinstance(v, (int, float))}
    if bad:
        print(f"check_bench: non-numeric gate metrics in {path}: {bad}",
              file=sys.stderr)
        sys.exit(2)
    if any(k.endswith("_ms") for k in gate):
        rounds = snapshot.get("rounds")
        if not isinstance(rounds, (int, float)) or rounds < 2:
            print(f"check_bench: {path} gates latency (*_ms) on "
                  f"rounds={rounds!r}; single-round percentiles are noise "
                  f"— re-measure with rounds >= 2", file=sys.stderr)
            sys.exit(2)
    return snapshot.get("bench", "?"), gate, snapshot


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json snapshot")
    parser.add_argument("current", help="freshly produced --json snapshot")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below the baseline "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--ms-tolerance", type=float, default=3.0,
                        help="allowed fractional rise above the baseline "
                             "for *_ms latency metrics (default 3.0 = "
                             "300%%)")
    args = parser.parse_args()

    base_name, baseline, _base_snapshot = load_gate(args.baseline)
    cur_name, current, cur_snapshot = load_gate(args.current)
    if base_name != cur_name:
        print(f"check_bench: comparing different benches "
              f"({base_name} vs {cur_name})", file=sys.stderr)
        sys.exit(2)
    cur_hw = cur_snapshot.get("hardware_concurrency")
    single_core = isinstance(cur_hw, (int, float)) and cur_hw <= 1

    failures = []
    for metric in sorted(set(baseline) | set(current)):
        if metric not in baseline:
            print(f"  NEW  {metric} = {current[metric]:.3f} "
                  f"(no baseline; informational)")
            continue
        if metric not in current:
            failures.append(f"{metric}: present in baseline, "
                            f"missing from current run")
            continue
        base, cur = float(baseline[metric]), float(current[metric])
        if metric == "multi_client_speedup" and single_core:
            print(f"  INFO {metric}: baseline {base:.3f}, current "
                  f"{cur:.3f} (single-core host — informational only)")
            continue
        if metric.endswith("_ms"):
            ceiling = base * (1.0 + args.ms_tolerance)
            status = "OK  " if cur <= ceiling else "FAIL"
            print(f"  {status} {metric}: baseline {base:.3f}, "
                  f"current {cur:.3f} (ceiling {ceiling:.3f})")
            if cur > ceiling:
                failures.append(f"{metric}: {cur:.3f} > {ceiling:.3f} "
                                f"({args.ms_tolerance:.0%} above baseline "
                                f"{base:.3f})")
            continue
        floor = base * (1.0 - args.tolerance)
        status = "OK  " if cur >= floor else "FAIL"
        print(f"  {status} {metric}: baseline {base:.3f}, current {cur:.3f} "
              f"(floor {floor:.3f})")
        if cur < floor:
            failures.append(f"{metric}: {cur:.3f} < {floor:.3f} "
                            f"({args.tolerance:.0%} below baseline "
                            f"{base:.3f})")

    if failures:
        print(f"check_bench: {len(failures)} gate regression(s) in "
              f"{cur_name}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: {cur_name} gate metrics within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
