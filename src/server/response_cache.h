#ifndef THEMIS_SERVER_RESPONSE_CACHE_H_
#define THEMIS_SERVER_RESPONSE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/immutable_buffer.h"
#include "util/lru_cache.h"

namespace themis::server {

/// Byte-budgeted LRU over fully encoded wire response lines — the fourth
/// (and cheapest) tier of the serving hot path, after single-flight,
/// the plan->result memo, and the executor: a repeat of a memoizable OK
/// answer is served from its exact cached bytes on the I/O thread, with
/// no pool handoff and no JSON encoding. Payloads are immutable and
/// refcounted (util::ImmutableBuffer), so a hit is one shared_ptr copy.
///
/// Two-level keying:
///  - a *probe key* — the literal request coordinates available on the
///    I/O thread with zero catalog access (relation field, effective
///    answer mode, raw SQL text) — maps to a *full key*;
///  - the full key — routed relation, that relation's generation at
///    admission time, mode, and the plan fingerprint — maps to the
///    payload bytes, cost-accounted by payload size.
///
/// Correctness under invalidation is generational: Invalidate(relation)
/// bumps the relation's generation, making every full key admitted under
/// the old generation unreachable (stale bytes can never be served), and
/// eagerly erases the relation's resident entries as hygiene. A miss
/// path snapshots Generation() *before* executing; Admit() refuses the
/// bytes if the generation moved while the query ran, closing the
/// in-flight-stale-readmission window.
///
/// Thread-safe; every operation takes the one internal mutex. The hit
/// path deliberately touches no catalog state, so serving cached bytes
/// is well-defined even while another thread mutates unrelated relations.
class ResponseCache {
 public:
  struct Stats {
    /// Requests served from cached bytes (inline on the I/O thread, or
    /// via the pool-thread second-chance lookup at encode time — a herd
    /// follower reusing its leader's freshly admitted bytes).
    size_t hits = 0;
    /// Inline probes that found nothing (each starts a miss path; a
    /// second-chance hit later in the same request still counts here).
    size_t misses = 0;
    /// Entries dropped by the byte budget or by invalidation.
    size_t evictions = 0;
    /// Payloads refused admission (larger than the whole budget, or
    /// stale by generation at admission time).
    size_t rejections = 0;
    size_t entries = 0;
    /// Resident payload bytes.
    size_t bytes = 0;
    /// The byte budget (0 = unbounded).
    size_t capacity = 0;
  };

  /// `capacity_bytes` bounds the resident payload bytes (0 = unbounded).
  explicit ResponseCache(size_t capacity_bytes);

  /// Inline probe on the I/O thread by the request's literal coordinates.
  /// Returns the cached payload, or a null buffer on miss.
  util::ImmutableBuffer Lookup(const std::string& probe_key);

  /// The relation's current generation. A miss path snapshots this
  /// *before* executing and passes it back to Admit().
  uint64_t Generation(const std::string& relation);

  /// Second-chance lookup by full key at encode time on a pool thread:
  /// a coalesced follower finds the bytes its leader just admitted and
  /// skips its own encode. Counts as a hit when found; never as a miss.
  util::ImmutableBuffer LookupFull(const std::string& full_key);

  /// Admits `payload` under `full_key` and wires `probe_key` to it —
  /// unless `relation` has been invalidated past `generation` since the
  /// snapshot, in which case the (possibly stale) bytes are refused.
  void Admit(const std::string& probe_key, const std::string& full_key,
             const std::string& relation, uint64_t generation,
             util::ImmutableBuffer payload);

  /// Bumps `relation`'s generation (every full key admitted under the
  /// old one becomes unreachable) and eagerly erases its resident
  /// entries. Fired from the catalog's mutation listener on
  /// InsertSample/InsertAggregate/Build/DropRelation.
  void Invalidate(const std::string& relation);

  Stats stats() const;

 private:
  struct ProbeEntry {
    std::string full_key;
    std::string relation;
  };
  struct ByteEntry {
    util::ImmutableBuffer payload;
    std::string relation;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> generations_;
  /// probe key -> full key; entry-count bounded (entries are two short
  /// strings — the byte budget governs the payloads below).
  LruCache<std::string, ProbeEntry> probe_;
  /// full key -> payload bytes; cost = payload size.
  LruCache<std::string, ByteEntry> bytes_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  /// Admissions refused because the relation's generation moved while
  /// the query executed (LruCache rejections cover only the too-big case).
  size_t stale_rejections_ = 0;
};

}  // namespace themis::server

#endif  // THEMIS_SERVER_RESPONSE_CACHE_H_
