#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simd/simd.h"
#include "sql/executor.h"
#include "util/cpu_topology.h"
#include "util/eventfd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace themis::server {

namespace {

/// epoll_event.data.u64 tags. Sessions use their id (>= 2).
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Framing bound per session, matching RecvLine's: a peer streaming bytes
/// with no newline may not grow the input buffer without limit.
constexpr size_t kMaxBufferedBytes = 64ull << 20;

/// How long a shutdown waits for unflushed responses once every admitted
/// request has its answer: a peer that stops reading forfeits its
/// responses after this grace instead of pinning Stop() forever.
constexpr std::chrono::seconds kShutdownFlushGrace{10};

/// Retired encode buffers a session keeps for reuse. Small: pipelining
/// depth beyond this just allocates, and idle sessions pin at most this
/// many empty-but-reserved strings.
constexpr size_t kSessionScratchSlots = 8;

/// Scatter-gather bound per sendmsg: 32 completed responses (payload +
/// newline each) leave in one syscall; deeper completed prefixes simply
/// loop.
constexpr size_t kMaxFlushIovecs = 64;

size_t DefaultIoThreads() {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max<size_t>(1, std::min<size_t>(4, hw / 4));
}

}  // namespace

/// One FIFO slot of a session: the response payload once `done`, plus the
/// cancel token the pool task polls (null for inline answers). Shared
/// between the owning I/O thread and the pool task, and kept alive by the
/// task even if the session closes first.
///
/// The payload is either `owned` — bytes encoded into this slot (seeded
/// with a recycled session scratch buffer at admission) — or `shared`, a
/// refcounted handle into the response byte cache; `shared` wins when
/// set. Neither carries the '\n' framing: the flush path appends it via
/// scatter-gather, so cached payloads are served without a single copy.
struct QueryServer::PendingResponse {
  std::shared_ptr<util::CancelToken> cancel;
  std::string owned;
  util::ImmutableBuffer shared;
  /// The response bytes once `done` (no '\n' framing).
  const std::string& payload() const { return shared ? shared.str() : owned; }
  std::atomic<bool> done{false};
  /// Monotonic stamp of the request line's arrival on the I/O thread —
  /// the base of the always-on end-to-end latency histogram.
  int64_t received_ns = 0;
  /// Monotonic stamp of the admission decision; with the pool task's
  /// start it bounds the kQueueWait span.
  int64_t admitted_ns = 0;
  /// Non-null when this request is traced (sampled or slow-query mode);
  /// owned here so the trace lives exactly as long as the request.
  std::unique_ptr<obs::TraceContext> trace;
};

/// One admitted request between its drain pass and its pool dispatch:
/// the parsed request, the FIFO slot it answers into (shared with the
/// owning I/O thread), and the session it came from. Only the owning I/O
/// thread touches the ready list; dispatched copies move into pool tasks.
struct QueryServer::ReadyRequest {
  WireRequest request;
  std::shared_ptr<PendingResponse> slot;
  uint64_t session_id = 0;
};

/// One client connection. Only its owning I/O thread touches it.
struct QueryServer::Session {
  int fd = -1;
  uint64_t id = 0;
  /// Bytes read but not yet parsed into request lines.
  std::string in;
  /// Responses in request order; the completed prefix is flushable.
  std::deque<std::shared_ptr<PendingResponse>> fifo;
  /// Bytes of the front slot's payload-plus-newline already sent — the
  /// partial-write continuation point for the scatter-gather flush.
  size_t out_pos = 0;
  bool want_write = false;  // EPOLLOUT armed
  bool peer_gone = false;   // read side saw EOF / error
  /// Retired `owned` encode buffers (capacity kept, contents cleared),
  /// handed to the next admitted request so the steady-state uncached
  /// path re-encodes into warm allocations instead of growing fresh ones.
  std::vector<std::string> scratch;
  /// Per-session defaults installed by the `set` verb, applied to later
  /// requests that omit `mode` / `deadline_ms`.
  core::AnswerMode default_mode = core::AnswerMode::kHybrid;
  uint64_t default_deadline_ms = 0;
};

/// Response-cache coordinates of one admitted kQuery (see
/// PrepareCacheIntent). `eligible` false means the miss path encodes
/// without admitting.
struct QueryServer::CacheIntent {
  bool eligible = false;
  std::string probe_key;
  std::string full_key;
  std::string relation;
  uint64_t generation = 0;
};

/// One epoll event loop. `mu` guards only the cross-thread mailbox
/// (incoming sockets, completed session ids, the shutdown flag);
/// `sessions` is loop-thread-private.
struct QueryServer::IoThread {
  size_t index = 0;
  int epoll_fd = -1;
  util::EventFd wake;
  std::thread thread;

  std::mutex mu;
  std::vector<int> incoming;
  std::vector<uint64_t> completed;
  bool shutdown = false;

  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions;

  /// Requests admitted during the current drain pass, dispatched together
  /// at the end of the loop iteration (DispatchReady). Loop-thread-private.
  std::vector<ReadyRequest> ready;

  ~IoThread() {
    if (epoll_fd >= 0) ::close(epoll_fd);
  }
};

QueryServer::QueryServer(const core::Catalog* catalog)
    : QueryServer(catalog, Options()) {}

QueryServer::QueryServer(const core::Catalog* catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {
  max_inflight_ = options_.max_inflight > 0
                      ? options_.max_inflight
                      : catalog_->options().max_inflight;
  trace_sample_n_ = options_.trace_sample_n > 0
                        ? options_.trace_sample_n
                        : catalog_->options().trace_sample_n;
  slow_query_ms_ = options_.slow_query_ms > 0 ? options_.slow_query_ms
                                              : catalog_->options().slow_query_ms;
  const size_t slow_log_k = options_.slow_query_log_k > 0
                                ? options_.slow_query_log_k
                                : catalog_->options().slow_query_log_k;
  metrics_ = std::make_unique<obs::ServingMetrics>(slow_log_k);
  const bool cache_enabled =
      options_.enable_response_cache.has_value()
          ? *options_.enable_response_cache
          : catalog_->options().enable_response_cache;
  if (cache_enabled) {
    const size_t cache_bytes = options_.response_cache_bytes > 0
                                   ? options_.response_cache_bytes
                                   : catalog_->options().response_cache_bytes;
    response_cache_ = std::make_unique<ResponseCache>(cache_bytes);
  }
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (listen_fd_ >= 0 || !io_.empty()) {
    return Status::FailedPrecondition("server already started");
  }
  // Belt and braces with MSG_NOSIGNAL: no write to a vanished peer may
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 1024) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  num_io_threads_ =
      options_.io_threads > 0 ? options_.io_threads : DefaultIoThreads();
  default_deadline_ms_ =
      std::min(catalog_->options().default_deadline_ms, kMaxDeadlineMs);

  io_.reserve(num_io_threads_);
  for (size_t i = 0; i < num_io_threads_; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (io->epoll_fd < 0 || !io->wake.valid()) {
      io_.clear();
      ::close(fd);
      return Status::IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->wake.fd(), &ev);
    io_.push_back(std::move(io));
  }
  // The listen socket lives on thread 0, edge-triggered like the
  // sessions: one wakeup per connection burst, accepted until EAGAIN.
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(io_[0]->epoll_fd, EPOLL_CTL_ADD, fd, &ev);

  // Catalog mutations (Build / InsertSample / InsertAggregate /
  // DropRelation) invalidate the relation's cached response bytes in the
  // same breath as the result memo, so stale bytes can never be served.
  if (response_cache_ != nullptr && mutation_listener_id_ == 0) {
    mutation_listener_id_ = catalog_->AddMutationListener(
        [this](const std::string& relation) {
          response_cache_->Invalidate(relation);
        });
  }

  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < num_io_threads_; ++i) {
    io_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  THEMIS_LOG(Info) << "query server listening on 127.0.0.1:" << port_
                   << " (" << num_io_threads_ << " io threads, max_inflight "
                   << max_inflight_ << ", trace_sample_n " << trace_sample_n_
                   << ", slow_query_ms " << slow_query_ms_ << ")";
  return Status::OK();
}

void QueryServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (listen_fd_ < 0 && io_.empty()) return;  // never started / stopped
  stopping_.store(true, std::memory_order_release);
  for (const std::unique_ptr<IoThread>& io : io_) {
    {
      std::lock_guard<std::mutex> io_lock(io->mu);
      io->shutdown = true;
    }
    io->wake.Signal();
  }
  // The I/O threads drain on their own: each keeps flushing until every
  // admitted request has posted its response and every connected peer has
  // read it (or the flush grace lapses).
  for (const std::unique_ptr<IoThread>& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }
  // Pool tasks may outlive their session (peer vanished mid-query, or the
  // flush grace lapsed). Each touches this server and its I/O thread
  // mailbox until its very last action, the drain-count decrement — so
  // Stop() may not free anything before the count hits zero.
  {
    std::unique_lock<std::mutex> drain(drain_mu_);
    drain_cv_.wait(drain, [this] { return tasks_active_ == 0; });
  }
  if (mutation_listener_id_ != 0) {
    catalog_->RemoveMutationListener(mutation_listener_id_);
    mutation_listener_id_ = 0;
  }
  io_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  THEMIS_LOG(Info) << "query server stopped (served_ok "
                   << served_ok_.load(std::memory_order_relaxed)
                   << ", served_error "
                   << served_error_.load(std::memory_order_relaxed)
                   << ", rejected_overload "
                   << rejected_overload_.load(std::memory_order_relaxed)
                   << ")";
}

void QueryServer::IoLoop(size_t index) {
  IoThread& io = *io_[index];
  std::vector<epoll_event> events(64);
  bool shutdown = false;
  std::chrono::steady_clock::time_point flush_deadline{};
  for (;;) {
    if (options_.loop_hook) options_.loop_hook();
    // Once shutdown is requested the loop polls: the remaining wakeups
    // (task completions, final EPOLLOUTs) still arrive through epoll, but
    // the flush grace needs a clock check even when nothing fires.
    const int timeout_ms = shutdown ? 50 : -1;
    const int n = ::epoll_wait(io.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (tag == kListenTag) {
        AcceptReady(io);
        continue;
      }
      if (tag == kWakeTag) {
        io.wake.Drain();  // mailbox handled below
        continue;
      }
      if (ev & EPOLLOUT) FlushSession(io, tag, shutdown);
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(io, tag);
      }
    }
    // One drain pass is over: everything admitted above dispatches now —
    // a lone request as one Submit (no added latency), N>1 as micro-batch
    // tasks. Nothing ever waits for a later iteration.
    DispatchReady(io);
    DrainMailbox(io, &shutdown);
    if (shutdown) {
      if (flush_deadline == std::chrono::steady_clock::time_point{}) {
        flush_deadline = std::chrono::steady_clock::now() +
                         kShutdownFlushGrace;
        // First pass: flush what is already complete; sessions with
        // nothing in flight close immediately.
        std::vector<uint64_t> ids;
        ids.reserve(io.sessions.size());
        for (const auto& [id, session] : io.sessions) ids.push_back(id);
        for (uint64_t id : ids) FlushSession(io, id, true);
      }
      if (io.sessions.empty() ||
          std::chrono::steady_clock::now() >= flush_deadline) {
        break;
      }
    }
  }
  // Forced teardown of whatever survived the grace: cancel the work so
  // the pool stops burning cycles for peers that will never read.
  for (const auto& [id, session] : io.sessions) {
    for (const std::shared_ptr<PendingResponse>& slot : session->fifo) {
      if (slot->cancel && !slot->done.load(std::memory_order_acquire)) {
        slot->cancel->Cancel();
      }
    }
    ::close(session->fd);
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  }
  io.sessions.clear();
}

void QueryServer::AcceptReady(IoThread& io) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (burst drained) or a fatal listen error
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const size_t target = accepted_connections_.fetch_add(
                              1, std::memory_order_relaxed) %
                          num_io_threads_;
    if (target == io.index) {
      AdoptSocket(io, fd);
      continue;
    }
    IoThread& peer = *io_[target];
    {
      std::lock_guard<std::mutex> peer_lock(peer.mu);
      peer.incoming.push_back(fd);
    }
    peer.wake.Signal();
  }
}

void QueryServer::AdoptSocket(IoThread& io, int fd) {
  // Responses are single short lines flushed as one send: never delay
  // them behind Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto session = std::make_unique<Session>();
  session->fd = fd;
  session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = session->id;
  if (::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  open_sessions_.fetch_add(1, std::memory_order_relaxed);
  io.sessions.emplace(session->id, std::move(session));
}

void QueryServer::DrainMailbox(IoThread& io, bool* shutdown) {
  std::vector<int> incoming;
  std::vector<uint64_t> completed;
  {
    std::lock_guard<std::mutex> io_lock(io.mu);
    incoming.swap(io.incoming);
    completed.swap(io.completed);
    if (io.shutdown) *shutdown = true;
  }
  for (int fd : incoming) {
    if (*shutdown) {
      ::close(fd);
      continue;
    }
    AdoptSocket(io, fd);
  }
  for (uint64_t id : completed) FlushSession(io, id, *shutdown);
}

void QueryServer::HandleReadable(IoThread& io, uint64_t session_id) {
  auto it = io.sessions.find(session_id);
  if (it == io.sessions.end()) return;
  Session& session = *it->second;
  bool framing_abuse = false;
  for (;;) {  // edge-triggered: drain until EAGAIN
    char chunk[16384];
    const ssize_t n = ::recv(session.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      session.in.append(chunk, static_cast<size_t>(n));
      if (session.in.size() > kMaxBufferedBytes) {
        framing_abuse = true;
        break;
      }
      continue;
    }
    if (n == 0) {
      session.peer_gone = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    session.peer_gone = true;  // ECONNRESET and friends
    break;
  }
  if (framing_abuse) {
    for (const std::shared_ptr<PendingResponse>& slot : session.fifo) {
      if (slot->cancel && !slot->done.load(std::memory_order_acquire)) {
        slot->cancel->Cancel();
      }
    }
    CloseSession(io, session_id);
    return;
  }
  // Requests already in flight when the peer disconnects are cancelled;
  // the lines delivered together with the close (including a final
  // unterminated one) are still parsed and answered below — the
  // distinction between abandoning work and a half-closing client that
  // still reads its answers.
  const size_t inflight_before_eof =
      session.peer_gone ? session.fifo.size() : 0;
  if (!stopping_.load(std::memory_order_acquire)) {
    size_t newline;
    while ((newline = session.in.find('\n')) != std::string::npos) {
      std::string line = session.in.substr(0, newline);
      session.in.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (Trim(line).empty()) continue;
      HandleLine(io, session, line);
    }
    if (session.peer_gone && !session.in.empty()) {
      std::string line = std::move(session.in);
      session.in.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!Trim(line).empty()) HandleLine(io, session, line);
    }
  }
  if (session.peer_gone) {
    const size_t limit = std::min(inflight_before_eof, session.fifo.size());
    for (size_t i = 0; i < limit; ++i) {
      const std::shared_ptr<PendingResponse>& slot = session.fifo[i];
      if (slot->cancel && !slot->done.load(std::memory_order_acquire)) {
        slot->cancel->Cancel();
      }
    }
  }
  FlushSession(io, session_id, stopping_.load(std::memory_order_acquire));
}

void QueryServer::FlushSession(IoThread& io, uint64_t session_id,
                               bool stopping) {
  auto it = io.sessions.find(session_id);
  if (it == io.sessions.end()) return;
  Session& session = *it->second;
  static char kNewline = '\n';
  bool blocked = false;
  for (;;) {
    // Gather the FIFO's completed prefix — responses leave in request
    // order no matter which finished first — as one scatter-gather write:
    // payload + '\n' per slot, no staging copy. `out_pos` offsets into
    // the front slot when a previous write stopped partway.
    iovec iov[kMaxFlushIovecs];
    size_t niov = 0;
    bool front = true;
    for (const std::shared_ptr<PendingResponse>& slot : session.fifo) {
      if (!slot->done.load(std::memory_order_acquire)) break;
      if (niov + 2 > kMaxFlushIovecs) break;
      const std::string& payload = slot->payload();
      const size_t skip = front ? session.out_pos : 0;
      front = false;
      if (skip < payload.size()) {
        iov[niov].iov_base = const_cast<char*>(payload.data() + skip);
        iov[niov].iov_len = payload.size() - skip;
        ++niov;
      }
      // skip == payload.size() means exactly the newline remains; a slot
      // whose newline was sent retires immediately below, so skip never
      // reaches past it.
      iov[niov].iov_base = &kNewline;
      iov[niov].iov_len = 1;
      ++niov;
    }
    if (niov == 0) break;  // nothing flushable right now
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(session.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        blocked = true;  // partial write: EPOLLOUT continues it
        break;
      }
      // EPIPE/ECONNRESET: nothing can be delivered — stop the work.
      session.peer_gone = true;
      for (const std::shared_ptr<PendingResponse>& slot : session.fifo) {
        if (slot->cancel && !slot->done.load(std::memory_order_acquire)) {
          slot->cancel->Cancel();
        }
      }
      CloseSession(io, session_id);
      return;
    }
    // Retire fully sent slots, recycling their encode buffers; a partial
    // slot keeps its progress in out_pos.
    size_t sent = static_cast<size_t>(n);
    while (sent > 0) {
      PendingResponse& done_slot = *session.fifo.front();
      const size_t remaining =
          done_slot.payload().size() + 1 - session.out_pos;
      if (sent < remaining) {
        session.out_pos += sent;
        break;
      }
      sent -= remaining;
      session.out_pos = 0;
      if (done_slot.owned.capacity() > 0 &&
          session.scratch.size() < kSessionScratchSlots) {
        done_slot.owned.clear();
        session.scratch.push_back(std::move(done_slot.owned));
      }
      session.fifo.pop_front();
    }
  }
  if (blocked != session.want_write) {
    session.want_write = blocked;
    epoll_event ev{};
    ev.data.u64 = session.id;
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
                (blocked ? EPOLLOUT : 0u);
    ::epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, session.fd, &ev);
  }
  const bool drained = !blocked && session.fifo.empty();
  if (drained && (session.peer_gone || stopping)) {
    // Graceful close: the kernel still delivers what was just written.
    CloseSession(io, session_id);
  }
}

void QueryServer::CloseSession(IoThread& io, uint64_t session_id) {
  auto it = io.sessions.find(session_id);
  if (it == io.sessions.end()) return;
  ::close(it->second->fd);  // close() also removes the fd from epoll
  io.sessions.erase(it);
  open_sessions_.fetch_sub(1, std::memory_order_relaxed);
}

void QueryServer::HandleLine(IoThread& io, Session& session,
                             const std::string& line) {
  // Inline answers still enter the FIFO (already resolved) so responses
  // never reorder around in-flight pool work on the same session.
  const auto push_inline = [&session](std::string response) {
    auto slot = std::make_shared<PendingResponse>();
    slot->owned = std::move(response);
    slot->done.store(true, std::memory_order_release);
    session.fifo.push_back(std::move(slot));
  };

  // One clock read per request line: the base of the always-on end-to-end
  // latency histogram. When any tracing is possible it also anchors the
  // kParse span; with tracing fully off no further clocks are read here.
  const int64_t received_ns = util::SteadyNowNs();
  const bool trace_possible = trace_sample_n_ > 0 || slow_query_ms_ > 0;

  auto request = ParseRequest(line);
  const int64_t parse_end_ns = trace_possible ? util::SteadyNowNs() : 0;
  if (!request.ok()) {
    // Answered inline, never admitted: served_ok/served_error count only
    // admitted requests, so admitted == served_ok + served_error +
    // inflight stays an invariant for monitors.
    push_inline(EncodeErrorResponse(request.status()));
    return;
  }
  // STATS and METRICS bypass admission control and the pool: they answer
  // inline from counters, so overload stays observable while it is
  // happening.
  if (request->verb == WireRequest::Verb::kStats) {
    push_inline(ExecuteStats());
    return;
  }
  if (request->verb == WireRequest::Verb::kMetrics) {
    push_inline(EncodeMetricsResponse(MetricsText()));
    return;
  }
  // The `set` verb installs session defaults and answers inline — it
  // spends no admission slot, like STATS.
  if (request->verb == WireRequest::Verb::kSet) {
    if (request->has_mode) session.default_mode = request->mode;
    if (request->has_deadline) {
      session.default_deadline_ms = request->deadline_ms;
    }
    push_inline(EncodeOkResponse());
    return;
  }
  // Session defaults, resolved before the cache probe so the probe key
  // reflects the mode this request will actually execute under.
  if (!request->has_mode) request->mode = session.default_mode;
  if (!request->has_deadline && session.default_deadline_ms > 0) {
    request->deadline_ms = session.default_deadline_ms;
  }

  // Tier-4 hot path: a repeat of a memoized answer is served from its
  // exact cached bytes right here on the I/O thread — no admission slot,
  // no pool handoff, no JSON encode. Counted as admitted + served_ok with
  // its latency recorded, so the monitoring identities (admitted ==
  // served_ok + served_error + inflight; histogram count == served_ok +
  // served_error) hold exactly. Hits skip trace sampling: there are no
  // stages to trace.
  if (response_cache_ != nullptr &&
      request->verb == WireRequest::Verb::kQuery) {
    std::string probe_key;
    probe_key.reserve(request->relation.size() + request->sql.size() + 10);
    probe_key += request->relation;
    probe_key += '\x1f';
    probe_key += AnswerModeWireName(request->mode);
    probe_key += '\x1f';
    probe_key += request->sql;
    util::ImmutableBuffer hit = response_cache_->Lookup(probe_key);
    if (hit) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      served_ok_.fetch_add(1, std::memory_order_relaxed);
      metrics_->request_latency.Record(
          std::max<int64_t>(0, util::SteadyNowNs() - received_ns));
      auto slot = std::make_shared<PendingResponse>();
      slot->received_ns = received_ns;
      slot->shared = std::move(hit);
      slot->done.store(true, std::memory_order_release);
      session.fifo.push_back(std::move(slot));
      return;
    }
  }
  // Admission control: claim an in-flight slot or bounce. The slot covers
  // the request from here until its pool task finishes.
  bool admitted = false;
  if (max_inflight_ == 0) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    admitted = true;
  } else {
    size_t current = inflight_.load(std::memory_order_relaxed);
    while (current < max_inflight_) {
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
  }
  if (!admitted) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    push_inline(EncodeErrorResponse(Status::ResourceExhausted(
        "server overloaded: " + std::to_string(max_inflight_) +
        " requests already in flight")));
    return;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // The deadline budget starts now, at admission — queue time on the pool
  // counts against it.
  const uint64_t deadline_ms =
      request->deadline_ms > 0 ? request->deadline_ms : default_deadline_ms_;
  auto slot = std::make_shared<PendingResponse>();
  slot->cancel = std::make_shared<util::CancelToken>(
      std::min(deadline_ms, kMaxDeadlineMs));
  slot->received_ns = received_ns;
  // Seed the slot with a recycled encode buffer: the uncached response
  // path encodes into capacity a previous response already grew.
  if (!session.scratch.empty()) {
    slot->owned = std::move(session.scratch.back());
    session.scratch.pop_back();
  }

  // Sampling decision, after admission so rejected requests never burn a
  // sampling slot: every Nth admitted request when trace_sample_n is set,
  // every request when a slow-query threshold is armed (the trace is the
  // only way to know after the fact that a request was slow).
  if (trace_possible) {
    const uint64_t seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
    const bool sampled =
        trace_sample_n_ > 0 && seq % trace_sample_n_ == 0;
    if (sampled || slow_query_ms_ > 0) {
      slot->trace = std::make_unique<obs::TraceContext>(received_ns);
      slot->trace->RecordSpan(obs::Stage::kParse, received_ns, parse_end_ns);
      slot->trace->RecordSpan(obs::Stage::kAdmission, parse_end_ns,
                              util::SteadyNowNs());
      slot->trace->SetSql(request->verb == WireRequest::Verb::kBatch
                              ? "<batch of " +
                                    std::to_string(request->batch.size()) +
                                    ">"
                              : request->sql);
    }
    slot->admitted_ns = util::SteadyNowNs();
  }
  session.fifo.push_back(slot);

  // Dispatch is deferred to the end of this drain pass (DispatchReady):
  // the ready list is what lets N requests that woke the loop together
  // leave as one pool task instead of N.
  io.ready.push_back(
      ReadyRequest{std::move(*request), std::move(slot), session.id});
}

void QueryServer::DispatchReady(IoThread& io) {
  if (io.ready.empty()) return;
  std::vector<ReadyRequest> ready;
  ready.swap(io.ready);
  const size_t io_index = io.index;
  // The adaptive policy in full: a lone request — the common case on
  // unique traffic — takes the classic one-Submit path untouched, so
  // coalescing can never add latency when there is nothing to coalesce.
  // Only when the backlog already arrived together (N>1 parsed out of one
  // wake-up) do query requests leave as micro-batches.
  if (!options_.enable_micro_batch || ready.size() == 1) {
    for (ReadyRequest& request : ready) {
      SubmitSingle(io_index, std::move(request));
    }
    return;
  }
  // Client-sent batches (the kBatch verb) keep their dedicated
  // all-or-nothing path; only kQuery requests merge.
  std::vector<ReadyRequest> batchable;
  batchable.reserve(ready.size());
  for (ReadyRequest& request : ready) {
    if (request.request.verb == WireRequest::Verb::kQuery) {
      batchable.push_back(std::move(request));
    } else {
      SubmitSingle(io_index, std::move(request));
    }
  }
  const size_t max_batch =
      options_.micro_batch_max > 0 ? options_.micro_batch_max
                                   : batchable.size();
  size_t begin = 0;
  while (begin < batchable.size()) {
    const size_t n = std::min(max_batch, batchable.size() - begin);
    if (n == 1) {
      SubmitSingle(io_index, std::move(batchable[begin]));
      ++begin;
      continue;
    }
    std::vector<ReadyRequest> batch(
        std::make_move_iterator(batchable.begin() + begin),
        std::make_move_iterator(batchable.begin() + begin + n));
    begin += n;
    SubmitBatch(io_index, std::move(batch));
  }
}

void QueryServer::SubmitSingle(size_t io_index, ReadyRequest ready) {
  {
    std::lock_guard<std::mutex> drain(drain_mu_);
    ++tasks_active_;
  }
  catalog_->pool()->Submit([this, io_index,
                            ready = std::move(ready)]() mutable {
    obs::TraceContext* trace = ready.slot->trace.get();
    if (trace != nullptr) {
      trace->RecordSpan(obs::Stage::kQueueWait, ready.slot->admitted_ns,
                        util::SteadyNowNs());
    }
    try {
      if (options_.request_hook) options_.request_hook();
      ExecuteRequest(ready, trace);
    } catch (...) {
      served_error_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->SetStatus("Internal");
      responses_encoded_.fetch_add(1, std::memory_order_relaxed);
      ready.slot->shared.reset();
      ready.slot->owned = EncodeErrorResponse(
          Status::Internal("request task threw an exception"));
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    RecordRequestDone(*ready.slot, util::SteadyNowNs());
    ready.slot->done.store(true, std::memory_order_release);
    PostCompletions(io_index, {ready.session_id});
    // Very last action: release the drain count. After this the server
    // may be torn down, so nothing below may touch `this`.
    {
      std::lock_guard<std::mutex> drain(drain_mu_);
      --tasks_active_;
      drain_cv_.notify_all();
    }
  });
}

void QueryServer::SubmitBatch(size_t io_index,
                              std::vector<ReadyRequest> batch) {
  {
    std::lock_guard<std::mutex> drain(drain_mu_);
    ++tasks_active_;
  }
  batches_formed_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  catalog_->pool()->Submit([this, io_index,
                            batch = std::move(batch)]() mutable {
    const int64_t task_start_ns = util::SteadyNowNs();
    for (const ReadyRequest& ready : batch) {
      if (ready.slot->trace != nullptr) {
        ready.slot->trace->RecordSpan(obs::Stage::kQueueWait,
                                      ready.slot->admitted_ns, task_start_ns);
      }
    }
    std::vector<Result<sql::QueryResult>> results;
    std::vector<CacheIntent> intents(batch.size());
    try {
      if (options_.request_hook) options_.request_hook();
      std::vector<core::Catalog::QueryItem> items;
      items.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        const ReadyRequest& ready = batch[i];
        // Cache coordinates (incl. the generation snapshot) before the
        // batch executes, exactly like the single-request path.
        intents[i] = PrepareCacheIntent(ready.request);
        items.push_back(core::Catalog::QueryItem{
            ready.request.sql, ready.request.relation, ready.request.mode,
            ready.slot->cancel.get(), ready.slot->trace.get()});
      }
      results = catalog_->QueryMany(items);
    } catch (...) {
      results.clear();
    }
    // Per-logical-request accounting: every request in the batch settles
    // its own admission slot and served_* tallies, exactly as if it had
    // run as its own task — batching changes the task count, never the
    // observable per-request bookkeeping.
    std::vector<uint64_t> sessions;
    sessions.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Result<sql::QueryResult>* result =
          i < results.size() ? &results[i] : nullptr;
      obs::TraceContext* trace = batch[i].slot->trace.get();
      {
        obs::ScopedSpan span(trace, obs::Stage::kSerialize);
        if (result != nullptr) {
          FinalizeOutcome(*result, intents[i], *batch[i].slot);
        } else {
          FinalizeOutcome(Result<sql::QueryResult>(Status::Internal(
                              "request task threw an exception")),
                          intents[i], *batch[i].slot);
        }
      }
      if (trace != nullptr) {
        trace->SetStatus(result != nullptr && result->ok()
                             ? "OK"
                             : StatusCodeName(
                                   result != nullptr
                                       ? result->status().code()
                                       : StatusCode::kInternal));
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      RecordRequestDone(*batch[i].slot, util::SteadyNowNs());
      batch[i].slot->done.store(true, std::memory_order_release);
      sessions.push_back(batch[i].session_id);
    }
    PostCompletions(io_index, sessions);
    // Very last action, as in SubmitSingle: nothing below may touch
    // `this` once the drain count drops.
    {
      std::lock_guard<std::mutex> drain(drain_mu_);
      --tasks_active_;
      drain_cv_.notify_all();
    }
  });
}

void QueryServer::PostCompletions(size_t io_index,
                                  const std::vector<uint64_t>& session_ids) {
  IoThread& owner = *io_[io_index];
  {
    std::lock_guard<std::mutex> owner_lock(owner.mu);
    for (size_t i = 0; i < session_ids.size(); ++i) {
      // A batch often carries several requests of one session; one flush
      // per session is enough.
      if (i > 0 && session_ids[i] == session_ids[i - 1]) continue;
      owner.completed.push_back(session_ids[i]);
    }
  }
  owner.wake.Signal();
}

namespace {

/// The wire taxonomy treats the SQL text as part of the client's request:
/// a query the parser rejects is the client's mistake, so kParseError
/// (an internal library code that also covers config-file parsing)
/// crosses the wire as InvalidArgument. Every other code passes through.
Status AsWireStatus(const Status& status) {
  if (status.code() != StatusCode::kParseError) return status;
  return Status::InvalidArgument(status.message());
}

}  // namespace

QueryServer::CacheIntent QueryServer::PrepareCacheIntent(
    const WireRequest& request) {
  CacheIntent intent;
  if (response_cache_ == nullptr ||
      request.verb != WireRequest::Verb::kQuery) {
    return intent;
  }
  std::string relation = request.relation;
  if (relation.empty()) {
    auto routed = catalog_->Route(request.sql);
    if (!routed.ok()) return intent;  // execution answers the error
    relation = std::move(*routed);
  }
  const core::HybridEvaluator* evaluator = catalog_->evaluator(relation);
  if (evaluator == nullptr) return intent;  // unknown/unbuilt: error path
  // Plan-cache lookup: on the hot path this is a hash probe, not a parse.
  auto plan = evaluator->Plan(request.sql);
  if (!plan.ok() || (*plan)->fingerprint.empty()) return intent;
  // Generation snapshot *before* execution: if the relation mutates while
  // the query runs, Admit() sees the moved generation and refuses the
  // stale bytes.
  intent.generation = response_cache_->Generation(relation);
  intent.probe_key.reserve(request.relation.size() + request.sql.size() + 10);
  intent.probe_key += request.relation;
  intent.probe_key += '\x1f';
  intent.probe_key += AnswerModeWireName(request.mode);
  intent.probe_key += '\x1f';
  intent.probe_key += request.sql;
  const std::string& fingerprint = (*plan)->fingerprint;
  intent.full_key.reserve(relation.size() + fingerprint.size() + 32);
  intent.full_key += relation;
  intent.full_key += '\x1f';
  intent.full_key += std::to_string(intent.generation);
  intent.full_key += '\x1f';
  intent.full_key += AnswerModeWireName(request.mode);
  intent.full_key += '\x1f';
  intent.full_key += fingerprint;
  intent.relation = std::move(relation);
  intent.eligible = true;
  return intent;
}

void QueryServer::FinalizeOutcome(const Result<sql::QueryResult>& result,
                                  const CacheIntent& intent,
                                  PendingResponse& slot) {
  if (result.ok()) {
    served_ok_.fetch_add(1, std::memory_order_relaxed);
    if (intent.eligible) {
      // Second chance: a coalesced peer may have admitted these exact
      // bytes while this request executed — reuse them, skip the encode.
      util::ImmutableBuffer cached =
          response_cache_->LookupFull(intent.full_key);
      if (cached) {
        slot.shared = std::move(cached);
        return;
      }
      std::string encoded = std::move(slot.owned);
      EncodeResultResponseTo(*result, &encoded);
      responses_encoded_.fetch_add(1, std::memory_order_relaxed);
      util::ImmutableBuffer payload(std::move(encoded));
      slot.shared = payload;
      response_cache_->Admit(intent.probe_key, intent.full_key,
                             intent.relation, intent.generation,
                             std::move(payload));
      return;
    }
    EncodeResultResponseTo(*result, &slot.owned);
    responses_encoded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Status& status = result.status();
  served_error_.fetch_add(1, std::memory_order_relaxed);
  if (status.code() == StatusCode::kDeadlineExceeded) {
    served_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kCancelled) {
    served_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  responses_encoded_.fetch_add(1, std::memory_order_relaxed);
  slot.owned = EncodeErrorResponse(AsWireStatus(status));
}

void QueryServer::ExecuteRequest(ReadyRequest& ready,
                                 obs::TraceContext* trace) {
  const WireRequest& request = ready.request;
  const util::CancelToken* cancel = ready.slot->cancel.get();
  if (request.verb == WireRequest::Verb::kBatch) {
    auto results =
        catalog_->QueryBatch(request.batch, request.mode, cancel, trace);
    if (trace != nullptr) {
      trace->SetStatus(results.ok()
                           ? "OK"
                           : StatusCodeName(results.status().code()));
    }
    if (!results.ok()) {
      served_error_.fetch_add(1, std::memory_order_relaxed);
      const Status& status = results.status();
      if (status.code() == StatusCode::kDeadlineExceeded) {
        served_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      } else if (status.code() == StatusCode::kCancelled) {
        served_cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
      responses_encoded_.fetch_add(1, std::memory_order_relaxed);
      ready.slot->owned = EncodeErrorResponse(AsWireStatus(status));
      return;
    }
    served_ok_.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan span(trace, obs::Stage::kSerialize);
    responses_encoded_.fetch_add(1, std::memory_order_relaxed);
    ready.slot->owned = EncodeBatchResponse(*results);
    return;
  }
  const CacheIntent intent = PrepareCacheIntent(request);
  auto result =
      request.relation.empty()
          ? catalog_->Query(request.sql, request.mode, cancel, trace)
          : catalog_->QueryOn(request.relation, request.sql, request.mode,
                              cancel, trace);
  if (trace != nullptr) {
    trace->SetStatus(result.ok() ? "OK"
                                 : StatusCodeName(result.status().code()));
  }
  obs::ScopedSpan span(trace, obs::Stage::kSerialize);
  FinalizeOutcome(result, intent, *ready.slot);
}

void QueryServer::RecordRequestDone(PendingResponse& slot, int64_t end_ns) {
  const int64_t total_ns = std::max<int64_t>(0, end_ns - slot.received_ns);
  metrics_->request_latency.Record(total_ns);
  obs::TraceContext* trace = slot.trace.get();
  if (trace == nullptr) return;
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    if (trace->StageCount(stage) == 0) continue;
    metrics_->stage_latency[i].Record(trace->StageTotalNs(stage));
  }
  // With a slow-query threshold armed, only requests at or over it enter
  // the log (and warn); pure sampling mode logs every sampled trace so
  // the log always holds the worst of what was observed.
  const bool slow =
      slow_query_ms_ > 0 &&
      total_ns >= static_cast<int64_t>(slow_query_ms_) * 1'000'000;
  if (slow_query_ms_ > 0 && !slow) return;
  if (metrics_->slow_log.capacity() == 0) return;
  obs::SlowQueryEntry entry = trace->Finish(total_ns);
  if (slow) {
    THEMIS_LOG(Warning) << "slow query: " << total_ns / 1'000'000
                        << " ms (threshold " << slow_query_ms_
                        << " ms), relation '" << entry.relation
                        << "', status " << entry.status << ", sql: "
                        << entry.sql;
  }
  metrics_->slow_log.Offer(std::move(entry));
}

std::string QueryServer::ExecuteStats() {
  ServerStats stats;
  stats.server = counters();
  stats.host = HostStatsNow();
  stats.relations = catalog_->Stats();
  stats.slow_queries = metrics_->slow_log.Snapshot();
  return EncodeStatsResponse(stats);
}

std::string QueryServer::MetricsText() const {
  using obs::prom::AppendHeader;
  using obs::prom::AppendHistogramNs;
  using obs::prom::AppendSample;
  using obs::prom::Labels;

  std::string out;
  const ServerCounters c = counters();

  const auto counter = [&out](const std::string& name, const char* help,
                              double value) {
    AppendHeader(&out, name, help, "counter");
    AppendSample(&out, name, {}, value);
  };
  const auto gauge = [&out](const std::string& name, const char* help,
                            double value) {
    AppendHeader(&out, name, help, "gauge");
    AppendSample(&out, name, {}, value);
  };

  AppendHeader(&out, "themis_requests_total",
               "Admitted requests that completed, by outcome.", "counter");
  AppendSample(&out, "themis_requests_total", {{"outcome", "ok"}},
               static_cast<double>(c.served_ok));
  AppendSample(&out, "themis_requests_total", {{"outcome", "error"}},
               static_cast<double>(c.served_error));

  counter("themis_requests_deadline_exceeded_total",
          "Requests that unwound cooperatively past their deadline.",
          static_cast<double>(c.served_deadline_exceeded));
  counter("themis_requests_cancelled_total",
          "Requests cancelled by client disconnect mid-query.",
          static_cast<double>(c.served_cancelled));
  counter("themis_requests_rejected_overload_total",
          "Requests bounced by admission control.",
          static_cast<double>(c.rejected_overload));
  counter("themis_requests_admitted_total",
          "Requests admitted past admission control.",
          static_cast<double>(c.admitted));
  counter("themis_connections_accepted_total", "Accepted TCP connections.",
          static_cast<double>(c.accepted_connections));
  counter("themis_micro_batches_formed_total",
          "Pool tasks carrying >= 2 logical requests from one drain pass.",
          static_cast<double>(c.batches_formed));
  counter("themis_micro_batched_requests_total",
          "Logical requests carried inside micro-batch tasks.",
          static_cast<double>(c.batched_requests));
  // The response-byte-cache families are always exposed (zeros when the
  // cache is off) so dashboards and the CI smoke can rely on presence.
  counter("themis_responses_encoded_total",
          "Response payloads JSON-encoded by the serving path "
          "(byte-cache hits serve without encoding).",
          static_cast<double>(c.responses_encoded));
  counter("themis_response_cache_hits_total",
          "Requests served from cached response bytes.",
          static_cast<double>(c.response_cache_hits));
  counter("themis_response_cache_misses_total",
          "Response byte cache probes that found nothing.",
          static_cast<double>(c.response_cache_misses));
  counter("themis_response_cache_evictions_total",
          "Response byte cache entries dropped by budget or invalidation.",
          static_cast<double>(c.response_cache_evictions));
  counter("themis_response_cache_rejections_total",
          "Payloads refused admission (over budget, or stale by "
          "generation).",
          static_cast<double>(c.response_cache_rejections));

  gauge("themis_inflight_requests",
        "Requests currently queued or executing on the pool.",
        static_cast<double>(c.inflight));
  gauge("themis_active_connections",
        "Sessions currently registered with an I/O thread.",
        static_cast<double>(c.active_connections));
  gauge("themis_max_inflight", "Admission-control in-flight bound.",
        static_cast<double>(c.max_inflight));
  gauge("themis_io_threads", "Epoll event-loop threads.",
        static_cast<double>(c.io_threads));
  gauge("themis_response_cache_entries",
        "Resident response byte cache entries.",
        static_cast<double>(c.response_cache_entries));
  gauge("themis_response_cache_bytes",
        "Resident bytes of cached response payloads.",
        static_cast<double>(c.response_cache_bytes));
  gauge("themis_response_cache_capacity_bytes",
        "Response byte cache budget (0 = unbounded; 0 with the cache "
        "disabled).",
        static_cast<double>(c.response_cache_capacity));

  AppendHeader(&out, "themis_request_latency_seconds",
               "End-to-end request latency (arrival on the I/O thread to "
               "response ready), all admitted requests.",
               "histogram");
  AppendHistogramNs(&out, "themis_request_latency_seconds", {},
                    metrics_->request_latency.TakeSnapshot());

  // The stage family only appears once a trace has recorded into it —
  // a histogram TYPE header with zero bucket series is not a valid
  // exposition, and with sampling off there is nothing to say.
  bool stage_header_written = false;
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::Histogram::Snapshot snap = metrics_->stage_latency[i].TakeSnapshot();
    if (snap.count == 0) continue;
    if (!stage_header_written) {
      AppendHeader(&out, "themis_stage_latency_seconds",
                   "Per-request total time in each serving stage (traced "
                   "requests only).",
                   "histogram");
      stage_header_written = true;
    }
    AppendHistogramNs(&out, "themis_stage_latency_seconds",
                      {{"stage", obs::StageName(static_cast<obs::Stage>(i))}},
                      snap);
  }

  // Per-relation cache and executor counters, labeled by relation.
  const std::map<std::string, core::RelationStats> relations =
      catalog_->Stats();
  const auto relation_family =
      [&out, &relations](const std::string& name, const char* help,
                         const char* type,
                         const std::function<double(
                             const core::RelationStats&)>& get) {
        AppendHeader(&out, name, help, type);
        for (const auto& [relation, stats] : relations) {
          AppendSample(&out, name, {{"relation", relation}}, get(stats));
        }
      };
  if (!relations.empty()) {
    relation_family("themis_plan_cache_hits_total", "Plan cache hits.",
                    "counter", [](const core::RelationStats& s) {
                      return static_cast<double>(s.plan_cache_hits);
                    });
    relation_family("themis_plan_cache_misses_total", "Plan cache misses.",
                    "counter", [](const core::RelationStats& s) {
                      return static_cast<double>(s.plan_cache_misses);
                    });
    relation_family("themis_result_memo_hits_total", "Result memo hits.",
                    "counter", [](const core::RelationStats& s) {
                      return static_cast<double>(s.result_memo.hits);
                    });
    relation_family("themis_result_memo_misses_total",
                    "Result memo misses.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(s.result_memo.misses);
                    });
    relation_family("themis_result_memo_entries", "Resident memo entries.",
                    "gauge", [](const core::RelationStats& s) {
                      return static_cast<double>(s.result_memo.entries);
                    });
    relation_family("themis_coalesced_flights_total",
                    "Distinct single-flight executions led.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(
                          s.result_memo.coalesced_flights);
                    });
    relation_family("themis_coalesced_hits_total",
                    "Requests that attached to an in-flight execution.",
                    "counter", [](const core::RelationStats& s) {
                      return static_cast<double>(s.result_memo.coalesced_hits);
                    });
    relation_family("themis_inference_cache_hits_total",
                    "BN inference cache hits.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(s.inference_cache.hits);
                    });
    relation_family("themis_inference_cache_misses_total",
                    "BN inference cache misses.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(s.inference_cache.misses);
                    });
    relation_family("themis_executor_rows_scanned_total",
                    "Rows fed through the filter pipeline.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(s.executor.rows_scanned);
                    });
    relation_family("themis_executor_shards_executed_total",
                    "Scan/join shards whose body ran.", "counter",
                    [](const core::RelationStats& s) {
                      return static_cast<double>(s.executor.shards_executed);
                    });
  }
  return out;
}

HostStats HostStatsNow() {
  const util::CpuTopology& topo = util::CpuTopology::Host();
  HostStats host;
  host.num_cpus = topo.num_cpus;
  host.l1d_bytes = topo.l1d_bytes;
  host.l2_bytes = topo.l2_bytes;
  host.l3_bytes = topo.l3_bytes;
  host.cache_line_bytes = topo.cache_line_bytes;
  host.cache_probed = topo.probed;
  host.simd_backend = simd::BackendName(simd::FromEnv());
  host.shard_target_bytes = sql::AutoShardTargetBytes();
  return host;
}

ServerCounters QueryServer::counters() const {
  ServerCounters counters;
  counters.accepted_connections =
      accepted_connections_.load(std::memory_order_relaxed);
  counters.active_connections =
      open_sessions_.load(std::memory_order_relaxed);
  counters.admitted = admitted_.load(std::memory_order_relaxed);
  counters.served_ok = served_ok_.load(std::memory_order_relaxed);
  counters.served_error = served_error_.load(std::memory_order_relaxed);
  counters.served_deadline_exceeded =
      served_deadline_exceeded_.load(std::memory_order_relaxed);
  counters.served_cancelled =
      served_cancelled_.load(std::memory_order_relaxed);
  counters.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  counters.batches_formed =
      batches_formed_.load(std::memory_order_relaxed);
  counters.batched_requests =
      batched_requests_.load(std::memory_order_relaxed);
  counters.inflight = inflight_.load(std::memory_order_acquire);
  counters.max_inflight = max_inflight_;
  counters.io_threads = num_io_threads_;
  counters.responses_encoded =
      responses_encoded_.load(std::memory_order_relaxed);
  if (response_cache_ != nullptr) {
    const ResponseCache::Stats cache = response_cache_->stats();
    counters.response_cache_hits = cache.hits;
    counters.response_cache_misses = cache.misses;
    counters.response_cache_evictions = cache.evictions;
    counters.response_cache_rejections = cache.rejections;
    counters.response_cache_entries = cache.entries;
    counters.response_cache_bytes = cache.bytes;
    counters.response_cache_capacity = cache.capacity;
  }
  return counters;
}

}  // namespace themis::server
