#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "simd/simd.h"
#include "sql/executor.h"
#include "util/cpu_topology.h"
#include "util/string_util.h"

namespace themis::server {

namespace {

/// An already-resolved response future, for answers produced inline
/// (stats, parse errors, overload rejections) that must still flow
/// through the per-connection FIFO so responses never reorder.
std::future<std::string> Ready(std::string line) {
  std::promise<std::string> promise;
  promise.set_value(std::move(line));
  return promise.get_future();
}

}  // namespace

QueryServer::QueryServer(const core::Catalog* catalog)
    : QueryServer(catalog, Options()) {}

QueryServer::QueryServer(const core::Catalog* catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {
  max_inflight_ = options_.max_inflight > 0
                      ? options_.max_inflight
                      : catalog_->options().max_inflight;
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (listen_fd_ < 0) return;  // never started, or already stopped
  stopping_.store(true, std::memory_order_release);
  // Wake the blocked accept(); on Linux shutdown() on a listening socket
  // makes accept() return immediately.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Drain every session: stop reading new requests, let the writer flush
  // everything already admitted (it blocks on each in-flight future), and
  // only then tear the connection down.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const std::unique_ptr<Session>& session : sessions) {
    ::shutdown(session->fd, SHUT_RD);
  }
  for (const std::unique_ptr<Session>& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
    if (session->writer.joinable()) session->writer.join();
    ::shutdown(session->fd, SHUT_WR);
    ::close(session->fd);
  }
  running_.store(false, std::memory_order_release);
}

void QueryServer::AcceptLoop() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown (or a fatal listen-socket error): stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Bounded writes: a peer that stops reading until its TCP buffer
    // fills would otherwise pin a writer in ::send forever — and with it
    // Stop(), which joins writers after the drain. After the timeout the
    // send fails, the writer treats the peer as gone, and the drain
    // continues without it.
    timeval send_timeout{};
    send_timeout.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      ReapFinishedSessions();
      sessions_.push_back(std::move(session));
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
  }
}

void QueryServer::ReapFinishedSessions() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session* session = it->get();
    if (!session->finished.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (session->reader.joinable()) session->reader.join();
    if (session->writer.joinable()) session->writer.join();
    ::close(session->fd);
    it = sessions_.erase(it);
  }
}

void QueryServer::ReaderLoop(Session* session) {
  std::string buffer;
  std::string line;
  while (RecvLine(session->fd, &buffer, &line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    std::future<std::string> response = HandleLine(line);
    {
      std::lock_guard<std::mutex> lock(session->mu);
      session->responses.push_back(std::move(response));
    }
    session->cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->reader_done = true;
  }
  session->cv.notify_one();
}

void QueryServer::WriterLoop(Session* session) {
  bool peer_alive = true;
  for (;;) {
    std::future<std::string> next;
    {
      std::unique_lock<std::mutex> lock(session->mu);
      session->cv.wait(lock, [session] {
        return session->reader_done || !session->responses.empty();
      });
      if (session->responses.empty()) break;  // reader done and drained
      next = std::move(session->responses.front());
      session->responses.pop_front();
    }
    // Blocks until the pool task resolves — this is what makes shutdown
    // drain in-flight work instead of dropping it.
    std::string response = next.get();
    response.push_back('\n');
    // A vanished peer doesn't abort the drain: remaining futures are
    // still awaited so admitted work retires cleanly.
    if (peer_alive) peer_alive = SendAll(session->fd, response);
  }
  session->finished.store(true, std::memory_order_release);
}

std::future<std::string> QueryServer::HandleLine(const std::string& line) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    // Answered inline, never admitted: served_ok/served_error count only
    // admitted requests, so admitted == served_ok + served_error +
    // inflight stays an invariant for monitors.
    return Ready(EncodeErrorResponse(request.status()));
  }
  // STATS bypasses admission control and the pool: it answers inline from
  // counters, so overload stays observable while it is happening.
  if (request->verb == WireRequest::Verb::kStats) {
    return Ready(ExecuteStats());
  }
  // Admission control: claim an in-flight slot or bounce. The slot covers
  // the request from here until its pool task finishes.
  bool admitted = false;
  if (max_inflight_ == 0) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    admitted = true;
  } else {
    size_t current = inflight_.load(std::memory_order_relaxed);
    while (current < max_inflight_) {
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
  }
  if (!admitted) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    return Ready(EncodeErrorResponse(Status::ResourceExhausted(
        "server overloaded: " + std::to_string(max_inflight_) +
        " requests already in flight")));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return catalog_->pool()->Submit(
      [this, request = std::move(*request)]() mutable {
        std::string response;
        try {
          if (options_.request_hook) options_.request_hook();
          response = ExecuteRequest(request);
        } catch (...) {
          served_error_.fetch_add(1, std::memory_order_relaxed);
          response = EncodeErrorResponse(
              Status::Internal("request task threw an exception"));
        }
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        return response;
      });
}

namespace {

/// The wire taxonomy treats the SQL text as part of the client's request:
/// a query the parser rejects is the client's mistake, so kParseError
/// (an internal library code that also covers config-file parsing)
/// crosses the wire as InvalidArgument. Every other code passes through.
Status AsWireStatus(const Status& status) {
  if (status.code() != StatusCode::kParseError) return status;
  return Status::InvalidArgument(status.message());
}

}  // namespace

std::string QueryServer::ExecuteRequest(const WireRequest& request) {
  if (request.verb == WireRequest::Verb::kBatch) {
    auto results = catalog_->QueryBatch(request.batch, request.mode);
    if (!results.ok()) {
      served_error_.fetch_add(1, std::memory_order_relaxed);
      return EncodeErrorResponse(AsWireStatus(results.status()));
    }
    served_ok_.fetch_add(1, std::memory_order_relaxed);
    return EncodeBatchResponse(*results);
  }
  auto result = request.relation.empty()
                    ? catalog_->Query(request.sql, request.mode)
                    : catalog_->QueryOn(request.relation, request.sql,
                                        request.mode);
  if (!result.ok()) {
    served_error_.fetch_add(1, std::memory_order_relaxed);
    return EncodeErrorResponse(AsWireStatus(result.status()));
  }
  served_ok_.fetch_add(1, std::memory_order_relaxed);
  return EncodeResultResponse(*result);
}

std::string QueryServer::ExecuteStats() {
  ServerStats stats;
  stats.server = counters();
  stats.host = HostStatsNow();
  stats.relations = catalog_->Stats();
  return EncodeStatsResponse(stats);
}

HostStats HostStatsNow() {
  const util::CpuTopology& topo = util::CpuTopology::Host();
  HostStats host;
  host.num_cpus = topo.num_cpus;
  host.l1d_bytes = topo.l1d_bytes;
  host.l2_bytes = topo.l2_bytes;
  host.l3_bytes = topo.l3_bytes;
  host.cache_line_bytes = topo.cache_line_bytes;
  host.cache_probed = topo.probed;
  host.simd_backend = simd::BackendName(simd::FromEnv());
  host.shard_target_bytes = sql::AutoShardTargetBytes();
  return host;
}

ServerCounters QueryServer::counters() const {
  ServerCounters counters;
  counters.accepted_connections =
      accepted_connections_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const std::unique_ptr<Session>& session : sessions_) {
      if (!session->finished.load(std::memory_order_acquire)) {
        ++counters.active_connections;
      }
    }
  }
  counters.admitted = admitted_.load(std::memory_order_relaxed);
  counters.served_ok = served_ok_.load(std::memory_order_relaxed);
  counters.served_error = served_error_.load(std::memory_order_relaxed);
  counters.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  counters.inflight = inflight_.load(std::memory_order_acquire);
  counters.max_inflight = max_inflight_;
  return counters;
}

}  // namespace themis::server
