#ifndef THEMIS_SERVER_QUERY_SERVER_H_
#define THEMIS_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/response_cache.h"
#include "server/wire.h"
#include "util/cancel.h"
#include "util/status.h"

namespace themis::server {

/// The host capability snapshot the STATS verb reports: probed cache
/// topology, active SIMD backend (per THEMIS_SIMD at call time), and the
/// derived per-shard working-set target. Also used by the CLI's startup
/// log so the two always agree.
HostStats HostStatsNow();

/// The async serving front-end: a TCP query server that turns a built
/// core::Catalog into a network service.
///
/// Sessions are multiplexed over a small fixed set of epoll event-loop
/// threads (Options::io_threads) instead of a reader/writer thread pair
/// per connection: each I/O thread owns its sockets edge-triggered,
/// parses line-delimited requests out of a per-session input buffer, and
/// submits each admitted request as a whole plan task via
/// util::ThreadPool::Submit on the catalog's shared pool — so distinct
/// clients' queries execute concurrently (and nest freely with the
/// per-plan K-executor and sharded-scan fan-outs — one pool, no
/// oversubscription) while thousands of idle connections cost no threads
/// at all. Completed responses are posted back to the owning I/O thread
/// through an eventfd wakeup and flushed from a per-session FIFO with
/// partial-write continuation (EPOLLOUT is armed only while a flush is
/// blocked), so one request line yields exactly one response line, in
/// request order per connection — pipelining is allowed and responses
/// never reorder.
///
/// Deadlines and cancellation: a request's `deadline_ms` wire field (or,
/// absent that, ThemisOptions::default_deadline_ms) starts its budget at
/// admission; the serving layer threads a util::CancelToken through
/// Catalog::Query into the executor shard loops, so an expired request
/// unwinds cooperatively and answers kDeadlineExceeded instead of
/// finishing the plan. A client that disconnects mid-query fires the
/// same token and the abandoned work unwinds as kCancelled; cancelled
/// queries never return partial aggregates — a token that does not fire
/// leaves the answer bitwise identical to the in-process Query().
///
/// Admission control: at most `max_inflight` requests may be queued or
/// executing on the pool across all connections; beyond that, requests
/// are rejected immediately with ResourceExhausted instead of queueing
/// without bound. The STATS verb bypasses admission (it answers inline
/// from counters on the I/O thread) so overload stays observable while
/// it is happening.
///
/// Shutdown is graceful: Stop() stops accepting and reading, lets every
/// already-admitted request finish on the pool, flushes its response to
/// every still-connected peer, and only then closes the sessions (a peer
/// that stops reading forfeits its responses after a bounded flush
/// grace).
///
/// The catalog must outlive the server, and catalog mutations
/// (Insert*/Build*/DropRelation) must not race a running server — the
/// same contract as Catalog's concurrent const use.
class QueryServer {
 public:
  struct Options {
    /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
    /// read the chosen one from port() after Start().
    uint16_t port = 0;

    /// Overrides ThemisOptions::max_inflight when positive.
    size_t max_inflight = 0;

    /// Epoll event-loop threads; 0 resolves to
    /// max(1, min(4, hardware_concurrency / 4)) — the I/O side needs few
    /// threads even at thousands of connections, and leaving the rest of
    /// the machine to the executor pool is the point.
    size_t io_threads = 0;

    /// Adaptive micro-batching: when one epoll drain pass parses N>1
    /// ready query requests (same wake-up, possibly across sessions),
    /// submit them as ONE pool task through Catalog::QueryMany instead of
    /// N Submits — amortizing pool handoff and letting duplicates inside
    /// the batch coalesce. The policy never delays a lone request waiting
    /// for peers: batching only triggers when the backlog already arrived
    /// together, so unique-traffic latency is untouched.
    bool enable_micro_batch = true;

    /// Upper bound on one micro-batch; a drain pass with more ready
    /// requests splits into several batch tasks so admission latency
    /// stays bounded.
    size_t micro_batch_max = 64;

    /// Response byte cache overrides: `enable_response_cache` toggles it
    /// regardless of ThemisOptions::enable_response_cache when set (the
    /// serving bench measures its cache-off baseline through this);
    /// `response_cache_bytes` overrides the catalog's byte budget when
    /// positive.
    std::optional<bool> enable_response_cache;
    size_t response_cache_bytes = 0;

    /// Tracing overrides (each overrides its ThemisOptions counterpart
    /// when positive, like max_inflight above — so tests can turn tracing
    /// on without rebuilding the catalog). trace_sample_n traces every Nth
    /// admitted request; slow_query_ms additionally traces *every* request
    /// and logs the ones at or over the threshold; slow_query_log_k sizes
    /// the bounded worst-K slow-query log.
    size_t trace_sample_n = 0;
    uint64_t slow_query_ms = 0;
    size_t slow_query_log_k = 0;

    /// Test-only: runs inside every admitted pool task (single request or
    /// micro-batch) before the query executes. Lets tests hold slots open
    /// deterministically (admission control, drain-on-shutdown, deadline
    /// expiry) without timing races.
    std::function<void()> request_hook;

    /// Test-only: runs at the top of every I/O event-loop iteration,
    /// before epoll_wait. Lets tests park the loop while several sessions
    /// send, so the next drain pass deterministically sees all of them at
    /// once (cross-session micro-batch formation).
    std::function<void()> loop_hook;
  };

  explicit QueryServer(const core::Catalog* catalog);
  QueryServer(const core::Catalog* catalog, Options options);
  ~QueryServer();  // Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the I/O threads. IoError when the socket
  /// cannot be created or bound; FailedPrecondition when already started.
  /// Ignores SIGPIPE process-wide (every write also passes MSG_NOSIGNAL;
  /// the ignore covers any other fd the process writes to a dead peer).
  Status Start();

  /// Graceful shutdown: stop accepting, stop reading, drain in-flight
  /// requests (their responses are still flushed to connected peers),
  /// join every I/O thread, close every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the chosen one when Options::port was 0); 0 before
  /// Start().
  uint16_t port() const { return port_; }

  /// The resolved I/O thread count; 0 before Start().
  size_t io_threads() const { return num_io_threads_; }

  /// Live server counters (the server half of the STATS verb).
  ServerCounters counters() const;

  /// The server-owned latency histograms and slow-query log — how the
  /// serving bench reads the server-side percentiles in-process.
  const obs::ServingMetrics& metrics() const { return *metrics_; }

  /// Renders the full Prometheus text exposition (the METRICS verb's
  /// payload): server counters, request/stage latency histograms, and the
  /// per-relation cache counters.
  std::string MetricsText() const;

 private:
  struct PendingResponse;  // one FIFO slot: cancel token + response payload
  struct Session;          // one connection, owned by one I/O thread
  struct IoThread;         // epoll fd + wakeup + mailbox + sessions
  struct ReadyRequest;     // one admitted request awaiting dispatch
  struct CacheIntent;      // one miss path's response-cache coordinates

  void IoLoop(size_t index);
  /// Accepts until EAGAIN (listen fd is edge-triggered on thread 0) and
  /// hands each socket to an I/O thread round-robin.
  void AcceptReady(IoThread& io);
  /// Registers one accepted socket with `io` as a fresh session.
  void AdoptSocket(IoThread& io, int fd);
  /// Adopts mailbox sockets, flushes sessions with newly-completed
  /// responses, and observes the shutdown flag.
  void DrainMailbox(IoThread& io, bool* shutdown);
  /// Edge-triggered read: drains the socket, parses complete lines,
  /// dispatches each; on EOF cancels the requests already in flight
  /// (the lines delivered with the close are still answered).
  void HandleReadable(IoThread& io, uint64_t session_id);
  /// Writes as much of the FIFO's completed prefix as the socket takes,
  /// arming EPOLLOUT for the remainder; closes the session when it is
  /// drained and the peer is gone (or the server is stopping).
  void FlushSession(IoThread& io, uint64_t session_id, bool stopping);
  void CloseSession(IoThread& io, uint64_t session_id);

  /// Admission control for one parsed line on the owning I/O thread:
  /// inline answers (stats, parse errors, overload rejections) enter the
  /// FIFO already resolved; admitted requests get a cancel token and join
  /// the drain pass's ready list for DispatchReady.
  void HandleLine(IoThread& io, Session& session, const std::string& line);

  /// End of one drain pass: submits the ready list to the pool. A lone
  /// request (or any non-coalescable verb) takes the classic one-Submit
  /// path; N>1 ready query requests become micro-batch tasks over
  /// Catalog::QueryMany, bounded by Options::micro_batch_max.
  void DispatchReady(IoThread& io);
  void SubmitSingle(size_t io_index, ReadyRequest ready);
  void SubmitBatch(size_t io_index, std::vector<ReadyRequest> batch);

  /// Executes one admitted request on the calling (pool) thread, leaving
  /// the response payload in the request's FIFO slot (owned scratch bytes,
  /// or a shared response-cache handle).
  void ExecuteRequest(ReadyRequest& ready, obs::TraceContext* trace);

  /// Response-cache coordinates of one admitted kQuery, computed on the
  /// pool thread *before* execution (route + plan-cache fingerprint +
  /// generation snapshot); not eligible when the cache is off, the plan
  /// has no fingerprint, or routing/planning fails (execution will answer
  /// the error — errors are never cached).
  CacheIntent PrepareCacheIntent(const WireRequest& request);

  /// Always-on per-request accounting at completion time: records the
  /// end-to-end latency histogram, and for traced requests flushes the
  /// per-stage totals into the stage histograms and offers the trace to
  /// the slow-query log.
  void RecordRequestDone(PendingResponse& slot, int64_t end_ns);

  /// Per-logical-request bookkeeping shared by the single and micro-batch
  /// paths: bumps served_ok / served_error (+ deadline/cancel tallies) and
  /// leaves the response payload in `slot` — cached bytes when a coalesced
  /// peer admitted them first (second-chance lookup), a fresh encode into
  /// the slot's recycled scratch buffer otherwise (admitted to the cache
  /// when `intent` is eligible and the relation's generation held).
  void FinalizeOutcome(const Result<sql::QueryResult>& result,
                       const CacheIntent& intent, PendingResponse& slot);

  /// Posts completed session ids back to an I/O thread and releases the
  /// per-request admission slots.
  void PostCompletions(size_t io_index,
                       const std::vector<uint64_t>& session_ids);

  /// STATS verb: server counters + per-relation catalog stats, inline.
  std::string ExecuteStats();

  const core::Catalog* catalog_;
  Options options_;
  size_t max_inflight_ = 0;
  size_t num_io_threads_ = 0;
  /// ThemisOptions::default_deadline_ms, latched at Start().
  uint64_t default_deadline_ms_ = 0;
  /// Resolved tracing config (Options override or ThemisOptions).
  size_t trace_sample_n_ = 0;
  uint64_t slow_query_ms_ = 0;
  /// Heap-held so the (deleted-copy) histograms don't constrain the class.
  std::unique_ptr<obs::ServingMetrics> metrics_;
  /// Wire-level response byte cache; null when disabled. Invalidated by
  /// the catalog mutation listener registered at Start().
  std::unique_ptr<ResponseCache> response_cache_;
  uint64_t mutation_listener_id_ = 0;
  /// Admitted query/batch requests, for the every-Nth sampling decision.
  std::atomic<uint64_t> request_seq_{0};

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Serializes Start/Stop (the destructor races nothing, but tests may
  /// Stop() explicitly before destruction).
  std::mutex lifecycle_mu_;

  std::vector<std::unique_ptr<IoThread>> io_;
  std::atomic<uint64_t> next_session_id_{2};  // 0/1 tag listen/wake

  /// Pool tasks still referencing this server. Stop() may not return
  /// while any exist: each task decrements the count as its very last
  /// action, after posting its response to the mailbox.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t tasks_active_ = 0;

  /// Counter ordering policy (audited with the STATS/METRICS-vs-traffic
  /// race test): monotonic counters use relaxed increments — they carry
  /// no cross-thread data, and a scrape is a point-in-time sample, not a
  /// consistent cut. `inflight_` is the exception (acq_rel: its CAS is
  /// the admission gate), as is each slot's `done` flag (release/acquire:
  /// it publishes the response buffer and the histogram/served_* updates
  /// made before it, which is what makes the METRICS count identity
  /// exact once a client has its answer).
  std::atomic<size_t> accepted_connections_{0};
  std::atomic<size_t> open_sessions_{0};
  std::atomic<size_t> admitted_{0};
  std::atomic<size_t> served_ok_{0};
  std::atomic<size_t> served_error_{0};
  std::atomic<size_t> served_deadline_exceeded_{0};
  std::atomic<size_t> served_cancelled_{0};
  std::atomic<size_t> rejected_overload_{0};
  std::atomic<size_t> inflight_{0};
  /// Micro-batch formation: batch tasks submitted (each covering >= 2
  /// logical requests) and the logical requests they carried.
  std::atomic<size_t> batches_formed_{0};
  std::atomic<size_t> batched_requests_{0};
  /// Response payloads actually JSON-encoded (stays flat across
  /// byte-cache hits — the "zero EncodeResponse" proof counter).
  std::atomic<size_t> responses_encoded_{0};
};

}  // namespace themis::server

#endif  // THEMIS_SERVER_QUERY_SERVER_H_
