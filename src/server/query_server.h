#ifndef THEMIS_SERVER_QUERY_SERVER_H_
#define THEMIS_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "server/wire.h"
#include "util/status.h"

namespace themis::server {

/// The host capability snapshot the STATS verb reports: probed cache
/// topology, active SIMD backend (per THEMIS_SIMD at call time), and the
/// derived per-shard working-set target. Also used by the CLI's startup
/// log so the two always agree.
HostStats HostStatsNow();

/// The async serving front-end: a TCP query server that turns a built
/// core::Catalog into a network service. One accept thread hands each
/// connection a session; a session's requests are parsed off the socket
/// and enqueued as whole plan tasks via util::ThreadPool::Submit on the
/// catalog's shared pool, so distinct clients' queries execute
/// concurrently (and nest freely with the per-plan K-executor and
/// sharded-scan fan-outs — one pool, no oversubscription). Batched
/// requests ride Catalog::QueryBatch, interleaving plans across
/// relations.
///
/// Protocol: line-delimited JSON (see wire.h). One request line yields
/// exactly one response line, in request order per connection —
/// pipelining is allowed and responses never reorder.
///
/// Admission control: at most `max_inflight` requests may be queued or
/// executing on the pool across all connections; beyond that, requests
/// are rejected immediately with ResourceExhausted instead of queueing
/// without bound. The STATS verb bypasses admission (it answers inline
/// from counters) so overload stays observable while it is happening.
///
/// Shutdown is graceful: Stop() closes the listening socket, stops
/// reading new requests, lets every already-admitted request finish on
/// the pool, writes its response, and only then closes the connections.
///
/// The catalog must outlive the server, and catalog mutations
/// (Insert*/Build*/DropRelation) must not race a running server — the
/// same contract as Catalog's concurrent const use.
class QueryServer {
 public:
  struct Options {
    /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
    /// read the chosen one from port() after Start().
    uint16_t port = 0;

    /// Overrides ThemisOptions::max_inflight when positive.
    size_t max_inflight = 0;

    /// Test-only: runs inside every admitted request's pool task before
    /// the query executes. Lets tests hold slots open deterministically
    /// (admission control, drain-on-shutdown) without timing races.
    std::function<void()> request_hook;
  };

  explicit QueryServer(const core::Catalog* catalog);
  QueryServer(const core::Catalog* catalog, Options options);
  ~QueryServer();  // Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept loop. IoError when the socket
  /// cannot be created or bound; FailedPrecondition when already started.
  Status Start();

  /// Graceful shutdown: stop accepting, stop reading, drain in-flight
  /// requests (their responses are still written), join every thread,
  /// close every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the chosen one when Options::port was 0); 0 before
  /// Start().
  uint16_t port() const { return port_; }

  /// Live server counters (the server half of the STATS verb).
  ServerCounters counters() const;

 private:
  /// One client connection. The reader thread parses request lines and
  /// pushes one response future per request; the writer thread pops them
  /// FIFO and writes each response line as it resolves — request order in,
  /// response order out, even with pipelined clients.
  struct Session {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::future<std::string>> responses;
    bool reader_done = false;
    /// Set by the writer as its last action; the accept loop reaps
    /// finished sessions so long-lived servers do not accumulate them.
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ReaderLoop(Session* session);
  void WriterLoop(Session* session);

  /// Admission control + dispatch for one parsed line: returns the future
  /// that will hold the response line (already resolved for inline
  /// answers: stats, parse errors, overload rejections).
  std::future<std::string> HandleLine(const std::string& line);

  /// Executes one admitted request on the calling (pool) thread.
  std::string ExecuteRequest(const WireRequest& request);

  /// STATS verb: server counters + per-relation catalog stats, inline.
  std::string ExecuteStats();

  /// Joins and erases sessions whose writer has finished (locked).
  void ReapFinishedSessions();

  const core::Catalog* catalog_;
  Options options_;
  size_t max_inflight_ = 0;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Serializes Start/Stop (the destructor races nothing, but tests may
  /// Stop() explicitly before destruction).
  std::mutex lifecycle_mu_;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  std::atomic<size_t> accepted_connections_{0};
  std::atomic<size_t> admitted_{0};
  std::atomic<size_t> served_ok_{0};
  std::atomic<size_t> served_error_{0};
  std::atomic<size_t> rejected_overload_{0};
  std::atomic<size_t> inflight_{0};
};

}  // namespace themis::server

#endif  // THEMIS_SERVER_QUERY_SERVER_H_
