#ifndef THEMIS_SERVER_WIRE_H_
#define THEMIS_SERVER_WIRE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/evaluator.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "util/status.h"

namespace themis::server {

/// Minimal JSON document: the wire protocol is line-delimited JSON and the
/// library must not grow a third-party dependency, so this is a small
/// self-contained value type with a strict recursive-descent parser and a
/// deterministic dumper (object keys serialize in sorted order; numbers
/// print with 17 significant digits so doubles round-trip bitwise).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses exactly one JSON document (trailing garbage is an error).
  /// ParseError with a character offset on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

  /// Serializes on one line (no newline appended) — ready for the
  /// line-delimited wire.
  std::string Dump() const;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Array building.
  void Append(JsonValue value);
  /// Object building (overwrites an existing key).
  void Set(const std::string& key, JsonValue value);

  /// Object lookup; null when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Wire names of core::AnswerMode: "hybrid" / "sample" / "bn".
const char* AnswerModeWireName(core::AnswerMode mode);
Result<core::AnswerMode> AnswerModeFromWireName(const std::string& name);

/// Upper bound on a request's `deadline_ms`: one year. Larger values
/// clamp here instead of failing — a client asking for an absurd budget
/// means "effectively no deadline", and the clamp keeps the absolute
/// deadline arithmetic far from time_point overflow.
inline constexpr uint64_t kMaxDeadlineMs = 365ull * 24 * 60 * 60 * 1000;

/// One parsed client request. The wire form is a single-line JSON object:
///
///   {"sql": "SELECT ...", "relation": "flights", "mode": "hybrid"}
///   {"batch": ["SELECT ...", "SELECT ..."], "mode": "sample"}
///   {"verb": "stats"}
///   {"verb": "metrics"}
///   {"verb": "set", "default_mode": "sample", "default_deadline_ms": 100}
///
/// `relation` (optional) bypasses FROM-routing via Catalog::QueryOn —
/// required when relations share a SQL table name. `mode` defaults to
/// hybrid. `verb` defaults to "query"; "stats" and "metrics" take no
/// other fields ("metrics" answers the Prometheus text exposition).
/// `deadline_ms` (optional, query/batch) is the request's execution
/// budget in milliseconds from admission; 0 or absent defers to the
/// server's ThemisOptions::default_deadline_ms.
///
/// "set" installs per-session defaults, answered inline with
/// {"status":"OK"}: `default_mode` is the AnswerMode applied to this
/// session's later query/batch requests that carry no explicit `mode`,
/// and `default_deadline_ms` likewise for `deadline_ms` (its 0 clears
/// the session default back to the server's). Either field may be
/// omitted; the other is left unchanged.
struct WireRequest {
  enum class Verb { kQuery, kBatch, kStats, kMetrics, kSet };
  Verb verb = Verb::kQuery;
  std::string sql;                 // kQuery
  std::vector<std::string> batch;  // kBatch
  std::string relation;            // kQuery only; empty = FROM-routed
  core::AnswerMode mode = core::AnswerMode::kHybrid;
  /// 0 = no per-request deadline (server default applies, if any).
  uint64_t deadline_ms = 0;
  /// Whether the wire line carried the field explicitly ("mode" /
  /// "deadline_ms"; for kSet, "default_mode" / "default_deadline_ms" —
  /// which ride in `mode` / `deadline_ms` above). An absent field falls
  /// back to the session default, then the server default.
  bool has_mode = false;
  bool has_deadline = false;
};

/// Parses one request line. InvalidArgument on malformed JSON, an unknown
/// verb/mode, a non-string sql, a request with both `sql` and `batch`, or
/// a `deadline_ms` that is not a non-negative finite number (values above
/// kMaxDeadlineMs clamp rather than fail).
Result<WireRequest> ParseRequest(const std::string& line);

/// The client half: serializes `request` to its one-line wire form
/// (inverse of ParseRequest, used by server::Client and the round-trip
/// tests).
std::string EncodeRequest(const WireRequest& request);

/// Server-side counters reported by the STATS verb.
struct ServerCounters {
  size_t accepted_connections = 0;
  /// Sessions currently registered with an I/O thread (open sockets,
  /// including ones draining in-flight responses after a disconnect).
  size_t active_connections = 0;
  /// Requests admitted past admission control (includes still-running).
  size_t admitted = 0;
  /// Admitted requests that completed with an OK / error answer.
  size_t served_ok = 0;
  size_t served_error = 0;
  /// Subsets of served_error: requests that unwound cooperatively with
  /// kDeadlineExceeded (budget lapsed) / kCancelled (client disconnected
  /// mid-query).
  size_t served_deadline_exceeded = 0;
  size_t served_cancelled = 0;
  /// Requests bounced with ResourceExhausted by admission control.
  size_t rejected_overload = 0;
  /// Adaptive micro-batching: pool tasks that carried >= 2 logical
  /// requests from one epoll drain pass, and the logical requests they
  /// carried (each still settles its own served_* / admission slot).
  size_t batches_formed = 0;
  size_t batched_requests = 0;
  /// Requests currently queued or executing on the pool.
  size_t inflight = 0;
  size_t max_inflight = 0;
  /// Epoll event-loop threads owning the sessions (fixed at Start()).
  size_t io_threads = 0;
  /// Response payloads the serving path actually JSON-encoded (query and
  /// batch answers, including errors). A response-byte-cache hit serves
  /// without encoding, so on an all-hit hot path this stays flat while
  /// served_ok keeps climbing — the "zero EncodeResponse" proof.
  size_t responses_encoded = 0;
  /// Wire-level response byte cache (server::ResponseCache): requests
  /// served from cached encoded bytes / probes that found none /
  /// entries dropped by budget or invalidation / payloads refused
  /// admission (too big, or stale by generation) / resident entries /
  /// resident payload bytes / byte budget (0 = unbounded). All zero
  /// (capacity included) when the cache is disabled.
  size_t response_cache_hits = 0;
  size_t response_cache_misses = 0;
  size_t response_cache_evictions = 0;
  size_t response_cache_rejections = 0;
  size_t response_cache_entries = 0;
  size_t response_cache_bytes = 0;
  size_t response_cache_capacity = 0;
};

/// Host capability snapshot reported by the STATS verb: the probed cache
/// topology (util::CpuTopology::Host()), the active SIMD kernel backend,
/// and the per-shard working-set target derived from them.
struct HostStats {
  size_t num_cpus = 0;
  size_t l1d_bytes = 0;
  size_t l2_bytes = 0;
  size_t l3_bytes = 0;
  size_t cache_line_bytes = 0;
  bool cache_probed = false;
  std::string simd_backend;
  size_t shard_target_bytes = 0;
};

/// Everything the STATS verb reports: server counters, the host
/// capability snapshot, plus the per-relation cache counters from
/// core::Catalog::Stats().
struct ServerStats {
  ServerCounters server;
  HostStats host;
  std::map<std::string, core::RelationStats> relations;
  /// The server's bounded slow-query log, slowest first: the K worst
  /// traced requests with plan fingerprint, relation, and per-stage
  /// breakdown (empty when tracing never ran). Durations ride the wire in
  /// integer nanoseconds, so they round-trip exactly.
  std::vector<obs::SlowQueryEntry> slow_queries;
};

/// Response encoders. Every response is a single-line JSON object whose
/// "status" member is a util::StatusCode name ("OK", "NotFound", ...);
/// non-OK responses carry the message under "error".
std::string EncodeResultResponse(const sql::QueryResult& result);

/// Pre-sizing heuristic for EncodeResultResponseTo: the fixed envelope,
/// plus the column names, plus rows x (per-row JSON scaffolding + ~26
/// bytes per %.17g double + the first row's group-label bytes as the
/// per-row estimate). Deliberately a slight over-estimate so one reserve
/// covers the whole encode on typical GROUP BY payloads.
size_t EstimateResultResponseBytes(const sql::QueryResult& result);

/// Encodes into `*out` (cleared first, capacity retained and pre-grown
/// to the size estimate) — the allocation-recycling form the server's
/// per-session scratch buffers use. Bytes are identical to
/// EncodeResultResponse, which is a thin wrapper over this.
void EncodeResultResponseTo(const sql::QueryResult& result, std::string* out);

/// The bare {"status":"OK"} acknowledgement (the `set` verb's answer).
std::string EncodeOkResponse();
std::string EncodeBatchResponse(const std::vector<sql::QueryResult>& results);
std::string EncodeStatsResponse(const ServerStats& stats);
/// The METRICS verb's answer: the Prometheus exposition text carried as
/// one JSON string member ("metrics"), keeping the wire line-delimited.
std::string EncodeMetricsResponse(const std::string& prometheus_text);
std::string EncodeErrorResponse(const Status& status);

/// Client-side decoders: the inverse of the encoders above, restoring the
/// Status (code + message) for non-OK lines. Result values round-trip
/// bitwise (17-significant-digit doubles).
Result<sql::QueryResult> DecodeResultResponse(const std::string& line);
Result<std::vector<sql::QueryResult>> DecodeBatchResponse(
    const std::string& line);
Result<ServerStats> DecodeStatsResponse(const std::string& line);
/// Restores the raw Prometheus text from a METRICS response line.
Result<std::string> DecodeMetricsResponse(const std::string& line);

/// Checks a bare acknowledgement line ({"status":"OK"}): OK on success,
/// the restored error Status otherwise. The `set` verb's decoder.
Status DecodeOkResponse(const std::string& line);

/// Line framing over a socket, shared by the blocking client (and any
/// blocking caller; the epoll server has its own non-blocking flush
/// path). SendAll writes the whole buffer: EINTR retries, MSG_NOSIGNAL so
/// a vanished peer is an error rather than a process-killing SIGPIPE, and
/// EAGAIN/EWOULDBLOCK — a blocking socket's SO_SNDTIMEO expiring, or a
/// non-blocking fd passed in by mistake — returns false instead of
/// spinning, so a dead peer can never wedge the writer.
bool SendAll(int fd, const std::string& data);

/// Reads the next '\n'-terminated line (newline stripped) into `line`,
/// buffering partial reads in `buffer`. False on EOF/error with nothing
/// buffered; a final unterminated line is still delivered, so clients
/// that close without a trailing newline get an answer.
bool RecvLine(int fd, std::string* buffer, std::string* line);

}  // namespace themis::server

#endif  // THEMIS_SERVER_WIRE_H_
