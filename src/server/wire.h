#ifndef THEMIS_SERVER_WIRE_H_
#define THEMIS_SERVER_WIRE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/evaluator.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "util/status.h"

namespace themis::server {

/// Minimal JSON document: the wire protocol is line-delimited JSON and the
/// library must not grow a third-party dependency, so this is a small
/// self-contained value type with a strict recursive-descent parser and a
/// deterministic dumper (object keys serialize in sorted order; numbers
/// print with 17 significant digits so doubles round-trip bitwise).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses exactly one JSON document (trailing garbage is an error).
  /// ParseError with a character offset on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

  /// Serializes on one line (no newline appended) — ready for the
  /// line-delimited wire.
  std::string Dump() const;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Array building.
  void Append(JsonValue value);
  /// Object building (overwrites an existing key).
  void Set(const std::string& key, JsonValue value);

  /// Object lookup; null when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Wire names of core::AnswerMode: "hybrid" / "sample" / "bn".
const char* AnswerModeWireName(core::AnswerMode mode);
Result<core::AnswerMode> AnswerModeFromWireName(const std::string& name);

/// Upper bound on a request's `deadline_ms`: one year. Larger values
/// clamp here instead of failing — a client asking for an absurd budget
/// means "effectively no deadline", and the clamp keeps the absolute
/// deadline arithmetic far from time_point overflow.
inline constexpr uint64_t kMaxDeadlineMs = 365ull * 24 * 60 * 60 * 1000;

/// One parsed client request. The wire form is a single-line JSON object:
///
///   {"sql": "SELECT ...", "relation": "flights", "mode": "hybrid"}
///   {"batch": ["SELECT ...", "SELECT ..."], "mode": "sample"}
///   {"verb": "stats"}
///   {"verb": "metrics"}
///
/// `relation` (optional) bypasses FROM-routing via Catalog::QueryOn —
/// required when relations share a SQL table name. `mode` defaults to
/// hybrid. `verb` defaults to "query"; "stats" and "metrics" take no
/// other fields ("metrics" answers the Prometheus text exposition).
/// `deadline_ms` (optional, query/batch) is the request's execution
/// budget in milliseconds from admission; 0 or absent defers to the
/// server's ThemisOptions::default_deadline_ms.
struct WireRequest {
  enum class Verb { kQuery, kBatch, kStats, kMetrics };
  Verb verb = Verb::kQuery;
  std::string sql;                 // kQuery
  std::vector<std::string> batch;  // kBatch
  std::string relation;            // kQuery only; empty = FROM-routed
  core::AnswerMode mode = core::AnswerMode::kHybrid;
  /// 0 = no per-request deadline (server default applies, if any).
  uint64_t deadline_ms = 0;
};

/// Parses one request line. InvalidArgument on malformed JSON, an unknown
/// verb/mode, a non-string sql, a request with both `sql` and `batch`, or
/// a `deadline_ms` that is not a non-negative finite number (values above
/// kMaxDeadlineMs clamp rather than fail).
Result<WireRequest> ParseRequest(const std::string& line);

/// The client half: serializes `request` to its one-line wire form
/// (inverse of ParseRequest, used by server::Client and the round-trip
/// tests).
std::string EncodeRequest(const WireRequest& request);

/// Server-side counters reported by the STATS verb.
struct ServerCounters {
  size_t accepted_connections = 0;
  /// Sessions currently registered with an I/O thread (open sockets,
  /// including ones draining in-flight responses after a disconnect).
  size_t active_connections = 0;
  /// Requests admitted past admission control (includes still-running).
  size_t admitted = 0;
  /// Admitted requests that completed with an OK / error answer.
  size_t served_ok = 0;
  size_t served_error = 0;
  /// Subsets of served_error: requests that unwound cooperatively with
  /// kDeadlineExceeded (budget lapsed) / kCancelled (client disconnected
  /// mid-query).
  size_t served_deadline_exceeded = 0;
  size_t served_cancelled = 0;
  /// Requests bounced with ResourceExhausted by admission control.
  size_t rejected_overload = 0;
  /// Adaptive micro-batching: pool tasks that carried >= 2 logical
  /// requests from one epoll drain pass, and the logical requests they
  /// carried (each still settles its own served_* / admission slot).
  size_t batches_formed = 0;
  size_t batched_requests = 0;
  /// Requests currently queued or executing on the pool.
  size_t inflight = 0;
  size_t max_inflight = 0;
  /// Epoll event-loop threads owning the sessions (fixed at Start()).
  size_t io_threads = 0;
};

/// Host capability snapshot reported by the STATS verb: the probed cache
/// topology (util::CpuTopology::Host()), the active SIMD kernel backend,
/// and the per-shard working-set target derived from them.
struct HostStats {
  size_t num_cpus = 0;
  size_t l1d_bytes = 0;
  size_t l2_bytes = 0;
  size_t l3_bytes = 0;
  size_t cache_line_bytes = 0;
  bool cache_probed = false;
  std::string simd_backend;
  size_t shard_target_bytes = 0;
};

/// Everything the STATS verb reports: server counters, the host
/// capability snapshot, plus the per-relation cache counters from
/// core::Catalog::Stats().
struct ServerStats {
  ServerCounters server;
  HostStats host;
  std::map<std::string, core::RelationStats> relations;
  /// The server's bounded slow-query log, slowest first: the K worst
  /// traced requests with plan fingerprint, relation, and per-stage
  /// breakdown (empty when tracing never ran). Durations ride the wire in
  /// integer nanoseconds, so they round-trip exactly.
  std::vector<obs::SlowQueryEntry> slow_queries;
};

/// Response encoders. Every response is a single-line JSON object whose
/// "status" member is a util::StatusCode name ("OK", "NotFound", ...);
/// non-OK responses carry the message under "error".
std::string EncodeResultResponse(const sql::QueryResult& result);
std::string EncodeBatchResponse(const std::vector<sql::QueryResult>& results);
std::string EncodeStatsResponse(const ServerStats& stats);
/// The METRICS verb's answer: the Prometheus exposition text carried as
/// one JSON string member ("metrics"), keeping the wire line-delimited.
std::string EncodeMetricsResponse(const std::string& prometheus_text);
std::string EncodeErrorResponse(const Status& status);

/// Client-side decoders: the inverse of the encoders above, restoring the
/// Status (code + message) for non-OK lines. Result values round-trip
/// bitwise (17-significant-digit doubles).
Result<sql::QueryResult> DecodeResultResponse(const std::string& line);
Result<std::vector<sql::QueryResult>> DecodeBatchResponse(
    const std::string& line);
Result<ServerStats> DecodeStatsResponse(const std::string& line);
/// Restores the raw Prometheus text from a METRICS response line.
Result<std::string> DecodeMetricsResponse(const std::string& line);

/// Line framing over a socket, shared by the blocking client (and any
/// blocking caller; the epoll server has its own non-blocking flush
/// path). SendAll writes the whole buffer: EINTR retries, MSG_NOSIGNAL so
/// a vanished peer is an error rather than a process-killing SIGPIPE, and
/// EAGAIN/EWOULDBLOCK — a blocking socket's SO_SNDTIMEO expiring, or a
/// non-blocking fd passed in by mistake — returns false instead of
/// spinning, so a dead peer can never wedge the writer.
bool SendAll(int fd, const std::string& data);

/// Reads the next '\n'-terminated line (newline stripped) into `line`,
/// buffering partial reads in `buffer`. False on EOF/error with nothing
/// buffered; a final unterminated line is still delivered, so clients
/// that close without a trailing newline get an answer.
bool RecvLine(int fd, std::string* buffer, std::string* line);

}  // namespace themis::server

#endif  // THEMIS_SERVER_WIRE_H_
