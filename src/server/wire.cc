#include "server/wire.h"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

#include "util/string_util.h"

namespace themis::server {

namespace {

// --- JSON parsing -----------------------------------------------------

/// Recursive-descent JSON parser over a fixed buffer. Depth-limited so a
/// hostile client cannot blow the stack with "[[[[...".
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    THEMIS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::string_view(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      THEMIS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(size_t depth) {
    Consume('{');
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      THEMIS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      THEMIS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    Consume('[');
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    for (;;) {
      THEMIS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          THEMIS_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeWord("\\u")) return Error("lone high surrogate");
            THEMIS_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("unexpected character");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return JsonValue::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- JSON dumping -----------------------------------------------------

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber: {
      const double v = value.number_value();
      // JSON has no NaN/Infinity literal; non-finite values dump as null
      // and decode back to NaN.
      if (!std::isfinite(v)) {
        out->append("null");
      } else {
        out->append(StrFormat("%.17g", v));
      }
      break;
    }
    case JsonValue::Kind::kString:
      AppendEscaped(value.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        DumpTo(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

// --- QueryResult <-> JSON ---------------------------------------------

JsonValue NamesToJson(const std::vector<std::string>& names) {
  JsonValue array = JsonValue::Array();
  for (const std::string& name : names) {
    array.Append(JsonValue::String(name));
  }
  return array;
}

JsonValue ResultToJson(const sql::QueryResult& result) {
  JsonValue object = JsonValue::Object();
  object.Set("group_names", NamesToJson(result.group_names));
  object.Set("value_names", NamesToJson(result.value_names));
  JsonValue rows = JsonValue::Array();
  for (const sql::ResultRow& row : result.rows) {
    JsonValue row_json = JsonValue::Object();
    row_json.Set("group", NamesToJson(row.group));
    JsonValue values = JsonValue::Array();
    for (const double v : row.values) values.Append(JsonValue::Number(v));
    row_json.Set("values", std::move(values));
    rows.Append(std::move(row_json));
  }
  object.Set("rows", std::move(rows));
  return object;
}

Result<std::vector<std::string>> NamesFromJson(const JsonValue* array,
                                               const char* what) {
  if (array == nullptr || !array->is_array()) {
    return Status::ParseError(std::string("response missing array '") + what +
                              "'");
  }
  std::vector<std::string> names;
  names.reserve(array->items().size());
  for (const JsonValue& item : array->items()) {
    if (!item.is_string()) {
      return Status::ParseError(std::string("non-string entry in '") + what +
                                "'");
    }
    names.push_back(item.string_value());
  }
  return names;
}

Result<sql::QueryResult> ResultFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("result is not an object");
  sql::QueryResult result;
  THEMIS_ASSIGN_OR_RETURN(result.group_names,
                          NamesFromJson(json.Find("group_names"),
                                        "group_names"));
  THEMIS_ASSIGN_OR_RETURN(result.value_names,
                          NamesFromJson(json.Find("value_names"),
                                        "value_names"));
  const JsonValue* rows = json.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::ParseError("result missing 'rows'");
  }
  for (const JsonValue& row_json : rows->items()) {
    sql::ResultRow row;
    THEMIS_ASSIGN_OR_RETURN(row.group,
                            NamesFromJson(row_json.Find("group"), "group"));
    const JsonValue* values = row_json.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Status::ParseError("row missing 'values'");
    }
    for (const JsonValue& v : values->items()) {
      if (v.is_null()) {
        row.values.push_back(std::numeric_limits<double>::quiet_NaN());
      } else if (v.is_number()) {
        row.values.push_back(v.number_value());
      } else {
        return Status::ParseError("non-numeric row value");
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

// --- Stats <-> JSON ---------------------------------------------------

JsonValue CountersToJson(const ServerCounters& counters) {
  JsonValue object = JsonValue::Object();
  auto set = [&object](const char* key, size_t v) {
    object.Set(key, JsonValue::Number(static_cast<double>(v)));
  };
  set("accepted_connections", counters.accepted_connections);
  set("active_connections", counters.active_connections);
  set("admitted", counters.admitted);
  set("served_ok", counters.served_ok);
  set("served_error", counters.served_error);
  set("served_deadline_exceeded", counters.served_deadline_exceeded);
  set("served_cancelled", counters.served_cancelled);
  set("rejected_overload", counters.rejected_overload);
  set("batches_formed", counters.batches_formed);
  set("batched_requests", counters.batched_requests);
  set("inflight", counters.inflight);
  set("max_inflight", counters.max_inflight);
  set("io_threads", counters.io_threads);
  set("responses_encoded", counters.responses_encoded);
  set("response_cache_hits", counters.response_cache_hits);
  set("response_cache_misses", counters.response_cache_misses);
  set("response_cache_evictions", counters.response_cache_evictions);
  set("response_cache_rejections", counters.response_cache_rejections);
  set("response_cache_entries", counters.response_cache_entries);
  set("response_cache_bytes", counters.response_cache_bytes);
  set("response_cache_capacity", counters.response_cache_capacity);
  return object;
}

size_t CounterFrom(const JsonValue& object, const char* key) {
  const JsonValue* v = object.Find(key);
  return v != nullptr && v->is_number()
             ? static_cast<size_t>(v->number_value())
             : 0;
}

std::string StringFrom(const JsonValue& object, const char* key) {
  const JsonValue* v = object.Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : "";
}

JsonValue HostStatsToJson(const HostStats& host) {
  JsonValue object = JsonValue::Object();
  auto set = [&object](const char* key, size_t v) {
    object.Set(key, JsonValue::Number(static_cast<double>(v)));
  };
  set("num_cpus", host.num_cpus);
  set("l1d_bytes", host.l1d_bytes);
  set("l2_bytes", host.l2_bytes);
  set("l3_bytes", host.l3_bytes);
  set("cache_line_bytes", host.cache_line_bytes);
  object.Set("cache_probed", JsonValue::Bool(host.cache_probed));
  object.Set("simd_backend", JsonValue::String(host.simd_backend));
  set("shard_target_bytes", host.shard_target_bytes);
  return object;
}

HostStats HostStatsFromJson(const JsonValue& json) {
  HostStats host;
  host.num_cpus = CounterFrom(json, "num_cpus");
  host.l1d_bytes = CounterFrom(json, "l1d_bytes");
  host.l2_bytes = CounterFrom(json, "l2_bytes");
  host.l3_bytes = CounterFrom(json, "l3_bytes");
  host.cache_line_bytes = CounterFrom(json, "cache_line_bytes");
  const JsonValue* probed = json.Find("cache_probed");
  host.cache_probed =
      probed != nullptr && probed->is_bool() && probed->bool_value();
  host.simd_backend = StringFrom(json, "simd_backend");
  host.shard_target_bytes = CounterFrom(json, "shard_target_bytes");
  return host;
}

JsonValue CacheCountersToJson(size_t hits, size_t misses, size_t evictions,
                              size_t rejections, size_t entries, size_t cost,
                              size_t capacity) {
  JsonValue object = JsonValue::Object();
  object.Set("hits", JsonValue::Number(static_cast<double>(hits)));
  object.Set("misses", JsonValue::Number(static_cast<double>(misses)));
  object.Set("evictions", JsonValue::Number(static_cast<double>(evictions)));
  object.Set("rejections",
             JsonValue::Number(static_cast<double>(rejections)));
  object.Set("entries", JsonValue::Number(static_cast<double>(entries)));
  object.Set("cost", JsonValue::Number(static_cast<double>(cost)));
  object.Set("capacity", JsonValue::Number(static_cast<double>(capacity)));
  return object;
}

JsonValue RelationStatsToJson(const core::RelationStats& stats) {
  JsonValue object = JsonValue::Object();
  object.Set("built", JsonValue::Bool(stats.built));
  JsonValue plan = JsonValue::Object();
  plan.Set("hits",
           JsonValue::Number(static_cast<double>(stats.plan_cache_hits)));
  plan.Set("misses",
           JsonValue::Number(static_cast<double>(stats.plan_cache_misses)));
  object.Set("plan_cache", std::move(plan));
  const bn::InferenceCacheStats& inference = stats.inference_cache;
  object.Set("inference_cache",
             CacheCountersToJson(inference.hits, inference.misses,
                                 inference.evictions, inference.rejections,
                                 inference.entries, inference.cost,
                                 inference.capacity));
  const core::ResultMemoStats& memo = stats.result_memo;
  JsonValue memo_json =
      CacheCountersToJson(memo.hits, memo.misses, memo.evictions,
                          memo.rejections, memo.entries, memo.cost,
                          memo.capacity);
  // The memo's single-flight companions: executions led, requests that
  // attached to an in-flight execution, early-detached followers.
  memo_json.Set("coalesced_flights",
                JsonValue::Number(
                    static_cast<double>(memo.coalesced_flights)));
  memo_json.Set("coalesced_hits",
                JsonValue::Number(static_cast<double>(memo.coalesced_hits)));
  memo_json.Set("coalesced_detached",
                JsonValue::Number(
                    static_cast<double>(memo.coalesced_detached)));
  object.Set("result_memo", std::move(memo_json));
  const sql::ExecutorStats& executor = stats.executor;
  JsonValue exec = JsonValue::Object();
  auto set_counter = [&exec](const char* key, uint64_t v) {
    exec.Set(key, JsonValue::Number(static_cast<double>(v)));
  };
  set_counter("rows_scanned", executor.rows_scanned);
  set_counter("rows_passed", executor.rows_passed);
  set_counter("groups_emitted", executor.groups_emitted);
  set_counter("join_build_rows", executor.join_build_rows);
  set_counter("join_probe_rows", executor.join_probe_rows);
  set_counter("filter_kernel_rows", executor.filter_kernel_rows);
  set_counter("gather_kernel_rows", executor.gather_kernel_rows);
  set_counter("shards_executed", executor.shards_executed);
  set_counter("queries_cancelled", executor.queries_cancelled);
  exec.Set("simd_backend", JsonValue::String(executor.simd_backend));
  object.Set("executor", std::move(exec));
  return object;
}

core::RelationStats RelationStatsFromJson(const JsonValue& json) {
  core::RelationStats stats;
  const JsonValue* built = json.Find("built");
  stats.built = built != nullptr && built->is_bool() && built->bool_value();
  if (const JsonValue* plan = json.Find("plan_cache")) {
    stats.plan_cache_hits = CounterFrom(*plan, "hits");
    stats.plan_cache_misses = CounterFrom(*plan, "misses");
  }
  if (const JsonValue* inference = json.Find("inference_cache")) {
    stats.inference_cache.hits = CounterFrom(*inference, "hits");
    stats.inference_cache.misses = CounterFrom(*inference, "misses");
    stats.inference_cache.evictions = CounterFrom(*inference, "evictions");
    stats.inference_cache.rejections = CounterFrom(*inference, "rejections");
    stats.inference_cache.entries = CounterFrom(*inference, "entries");
    stats.inference_cache.cost = CounterFrom(*inference, "cost");
    stats.inference_cache.capacity = CounterFrom(*inference, "capacity");
  }
  if (const JsonValue* memo = json.Find("result_memo")) {
    stats.result_memo.hits = CounterFrom(*memo, "hits");
    stats.result_memo.misses = CounterFrom(*memo, "misses");
    stats.result_memo.evictions = CounterFrom(*memo, "evictions");
    stats.result_memo.rejections = CounterFrom(*memo, "rejections");
    stats.result_memo.entries = CounterFrom(*memo, "entries");
    stats.result_memo.cost = CounterFrom(*memo, "cost");
    stats.result_memo.capacity = CounterFrom(*memo, "capacity");
    stats.result_memo.coalesced_flights =
        CounterFrom(*memo, "coalesced_flights");
    stats.result_memo.coalesced_hits = CounterFrom(*memo, "coalesced_hits");
    stats.result_memo.coalesced_detached =
        CounterFrom(*memo, "coalesced_detached");
  }
  if (const JsonValue* executor = json.Find("executor")) {
    stats.executor.rows_scanned = CounterFrom(*executor, "rows_scanned");
    stats.executor.rows_passed = CounterFrom(*executor, "rows_passed");
    stats.executor.groups_emitted = CounterFrom(*executor, "groups_emitted");
    stats.executor.join_build_rows =
        CounterFrom(*executor, "join_build_rows");
    stats.executor.join_probe_rows =
        CounterFrom(*executor, "join_probe_rows");
    stats.executor.filter_kernel_rows =
        CounterFrom(*executor, "filter_kernel_rows");
    stats.executor.gather_kernel_rows =
        CounterFrom(*executor, "gather_kernel_rows");
    stats.executor.shards_executed = CounterFrom(*executor, "shards_executed");
    stats.executor.queries_cancelled =
        CounterFrom(*executor, "queries_cancelled");
    stats.executor.simd_backend = StringFrom(*executor, "simd_backend");
  }
  return stats;
}

// --- Slow-query log <-> JSON ------------------------------------------

JsonValue SlowQueryEntryToJson(const obs::SlowQueryEntry& entry) {
  JsonValue object = JsonValue::Object();
  object.Set("sql", JsonValue::String(entry.sql));
  object.Set("relation", JsonValue::String(entry.relation));
  object.Set("fingerprint", JsonValue::String(entry.fingerprint));
  object.Set("status", JsonValue::String(entry.status));
  object.Set("total_ns",
             JsonValue::Number(static_cast<double>(entry.total_ns)));
  JsonValue stages = JsonValue::Object();
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::StageSpan& span = entry.stages[i];
    if (span.count == 0) continue;  // stages that never ran stay off the wire
    JsonValue stage = JsonValue::Object();
    stage.Set("count", JsonValue::Number(static_cast<double>(span.count)));
    stage.Set("total_ns",
              JsonValue::Number(static_cast<double>(span.total_ns)));
    stage.Set("begin_rel_ns", JsonValue::Number(static_cast<double>(
                                  span.first_begin_rel_ns)));
    stage.Set("end_rel_ns",
              JsonValue::Number(static_cast<double>(span.last_end_rel_ns)));
    stages.Set(obs::StageName(static_cast<obs::Stage>(i)), std::move(stage));
  }
  object.Set("stages", std::move(stages));
  return object;
}

obs::SlowQueryEntry SlowQueryEntryFromJson(const JsonValue& json) {
  obs::SlowQueryEntry entry;
  entry.sql = StringFrom(json, "sql");
  entry.relation = StringFrom(json, "relation");
  entry.fingerprint = StringFrom(json, "fingerprint");
  entry.status = StringFrom(json, "status");
  entry.total_ns = static_cast<int64_t>(CounterFrom(json, "total_ns"));
  if (const JsonValue* stages = json.Find("stages")) {
    for (size_t i = 0; i < obs::kNumStages; ++i) {
      const JsonValue* stage =
          stages->Find(obs::StageName(static_cast<obs::Stage>(i)));
      if (stage == nullptr) continue;
      obs::StageSpan& span = entry.stages[i];
      span.count = CounterFrom(*stage, "count");
      span.total_ns = static_cast<int64_t>(CounterFrom(*stage, "total_ns"));
      const JsonValue* begin = stage->Find("begin_rel_ns");
      const JsonValue* end = stage->Find("end_rel_ns");
      if (begin != nullptr && begin->is_number()) {
        span.first_begin_rel_ns =
            static_cast<int64_t>(begin->number_value());
      }
      if (end != nullptr && end->is_number()) {
        span.last_end_rel_ns = static_cast<int64_t>(end->number_value());
      }
    }
  }
  return entry;
}

/// Parses a response line and checks its "status" member: returns the
/// parsed object for OK lines, the restored error Status otherwise.
Result<JsonValue> ParseOkResponse(const std::string& line) {
  THEMIS_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(line));
  if (!json.is_object()) {
    return Status::ParseError("response is not a JSON object");
  }
  const JsonValue* status = json.Find("status");
  if (status == nullptr || !status->is_string()) {
    return Status::ParseError("response missing 'status'");
  }
  if (status->string_value() != "OK") {
    const JsonValue* error = json.Find("error");
    return Status(StatusCodeFromName(status->string_value()),
                  error != nullptr && error->is_string()
                      ? error->string_value()
                      : "(no error message)");
  }
  return json;
}

}  // namespace

// --- JsonValue --------------------------------------------------------

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

void JsonValue::Append(JsonValue value) { items_.push_back(std::move(value)); }

void JsonValue::Set(const std::string& key, JsonValue value) {
  members_[key] = std::move(value);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

// --- AnswerMode names -------------------------------------------------

const char* AnswerModeWireName(core::AnswerMode mode) {
  switch (mode) {
    case core::AnswerMode::kHybrid: return "hybrid";
    case core::AnswerMode::kSampleOnly: return "sample";
    case core::AnswerMode::kBnOnly: return "bn";
  }
  return "hybrid";
}

Result<core::AnswerMode> AnswerModeFromWireName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "hybrid") return core::AnswerMode::kHybrid;
  if (lower == "sample") return core::AnswerMode::kSampleOnly;
  if (lower == "bn") return core::AnswerMode::kBnOnly;
  return Status::InvalidArgument("unknown answer mode '" + name +
                                 "' (expected hybrid/sample/bn)");
}

// --- Requests ---------------------------------------------------------

Result<WireRequest> ParseRequest(const std::string& line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    // Malformed JSON is a client mistake, not a server parse detail.
    return Status::InvalidArgument("malformed request: " +
                                   parsed.status().message());
  }
  const JsonValue& json = *parsed;
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  WireRequest request;
  if (const JsonValue* verb = json.Find("verb")) {
    if (!verb->is_string()) {
      return Status::InvalidArgument("'verb' must be a string");
    }
    const std::string name = ToLower(verb->string_value());
    if (name == "stats") {
      request.verb = WireRequest::Verb::kStats;
      return request;
    }
    if (name == "metrics") {
      request.verb = WireRequest::Verb::kMetrics;
      return request;
    }
    if (name == "set") {
      request.verb = WireRequest::Verb::kSet;
      if (json.Find("sql") != nullptr || json.Find("batch") != nullptr) {
        return Status::InvalidArgument(
            "'set' installs session defaults and carries no query");
      }
      if (const JsonValue* mode = json.Find("default_mode")) {
        if (!mode->is_string()) {
          return Status::InvalidArgument("'default_mode' must be a string");
        }
        THEMIS_ASSIGN_OR_RETURN(request.mode,
                                AnswerModeFromWireName(mode->string_value()));
        request.has_mode = true;
      }
      if (const JsonValue* deadline = json.Find("default_deadline_ms")) {
        if (!deadline->is_number() ||
            !std::isfinite(deadline->number_value()) ||
            deadline->number_value() < 0) {
          return Status::InvalidArgument(
              "'default_deadline_ms' must be a non-negative finite number");
        }
        const double ms = deadline->number_value();
        request.deadline_ms = ms >= static_cast<double>(kMaxDeadlineMs)
                                  ? kMaxDeadlineMs
                                  : static_cast<uint64_t>(ms);
        request.has_deadline = true;
      }
      return request;
    }
    if (name != "query") {
      return Status::InvalidArgument("unknown verb '" + verb->string_value() +
                                     "' (expected query/set/stats/metrics)");
    }
  }

  if (const JsonValue* mode = json.Find("mode")) {
    if (!mode->is_string()) {
      return Status::InvalidArgument("'mode' must be a string");
    }
    THEMIS_ASSIGN_OR_RETURN(request.mode,
                            AnswerModeFromWireName(mode->string_value()));
    request.has_mode = true;
  }
  if (const JsonValue* relation = json.Find("relation")) {
    if (!relation->is_string()) {
      return Status::InvalidArgument("'relation' must be a string");
    }
    request.relation = relation->string_value();
  }
  if (const JsonValue* deadline = json.Find("deadline_ms")) {
    if (!deadline->is_number() || !std::isfinite(deadline->number_value()) ||
        deadline->number_value() < 0) {
      return Status::InvalidArgument(
          "'deadline_ms' must be a non-negative finite number");
    }
    const double ms = deadline->number_value();
    request.deadline_ms =
        ms >= static_cast<double>(kMaxDeadlineMs)
            ? kMaxDeadlineMs
            : static_cast<uint64_t>(ms);  // fractional ms truncate
    request.has_deadline = true;
  }

  const JsonValue* sql = json.Find("sql");
  const JsonValue* batch = json.Find("batch");
  if ((sql != nullptr) == (batch != nullptr)) {
    return Status::InvalidArgument(
        "request needs exactly one of 'sql' or 'batch'");
  }
  if (sql != nullptr) {
    if (!sql->is_string()) {
      return Status::InvalidArgument("'sql' must be a string");
    }
    request.verb = WireRequest::Verb::kQuery;
    request.sql = sql->string_value();
    return request;
  }
  if (!batch->is_array()) {
    return Status::InvalidArgument("'batch' must be an array of strings");
  }
  request.verb = WireRequest::Verb::kBatch;
  for (const JsonValue& item : batch->items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("'batch' must be an array of strings");
    }
    request.batch.push_back(item.string_value());
  }
  if (!request.relation.empty()) {
    return Status::InvalidArgument(
        "'relation' applies to single 'sql' requests; batch queries route "
        "by their FROM tables");
  }
  return request;
}

std::string EncodeRequest(const WireRequest& request) {
  JsonValue json = JsonValue::Object();
  switch (request.verb) {
    case WireRequest::Verb::kStats:
      json.Set("verb", JsonValue::String("stats"));
      return json.Dump();
    case WireRequest::Verb::kMetrics:
      json.Set("verb", JsonValue::String("metrics"));
      return json.Dump();
    case WireRequest::Verb::kSet:
      json.Set("verb", JsonValue::String("set"));
      if (request.has_mode) {
        json.Set("default_mode",
                 JsonValue::String(AnswerModeWireName(request.mode)));
      }
      // An explicit 0 clears the session default, so the has-flag (not a
      // non-zero check) decides whether the field rides the wire.
      if (request.has_deadline) {
        json.Set("default_deadline_ms",
                 JsonValue::Number(static_cast<double>(
                     std::min(request.deadline_ms, kMaxDeadlineMs))));
      }
      return json.Dump();
    case WireRequest::Verb::kQuery:
      json.Set("sql", JsonValue::String(request.sql));
      if (!request.relation.empty()) {
        json.Set("relation", JsonValue::String(request.relation));
      }
      break;
    case WireRequest::Verb::kBatch: {
      JsonValue batch = JsonValue::Array();
      for (const std::string& sql : request.batch) {
        batch.Append(JsonValue::String(sql));
      }
      json.Set("batch", std::move(batch));
      break;
    }
  }
  // An omitted mode defers to the session default (the `set` verb), then
  // the server default — so only an explicitly chosen mode rides the wire.
  if (request.has_mode) {
    json.Set("mode", JsonValue::String(AnswerModeWireName(request.mode)));
  }
  if (request.deadline_ms > 0) {
    json.Set("deadline_ms", JsonValue::Number(static_cast<double>(
                                std::min(request.deadline_ms,
                                         kMaxDeadlineMs))));
  }
  return json.Dump();
}

// --- Responses --------------------------------------------------------

size_t EstimateResultResponseBytes(const sql::QueryResult& result) {
  // Envelope: {"result":{"group_names":[...],"value_names":[...],
  // "rows":[...]},"status":"OK"} plus per-name quotes and commas.
  size_t names = 0;
  for (const std::string& name : result.group_names) names += name.size() + 3;
  for (const std::string& name : result.value_names) names += name.size() + 3;
  size_t row_bytes = 0;
  if (!result.rows.empty()) {
    // The first row stands in for all: group labels are near-uniform
    // width within one result, and every row carries the same column
    // count. A %.17g double is at most 24 characters plus its comma.
    const sql::ResultRow& first = result.rows.front();
    size_t group_label = 0;
    for (const std::string& label : first.group) group_label += label.size() + 3;
    row_bytes =
        result.rows.size() * (group_label + 26 * first.values.size() + 32);
  }
  return 64 + names + row_bytes;
}

void EncodeResultResponseTo(const sql::QueryResult& result,
                            std::string* out) {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String("OK"));
  response.Set("result", ResultToJson(result));
  out->clear();
  const size_t estimate = EstimateResultResponseBytes(result);
  if (out->capacity() < estimate) out->reserve(estimate);
  DumpTo(response, out);
}

std::string EncodeResultResponse(const sql::QueryResult& result) {
  std::string out;
  EncodeResultResponseTo(result, &out);
  return out;
}

std::string EncodeOkResponse() {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String("OK"));
  return response.Dump();
}

std::string EncodeBatchResponse(
    const std::vector<sql::QueryResult>& results) {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String("OK"));
  JsonValue array = JsonValue::Array();
  for (const sql::QueryResult& result : results) {
    array.Append(ResultToJson(result));
  }
  response.Set("results", std::move(array));
  return response.Dump();
}

std::string EncodeStatsResponse(const ServerStats& stats) {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String("OK"));
  JsonValue body = JsonValue::Object();
  body.Set("server", CountersToJson(stats.server));
  body.Set("host", HostStatsToJson(stats.host));
  JsonValue relations = JsonValue::Object();
  for (const auto& [name, relation_stats] : stats.relations) {
    relations.Set(name, RelationStatsToJson(relation_stats));
  }
  body.Set("relations", std::move(relations));
  JsonValue slow = JsonValue::Array();
  for (const obs::SlowQueryEntry& entry : stats.slow_queries) {
    slow.Append(SlowQueryEntryToJson(entry));
  }
  body.Set("slow_queries", std::move(slow));
  response.Set("stats", std::move(body));
  return response.Dump();
}

std::string EncodeMetricsResponse(const std::string& prometheus_text) {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String("OK"));
  response.Set("metrics", JsonValue::String(prometheus_text));
  return response.Dump();
}

std::string EncodeErrorResponse(const Status& status) {
  JsonValue response = JsonValue::Object();
  response.Set("status", JsonValue::String(StatusCodeName(status.code())));
  response.Set("error", JsonValue::String(status.message()));
  return response.Dump();
}

Result<sql::QueryResult> DecodeResultResponse(const std::string& line) {
  THEMIS_ASSIGN_OR_RETURN(JsonValue json, ParseOkResponse(line));
  const JsonValue* result = json.Find("result");
  if (result == nullptr) return Status::ParseError("response missing 'result'");
  return ResultFromJson(*result);
}

Result<std::vector<sql::QueryResult>> DecodeBatchResponse(
    const std::string& line) {
  THEMIS_ASSIGN_OR_RETURN(JsonValue json, ParseOkResponse(line));
  const JsonValue* results = json.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Status::ParseError("response missing 'results'");
  }
  std::vector<sql::QueryResult> out;
  out.reserve(results->items().size());
  for (const JsonValue& item : results->items()) {
    THEMIS_ASSIGN_OR_RETURN(sql::QueryResult result, ResultFromJson(item));
    out.push_back(std::move(result));
  }
  return out;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Everything else — EPIPE/ECONNRESET from a vanished peer, and
      // EAGAIN/EWOULDBLOCK when a blocking socket's SO_SNDTIMEO expires —
      // fails the write instead of retrying, so a dead or stalled peer
      // can never wedge the caller.
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buffer, std::string* line) {
  // Bound on one line: the JSON parser above is depth-limited against
  // hostile input, and the framing below it must match — a peer streaming
  // bytes with no newline may not grow the buffer without limit. 64 MiB
  // leaves room for any realistic batch response.
  constexpr size_t kMaxLineBytes = 64ull << 20;
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    if (buffer->size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (!buffer->empty()) {
        line->assign(std::move(*buffer));
        buffer->clear();
        return true;
      }
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

Result<ServerStats> DecodeStatsResponse(const std::string& line) {
  THEMIS_ASSIGN_OR_RETURN(JsonValue json, ParseOkResponse(line));
  const JsonValue* body = json.Find("stats");
  if (body == nullptr || !body->is_object()) {
    return Status::ParseError("response missing 'stats'");
  }
  ServerStats stats;
  if (const JsonValue* server = body->Find("server")) {
    stats.server.accepted_connections =
        CounterFrom(*server, "accepted_connections");
    stats.server.active_connections =
        CounterFrom(*server, "active_connections");
    stats.server.admitted = CounterFrom(*server, "admitted");
    stats.server.served_ok = CounterFrom(*server, "served_ok");
    stats.server.served_error = CounterFrom(*server, "served_error");
    stats.server.served_deadline_exceeded =
        CounterFrom(*server, "served_deadline_exceeded");
    stats.server.served_cancelled = CounterFrom(*server, "served_cancelled");
    stats.server.rejected_overload =
        CounterFrom(*server, "rejected_overload");
    stats.server.batches_formed = CounterFrom(*server, "batches_formed");
    stats.server.batched_requests =
        CounterFrom(*server, "batched_requests");
    stats.server.inflight = CounterFrom(*server, "inflight");
    stats.server.max_inflight = CounterFrom(*server, "max_inflight");
    stats.server.io_threads = CounterFrom(*server, "io_threads");
    stats.server.responses_encoded = CounterFrom(*server, "responses_encoded");
    stats.server.response_cache_hits =
        CounterFrom(*server, "response_cache_hits");
    stats.server.response_cache_misses =
        CounterFrom(*server, "response_cache_misses");
    stats.server.response_cache_evictions =
        CounterFrom(*server, "response_cache_evictions");
    stats.server.response_cache_rejections =
        CounterFrom(*server, "response_cache_rejections");
    stats.server.response_cache_entries =
        CounterFrom(*server, "response_cache_entries");
    stats.server.response_cache_bytes =
        CounterFrom(*server, "response_cache_bytes");
    stats.server.response_cache_capacity =
        CounterFrom(*server, "response_cache_capacity");
  }
  if (const JsonValue* host = body->Find("host")) {
    stats.host = HostStatsFromJson(*host);
  }
  if (const JsonValue* relations = body->Find("relations")) {
    for (const auto& [name, relation_json] : relations->members()) {
      stats.relations.emplace(name, RelationStatsFromJson(relation_json));
    }
  }
  if (const JsonValue* slow = body->Find("slow_queries");
      slow != nullptr && slow->is_array()) {
    stats.slow_queries.reserve(slow->items().size());
    for (const JsonValue& item : slow->items()) {
      stats.slow_queries.push_back(SlowQueryEntryFromJson(item));
    }
  }
  return stats;
}

Result<std::string> DecodeMetricsResponse(const std::string& line) {
  THEMIS_ASSIGN_OR_RETURN(JsonValue json, ParseOkResponse(line));
  const JsonValue* metrics = json.Find("metrics");
  if (metrics == nullptr || !metrics->is_string()) {
    return Status::ParseError("response missing 'metrics'");
  }
  return metrics->string_value();
}

Status DecodeOkResponse(const std::string& line) {
  return ParseOkResponse(line).status();
}

}  // namespace themis::server
