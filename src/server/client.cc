#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace themis::server {

Result<Client> Client::Connect(uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(
        "connect to " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::set_timeout_ms(uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::IoError(std::string("setsockopt: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status Client::Send(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  std::string framed = line;
  framed.push_back('\n');
  if (!SendAll(fd_, framed)) {
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> Client::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  std::string line;
  if (!RecvLine(fd_, &buffer_, &line)) {
    return Status::IoError("server closed the connection");
  }
  return line;
}

Result<std::string> Client::RoundTrip(const std::string& line) {
  THEMIS_RETURN_IF_ERROR(Send(line));
  return Receive();
}

Result<sql::QueryResult> Client::Query(const std::string& sql,
                                       const std::string& relation,
                                       std::optional<core::AnswerMode> mode,
                                       uint64_t deadline_ms) {
  WireRequest request;
  request.verb = WireRequest::Verb::kQuery;
  request.sql = sql;
  request.relation = relation;
  if (mode.has_value()) {
    request.mode = *mode;
    request.has_mode = true;
  }
  request.deadline_ms = deadline_ms;
  THEMIS_ASSIGN_OR_RETURN(std::string response,
                          RoundTrip(EncodeRequest(request)));
  return DecodeResultResponse(response);
}

Result<std::vector<sql::QueryResult>> Client::QueryBatch(
    const std::vector<std::string>& sqls,
    std::optional<core::AnswerMode> mode, uint64_t deadline_ms) {
  WireRequest request;
  request.verb = WireRequest::Verb::kBatch;
  request.batch = sqls;
  if (mode.has_value()) {
    request.mode = *mode;
    request.has_mode = true;
  }
  request.deadline_ms = deadline_ms;
  THEMIS_ASSIGN_OR_RETURN(std::string response,
                          RoundTrip(EncodeRequest(request)));
  return DecodeBatchResponse(response);
}

Status Client::SetDefaults(std::optional<core::AnswerMode> default_mode,
                           std::optional<uint64_t> default_deadline_ms) {
  WireRequest request;
  request.verb = WireRequest::Verb::kSet;
  if (default_mode.has_value()) {
    request.mode = *default_mode;
    request.has_mode = true;
  }
  if (default_deadline_ms.has_value()) {
    request.deadline_ms = *default_deadline_ms;
    request.has_deadline = true;
  }
  THEMIS_ASSIGN_OR_RETURN(std::string response,
                          RoundTrip(EncodeRequest(request)));
  return DecodeOkResponse(response);
}

Result<ServerStats> Client::Stats() {
  WireRequest request;
  request.verb = WireRequest::Verb::kStats;
  THEMIS_ASSIGN_OR_RETURN(std::string response,
                          RoundTrip(EncodeRequest(request)));
  return DecodeStatsResponse(response);
}

Result<std::string> Client::Metrics() {
  WireRequest request;
  request.verb = WireRequest::Verb::kMetrics;
  THEMIS_ASSIGN_OR_RETURN(std::string response,
                          RoundTrip(EncodeRequest(request)));
  return DecodeMetricsResponse(response);
}

}  // namespace themis::server
