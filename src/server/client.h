#ifndef THEMIS_SERVER_CLIENT_H_
#define THEMIS_SERVER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "server/wire.h"
#include "sql/executor.h"
#include "util/status.h"

namespace themis::server {

/// Blocking client for the line-delimited JSON wire protocol — what the
/// tests and the closed-loop serving bench drive, and a reference for
/// writing clients in other languages (the protocol is plain enough for
/// `nc`). One connection, one outstanding request at a time; open one
/// Client per thread for concurrency.
///
/// Server-reported errors come back as the original util::Status (code
/// restored from the wire name, message preserved); transport failures
/// surface as IoError and decode bugs as ParseError.
class Client {
 public:
  /// Connects to the loopback server on `port`. IoError on refusal.
  static Result<Client> Connect(uint16_t port,
                                const std::string& host = "127.0.0.1");

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Bounds every subsequent socket read and write (SO_RCVTIMEO /
  /// SO_SNDTIMEO) so a stalled server surfaces as IoError instead of
  /// blocking the caller forever. 0 restores fully-blocking I/O. This is
  /// a transport timeout, distinct from a request's `deadline_ms` (which
  /// bounds server-side execution); set both to bound a call end-to-end.
  Status set_timeout_ms(uint64_t timeout_ms);

  /// Answers one SQL query. Empty `relation` routes by the FROM table;
  /// non-empty pins the catalog relation (Catalog::QueryOn semantics).
  /// The decoded result is bitwise identical to the server-side answer
  /// (doubles travel with 17 significant digits). An absent `mode` leaves
  /// the field off the wire, deferring to the session default installed
  /// by SetDefaults() (hybrid until then); an explicit mode always wins.
  /// `deadline_ms` > 0 sends the request with that execution budget: the
  /// server answers kDeadlineExceeded when the budget lapses before the
  /// plan finishes.
  Result<sql::QueryResult> Query(
      const std::string& sql, const std::string& relation = "",
      std::optional<core::AnswerMode> mode = std::nullopt,
      uint64_t deadline_ms = 0);

  /// Answers a batch in one round trip; rides Catalog::QueryBatch on the
  /// server, interleaving plans across relations. Results line up with
  /// the input order. One `deadline_ms` budget covers the whole batch.
  /// `mode` defers to the session default when absent, as in Query().
  Result<std::vector<sql::QueryResult>> QueryBatch(
      const std::vector<std::string>& sqls,
      std::optional<core::AnswerMode> mode = std::nullopt,
      uint64_t deadline_ms = 0);

  /// The `set` verb: installs this session's default AnswerMode and/or
  /// default deadline, applied by the server to later query/batch
  /// requests that omit the field. An absent argument leaves that default
  /// unchanged; an explicit default_deadline_ms of 0 clears the session
  /// deadline back to the server's.
  Status SetDefaults(std::optional<core::AnswerMode> default_mode,
                     std::optional<uint64_t> default_deadline_ms =
                         std::nullopt);

  /// The STATS verb: live server counters + per-relation cache counters.
  Result<ServerStats> Stats();

  /// The METRICS verb: the server's Prometheus text exposition, verbatim
  /// (ready to write to a scrape endpoint or a file).
  Result<std::string> Metrics();

  /// Sends one raw line verbatim and returns the raw response line —
  /// how the tests probe the server's handling of malformed input.
  Result<std::string> RoundTrip(const std::string& line);

  /// Split halves of RoundTrip, for tests that must hold a request in
  /// flight (overload, shutdown-drain) while doing something else.
  Status Send(const std::string& line);
  Result<std::string> Receive();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace themis::server

#endif  // THEMIS_SERVER_CLIENT_H_
