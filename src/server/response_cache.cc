#include "server/response_cache.h"

#include <utility>

namespace themis::server {

namespace {
/// Probe entries are two short strings; bound their count rather than
/// their bytes so a probe flood cannot evict payloads' metadata wholesale
/// while the payload budget still has room.
constexpr size_t kProbeEntries = 8192;
}  // namespace

ResponseCache::ResponseCache(size_t capacity_bytes)
    : probe_(kProbeEntries), bytes_(capacity_bytes) {}

util::ImmutableBuffer ResponseCache::Lookup(const std::string& probe_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto probe = probe_.Get(probe_key);
  if (probe.has_value()) {
    // The full key embeds the generation the bytes were admitted under,
    // so a probe entry that survived an invalidation simply misses here.
    auto entry = bytes_.Get(probe->full_key);
    if (entry.has_value()) {
      ++hits_;
      return entry->payload;
    }
  }
  ++misses_;
  return util::ImmutableBuffer();
}

uint64_t ResponseCache::Generation(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(relation);
  return it == generations_.end() ? 0 : it->second;
}

util::ImmutableBuffer ResponseCache::LookupFull(const std::string& full_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = bytes_.Get(full_key);
  if (!entry.has_value()) return util::ImmutableBuffer();
  ++hits_;
  return entry->payload;
}

void ResponseCache::Admit(const std::string& probe_key,
                          const std::string& full_key,
                          const std::string& relation, uint64_t generation,
                          util::ImmutableBuffer payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(relation);
  const uint64_t current = it == generations_.end() ? 0 : it->second;
  if (current != generation) {
    // The relation mutated while this query executed: the bytes were
    // computed against data that no longer exists. Refuse them.
    ++stale_rejections_;
    return;
  }
  const size_t cost = payload.size();
  if (bytes_.Put(full_key, ByteEntry{std::move(payload), relation}, cost)) {
    probe_.Put(probe_key, ProbeEntry{full_key, relation});
  }
}

void ResponseCache::Invalidate(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generations_[relation];
  // Hygiene: the generation bump already makes these unreachable; erasing
  // them returns their bytes to the budget immediately.
  bytes_.EraseIf([&relation](const std::string&, const ByteEntry& entry) {
    return entry.relation == relation;
  });
  probe_.EraseIf([&relation](const std::string&, const ProbeEntry& entry) {
    return entry.relation == relation;
  });
}

ResponseCache::Stats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = bytes_.evictions();
  stats.rejections = bytes_.rejections() + stale_rejections_;
  stats.entries = bytes_.size();
  stats.bytes = bytes_.total_cost();
  stats.capacity = bytes_.capacity();
  return stats;
}

}  // namespace themis::server
