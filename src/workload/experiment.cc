#include "workload/experiment.h"

#include <cstdlib>

#include "util/logging.h"

namespace themis::workload {

double EnvScale() {
  const char* env = std::getenv("THEMIS_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::strtod(env, nullptr);
  return scale > 0 ? scale : 1.0;
}

std::vector<std::vector<size_t>> AllSubsets(const std::vector<size_t>& attrs,
                                            size_t d) {
  std::vector<std::vector<size_t>> out;
  if (d == 0 || d > attrs.size()) return out;
  std::vector<size_t> pick(d);
  // Lexicographic combination enumeration.
  std::vector<size_t> idx(d);
  for (size_t i = 0; i < d; ++i) idx[i] = i;
  while (true) {
    for (size_t i = 0; i < d; ++i) pick[i] = attrs[idx[i]];
    out.push_back(pick);
    // Advance.
    size_t i = d;
    while (i > 0) {
      --i;
      if (idx[i] != i + attrs.size() - d) break;
      if (i == 0) return out;
    }
    if (idx[i] == i + attrs.size() - d) return out;
    ++idx[i];
    for (size_t j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
  }
}

aggregate::AggregateSet MakeAggregates(
    const data::Table& population,
    const std::vector<std::vector<size_t>>& attr_sets) {
  aggregate::AggregateSet out(population.schema());
  for (const auto& attrs : attr_sets) {
    out.Add(aggregate::ComputeAggregate(population, attrs));
  }
  return out;
}

Result<MethodSuite> MethodSuite::Build(
    const data::Table& sample, const aggregate::AggregateSet& aggregates,
    double population_size, const core::ThemisOptions& base_options) {
  MethodSuite suite;
  suite.catalog_ = core::Catalog(base_options);

  // One catalog relation per differently-modeled method, all visible to
  // SQL as "sample" so the experiment harnesses run one query text against
  // every method. "BB" shares the "Hybrid" relation (same model, BN-only
  // answer mode).
  auto insert = [&](const std::string& name, core::ReweightMethod method,
                    bool enable_bn) -> Status {
    core::ThemisOptions options = base_options;
    options.reweight = method;
    options.enable_bn = enable_bn;
    options.population_size = population_size;
    core::RelationConfig config;
    config.options = std::move(options);
    config.table_name = "sample";
    THEMIS_RETURN_IF_ERROR(suite.catalog_.InsertSample(
        name, sample.Clone(), std::move(config)));
    for (const auto& spec : aggregates.specs()) {
      THEMIS_RETURN_IF_ERROR(suite.catalog_.InsertAggregate(name, spec));
    }
    return Status::OK();
  };
  THEMIS_RETURN_IF_ERROR(
      insert("AQP", core::ReweightMethod::kUniform, false));
  THEMIS_RETURN_IF_ERROR(
      insert("LinReg", core::ReweightMethod::kLinReg, false));
  THEMIS_RETURN_IF_ERROR(insert("IPF", core::ReweightMethod::kIpf, false));
  THEMIS_RETURN_IF_ERROR(insert("Hybrid", core::ReweightMethod::kIpf, true));
  // The four models learn in parallel on the catalog's pool.
  THEMIS_RETURN_IF_ERROR(suite.catalog_.BuildAll());
  return suite;
}

Result<std::pair<const core::HybridEvaluator*, core::AnswerMode>>
MethodSuite::Route(const std::string& method) const {
  using core::AnswerMode;
  std::string relation = method;
  AnswerMode mode = AnswerMode::kSampleOnly;
  if (method == "BB") {
    relation = "Hybrid";
    mode = AnswerMode::kBnOnly;
  } else if (method == "Hybrid") {
    mode = AnswerMode::kHybrid;
  } else if (method != "AQP" && method != "LinReg" && method != "IPF") {
    return Status::InvalidArgument("unknown method '" + method + "'");
  }
  const core::HybridEvaluator* evaluator = catalog_.evaluator(relation);
  if (evaluator == nullptr) {
    return Status::Internal("method relation '" + relation + "' not built");
  }
  return std::pair<const core::HybridEvaluator*, core::AnswerMode>{evaluator,
                                                                   mode};
}

Result<std::vector<double>> MethodSuite::Errors(
    const std::string& method, const std::vector<PointQuery>& queries) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return EvaluatePointQueries(*route.first, route.second, queries);
}

Result<sql::QueryResult> MethodSuite::Query(const std::string& method,
                                            const std::string& sql) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return route.first->Query(sql, route.second);
}

Result<std::vector<sql::QueryResult>> MethodSuite::QueryBatch(
    const std::string& method, std::span<const std::string> sqls) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return route.first->QueryBatch(sqls, route.second);
}

}  // namespace themis::workload
