#include "workload/experiment.h"

#include <cstdlib>

#include "util/logging.h"

namespace themis::workload {

double EnvScale() {
  const char* env = std::getenv("THEMIS_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::strtod(env, nullptr);
  return scale > 0 ? scale : 1.0;
}

std::vector<std::vector<size_t>> AllSubsets(const std::vector<size_t>& attrs,
                                            size_t d) {
  std::vector<std::vector<size_t>> out;
  if (d == 0 || d > attrs.size()) return out;
  std::vector<size_t> pick(d);
  // Lexicographic combination enumeration.
  std::vector<size_t> idx(d);
  for (size_t i = 0; i < d; ++i) idx[i] = i;
  while (true) {
    for (size_t i = 0; i < d; ++i) pick[i] = attrs[idx[i]];
    out.push_back(pick);
    // Advance.
    size_t i = d;
    while (i > 0) {
      --i;
      if (idx[i] != i + attrs.size() - d) break;
      if (i == 0) return out;
    }
    if (idx[i] == i + attrs.size() - d) return out;
    ++idx[i];
    for (size_t j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
  }
}

aggregate::AggregateSet MakeAggregates(
    const data::Table& population,
    const std::vector<std::vector<size_t>>& attr_sets) {
  aggregate::AggregateSet out(population.schema());
  for (const auto& attrs : attr_sets) {
    out.Add(aggregate::ComputeAggregate(population, attrs));
  }
  return out;
}

Result<MethodSuite> MethodSuite::Build(
    const data::Table& sample, const aggregate::AggregateSet& aggregates,
    double population_size, const core::ThemisOptions& base_options) {
  MethodSuite suite;

  auto build_model = [&](core::ReweightMethod method,
                         bool enable_bn) -> Result<core::ThemisModel> {
    core::ThemisOptions options = base_options;
    options.reweight = method;
    options.enable_bn = enable_bn;
    options.population_size = population_size;
    return core::ThemisModel::Build(sample.Clone(), aggregates, options);
  };

  THEMIS_ASSIGN_OR_RETURN(auto aqp,
                          build_model(core::ReweightMethod::kUniform, false));
  THEMIS_ASSIGN_OR_RETURN(auto linreg,
                          build_model(core::ReweightMethod::kLinReg, false));
  THEMIS_ASSIGN_OR_RETURN(auto ipf,
                          build_model(core::ReweightMethod::kIpf, false));
  THEMIS_ASSIGN_OR_RETURN(auto full,
                          build_model(core::ReweightMethod::kIpf, true));

  suite.aqp_model_ = std::make_unique<core::ThemisModel>(std::move(aqp));
  suite.linreg_model_ =
      std::make_unique<core::ThemisModel>(std::move(linreg));
  suite.ipf_model_ = std::make_unique<core::ThemisModel>(std::move(ipf));
  suite.full_model_ = std::make_unique<core::ThemisModel>(std::move(full));

  suite.aqp_ =
      std::make_unique<core::HybridEvaluator>(suite.aqp_model_.get());
  suite.linreg_ =
      std::make_unique<core::HybridEvaluator>(suite.linreg_model_.get());
  suite.ipf_ =
      std::make_unique<core::HybridEvaluator>(suite.ipf_model_.get());
  suite.full_ =
      std::make_unique<core::HybridEvaluator>(suite.full_model_.get());
  return suite;
}

Result<std::pair<const core::HybridEvaluator*, core::AnswerMode>>
MethodSuite::Route(const std::string& method) const {
  using core::AnswerMode;
  if (method == "AQP") return std::pair<const core::HybridEvaluator*, AnswerMode>{
        aqp_.get(), AnswerMode::kSampleOnly};
  if (method == "LinReg") {
    return std::pair<const core::HybridEvaluator*, AnswerMode>{
        linreg_.get(), AnswerMode::kSampleOnly};
  }
  if (method == "IPF") return std::pair<const core::HybridEvaluator*, AnswerMode>{
        ipf_.get(), AnswerMode::kSampleOnly};
  if (method == "BB") return std::pair<const core::HybridEvaluator*, AnswerMode>{
        full_.get(), AnswerMode::kBnOnly};
  if (method == "Hybrid") return std::pair<const core::HybridEvaluator*, AnswerMode>{
        full_.get(), AnswerMode::kHybrid};
  return Status::InvalidArgument("unknown method '" + method + "'");
}

Result<std::vector<double>> MethodSuite::Errors(
    const std::string& method, const std::vector<PointQuery>& queries) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return EvaluatePointQueries(*route.first, route.second, queries);
}

Result<sql::QueryResult> MethodSuite::Query(const std::string& method,
                                            const std::string& sql) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return route.first->Query(sql, route.second);
}

Result<std::vector<sql::QueryResult>> MethodSuite::QueryBatch(
    const std::string& method, std::span<const std::string> sqls) const {
  THEMIS_ASSIGN_OR_RETURN(auto route, Route(method));
  return route.first->QueryBatch(sqls, route.second);
}

}  // namespace themis::workload
