#include "workload/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "workload/flights.h"
#include "workload/imdb.h"

namespace themis::workload {

namespace {

/// Picks `k` distinct elements of `pool` uniformly (partial Fisher–Yates).
std::vector<size_t> Choose(std::vector<size_t> pool, size_t k, Rng& rng) {
  k = std::min(k, pool.size());
  for (size_t i = 0; i < k; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(pool.size() - i) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

data::Table RowsToTable(const data::Table& population,
                        std::vector<size_t> rows) {
  std::sort(rows.begin(), rows.end());
  data::Table out(population.schema());
  std::vector<data::ValueCode> codes(population.num_attributes());
  for (size_t r : rows) {
    for (size_t a = 0; a < codes.size(); ++a) codes[a] = population.Get(r, a);
    out.AppendRow(codes);
  }
  return out;
}

}  // namespace

data::Table UniformSample(const data::Table& population, double fraction,
                          Rng& rng) {
  const size_t k = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(population.num_rows())));
  std::vector<size_t> all(population.num_rows());
  std::iota(all.begin(), all.end(), 0);
  return RowsToTable(population, Choose(std::move(all), k, rng));
}

Result<data::Table> BiasedSample(const data::Table& population,
                                 double fraction, double bias,
                                 const SelectionCriterion& criterion,
                                 Rng& rng) {
  if (fraction <= 0 || fraction > 1 || bias < 0 || bias > 1) {
    return Status::InvalidArgument("BiasedSample: bad fraction/bias");
  }
  const data::Domain& domain =
      population.schema()->domain(criterion.attr);
  std::vector<char> matches(domain.size(), 0);
  for (const std::string& label : criterion.labels) {
    auto code = domain.Code(label);
    if (!code.ok()) {
      return Status::InvalidArgument("criterion label '" + label +
                                     "' not in domain");
    }
    matches[static_cast<size_t>(*code)] = 1;
  }
  std::vector<size_t> in, out;
  for (size_t r = 0; r < population.num_rows(); ++r) {
    const data::ValueCode code = population.Get(r, criterion.attr);
    (matches[static_cast<size_t>(code)] ? in : out).push_back(r);
  }
  const size_t total = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(population.num_rows())));
  const size_t biased = std::min(
      static_cast<size_t>(std::round(bias * static_cast<double>(total))),
      in.size());
  const size_t rest = std::min(total - biased, out.size());
  std::vector<size_t> rows = Choose(std::move(in), biased, rng);
  std::vector<size_t> unbiased_rows = Choose(std::move(out), rest, rng);
  rows.insert(rows.end(), unbiased_rows.begin(), unbiased_rows.end());
  return RowsToTable(population, std::move(rows));
}

Result<data::Table> MakeFlightsSample(const data::Table& population,
                                      const std::string& name,
                                      double fraction, uint64_t seed) {
  Rng rng(seed);
  if (name == "Unif") return UniformSample(population, fraction, rng);
  if (name == "June") {
    return BiasedSample(population, fraction, 0.9,
                        {FlightsAttrs::kDate, {"06"}}, rng);
  }
  const SelectionCriterion corners{FlightsAttrs::kOrigin,
                                   {"CA", "NY", "FL", "WA"}};
  if (name == "SCorners") {
    return BiasedSample(population, fraction, 0.9, corners, rng);
  }
  if (name == "Corners") {
    return BiasedSample(population, fraction, 1.0, corners, rng);
  }
  return Status::InvalidArgument("unknown Flights sample '" + name + "'");
}

Result<data::Table> MakeImdbSample(const data::Table& population,
                                   const std::string& name, double fraction,
                                   uint64_t seed) {
  Rng rng(seed);
  if (name == "Unif") return UniformSample(population, fraction, rng);
  if (name == "GB") {
    return BiasedSample(population, fraction, 0.9,
                        {ImdbAttrs::kCountry, {"GB"}}, rng);
  }
  const SelectionCriterion r159{ImdbAttrs::kRating, {"1", "5", "9"}};
  if (name == "SR159") {
    return BiasedSample(population, fraction, 0.9, r159, rng);
  }
  if (name == "R159") {
    return BiasedSample(population, fraction, 1.0, r159, rng);
  }
  return Status::InvalidArgument("unknown IMDB sample '" + name + "'");
}

}  // namespace themis::workload
