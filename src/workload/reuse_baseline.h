#ifndef THEMIS_WORKLOAD_REUSE_BASELINE_H_
#define THEMIS_WORKLOAD_REUSE_BASELINE_H_

#include <unordered_map>

#include "aggregate/aggregate.h"
#include "data/table.h"
#include "data/tuple_key.h"
#include "util/status.h"

namespace themis::workload {

/// Re-implementation of the reuse technique of Galakatos et al. [33] as
/// the paper evaluates it (Sec 6.4, Table 6): a GROUP BY COUNT(*) over
/// attribute pair (A, B) is rewritten with conditional probabilities,
///   count(A=a, B=b) ≈ n · Pr(A=a) · Pr(B=b | A=a),
/// where Pr(A) comes from a known 1D population aggregate when available
/// (reusing the prior/known answer) and Pr(B|A) comes from the sample. If
/// no aggregate over A is known, the joint falls back to the sample alone
/// — equivalent to uniform reweighting, which is exactly the limitation
/// Table 6's DT-DE row demonstrates.
class ReuseBaseline {
 public:
  ReuseBaseline(const data::Table* sample,
                const aggregate::AggregateSet* aggregates,
                double population_size)
      : sample_(sample),
        aggregates_(aggregates),
        population_size_(population_size) {}

  /// Estimated GROUP BY attr_a, attr_b COUNT(*) result keyed by (a, b).
  Result<std::unordered_map<data::TupleKey, double, data::TupleKeyHash>>
  GroupByPair(size_t attr_a, size_t attr_b) const;

 private:
  const data::Table* sample_;
  const aggregate::AggregateSet* aggregates_;
  double population_size_;
};

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_REUSE_BASELINE_H_
