#ifndef THEMIS_WORKLOAD_CHILD_H_
#define THEMIS_WORKLOAD_CHILD_H_

#include <cstdint>

#include "bn/child_network.h"
#include "data/table.h"

namespace themis::workload {

/// The paper's synthetic CHILD dataset (Sec 6.2): n rows forward-sampled
/// from the CHILD Bayesian network (default n = 20,000 as in the paper).
struct ChildConfig {
  size_t num_rows = 20000;
  uint64_t network_seed = 7;
  uint64_t sample_seed = 3;
};

data::Table GenerateChild(const ChildConfig& config = {});

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_CHILD_H_
