#include "workload/queries.h"

#include <algorithm>
#include <memory>

#include "stats/metrics.h"
#include "util/logging.h"

namespace themis::workload {

const char* HitterClassName(HitterClass hitters) {
  switch (hitters) {
    case HitterClass::kHeavy:
      return "heavy";
    case HitterClass::kLight:
      return "light";
    case HitterClass::kRandom:
      return "random";
  }
  return "?";
}

std::vector<PointQuery> MakePointQueries(const data::Table& population,
                                         const std::vector<size_t>& attrs,
                                         HitterClass hitters, size_t count,
                                         Rng& rng) {
  std::vector<size_t> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  auto groups = population.GroupWeights(sorted);
  std::vector<std::pair<data::TupleKey, double>> entries(groups.begin(),
                                                         groups.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  // Candidate pool per hitter class: top / bottom decile (at least `count`
  // wide when the relation has few groups) or everything.
  size_t begin = 0, end = entries.size();
  if (hitters != HitterClass::kRandom && !entries.empty()) {
    const size_t decile = std::max(entries.size() / 10, std::min(count, entries.size()));
    if (hitters == HitterClass::kHeavy) {
      end = std::min(decile, entries.size());
    } else {
      begin = entries.size() - std::min(decile, entries.size());
    }
  }

  std::vector<PointQuery> queries;
  queries.reserve(count);
  // Heavy/light hitters draw uniformly within their decile; random draws
  // are count-weighted — "any existing value" means the value of a
  // randomly chosen population tuple, so frequent values appear more
  // often (with rare groups in the tail), matching the paper's random
  // query error profiles.
  std::unique_ptr<CategoricalSampler> mass_sampler;
  if (hitters == HitterClass::kRandom && begin < end) {
    std::vector<double> weights;
    weights.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) weights.push_back(entries[i].second);
    mass_sampler = std::make_unique<CategoricalSampler>(weights);
  }
  for (size_t i = 0; i < count && begin < end; ++i) {
    const size_t pick =
        mass_sampler != nullptr
            ? begin + mass_sampler->Sample(rng)
            : begin + static_cast<size_t>(rng.UniformInt(
                          0, static_cast<int64_t>(end - begin) - 1));
    PointQuery query;
    query.attrs = sorted;
    query.values = entries[pick].first;
    query.true_count = entries[pick].second;
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<PointQuery> MakeMixedPointQueries(const data::Table& population,
                                              size_t min_dim, size_t max_dim,
                                              HitterClass hitters,
                                              size_t count, Rng& rng) {
  const size_t m = population.num_attributes();
  THEMIS_CHECK(min_dim >= 1 && max_dim <= m && min_dim <= max_dim);
  std::vector<PointQuery> queries;
  queries.reserve(count);
  while (queries.size() < count) {
    const size_t d = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(min_dim),
                       static_cast<int64_t>(max_dim)));
    // Random attribute subset of size d.
    std::vector<size_t> attrs(m);
    for (size_t i = 0; i < m; ++i) attrs[i] = i;
    std::shuffle(attrs.begin(), attrs.end(), rng.engine());
    attrs.resize(d);
    auto batch = MakePointQueries(population, attrs, hitters, 1, rng);
    for (auto& q : batch) queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<double> EvaluatePointQueries(
    const core::HybridEvaluator& evaluator, core::AnswerMode mode,
    const std::vector<PointQuery>& queries) {
  std::vector<double> errors;
  errors.reserve(queries.size());
  for (const PointQuery& query : queries) {
    auto estimate = evaluator.PointEstimate(query.attrs, query.values, mode);
    const double est = estimate.ok() ? *estimate : 0.0;
    errors.push_back(stats::PercentDifference(query.true_count, est));
  }
  return errors;
}

}  // namespace themis::workload
