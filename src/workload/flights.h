#ifndef THEMIS_WORKLOAD_FLIGHTS_H_
#define THEMIS_WORKLOAD_FLIGHTS_H_

#include <cstdint>

#include "data/table.h"

namespace themis::workload {

/// Synthetic stand-in for the paper's BTS Flights 2005 dataset (Sec 6.2,
/// n = 6,992,839 — scaled down here; see DESIGN.md). Five attributes as in
/// Table 2:
///   F  fl_date      month "01".."12", seasonally skewed
///   O  origin_state 51 states, population-skewed (CA/TX/FL/NY heavy)
///   DE dest_state   conditioned on O: distance-decayed popularity
///   E  elapsed_time minutes, bucketized (width 30 over [0,600)) and
///                   strongly correlated with DT (the correlation that
///                   breaks LinReg in Fig 14)
///   DT distance     miles, bucketized (width 200 over [0,3000)), derived
///                   from inter-state geometry
struct FlightsConfig {
  size_t num_rows = 200000;
  uint64_t seed = 1;
};

/// Attribute order: F, O, DE, E, DT (indices 0..4).
data::Table GenerateFlights(const FlightsConfig& config = {});

/// Attribute indices in the generated schema.
struct FlightsAttrs {
  static constexpr size_t kDate = 0;      // F
  static constexpr size_t kOrigin = 1;    // O
  static constexpr size_t kDest = 2;      // DE
  static constexpr size_t kElapsed = 3;   // E
  static constexpr size_t kDistance = 4;  // DT
};

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_FLIGHTS_H_
