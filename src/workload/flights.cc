#include "workload/flights.h"

#include <cmath>

#include "data/bucketize.h"
#include "util/random.h"
#include "util/string_util.h"

namespace themis::workload {

namespace {

struct StateInfo {
  const char* abbr;
  double population;  // millions, rough — drives origin skew
  double x, y;        // rough map coordinates (hundreds of miles)
};

/// 51 states (incl. DC); coordinates are coarse map positions good enough
/// to induce a realistic distance structure.
constexpr StateInfo kStates[] = {
    {"AL", 4.9, 18.0, 7.0},  {"AK", 0.7, 2.0, 18.0},  {"AZ", 7.3, 7.0, 7.0},
    {"AR", 3.0, 15.5, 8.0},  {"CA", 39.5, 3.0, 8.0},  {"CO", 5.8, 10.0, 10.0},
    {"CT", 3.6, 23.5, 12.5}, {"DE", 1.0, 23.0, 11.0}, {"DC", 0.7, 22.5, 10.8},
    {"FL", 21.5, 21.0, 4.0}, {"GA", 10.6, 19.5, 6.5}, {"HI", 1.4, 0.0, 2.0},
    {"ID", 1.8, 6.0, 13.0},  {"IL", 12.7, 16.0, 11.0},{"IN", 6.7, 17.5, 11.0},
    {"IA", 3.2, 14.5, 11.5}, {"KS", 2.9, 12.5, 9.5},  {"KY", 4.5, 18.0, 9.5},
    {"LA", 4.6, 15.5, 5.5},  {"ME", 1.3, 25.0, 14.5}, {"MD", 6.0, 22.5, 10.5},
    {"MA", 6.9, 24.0, 13.0}, {"MI", 10.0, 17.5, 12.5},{"MN", 5.6, 14.0, 13.5},
    {"MS", 3.0, 16.5, 6.5},  {"MO", 6.1, 15.0, 9.5},  {"MT", 1.1, 8.0, 14.5},
    {"NE", 1.9, 12.0, 11.0}, {"NV", 3.1, 5.0, 9.5},   {"NH", 1.4, 24.0, 13.5},
    {"NJ", 8.9, 23.2, 11.5}, {"NM", 2.1, 9.0, 7.0},   {"NY", 19.5, 22.5, 12.5},
    {"NC", 10.5, 21.0, 8.5}, {"ND", 0.8, 12.0, 14.5}, {"OH", 11.7, 18.5, 11.0},
    {"OK", 4.0, 12.5, 8.0},  {"OR", 4.2, 3.5, 13.5},  {"PA", 12.8, 21.5, 11.5},
    {"RI", 1.1, 24.2, 12.8}, {"SC", 5.1, 20.5, 7.5},  {"SD", 0.9, 12.0, 12.5},
    {"TN", 6.8, 17.5, 8.5},  {"TX", 29.0, 12.0, 5.5}, {"UT", 3.2, 7.0, 10.0},
    {"VT", 0.6, 23.5, 13.8}, {"VA", 8.5, 21.5, 9.8},  {"WA", 7.6, 4.0, 15.0},
    {"WV", 1.8, 20.0, 10.0}, {"WI", 5.8, 15.5, 12.5}, {"WY", 0.6, 9.5, 12.0},
};
constexpr size_t kNumStates = sizeof(kStates) / sizeof(kStates[0]);

/// Seasonal month weights (summer + holiday peaks).
constexpr double kMonthWeights[12] = {0.8, 0.75, 0.9, 0.95, 1.0, 1.2,
                                      1.3, 1.25, 0.95, 0.9, 0.85, 1.15};

double StateDistanceMiles(size_t a, size_t b) {
  const double dx = (kStates[a].x - kStates[b].x) * 100.0;
  const double dy = (kStates[a].y - kStates[b].y) * 100.0;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

data::Table GenerateFlights(const FlightsConfig& config) {
  auto schema = std::make_shared<data::Schema>();
  // F: month labels.
  std::vector<std::string> months;
  for (int m = 1; m <= 12; ++m) months.push_back(StrFormat("%02d", m));
  schema->AddAttribute("fl_date", months);
  // O, DE: state labels.
  std::vector<std::string> states;
  for (const StateInfo& s : kStates) states.emplace_back(s.abbr);
  schema->AddAttribute("origin_state", states);
  schema->AddAttribute("dest_state", states);
  // E, DT: bucketized continuous attributes.
  data::EquiWidthBucketizer elapsed_buckets(0, 600, 20);   // 30-minute wide
  data::EquiWidthBucketizer distance_buckets(0, 3000, 15); // 200-mile wide
  schema->AddAttribute("elapsed_time", elapsed_buckets.Labels());
  schema->AddAttribute("distance", distance_buckets.Labels());

  data::Table table(schema);
  Rng rng(config.seed);

  // Origin sampler: population-proportional.
  std::vector<double> origin_weights(kNumStates);
  for (size_t s = 0; s < kNumStates; ++s) {
    origin_weights[s] = kStates[s].population;
  }
  CategoricalSampler origin_sampler(origin_weights);

  // Destination samplers, one per origin: popularity decayed by distance,
  // with a same-state short-hop boost.
  std::vector<CategoricalSampler> dest_samplers;
  dest_samplers.reserve(kNumStates);
  for (size_t o = 0; o < kNumStates; ++o) {
    std::vector<double> w(kNumStates);
    for (size_t d = 0; d < kNumStates; ++d) {
      const double dist = StateDistanceMiles(o, d);
      w[d] = kStates[d].population * std::exp(-dist / 1200.0);
      if (d == o) w[d] *= 1.5;
    }
    dest_samplers.emplace_back(w);
  }

  // Month samplers: base seasonality, with a winter boost for warm states.
  std::vector<double> base_month(kMonthWeights, kMonthWeights + 12);
  CategoricalSampler month_sampler(base_month);
  std::vector<double> warm_month = base_month;
  warm_month[11] *= 1.5;  // Dec
  warm_month[0] *= 1.5;   // Jan
  warm_month[1] *= 1.4;   // Feb
  CategoricalSampler warm_month_sampler(warm_month);

  std::vector<data::ValueCode> row(5);
  for (size_t r = 0; r < config.num_rows; ++r) {
    const size_t o = origin_sampler.Sample(rng);
    const size_t d = dest_samplers[o].Sample(rng);
    const bool warm = std::string_view(kStates[o].abbr) == "FL" ||
                      std::string_view(kStates[o].abbr) == "AZ" ||
                      std::string_view(kStates[o].abbr) == "HI";
    const size_t month =
        (warm ? warm_month_sampler : month_sampler).Sample(rng);

    double distance = StateDistanceMiles(o, d);
    if (distance < 80.0) distance = 80.0;  // intra-state hop
    distance *= (1.0 + 0.1 * rng.Normal(0, 1));
    distance = std::clamp(distance, 50.0, 2999.0);
    // Elapsed strongly tracks distance: cruise ~470 mph plus taxi/climb.
    double elapsed = distance / 7.8 + 28.0 + 12.0 * rng.Normal(0, 1);
    elapsed = std::clamp(elapsed, 20.0, 599.0);

    row[FlightsAttrs::kDate] = static_cast<data::ValueCode>(month);
    row[FlightsAttrs::kOrigin] = static_cast<data::ValueCode>(o);
    row[FlightsAttrs::kDest] = static_cast<data::ValueCode>(d);
    row[FlightsAttrs::kElapsed] =
        static_cast<data::ValueCode>(elapsed_buckets.Bucket(elapsed));
    row[FlightsAttrs::kDistance] =
        static_cast<data::ValueCode>(distance_buckets.Bucket(distance));
    table.AppendRow(row);
  }
  return table;
}

}  // namespace themis::workload
