#ifndef THEMIS_WORKLOAD_IMDB_H_
#define THEMIS_WORKLOAD_IMDB_H_

#include <cstdint>

#include "data/table.h"

namespace themis::workload {

/// Synthetic stand-in for the paper's IMDB actor–movie dataset (Sec 6.2,
/// n = 846,380, movies released in US/GB/CA — scaled down here). Eight
/// attributes as in Table 2:
///   MY movie_year    5-year buckets over [1950, 2020)
///   MC movie_country US / GB / CA, skewed
///   N  name          dense attribute: `num_names` distinct actor ids with
///                    Zipf skew (the attribute that breaks BB on R159)
///   G  gender        M / F
///   B  actor_birth   10-year buckets over [1900, 2000), tracks MY
///   RG rating        1..10, correlated with TR
///   TR top_250_rank  "none" plus 50-wide rank buckets, likelier when RG
///                    is high
///   RT runtime       15-minute buckets over [60, 180), drifts up with MY
struct ImdbConfig {
  size_t num_rows = 120000;
  size_t num_names = 2000;
  uint64_t seed = 2;
};

data::Table GenerateImdb(const ImdbConfig& config = {});

struct ImdbAttrs {
  static constexpr size_t kMovieYear = 0;  // MY
  static constexpr size_t kCountry = 1;    // MC
  static constexpr size_t kName = 2;       // N
  static constexpr size_t kGender = 3;     // G
  static constexpr size_t kBirth = 4;      // B
  static constexpr size_t kRating = 5;     // RG
  static constexpr size_t kTopRank = 6;    // TR
  static constexpr size_t kRuntime = 7;    // RT
};

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_IMDB_H_
