#ifndef THEMIS_WORKLOAD_EXPERIMENT_H_
#define THEMIS_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aggregate/aggregate.h"
#include "core/catalog.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "workload/queries.h"

namespace themis::workload {

/// Scale factor for the benchmark harnesses, read from the THEMIS_SCALE
/// environment variable (default 1.0). Population sizes are multiplied by
/// it, so setting e.g. THEMIS_SCALE=5 runs closer to paper scale.
double EnvScale();

/// All size-d subsets of `attrs` (used to enumerate candidate aggregates).
std::vector<std::vector<size_t>> AllSubsets(const std::vector<size_t>& attrs,
                                            size_t d);

/// Computes exact population aggregates for each attribute set.
aggregate::AggregateSet MakeAggregates(
    const data::Table& population,
    const std::vector<std::vector<size_t>>& attr_sets);

/// The four query-answering methods every accuracy experiment compares
/// (Sec 6.4), held as relations of one core::Catalog (no per-method
/// instance juggling): each relation carries its own reweighting options
/// and model but shares the catalog's thread pool, and all register the
/// SQL table name "sample" so one query text runs against every method.
///  - "AQP":    uniformly reweighted sample (the default AQP baseline)
///  - "LinReg": NNLS linear-regression reweighted sample
///  - "IPF":    IPF-reweighted sample (the paper's best reweighter)
///  - "BB":     the Bayesian network alone (variant per options)
///  - "Hybrid": Themis's hybrid evaluator (IPF sample + BN)
class MethodSuite {
 public:
  static Result<MethodSuite> Build(const data::Table& sample,
                                   const aggregate::AggregateSet& aggregates,
                                   double population_size,
                                   const core::ThemisOptions& base_options);

  /// Percent-difference errors for each query under `method` (one of the
  /// names above).
  Result<std::vector<double>> Errors(
      const std::string& method,
      const std::vector<PointQuery>& queries) const;

  /// SQL result for `method` (routes to the right relation/mode).
  Result<sql::QueryResult> Query(const std::string& method,
                                 const std::string& sql) const;

  /// Batched variant: plans everything first, then submits whole plans to
  /// the catalog's thread pool so distinct queries run concurrently
  /// (K-executor GROUP BY fan-outs nest on the same pool), with shared
  /// inference-cache and result-memo reuse. Bitwise identical answers to a
  /// Query() loop at any pool size.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      const std::string& method, std::span<const std::string> sqls) const;

  static std::vector<std::string> MethodNames() {
    return {"AQP", "LinReg", "IPF", "BB", "Hybrid"};
  }

  const core::ThemisModel& full_model() const {
    return *catalog_.model("Hybrid");
  }
  const core::HybridEvaluator& full_evaluator() const {
    return *catalog_.evaluator("Hybrid");
  }

  /// The catalog holding the method relations.
  const core::Catalog& catalog() const { return catalog_; }

 private:
  MethodSuite() = default;

  /// Maps a method name to (catalog relation, answer mode).
  Result<std::pair<const core::HybridEvaluator*, core::AnswerMode>> Route(
      const std::string& method) const;

  core::Catalog catalog_;
};

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_EXPERIMENT_H_
