#ifndef THEMIS_WORKLOAD_QUERIES_H_
#define THEMIS_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "data/table.h"
#include "util/random.h"

namespace themis::workload {

/// One d-dimensional point query with its population ground truth:
/// SELECT COUNT(*) WHERE A1 = v1 AND ... AND Ad = vd (Sec 6.3).
struct PointQuery {
  std::vector<size_t> attrs;
  data::TupleKey values;
  double true_count = 0;
};

/// How the selection values of a point-query workload are drawn from the
/// population's existing groups (Sec 6.3).
enum class HitterClass {
  kHeavy,   ///< largest-count groups
  kLight,   ///< smallest-count groups
  kRandom,  ///< any existing group
};

const char* HitterClassName(HitterClass hitters);

/// Draws `count` point queries over `attrs` whose selection values come
/// from the population's heavy hitters / light hitters / random existing
/// groups. Heavy and light draw from the top/bottom decile by count.
std::vector<PointQuery> MakePointQueries(const data::Table& population,
                                         const std::vector<size_t>& attrs,
                                         HitterClass hitters, size_t count,
                                         Rng& rng);

/// Draws `count` queries over random attribute subsets of size
/// `min_dim..max_dim` (the paper's "all attribute sets of size two to
/// five" for Flights; random 3D sets for IMDB).
std::vector<PointQuery> MakeMixedPointQueries(const data::Table& population,
                                              size_t min_dim, size_t max_dim,
                                              HitterClass hitters,
                                              size_t count, Rng& rng);

/// Percent-difference errors (Sec 6.3) of answering each query with the
/// given evaluator/mode.
std::vector<double> EvaluatePointQueries(
    const core::HybridEvaluator& evaluator, core::AnswerMode mode,
    const std::vector<PointQuery>& queries);

}  // namespace themis::workload

#endif  // THEMIS_WORKLOAD_QUERIES_H_
