#include "workload/imdb.h"

#include <algorithm>
#include <cmath>

#include "data/bucketize.h"
#include "util/random.h"
#include "util/string_util.h"

namespace themis::workload {

data::Table GenerateImdb(const ImdbConfig& config) {
  auto schema = std::make_shared<data::Schema>();
  data::EquiWidthBucketizer year_buckets(1950, 2020, 14);    // 5-year
  data::EquiWidthBucketizer birth_buckets(1900, 2000, 10);   // 10-year
  data::EquiWidthBucketizer runtime_buckets(60, 180, 8);     // 15-minute
  schema->AddAttribute("movie_year", year_buckets.Labels());
  schema->AddAttribute("movie_country", {"US", "GB", "CA"});
  std::vector<std::string> names;
  names.reserve(config.num_names);
  for (size_t i = 0; i < config.num_names; ++i) {
    names.push_back(StrFormat("N%05zu", i));
  }
  schema->AddAttribute("name", names);
  schema->AddAttribute("gender", {"M", "F"});
  schema->AddAttribute("actor_birth", birth_buckets.Labels());
  std::vector<std::string> ratings;
  for (int r = 1; r <= 10; ++r) ratings.push_back(std::to_string(r));
  schema->AddAttribute("rating", ratings);
  schema->AddAttribute(
      "top_250_rank",
      {"none", "[1,50)", "[50,100)", "[100,150)", "[150,200)", "[200,250)"});
  schema->AddAttribute("runtime", runtime_buckets.Labels());

  data::Table table(schema);
  Rng rng(config.seed);

  // Dense name attribute with Zipf skew: a few prolific actors, long tail.
  std::vector<double> name_weights(config.num_names);
  for (size_t i = 0; i < config.num_names; ++i) {
    name_weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
  }
  CategoricalSampler name_sampler(name_weights);
  CategoricalSampler country_sampler({0.60, 0.25, 0.15});
  // Movie production grows over time.
  std::vector<double> year_weights(14);
  for (size_t i = 0; i < 14; ++i) year_weights[i] = 1.0 + 0.25 * static_cast<double>(i);
  CategoricalSampler year_sampler(year_weights);

  std::vector<data::ValueCode> row(8);
  for (size_t r = 0; r < config.num_rows; ++r) {
    const size_t year_bucket = year_sampler.Sample(rng);
    const double year = 1950.0 + 5.0 * (static_cast<double>(year_bucket) + 0.5);
    const size_t country = country_sampler.Sample(rng);
    const size_t name = name_sampler.Sample(rng);
    const bool male = rng.Bernoulli(0.58);
    // Actor age at release between ~20 and ~60, so birth tracks year.
    double birth = year - (20.0 + 40.0 * rng.UniformDouble());
    birth = std::clamp(birth, 1900.0, 1999.0);
    // Ratings: roughly bell-shaped around 6, slight GB boost.
    double rating = 6.0 + 1.8 * rng.Normal(0, 1) + (country == 1 ? 0.4 : 0);
    const int rating_value =
        static_cast<int>(std::clamp(std::round(rating), 1.0, 10.0));
    // Top-250 membership concentrates at high ratings.
    size_t rank_code = 0;  // "none"
    const double top_prob =
        rating_value >= 8 ? 0.10 : (rating_value == 7 ? 0.02 : 0.002);
    if (rng.Bernoulli(top_prob)) {
      rank_code = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    }
    // Runtimes drift longer for newer movies.
    double runtime =
        95.0 + 0.35 * (year - 1950.0) + 18.0 * rng.Normal(0, 1);
    runtime = std::clamp(runtime, 60.0, 179.0);

    row[ImdbAttrs::kMovieYear] = static_cast<data::ValueCode>(year_bucket);
    row[ImdbAttrs::kCountry] = static_cast<data::ValueCode>(country);
    row[ImdbAttrs::kName] = static_cast<data::ValueCode>(name);
    row[ImdbAttrs::kGender] = male ? 0 : 1;
    row[ImdbAttrs::kBirth] =
        static_cast<data::ValueCode>(birth_buckets.Bucket(birth));
    row[ImdbAttrs::kRating] = static_cast<data::ValueCode>(rating_value - 1);
    row[ImdbAttrs::kTopRank] = static_cast<data::ValueCode>(rank_code);
    row[ImdbAttrs::kRuntime] =
        static_cast<data::ValueCode>(runtime_buckets.Bucket(runtime));
    table.AppendRow(row);
  }
  return table;
}

}  // namespace themis::workload
