#include "workload/reuse_baseline.h"

#include <algorithm>

namespace themis::workload {

Result<std::unordered_map<data::TupleKey, double, data::TupleKeyHash>>
ReuseBaseline::GroupByPair(size_t attr_a, size_t attr_b) const {
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> out;
  // Sample statistics (unweighted counts suffice for the conditionals).
  auto joint = sample_->GroupWeights({attr_a, attr_b});
  auto marginal_a = sample_->GroupWeights({attr_a});
  const double ns = sample_->TotalWeight();
  if (ns <= 0) return Status::InvalidArgument("empty sample");

  // Known distribution of A, if any aggregate supports it.
  const bool have_prior = aggregates_ != nullptr &&
                          aggregates_->HasJointSupport({attr_a});
  stats::FreqTable prior;
  double prior_total = 0;
  if (have_prior) {
    auto dist = aggregates_->JointDistribution({attr_a});
    if (!dist.ok()) return dist.status();
    prior = std::move(dist).value();
    prior_total = prior.TotalMass();
  }

  for (const auto& [key, joint_count] : joint) {
    const data::TupleKey a_key{key[0]};
    const double a_count = marginal_a[a_key];
    if (a_count <= 0) continue;
    const double conditional = joint_count / a_count;  // Pr(B=b | A=a)
    double pr_a;
    if (have_prior && prior_total > 0) {
      pr_a = prior.Mass(a_key) / prior_total;  // reused known answer
    } else {
      pr_a = a_count / ns;  // sample fallback == uniform reweighting
    }
    out[key] = population_size_ * pr_a * conditional;
  }
  return out;
}

}  // namespace themis::workload
