#include "workload/child.h"

#include "util/random.h"

namespace themis::workload {

data::Table GenerateChild(const ChildConfig& config) {
  bn::BayesianNetwork network = bn::MakeChildNetwork(config.network_seed);
  Rng rng(config.sample_seed);
  // Weight 1 per row: this *is* the population.
  return network.SampleTable(config.num_rows,
                             static_cast<double>(config.num_rows), rng);
}

}  // namespace themis::workload
