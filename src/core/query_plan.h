#ifndef THEMIS_CORE_QUERY_PLAN_H_
#define THEMIS_CORE_QUERY_PLAN_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/tuple_key.h"
#include "sql/ast.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace themis::core {

/// How a parsed query will be answered: the Sec 4.3 mode dispatch, hoisted
/// out of the evaluator's ad-hoc sniffing into a reusable logical plan.
enum class PlanKind {
  /// d-dimensional COUNT(*) with only equality predicates: the point rule
  /// (reweighted-sample mass when present, exact BN inference otherwise).
  kPoint,
  /// Any other statement against a BN-backed model: executor answers, with
  /// the K-sample BN union machinery outside sample-only mode.
  kGroupBy,
  /// The model has no usable BN, so every mode degenerates to the
  /// reweighted-sample executor whatever the statement shape.
  kPassthrough,
};

const char* PlanKindName(PlanKind kind);

/// An immutable logical plan for one SQL text against one model; shared by
/// const pointer between the plan cache and concurrent executions.
struct QueryPlan {
  PlanKind kind = PlanKind::kPassthrough;
  sql::SelectStatement stmt;

  /// The catalog relation this plan was built against (the planner's
  /// relation stamp); empty for planners created without one.
  std::string relation;

  /// The plan's identity for the evaluator's plan->result memo: the
  /// relation stamp joined with the normalized SQL text, so two relations
  /// planning the same text can never share a memo entry. Empty for plans
  /// constructed outside the planner (such plans are never memoized).
  std::string fingerprint;

  /// kPoint only: resolved attribute indices and value codes.
  std::vector<size_t> point_attrs;
  data::TupleKey point_values;

  /// kPoint whose predicate constant lies outside the active domain: the
  /// answer is 0 in every mode, touching neither sample nor BN.
  bool out_of_domain = false;
};

using QueryPlanPtr = std::shared_ptr<const QueryPlan>;

/// Collapses whitespace runs (outside single-quoted literals) and trims,
/// so formatting differences share one plan-cache entry.
std::string NormalizeSql(const std::string& sql);

/// The table named by the first FROM clause of `sql` — how the catalog
/// routes a query to a relation before any per-relation planning runs.
/// ParseError when the text has no FROM <identifier>.
Result<std::string> FirstFromTable(const std::string& sql);

/// Parses and plans SQL against a fixed schema, caching plans by
/// normalized SQL text in a bounded LRU. Thread-safe.
class QueryPlanner {
 public:
  /// `has_bn` is whether the model can answer through the BN machinery
  /// (network present and K generated samples available). `relation` is
  /// stamped into every produced plan and its fingerprint, isolating the
  /// plan->result memo entries of catalog relations from one another.
  QueryPlanner(data::SchemaPtr schema, bool has_bn,
               size_t plan_cache_capacity = 256, std::string relation = "");

  Result<QueryPlanPtr> Plan(const std::string& sql) const;

  size_t cache_hits() const;
  size_t cache_misses() const;

 private:
  QueryPlan PlanStatement(sql::SelectStatement stmt) const;

  data::SchemaPtr schema_;
  bool has_bn_;
  std::string relation_;
  mutable std::mutex mu_;
  mutable LruCache<std::string, QueryPlanPtr> cache_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_QUERY_PLAN_H_
