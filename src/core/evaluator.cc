#include "core/evaluator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/logging.h"

namespace themis::core {

size_t ApproxResultBytes(const sql::QueryResult& result) {
  size_t bytes = sizeof(sql::QueryResult);
  for (const std::string& name : result.group_names) bytes += name.size();
  for (const std::string& name : result.value_names) bytes += name.size();
  for (const sql::ResultRow& row : result.rows) {
    bytes += sizeof(sql::ResultRow);
    for (const std::string& label : row.group) {
      bytes += sizeof(std::string) + label.size();
    }
    bytes += row.values.size() * sizeof(double);
  }
  return bytes;
}

HybridEvaluator::HybridEvaluator(const ThemisModel* model,
                                 std::string table_name,
                                 util::ThreadPool* pool,
                                 std::string relation)
    : model_(model),
      table_name_(std::move(table_name)),
      relation_(std::move(relation)) {
  THEMIS_CHECK(model_ != nullptr);
  if (relation_.empty()) relation_ = table_name_;
  sample_executor_.RegisterTable(table_name_, &model_->reweighted_sample());
  bn_executors_.reserve(model_->bn_samples().size());
  for (const data::Table& bn_sample : model_->bn_samples()) {
    sql::Executor exec;
    exec.RegisterTable(table_name_, &bn_sample);
    bn_executors_.push_back(std::move(exec));
  }
  const ThemisOptions& options = model_->options();
  if (model_->network() != nullptr) {
    bn::InferenceEngine::Options engine_options;
    engine_options.enable_cache = options.enable_inference_cache;
    engine_options.cache_capacity = options.inference_cache_capacity;
    engine_options.cache_bytes = options.inference_cache_bytes;
    engine_ = std::make_unique<bn::InferenceEngine>(model_->network(),
                                                    engine_options);
  }
  const bool has_bn = model_->network() != nullptr && !bn_executors_.empty();
  planner_ = std::make_unique<QueryPlanner>(
      model_->reweighted_sample().schema(), has_bn,
      options.plan_cache_capacity, relation_);
  pool_ = util::ResolvePool(pool, options.num_threads, owned_pool_);
  // The environment override resolves once here so the shard layout
  // (which fixes the float summation order) cannot drift mid-run; a
  // remaining 0 means the executor's cache-aware auto policy picks the
  // size per query — deterministically, from the query and table alone.
  shard_rows_ = options.shard_rows > 0 ? options.shard_rows
                                       : sql::ShardRowsEnvOverride();
  result_memo_enabled_ = options.enable_result_memo;
  result_memo_cost_aware_ = options.result_memo_bytes > 0;
  single_flight_supported_ = options.enable_single_flight;
  result_memo_ =
      LruCache<std::string, std::shared_ptr<const sql::QueryResult>>(
          result_memo_cost_aware_ ? options.result_memo_bytes
                                  : options.result_memo_capacity);
}

const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
HybridEvaluator::GroupIndex(const std::vector<size_t>& attrs) const {
  {
    std::shared_lock<std::shared_mutex> lock(group_index_mu_);
    auto it = group_index_cache_.find(attrs);
    if (it != group_index_cache_.end()) return it->second;
  }
  // Build outside any lock, then publish; a losing racer reuses the
  // winner's index (std::map nodes stay put, so the reference outlives
  // the lock).
  auto weights = model_->reweighted_sample().GroupWeights(attrs);
  std::unique_lock<std::shared_mutex> lock(group_index_mu_);
  return group_index_cache_.try_emplace(attrs, std::move(weights))
      .first->second;
}

bool HybridEvaluator::SampleContains(const std::vector<size_t>& attrs,
                                     const data::TupleKey& values) const {
  return GroupIndex(attrs).count(values) > 0;
}

double HybridEvaluator::SampleMass(const std::vector<size_t>& attrs,
                                   const data::TupleKey& values) const {
  const auto& index = GroupIndex(attrs);
  auto it = index.find(values);
  return it == index.end() ? 0.0 : it->second;
}

Result<double> HybridEvaluator::BnPointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values) const {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("model has no Bayesian network");
  }
  bn::Evidence evidence;
  for (size_t i = 0; i < attrs.size(); ++i) {
    evidence[attrs[i]] = values[i];
  }
  THEMIS_ASSIGN_OR_RETURN(double p, engine_->Probability(evidence));
  return model_->population_size() * p;
}

Result<double> HybridEvaluator::PointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values,
    AnswerMode mode) const {
  if (attrs.size() != values.size() || attrs.empty()) {
    return Status::InvalidArgument("PointEstimate: attrs/values mismatch");
  }
  switch (mode) {
    case AnswerMode::kSampleOnly:
      return SampleMass(attrs, values);
    case AnswerMode::kBnOnly:
      return BnPointEstimate(attrs, values);
    case AnswerMode::kHybrid:
      // Sec 4.3: sample answer when the tuple is present, BN otherwise.
      if (SampleContains(attrs, values) || model_->network() == nullptr) {
        return SampleMass(attrs, values);
      }
      return BnPointEstimate(attrs, values);
  }
  return Status::Internal("unreachable");
}

Result<sql::QueryResult> HybridEvaluator::BnGroupBy(
    const sql::SelectStatement& stmt, const util::CancelToken* cancel,
    obs::TraceContext* trace) const {
  if (bn_executors_.empty()) {
    return Status::FailedPrecondition("model has no BN samples");
  }
  // Execute on every generated sample; keep groups appearing in all K
  // answers and average the aggregate values (Sec 4.2.4). The K executors
  // are nested pool tasks; each may further shard its scan on the same
  // pool without oversubscribing. The cancel token is shared: each
  // executor polls it on entry and per shard, so a fired token fails the
  // whole fan-out at the lowest index that observed it.
  const size_t k_total = bn_executors_.size();
  std::vector<Result<sql::QueryResult>> results(
      k_total, Result<sql::QueryResult>(Status::Internal("not executed")));
  pool_->ParallelFor(0, k_total, [&](size_t k) {
    results[k] =
        bn_executors_[k].Execute(stmt, pool_, shard_rows_, cancel, trace);
  });

  std::map<std::vector<std::string>, std::pair<std::vector<double>, size_t>>
      merged;
  sql::QueryResult shape;
  for (size_t k = 0; k < k_total; ++k) {
    if (!results[k].ok()) return results[k].status();
    const sql::QueryResult& result = *results[k];
    if (k == 0) {
      shape.group_names = result.group_names;
      shape.value_names = result.value_names;
    }
    for (const sql::ResultRow& row : result.rows) {
      auto [it, inserted] = merged.try_emplace(
          row.group, std::vector<double>(row.values.size(), 0.0), 0u);
      for (size_t i = 0; i < row.values.size(); ++i) {
        it->second.first[i] += row.values[i];
      }
      it->second.second += 1;
    }
  }
  sql::QueryResult out = shape;
  for (auto& [group, acc] : merged) {
    if (acc.second != k_total) continue;  // phantom-group suppression
    sql::ResultRow row;
    row.group = group;
    row.values = acc.first;
    for (double& v : row.values) v /= static_cast<double>(k_total);
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryPlanPtr> HybridEvaluator::Plan(const std::string& sql) const {
  return planner_->Plan(sql);
}

Result<sql::QueryResult> HybridEvaluator::ExecutePlanUncached(
    const QueryPlan& plan, AnswerMode mode, const util::CancelToken* cancel,
    obs::TraceContext* trace) const {
  const bool has_bn =
      model_->network() != nullptr && !bn_executors_.empty();
  if (plan.kind == PlanKind::kPassthrough || mode == AnswerMode::kSampleOnly ||
      !has_bn) {
    return sample_executor_.Execute(plan.stmt, pool_, shard_rows_, cancel,
                                    trace);
  }

  if (plan.kind == PlanKind::kPoint) {
    // Pure point queries (d-dimensional COUNT(*) with equality predicates)
    // route through the Sec 4.3 point rule with *exact* BN inference
    // instead of the sampled GROUP BY machinery.
    double estimate = 0;
    if (!plan.out_of_domain) {
      THEMIS_ASSIGN_OR_RETURN(
          estimate, PointEstimate(plan.point_attrs, plan.point_values, mode));
    }
    sql::QueryResult result;
    result.value_names = {"count"};
    result.rows.push_back({{}, {estimate}});
    return result;
  }

  if (mode == AnswerMode::kBnOnly) {
    return BnGroupBy(plan.stmt, cancel, trace);
  }

  // Hybrid: sample answer unioned with BN-only groups (Sec 4.3).
  THEMIS_ASSIGN_OR_RETURN(sql::QueryResult sample_result,
                          sample_executor_.Execute(plan.stmt, pool_,
                                                   shard_rows_, cancel,
                                                   trace));
  auto bn_result = BnGroupBy(plan.stmt, cancel, trace);
  if (!bn_result.ok()) {
    // A BN failure normally degrades to the sample answer — but a fired
    // cancel token must surface, not be swallowed as a degraded answer.
    if (bn_result.status().code() == StatusCode::kCancelled ||
        bn_result.status().code() == StatusCode::kDeadlineExceeded) {
      return bn_result.status();
    }
    return sample_result;
  }

  std::set<std::vector<std::string>> sample_groups;
  for (const sql::ResultRow& row : sample_result.rows) {
    sample_groups.insert(row.group);
  }
  for (const sql::ResultRow& row : bn_result->rows) {
    if (sample_groups.count(row.group) == 0) {
      sample_result.rows.push_back(row);
    }
  }
  std::sort(sample_result.rows.begin(), sample_result.rows.end(),
            [](const sql::ResultRow& a, const sql::ResultRow& b) {
              return a.group < b.group;
            });
  return sample_result;
}

Result<sql::QueryResult> HybridEvaluator::ExecutePlan(
    const QueryPlan& plan, AnswerMode mode, const util::CancelToken* cancel,
    obs::TraceContext* trace) const {
  // Entry poll, before the memo: a request whose deadline has already
  // lapsed answers kDeadlineExceeded even when the plan is memoized —
  // deadline semantics must not depend on cache temperature, or the
  // deterministic deadline tests (and clients' retry logic) would flap.
  THEMIS_RETURN_IF_ERROR(util::CheckCancel(cancel));
  if (trace != nullptr) trace->SetPlanInfo(relation_, plan.fingerprint);
  // The result memo covers every execution that actually scans — GROUP
  // BY, passthrough, and point plans forced onto the sample executor by
  // kSampleOnly / a BN-less model. Point plans answered through the
  // Sec 4.3 point rule bypass it: the inference memo already serves them
  // at the cost of one cache probe.
  const bool has_bn = model_->network() != nullptr && !bn_executors_.empty();
  const bool point_via_inference = plan.kind == PlanKind::kPoint &&
                                   has_bn && mode != AnswerMode::kSampleOnly;
  const bool memoizable = result_memo_enabled_ && !point_via_inference &&
                          !plan.fingerprint.empty();
  std::string key;
  if (memoizable) {
    obs::ScopedSpan memo_span(trace, obs::Stage::kPlanLookup);
    key = plan.fingerprint;
    key.push_back('\x1f');
    key.push_back(static_cast<char>('0' + static_cast<int>(mode)));
    std::shared_ptr<const sql::QueryResult> hit;
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      if (auto cached = result_memo_.Get(key)) {
        ++memo_hits_;
        hit = *cached;
      } else {
        ++memo_misses_;
      }
    }
    if (hit != nullptr) return *hit;
  }
  // Compute-and-publish for one uncached execution. Runs under `exec` —
  // the caller's own token on the direct path, the flight's collective
  // token under single-flight — and fills the memo on success so the
  // value outlives the flight.
  // `executed` flips on whichever request actually ran the compute — a
  // follower that parked on another request's flight never sets it, so
  // its trace gets the whole Run() duration as single-flight wait and
  // (correctly) no execute span at all.
  bool executed = false;
  const auto compute =
      [this, &plan, mode, &key, trace,
       &executed](const util::CancelToken* exec) -> Result<sql::QueryResult> {
    executed = true;
    obs::ScopedSpan execute_span(trace, obs::Stage::kExecute);
    if (uncached_execute_hook_) uncached_execute_hook_();
    auto result = ExecutePlanUncached(plan, mode, exec, trace);
    if (!key.empty() && result.ok()) {
      // Two executions racing the same cold plan both compute and publish
      // the same deterministic answer; the second Put overwrites in place.
      auto shared = std::make_shared<const sql::QueryResult>(*result);
      const size_t cost =
          result_memo_cost_aware_ ? ApproxResultBytes(*shared) : 1;
      std::lock_guard<std::mutex> lock(memo_mu_);
      result_memo_.Put(key, std::move(shared), cost);
    }
    return result;
  };
  // Single-flight closes the window the memo cannot: a thundering herd of
  // identical requests arriving before the first completes. The herd's
  // first request leads one execution, the rest attach as followers and
  // share the value; followers whose own deadline fires detach without
  // cancelling the leader, and a cancelled leader's execution survives as
  // long as a follower still wants it (see util/single_flight.h).
  if (memoizable && coalescing_enabled()) {
    if (trace == nullptr) return flights_.Run(key, cancel, compute);
    const int64_t run_begin_ns = util::SteadyNowNs();
    auto result = flights_.Run(key, cancel, compute);
    if (!executed) {
      trace->RecordSpan(obs::Stage::kSingleFlightWait, run_begin_ns,
                        util::SteadyNowNs());
    }
    return result;
  }
  return compute(cancel);
}

sql::ExecutorStats HybridEvaluator::executor_stats() const {
  sql::ExecutorStats total = sample_executor_.stats();
  for (const sql::Executor& executor : bn_executors_) {
    total += executor.stats();
  }
  return total;
}

ResultMemoStats HybridEvaluator::result_memo_stats() const {
  ResultMemoStats stats;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    stats.hits = memo_hits_;
    stats.misses = memo_misses_;
    stats.entries = result_memo_.size();
    stats.evictions = result_memo_.evictions();
    stats.rejections = result_memo_.rejections();
    stats.cost = result_memo_.total_cost();
    stats.capacity = result_memo_.capacity();
  }
  const util::SingleFlightStats flights = flights_.stats();
  stats.coalesced_flights = flights.flights;
  stats.coalesced_hits = flights.followers;
  stats.coalesced_detached = flights.detached;
  return stats;
}

void HybridEvaluator::SetCacheBudgets(size_t inference_cache_bytes,
                                      size_t result_memo_bytes) {
  if (engine_ != nullptr) engine_->set_cache_bytes(inference_cache_bytes);
  if (result_memo_cost_aware_ && result_memo_bytes > 0) {
    std::lock_guard<std::mutex> lock(memo_mu_);
    result_memo_.set_capacity(result_memo_bytes);
  }
}

void HybridEvaluator::ClearResultMemo() const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  result_memo_.Clear();
  memo_hits_ = 0;
  memo_misses_ = 0;
}

Result<sql::QueryResult> HybridEvaluator::Query(
    const std::string& sql, AnswerMode mode, const util::CancelToken* cancel,
    obs::TraceContext* trace) const {
  QueryPlanPtr plan;
  {
    obs::ScopedSpan plan_span(trace, obs::Stage::kPlanLookup);
    THEMIS_ASSIGN_OR_RETURN(plan, planner_->Plan(sql));
  }
  return ExecutePlan(*plan, mode, cancel, trace);
}

Result<std::vector<sql::QueryResult>> HybridEvaluator::QueryBatch(
    std::span<const std::string> sqls, AnswerMode mode,
    const util::CancelToken* cancel, obs::TraceContext* trace) const {
  std::vector<QueryPlanPtr> plans;
  plans.reserve(sqls.size());
  {
    obs::ScopedSpan plan_span(trace, obs::Stage::kPlanLookup);
    for (const std::string& sql : sqls) {
      THEMIS_ASSIGN_OR_RETURN(QueryPlanPtr plan, planner_->Plan(sql));
      plans.push_back(std::move(plan));
    }
  }
  // Whole plans are pool tasks: distinct queries run concurrently, and
  // each GROUP BY plan's K-executor fan-out nests on the same pool.
  std::vector<Result<sql::QueryResult>> results(
      plans.size(), Result<sql::QueryResult>(Status::Internal("not run")));
  pool_->ParallelFor(0, plans.size(), [&](size_t i) {
    results[i] = ExecutePlan(*plans[i], mode, cancel, trace);
  });
  std::vector<sql::QueryResult> out;
  out.reserve(plans.size());
  for (Result<sql::QueryResult>& result : results) {
    // Report the lowest-index failure so batch errors are deterministic.
    if (!result.ok()) return result.status();
    out.push_back(std::move(*result));
  }
  return out;
}

}  // namespace themis::core
