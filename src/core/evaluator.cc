#include "core/evaluator.h"

#include <algorithm>
#include <map>
#include <set>

#include "bn/inference.h"
#include "sql/parser.h"
#include "util/logging.h"

namespace themis::core {

HybridEvaluator::HybridEvaluator(const ThemisModel* model,
                                 std::string table_name)
    : model_(model), table_name_(std::move(table_name)) {
  THEMIS_CHECK(model_ != nullptr);
  sample_executor_.RegisterTable(table_name_, &model_->reweighted_sample());
  bn_executors_.reserve(model_->bn_samples().size());
  for (const data::Table& bn_sample : model_->bn_samples()) {
    sql::Executor exec;
    exec.RegisterTable(table_name_, &bn_sample);
    bn_executors_.push_back(std::move(exec));
  }
}

const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
HybridEvaluator::GroupIndex(const std::vector<size_t>& attrs) const {
  auto it = group_index_cache_.find(attrs);
  if (it == group_index_cache_.end()) {
    it = group_index_cache_
             .emplace(attrs, model_->reweighted_sample().GroupWeights(attrs))
             .first;
  }
  return it->second;
}

bool HybridEvaluator::SampleContains(const std::vector<size_t>& attrs,
                                     const data::TupleKey& values) const {
  return GroupIndex(attrs).count(values) > 0;
}

double HybridEvaluator::SampleMass(const std::vector<size_t>& attrs,
                                   const data::TupleKey& values) const {
  const auto& index = GroupIndex(attrs);
  auto it = index.find(values);
  return it == index.end() ? 0.0 : it->second;
}

Result<double> HybridEvaluator::BnPointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values) const {
  if (model_->network() == nullptr) {
    return Status::FailedPrecondition("model has no Bayesian network");
  }
  bn::Evidence evidence;
  for (size_t i = 0; i < attrs.size(); ++i) {
    evidence[attrs[i]] = values[i];
  }
  bn::VariableElimination ve(model_->network());
  THEMIS_ASSIGN_OR_RETURN(double p, ve.Probability(evidence));
  return model_->population_size() * p;
}

Result<double> HybridEvaluator::PointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values,
    AnswerMode mode) const {
  if (attrs.size() != values.size() || attrs.empty()) {
    return Status::InvalidArgument("PointEstimate: attrs/values mismatch");
  }
  switch (mode) {
    case AnswerMode::kSampleOnly:
      return SampleMass(attrs, values);
    case AnswerMode::kBnOnly:
      return BnPointEstimate(attrs, values);
    case AnswerMode::kHybrid:
      // Sec 4.3: sample answer when the tuple is present, BN otherwise.
      if (SampleContains(attrs, values) || model_->network() == nullptr) {
        return SampleMass(attrs, values);
      }
      return BnPointEstimate(attrs, values);
  }
  return Status::Internal("unreachable");
}

Result<sql::QueryResult> HybridEvaluator::BnGroupBy(
    const sql::SelectStatement& stmt) const {
  if (bn_executors_.empty()) {
    return Status::FailedPrecondition("model has no BN samples");
  }
  // Execute on every generated sample; keep groups appearing in all K
  // answers and average the aggregate values (Sec 4.2.4).
  std::map<std::vector<std::string>, std::pair<std::vector<double>, size_t>>
      merged;
  sql::QueryResult shape;
  for (size_t k = 0; k < bn_executors_.size(); ++k) {
    THEMIS_ASSIGN_OR_RETURN(sql::QueryResult result,
                            bn_executors_[k].Execute(stmt));
    if (k == 0) {
      shape.group_names = result.group_names;
      shape.value_names = result.value_names;
    }
    for (const sql::ResultRow& row : result.rows) {
      auto [it, inserted] = merged.try_emplace(
          row.group, std::vector<double>(row.values.size(), 0.0), 0u);
      for (size_t i = 0; i < row.values.size(); ++i) {
        it->second.first[i] += row.values[i];
      }
      it->second.second += 1;
    }
  }
  sql::QueryResult out = shape;
  const size_t k_total = bn_executors_.size();
  for (auto& [group, acc] : merged) {
    if (acc.second != k_total) continue;  // phantom-group suppression
    sql::ResultRow row;
    row.group = group;
    row.values = acc.first;
    for (double& v : row.values) v /= static_cast<double>(k_total);
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::optional<std::pair<std::vector<size_t>, data::TupleKey>>
HybridEvaluator::AsPointQuery(const sql::SelectStatement& stmt) const {
  if (stmt.tables.size() != 1 || !stmt.group_by.empty() ||
      stmt.items.size() != 1 ||
      stmt.items[0].func != sql::AggFunc::kCount || stmt.where.empty()) {
    return std::nullopt;
  }
  const data::Schema& schema = *model_->reweighted_sample().schema();
  std::vector<size_t> attrs;
  data::TupleKey values;
  for (const sql::Predicate& pred : stmt.where) {
    if (pred.is_join || pred.op != sql::CompareOp::kEq ||
        pred.literals.size() != 1) {
      return std::nullopt;
    }
    auto attr = schema.AttributeIndex(pred.lhs.column);
    if (!attr.ok()) return std::nullopt;
    auto code = schema.domain(*attr).Code(pred.literals[0].text);
    if (!code.ok()) {
      // Value outside the active domain: probability zero either way;
      // signal with an empty-key sentinel handled by the caller.
      return std::pair{std::vector<size_t>{}, data::TupleKey{}};
    }
    attrs.push_back(*attr);
    values.push_back(*code);
  }
  return std::pair{std::move(attrs), std::move(values)};
}

Result<sql::QueryResult> HybridEvaluator::Query(const std::string& sql,
                                                AnswerMode mode) const {
  THEMIS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));

  const bool has_bn =
      model_->network() != nullptr && !bn_executors_.empty();
  if (mode == AnswerMode::kSampleOnly || !has_bn) {
    return sample_executor_.Execute(stmt);
  }

  // Pure point queries (d-dimensional COUNT(*) with equality predicates)
  // route through the Sec 4.3 point rule with *exact* BN inference instead
  // of the sampled GROUP BY machinery.
  if (auto point = AsPointQuery(stmt); point.has_value()) {
    double estimate = 0;
    if (!point->first.empty()) {
      THEMIS_ASSIGN_OR_RETURN(
          estimate, PointEstimate(point->first, point->second, mode));
    }
    sql::QueryResult result;
    result.value_names = {"count"};
    result.rows.push_back({{}, {estimate}});
    return result;
  }
  if (mode == AnswerMode::kBnOnly) {
    // Pure point query? Use exact inference; otherwise generated samples.
    return BnGroupBy(stmt);
  }

  // Hybrid: sample answer unioned with BN-only groups (Sec 4.3).
  THEMIS_ASSIGN_OR_RETURN(sql::QueryResult sample_result,
                          sample_executor_.Execute(stmt));
  auto bn_result = BnGroupBy(stmt);
  if (!bn_result.ok()) return sample_result;

  std::set<std::vector<std::string>> sample_groups;
  for (const sql::ResultRow& row : sample_result.rows) {
    sample_groups.insert(row.group);
  }
  for (const sql::ResultRow& row : bn_result->rows) {
    if (sample_groups.count(row.group) == 0) {
      sample_result.rows.push_back(row);
    }
  }
  std::sort(sample_result.rows.begin(), sample_result.rows.end(),
            [](const sql::ResultRow& a, const sql::ResultRow& b) {
              return a.group < b.group;
            });
  return sample_result;
}

}  // namespace themis::core
