#include "core/evaluator.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "util/logging.h"

namespace themis::core {

HybridEvaluator::HybridEvaluator(const ThemisModel* model,
                                 std::string table_name)
    : model_(model), table_name_(std::move(table_name)) {
  THEMIS_CHECK(model_ != nullptr);
  sample_executor_.RegisterTable(table_name_, &model_->reweighted_sample());
  bn_executors_.reserve(model_->bn_samples().size());
  for (const data::Table& bn_sample : model_->bn_samples()) {
    sql::Executor exec;
    exec.RegisterTable(table_name_, &bn_sample);
    bn_executors_.push_back(std::move(exec));
  }
  const ThemisOptions& options = model_->options();
  if (model_->network() != nullptr) {
    bn::InferenceEngine::Options engine_options;
    engine_options.enable_cache = options.enable_inference_cache;
    engine_options.cache_capacity = options.inference_cache_capacity;
    engine_ = std::make_unique<bn::InferenceEngine>(model_->network(),
                                                    engine_options);
  }
  const bool has_bn = model_->network() != nullptr && !bn_executors_.empty();
  planner_ = std::make_unique<QueryPlanner>(
      model_->reweighted_sample().schema(), has_bn,
      options.plan_cache_capacity);
}

const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
HybridEvaluator::GroupIndex(const std::vector<size_t>& attrs) const {
  {
    std::shared_lock<std::shared_mutex> lock(group_index_mu_);
    auto it = group_index_cache_.find(attrs);
    if (it != group_index_cache_.end()) return it->second;
  }
  // Build outside any lock, then publish; a losing racer reuses the
  // winner's index (std::map nodes stay put, so the reference outlives
  // the lock).
  auto weights = model_->reweighted_sample().GroupWeights(attrs);
  std::unique_lock<std::shared_mutex> lock(group_index_mu_);
  return group_index_cache_.try_emplace(attrs, std::move(weights))
      .first->second;
}

bool HybridEvaluator::SampleContains(const std::vector<size_t>& attrs,
                                     const data::TupleKey& values) const {
  return GroupIndex(attrs).count(values) > 0;
}

double HybridEvaluator::SampleMass(const std::vector<size_t>& attrs,
                                   const data::TupleKey& values) const {
  const auto& index = GroupIndex(attrs);
  auto it = index.find(values);
  return it == index.end() ? 0.0 : it->second;
}

Result<double> HybridEvaluator::BnPointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values) const {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("model has no Bayesian network");
  }
  bn::Evidence evidence;
  for (size_t i = 0; i < attrs.size(); ++i) {
    evidence[attrs[i]] = values[i];
  }
  THEMIS_ASSIGN_OR_RETURN(double p, engine_->Probability(evidence));
  return model_->population_size() * p;
}

Result<double> HybridEvaluator::PointEstimate(
    const std::vector<size_t>& attrs, const data::TupleKey& values,
    AnswerMode mode) const {
  if (attrs.size() != values.size() || attrs.empty()) {
    return Status::InvalidArgument("PointEstimate: attrs/values mismatch");
  }
  switch (mode) {
    case AnswerMode::kSampleOnly:
      return SampleMass(attrs, values);
    case AnswerMode::kBnOnly:
      return BnPointEstimate(attrs, values);
    case AnswerMode::kHybrid:
      // Sec 4.3: sample answer when the tuple is present, BN otherwise.
      if (SampleContains(attrs, values) || model_->network() == nullptr) {
        return SampleMass(attrs, values);
      }
      return BnPointEstimate(attrs, values);
  }
  return Status::Internal("unreachable");
}

Result<sql::QueryResult> HybridEvaluator::BnGroupBy(
    const sql::SelectStatement& stmt, bool parallel) const {
  if (bn_executors_.empty()) {
    return Status::FailedPrecondition("model has no BN samples");
  }
  // Execute on every generated sample; keep groups appearing in all K
  // answers and average the aggregate values (Sec 4.2.4).
  const size_t k_total = bn_executors_.size();
  std::vector<Result<sql::QueryResult>> results(
      k_total, Result<sql::QueryResult>(Status::Internal("not executed")));
  if (parallel && k_total > 1) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const size_t n_threads = std::min(k_total, hw);
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      threads.emplace_back([&] {
        for (size_t k = next.fetch_add(1); k < k_total;
             k = next.fetch_add(1)) {
          results[k] = bn_executors_[k].Execute(stmt);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  } else {
    for (size_t k = 0; k < k_total; ++k) {
      results[k] = bn_executors_[k].Execute(stmt);
    }
  }

  std::map<std::vector<std::string>, std::pair<std::vector<double>, size_t>>
      merged;
  sql::QueryResult shape;
  for (size_t k = 0; k < k_total; ++k) {
    if (!results[k].ok()) return results[k].status();
    const sql::QueryResult& result = *results[k];
    if (k == 0) {
      shape.group_names = result.group_names;
      shape.value_names = result.value_names;
    }
    for (const sql::ResultRow& row : result.rows) {
      auto [it, inserted] = merged.try_emplace(
          row.group, std::vector<double>(row.values.size(), 0.0), 0u);
      for (size_t i = 0; i < row.values.size(); ++i) {
        it->second.first[i] += row.values[i];
      }
      it->second.second += 1;
    }
  }
  sql::QueryResult out = shape;
  for (auto& [group, acc] : merged) {
    if (acc.second != k_total) continue;  // phantom-group suppression
    sql::ResultRow row;
    row.group = group;
    row.values = acc.first;
    for (double& v : row.values) v /= static_cast<double>(k_total);
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryPlanPtr> HybridEvaluator::Plan(const std::string& sql) const {
  return planner_->Plan(sql);
}

Result<sql::QueryResult> HybridEvaluator::ExecutePlan(
    const QueryPlan& plan, AnswerMode mode, bool parallel_group_by) const {
  const bool has_bn =
      model_->network() != nullptr && !bn_executors_.empty();
  if (plan.kind == PlanKind::kPassthrough || mode == AnswerMode::kSampleOnly ||
      !has_bn) {
    return sample_executor_.Execute(plan.stmt);
  }

  if (plan.kind == PlanKind::kPoint) {
    // Pure point queries (d-dimensional COUNT(*) with equality predicates)
    // route through the Sec 4.3 point rule with *exact* BN inference
    // instead of the sampled GROUP BY machinery.
    double estimate = 0;
    if (!plan.out_of_domain) {
      THEMIS_ASSIGN_OR_RETURN(
          estimate, PointEstimate(plan.point_attrs, plan.point_values, mode));
    }
    sql::QueryResult result;
    result.value_names = {"count"};
    result.rows.push_back({{}, {estimate}});
    return result;
  }

  if (mode == AnswerMode::kBnOnly) {
    return BnGroupBy(plan.stmt, parallel_group_by);
  }

  // Hybrid: sample answer unioned with BN-only groups (Sec 4.3).
  THEMIS_ASSIGN_OR_RETURN(sql::QueryResult sample_result,
                          sample_executor_.Execute(plan.stmt));
  auto bn_result = BnGroupBy(plan.stmt, parallel_group_by);
  if (!bn_result.ok()) return sample_result;

  std::set<std::vector<std::string>> sample_groups;
  for (const sql::ResultRow& row : sample_result.rows) {
    sample_groups.insert(row.group);
  }
  for (const sql::ResultRow& row : bn_result->rows) {
    if (sample_groups.count(row.group) == 0) {
      sample_result.rows.push_back(row);
    }
  }
  std::sort(sample_result.rows.begin(), sample_result.rows.end(),
            [](const sql::ResultRow& a, const sql::ResultRow& b) {
              return a.group < b.group;
            });
  return sample_result;
}

Result<sql::QueryResult> HybridEvaluator::Query(const std::string& sql,
                                                AnswerMode mode) const {
  THEMIS_ASSIGN_OR_RETURN(QueryPlanPtr plan, planner_->Plan(sql));
  return ExecutePlan(*plan, mode);
}

Result<std::vector<sql::QueryResult>> HybridEvaluator::QueryBatch(
    std::span<const std::string> sqls, AnswerMode mode) const {
  std::vector<QueryPlanPtr> plans;
  plans.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    THEMIS_ASSIGN_OR_RETURN(QueryPlanPtr plan, planner_->Plan(sql));
    plans.push_back(std::move(plan));
  }
  std::vector<sql::QueryResult> out;
  out.reserve(plans.size());
  for (const QueryPlanPtr& plan : plans) {
    THEMIS_ASSIGN_OR_RETURN(
        sql::QueryResult result,
        ExecutePlan(*plan, mode, /*parallel_group_by=*/true));
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace themis::core
