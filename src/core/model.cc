#include "core/model.h"

#include <algorithm>

#include "aggregate/pruning.h"
#include "reweight/ipf.h"
#include "reweight/linreg.h"
#include "reweight/uniform.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::core {

const char* ReweightMethodName(ReweightMethod method) {
  switch (method) {
    case ReweightMethod::kUniform:
      return "AQP";
    case ReweightMethod::kLinReg:
      return "LinReg";
    case ReweightMethod::kIpf:
      return "IPF";
  }
  return "?";
}

Result<ThemisModel> ThemisModel::Build(data::Table sample,
                                       aggregate::AggregateSet aggregates,
                                       const ThemisOptions& options) {
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("ThemisModel: empty sample");
  }
  ThemisModel model(std::move(sample), std::move(aggregates), options);

  // Population size: explicit, else the largest aggregate total, else nS
  // (nothing better is known without aggregates).
  model.population_size_ = options.population_size;
  if (model.population_size_ <= 0) {
    for (const auto& spec : model.aggregates_.specs()) {
      model.population_size_ =
          std::max(model.population_size_, spec.TotalCount());
    }
  }
  if (model.population_size_ <= 0) {
    model.population_size_ = static_cast<double>(model.sample_.num_rows());
  }

  // Aggregate pruning (Sec 5.1): keep all 1D aggregates; apply the t-cherry
  // budget to the multi-dimensional candidates.
  if (options.aggregate_budget > 0) {
    std::vector<aggregate::AggregateSpec> multi;
    aggregate::AggregateSet pruned(model.aggregates_.schema());
    for (const auto& spec : model.aggregates_.specs()) {
      if (spec.dimension() <= 1) {
        pruned.Add(spec);
      } else {
        multi.push_back(spec);
      }
    }
    for (size_t idx : aggregate::SelectAggregatesTCherry(
             multi, options.aggregate_budget)) {
      pruned.Add(multi[idx]);
    }
    model.aggregates_ = std::move(pruned);
  }
  model.build_stats_.aggregates_used = model.aggregates_.size();

  // Sample reweighting.
  Timer timer;
  switch (options.reweight) {
    case ReweightMethod::kUniform: {
      reweight::UniformReweighter rw;
      THEMIS_RETURN_IF_ERROR(rw.Reweight(model.sample_, model.aggregates_,
                                         model.population_size_));
      break;
    }
    case ReweightMethod::kLinReg: {
      reweight::LinRegReweighter rw(options.nnls);
      THEMIS_RETURN_IF_ERROR(rw.Reweight(model.sample_, model.aggregates_,
                                         model.population_size_));
      break;
    }
    case ReweightMethod::kIpf: {
      reweight::IpfReweighter rw(options.ipf);
      THEMIS_RETURN_IF_ERROR(rw.Reweight(model.sample_, model.aggregates_,
                                         model.population_size_));
      model.build_stats_.reweight_converged = rw.stats().converged;
      model.build_stats_.reweight_iterations = rw.stats().iterations;
      break;
    }
  }
  model.build_stats_.reweight_seconds = timer.Seconds();

  // Probabilistic model learning + GROUP BY sample generation. The BN is
  // learned from the *raw* sample (unit weights): Eq. 2 maximizes the
  // likelihood of S itself, not of the reweighted sample.
  if (options.enable_bn) {
    data::Table raw_sample = model.sample_.Clone();
    raw_sample.FillWeights(1.0);
    bn::BnLearnStats bn_stats;
    auto network = bn::LearnBayesNet(model.sample_.schema(), &raw_sample,
                                     &model.aggregates_, options.bn,
                                     &bn_stats);
    if (!network.ok()) return network.status();
    model.network_ =
        std::make_shared<bn::BayesianNetwork>(std::move(network).value());
    model.build_stats_.bn_structure_seconds = bn_stats.structure_seconds;
    model.build_stats_.bn_parameter_seconds = bn_stats.parameter_seconds;

    timer.Restart();
    const size_t rows = options.bn_sample_rows > 0 ? options.bn_sample_rows
                                                   : model.sample_.num_rows();
    Rng rng(options.seed);
    model.bn_samples_.reserve(options.bn_group_by_samples);
    for (size_t k = 0; k < options.bn_group_by_samples; ++k) {
      model.bn_samples_.push_back(
          model.network_->SampleTable(rows, model.population_size_, rng));
    }
    model.build_stats_.generate_seconds = timer.Seconds();
  }
  return model;
}

}  // namespace themis::core
