#ifndef THEMIS_CORE_EVALUATOR_H_
#define THEMIS_CORE_EVALUATOR_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "util/status.h"

namespace themis::core {

/// Which machinery answered (or should answer) a query.
enum class AnswerMode {
  kHybrid,      ///< the paper's evaluator (Sec 4.3)
  kSampleOnly,  ///< reweighted sample only (AQP / IPF / LinReg baselines)
  kBnOnly,      ///< Bayesian network only (BB et al. baselines)
};

/// Themis's hybrid query evaluator (Sec 4.3).
///
/// Point queries: if the queried tuple exists in the (reweighted) sample,
/// answer from the sample; otherwise use direct BN inference,
/// n · Pr(X₁=x₁, ..., X_d=x_d).
///
/// GROUP BY queries: the reweighted-sample answer, unioned with groups
/// that appear in the BN answer but not the sample answer. The BN answer
/// comes from the K pre-generated uniformly-scaled samples: only groups
/// present in all K runs survive (phantom-group suppression) and their
/// values are averaged.
class HybridEvaluator {
 public:
  /// `model` must outlive the evaluator. `table_name` is the name the
  /// sample is registered under for SQL queries.
  HybridEvaluator(const ThemisModel* model,
                  std::string table_name = "sample");

  const std::string& table_name() const { return table_name_; }

  /// d-dimensional point query: estimated COUNT(*) of tuples with
  /// `values` on `attrs` (attribute indices into the sample schema).
  Result<double> PointEstimate(const std::vector<size_t>& attrs,
                               const data::TupleKey& values,
                               AnswerMode mode = AnswerMode::kHybrid) const;

  /// True if some sample tuple matches `values` on `attrs`.
  bool SampleContains(const std::vector<size_t>& attrs,
                      const data::TupleKey& values) const;

  /// Executes a SQL query (point, group-by, join) under the given mode.
  Result<sql::QueryResult> Query(const std::string& sql,
                                 AnswerMode mode = AnswerMode::kHybrid) const;

 private:
  /// If `stmt` is a pure point query (single table, one COUNT(*), only
  /// equality predicates, no GROUP BY), returns its (attrs, values); an
  /// empty pair means "value outside the active domain" (count 0).
  std::optional<std::pair<std::vector<size_t>, data::TupleKey>> AsPointQuery(
      const sql::SelectStatement& stmt) const;

  /// Σ weight over sample rows matching the key (0 when absent).
  double SampleMass(const std::vector<size_t>& attrs,
                    const data::TupleKey& values) const;

  /// n · Pr(values on attrs) by exact BN inference.
  Result<double> BnPointEstimate(const std::vector<size_t>& attrs,
                                 const data::TupleKey& values) const;

  /// Runs `stmt` over the K BN samples, keeping groups present in all K
  /// and averaging their values.
  Result<sql::QueryResult> BnGroupBy(const sql::SelectStatement& stmt) const;

  /// Group-weight index per attribute set, built lazily.
  const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
  GroupIndex(const std::vector<size_t>& attrs) const;

  const ThemisModel* model_;
  std::string table_name_;
  sql::Executor sample_executor_;
  std::vector<sql::Executor> bn_executors_;  // one per BN sample
  mutable std::map<std::vector<size_t>,
                   std::unordered_map<data::TupleKey, double,
                                      data::TupleKeyHash>>
      group_index_cache_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_EVALUATOR_H_
