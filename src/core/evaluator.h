#ifndef THEMIS_CORE_EVALUATOR_H_
#define THEMIS_CORE_EVALUATOR_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bn/inference_engine.h"
#include "core/model.h"
#include "core/query_plan.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "util/status.h"

namespace themis::core {

/// Which machinery answered (or should answer) a query.
enum class AnswerMode {
  kHybrid,      ///< the paper's evaluator (Sec 4.3)
  kSampleOnly,  ///< reweighted sample only (AQP / IPF / LinReg baselines)
  kBnOnly,      ///< Bayesian network only (BB et al. baselines)
};

/// Themis's hybrid query evaluator (Sec 4.3), structured as a plan-based
/// engine: SQL text -> QueryPlanner (cached logical plan) -> ExecutePlan
/// (mode dispatch), with all BN inference routed through a memoizing
/// bn::InferenceEngine so repeated queries reuse prior computation.
///
/// Point queries: if the queried tuple exists in the (reweighted) sample,
/// answer from the sample; otherwise use direct BN inference,
/// n · Pr(X₁=x₁, ..., X_d=x_d).
///
/// GROUP BY queries: the reweighted-sample answer, unioned with groups
/// that appear in the BN answer but not the sample answer. The BN answer
/// comes from the K pre-generated uniformly-scaled samples: only groups
/// present in all K runs survive (phantom-group suppression) and their
/// values are averaged.
///
/// Thread-safe for concurrent const use; the lazily built group index is
/// guarded by a shared_mutex and the engine and planner carry their own
/// locks. QueryBatch executes plans sequentially — the parallelism is
/// per-plan, across the K BN-sample executors of a GROUP BY.
class HybridEvaluator {
 public:
  /// `model` must outlive the evaluator. `table_name` is the name the
  /// sample is registered under for SQL queries. Cache knobs come from
  /// the model's ThemisOptions.
  HybridEvaluator(const ThemisModel* model,
                  std::string table_name = "sample");

  const std::string& table_name() const { return table_name_; }

  /// d-dimensional point query: estimated COUNT(*) of tuples with
  /// `values` on `attrs` (attribute indices into the sample schema).
  Result<double> PointEstimate(const std::vector<size_t>& attrs,
                               const data::TupleKey& values,
                               AnswerMode mode = AnswerMode::kHybrid) const;

  /// True if some sample tuple matches `values` on `attrs`.
  bool SampleContains(const std::vector<size_t>& attrs,
                      const data::TupleKey& values) const;

  /// Executes a SQL query (point, group-by, join) under the given mode:
  /// Plan + ExecutePlan.
  Result<sql::QueryResult> Query(const std::string& sql,
                                 AnswerMode mode = AnswerMode::kHybrid) const;

  /// Plans `sql` through the shared plan cache.
  Result<QueryPlanPtr> Plan(const std::string& sql) const;

  /// Executes a previously planned query. With `parallel_group_by`, the K
  /// BN-sample executors of a GROUP BY plan run on std::threads.
  Result<sql::QueryResult> ExecutePlan(const QueryPlan& plan, AnswerMode mode,
                                       bool parallel_group_by = false) const;

  /// Batched answering: plans every query first (repeated texts share one
  /// plan, malformed SQL fails before any work runs), then executes with
  /// shared marginal memoization and parallel K-executor GROUP BYs.
  /// Results line up with the input order and are identical to a
  /// sequential Query() loop.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      std::span<const std::string> sqls, AnswerMode mode) const;

  /// The memoizing inference engine; null when the model has no BN.
  const bn::InferenceEngine* inference_engine() const {
    return engine_.get();
  }
  bn::InferenceEngine* mutable_inference_engine() { return engine_.get(); }

  const QueryPlanner& planner() const { return *planner_; }

 private:
  /// Σ weight over sample rows matching the key (0 when absent).
  double SampleMass(const std::vector<size_t>& attrs,
                    const data::TupleKey& values) const;

  /// n · Pr(values on attrs) by exact (memoized) BN inference.
  Result<double> BnPointEstimate(const std::vector<size_t>& attrs,
                                 const data::TupleKey& values) const;

  /// Runs `stmt` over the K BN samples, keeping groups present in all K
  /// and averaging their values; optionally fanning the K executors
  /// across threads.
  Result<sql::QueryResult> BnGroupBy(const sql::SelectStatement& stmt,
                                     bool parallel) const;

  /// Group-weight index per attribute set, built lazily under the lock.
  const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
  GroupIndex(const std::vector<size_t>& attrs) const;

  const ThemisModel* model_;
  std::string table_name_;
  sql::Executor sample_executor_;
  std::vector<sql::Executor> bn_executors_;  // one per BN sample
  std::unique_ptr<bn::InferenceEngine> engine_;
  std::unique_ptr<QueryPlanner> planner_;
  mutable std::shared_mutex group_index_mu_;
  mutable std::map<std::vector<size_t>,
                   std::unordered_map<data::TupleKey, double,
                                      data::TupleKeyHash>>
      group_index_cache_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_EVALUATOR_H_
