#ifndef THEMIS_CORE_EVALUATOR_H_
#define THEMIS_CORE_EVALUATOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bn/inference_engine.h"
#include "core/model.h"
#include "core/query_plan.h"
#include "obs/trace.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "util/cancel.h"
#include "util/lru_cache.h"
#include "util/single_flight.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace themis::core {

/// Which machinery answered (or should answer) a query.
enum class AnswerMode {
  kHybrid,      ///< the paper's evaluator (Sec 4.3)
  kSampleOnly,  ///< reweighted sample only (AQP / IPF / LinReg baselines)
  kBnOnly,      ///< Bayesian network only (BB et al. baselines)
};

/// Snapshot of the plan->result memo counters.
struct ResultMemoStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t entries = 0;
  /// Entries dropped by the LRU bound since the evaluator was built.
  size_t evictions = 0;
  /// Entries refused admission because their cost alone exceeded the
  /// capacity (only possible under a `result_memo_bytes` budget).
  size_t rejections = 0;
  /// Total cost of the resident entries: approximate bytes under a byte
  /// budget, the entry count otherwise.
  size_t cost = 0;
  /// The active bound in the same units as `cost` (0 = unbounded).
  /// Changes when the catalog rebalances budgets after DropRelation.
  size_t capacity = 0;
  /// Single-flight coalescing companions (see util/single_flight.h):
  /// distinct in-flight executions led, requests that attached to an
  /// already-running execution instead of re-executing, and followers
  /// that detached early because their own deadline/cancel fired.
  size_t coalesced_flights = 0;
  size_t coalesced_hits = 0;
  size_t coalesced_detached = 0;

  double HitRate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Approximate in-memory footprint of a memoized query result: rows,
/// group-label strings, and value doubles. The admission cost of result
/// entries under a `result_memo_bytes` budget.
size_t ApproxResultBytes(const sql::QueryResult& result);

/// Themis's hybrid query evaluator (Sec 4.3), structured as a plan-based
/// engine: SQL text -> QueryPlanner (cached logical plan) -> ExecutePlan
/// (mode dispatch), with all BN inference routed through a memoizing
/// bn::InferenceEngine so repeated queries reuse prior computation.
///
/// Point queries: if the queried tuple exists in the (reweighted) sample,
/// answer from the sample; otherwise use direct BN inference,
/// n · Pr(X₁=x₁, ..., X_d=x_d).
///
/// GROUP BY queries: the reweighted-sample answer, unioned with groups
/// that appear in the BN answer but not the sample answer. The BN answer
/// comes from the K pre-generated uniformly-scaled samples: only groups
/// present in all K runs survive (phantom-group suppression) and their
/// values are averaged.
///
/// All parallelism runs on one util::ThreadPool (the shared execution
/// runtime): QueryBatch fans whole plans across the pool, each GROUP BY
/// plan fans its K BN-sample executors as nested pool tasks, and large
/// scans shard by row range inside the executor — one pool, no
/// oversubscription, and results bitwise identical to a sequential
/// Query() loop at any pool size (the fan-outs merge deterministically).
/// GROUP BY / passthrough answers are additionally memoized per
/// (plan fingerprint, mode); the memo dies with the evaluator, so a
/// Build() rebuild invalidates it.
///
/// Thread-safe for concurrent const use; the lazily built group index is
/// guarded by a shared_mutex and the engine, planner, and result memo
/// carry their own locks.
class HybridEvaluator {
 public:
  /// `model` must outlive the evaluator. `table_name` is the name the
  /// sample is registered under for SQL queries. Cache and pool knobs come
  /// from the model's ThemisOptions; a non-null `pool` overrides the
  /// options-derived pool (used by the catalog to share one pool across
  /// relations, and to compare pool sizes on one model). `relation` is the
  /// catalog relation stamp for plan fingerprints — it defaults to
  /// `table_name`, so two evaluators answering the same SQL text never
  /// share a memo fingerprint unless both their names agree.
  HybridEvaluator(const ThemisModel* model,
                  std::string table_name = "sample",
                  util::ThreadPool* pool = nullptr,
                  std::string relation = "");

  const std::string& table_name() const { return table_name_; }
  const std::string& relation() const { return relation_; }

  /// d-dimensional point query: estimated COUNT(*) of tuples with
  /// `values` on `attrs` (attribute indices into the sample schema).
  Result<double> PointEstimate(const std::vector<size_t>& attrs,
                               const data::TupleKey& values,
                               AnswerMode mode = AnswerMode::kHybrid) const;

  /// True if some sample tuple matches `values` on `attrs`.
  bool SampleContains(const std::vector<size_t>& attrs,
                      const data::TupleKey& values) const;

  /// Executes a SQL query (point, group-by, join) under the given mode:
  /// Plan + ExecutePlan. `cancel` (optional) is the serving layer's
  /// cooperative cancellation handle — see ExecutePlan. `trace`
  /// (optional) records per-stage spans (plan lookup, execution,
  /// single-flight wait, executor shard loops); null costs one pointer
  /// check per site and changes nothing else.
  Result<sql::QueryResult> Query(const std::string& sql,
                                 AnswerMode mode = AnswerMode::kHybrid,
                                 const util::CancelToken* cancel = nullptr,
                                 obs::TraceContext* trace = nullptr) const;

  /// Plans `sql` through the shared plan cache.
  Result<QueryPlanPtr> Plan(const std::string& sql) const;

  /// Executes a previously planned query on the shared pool (K BN-sample
  /// executors and large scans fan out; a 1-thread pool degenerates to
  /// the identical sequential execution). Serves memoized GROUP BY /
  /// passthrough results when the plan carries a fingerprint.
  ///
  /// `cancel` is polled once on entry (before the memo, so an expired
  /// deadline answers kDeadlineExceeded even for a memoized plan) and
  /// once per shard inside the executors; a fired token unwinds with
  /// kCancelled / kDeadlineExceeded and is never memoized.
  /// `trace` additionally distinguishes the coalesced-follower case: a
  /// request that attached to another request's in-flight execution
  /// records the whole wait as an obs::Stage::kSingleFlightWait span and
  /// no kExecute span at all (only the leader executed).
  Result<sql::QueryResult> ExecutePlan(const QueryPlan& plan,
                                       AnswerMode mode,
                                       const util::CancelToken* cancel =
                                           nullptr,
                                       obs::TraceContext* trace =
                                           nullptr) const;

  /// Batched answering: plans every query first (repeated texts share one
  /// plan, malformed SQL fails before any work runs), then submits whole
  /// plans to the pool so distinct queries execute concurrently. Results
  /// line up with the input order and are bitwise identical to a
  /// sequential Query() loop. One `cancel` token covers the whole batch.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      std::span<const std::string> sqls, AnswerMode mode,
      const util::CancelToken* cancel = nullptr,
      obs::TraceContext* trace = nullptr) const;

  /// The memoizing inference engine; null when the model has no BN.
  const bn::InferenceEngine* inference_engine() const {
    return engine_.get();
  }
  bn::InferenceEngine* mutable_inference_engine() { return engine_.get(); }

  const QueryPlanner& planner() const { return *planner_; }

  ResultMemoStats result_memo_stats() const;

  /// Aggregated scan-path counters over the sample executor and the K
  /// BN-sample executors — rows scanned/passed, groups emitted, join
  /// build/probe rows (see sql::ExecutorStats).
  sql::ExecutorStats executor_stats() const;

  /// Drops every memoized query result (the memo also dies naturally with
  /// the evaluator on rebuild).
  void ClearResultMemo() const;

  /// Run-time toggle for single-flight coalescing (effective only when
  /// ThemisOptions::enable_single_flight was set at build). Const-qualified
  /// like ClearResultMemo so serving/bench code reaching the evaluator
  /// through the catalog's const surface can flip it between runs; answers
  /// are bitwise identical either way.
  void set_coalescing_enabled(bool enabled) const {
    coalescing_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool coalescing_enabled() const {
    return single_flight_supported_ &&
           coalescing_enabled_.load(std::memory_order_relaxed);
  }

  /// Test-only: runs at the start of every *uncached* plan execution on
  /// the executing (leader) thread, after the single-flight entry has been
  /// published — lets tests park a leader mid-flight so followers attach
  /// deterministically. Const-qualified for the same catalog-surface
  /// reason as set_coalescing_enabled; set it before serving traffic.
  void set_uncached_execute_hook(std::function<void()> hook) const {
    uncached_execute_hook_ = std::move(hook);
  }

  /// Rebounds the byte-budgeted caches in place — the inference cache to
  /// `inference_cache_bytes`, the result memo to `result_memo_bytes` —
  /// keeping warm entries when growing, evicting LRU-first when
  /// shrinking. Either value 0 leaves that cache untouched, as does a
  /// cache not built under a byte budget. How the catalog re-inflates
  /// surviving relations' shares when a neighbor is dropped.
  void SetCacheBudgets(size_t inference_cache_bytes,
                       size_t result_memo_bytes);

 private:
  /// Σ weight over sample rows matching the key (0 when absent).
  double SampleMass(const std::vector<size_t>& attrs,
                    const data::TupleKey& values) const;

  /// n · Pr(values on attrs) by exact (memoized) BN inference.
  Result<double> BnPointEstimate(const std::vector<size_t>& attrs,
                                 const data::TupleKey& values) const;

  /// Runs `stmt` over the K BN samples as nested pool tasks, keeping
  /// groups present in all K and averaging their values. The merge walks
  /// executors in index order, so the answer is pool-size independent.
  Result<sql::QueryResult> BnGroupBy(const sql::SelectStatement& stmt,
                                     const util::CancelToken* cancel,
                                     obs::TraceContext* trace) const;

  /// Executes the plan without consulting the result memo.
  Result<sql::QueryResult> ExecutePlanUncached(
      const QueryPlan& plan, AnswerMode mode,
      const util::CancelToken* cancel, obs::TraceContext* trace) const;

  /// Group-weight index per attribute set, built lazily under the lock.
  const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
  GroupIndex(const std::vector<size_t>& attrs) const;

  const ThemisModel* model_;
  std::string table_name_;
  std::string relation_;
  sql::Executor sample_executor_;
  std::vector<sql::Executor> bn_executors_;  // one per BN sample
  std::unique_ptr<bn::InferenceEngine> engine_;
  std::unique_ptr<QueryPlanner> planner_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  // when num_threads is set
  util::ThreadPool* pool_;
  size_t shard_rows_;  // ThemisOptions::shard_rows, resolved at build
  bool result_memo_enabled_;
  bool result_memo_cost_aware_;  // true when options.result_memo_bytes > 0
  /// ThemisOptions::enable_single_flight at build; the atomic is the
  /// run-time toggle layered on top (see set_coalescing_enabled).
  bool single_flight_supported_;
  mutable std::atomic<bool> coalescing_enabled_{true};
  mutable util::SingleFlight<Result<sql::QueryResult>> flights_;
  mutable std::function<void()> uncached_execute_hook_;
  mutable std::mutex memo_mu_;
  mutable LruCache<std::string, std::shared_ptr<const sql::QueryResult>>
      result_memo_;
  mutable size_t memo_hits_ = 0;
  mutable size_t memo_misses_ = 0;
  mutable std::shared_mutex group_index_mu_;
  mutable std::map<std::vector<size_t>,
                   std::unordered_map<data::TupleKey, double,
                                      data::TupleKeyHash>>
      group_index_cache_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_EVALUATOR_H_
