#include "core/themis_db.h"

#include "util/logging.h"

namespace themis::core {

ThemisDb::ThemisDb(ThemisOptions options) : catalog_(std::move(options)) {}

Status ThemisDb::InsertSample(const std::string& name, data::Table sample) {
  return catalog_.InsertSample(name, std::move(sample));
}

Status ThemisDb::InsertAggregate(const std::string& table_name,
                                 aggregate::AggregateSpec aggregate) {
  return catalog_.InsertAggregate(table_name, std::move(aggregate));
}

Status ThemisDb::InsertAggregateFrom(
    const std::string& table_name, const data::Table& population,
    const std::vector<std::string>& attr_names) {
  return catalog_.InsertAggregateFrom(table_name, population, attr_names);
}

Status ThemisDb::Build() { return catalog_.BuildAll(); }

Status ThemisDb::Build(const std::string& name) {
  return catalog_.Build(name);
}

Status ThemisDb::DropRelation(const std::string& name) {
  return catalog_.DropRelation(name);
}

Result<sql::QueryResult> ThemisDb::Query(const std::string& sql,
                                         AnswerMode mode) const {
  if (catalog_.num_relations() == 0) {
    return Status::FailedPrecondition("call InsertSample() and Build() first");
  }
  return catalog_.Query(sql, mode);
}

Result<std::vector<sql::QueryResult>> ThemisDb::QueryBatch(
    std::span<const std::string> sqls, AnswerMode mode) const {
  if (catalog_.num_relations() == 0) {
    return Status::FailedPrecondition("call InsertSample() and Build() first");
  }
  return catalog_.QueryBatch(sqls, mode);
}

Result<double> ThemisDb::PointQuery(
    const std::string& relation,
    const std::vector<std::pair<std::string, std::string>>& equalities,
    AnswerMode mode) const {
  return catalog_.PointQuery(relation, equalities, mode);
}

Result<double> ThemisDb::PointQuery(
    const std::vector<std::pair<std::string, std::string>>& equalities,
    AnswerMode mode) const {
  THEMIS_ASSIGN_OR_RETURN(std::string name, SoleRelation());
  return catalog_.PointQuery(name, equalities, mode);
}

const ThemisModel* ThemisDb::model() const {
  auto name = SoleRelation();
  return name.ok() ? catalog_.model(*name) : nullptr;
}

const HybridEvaluator* ThemisDb::evaluator() const {
  auto name = SoleRelation();
  return name.ok() ? catalog_.evaluator(*name) : nullptr;
}

Result<std::string> ThemisDb::SoleRelation() const {
  if (catalog_.num_relations() != 1) {
    return Status::FailedPrecondition(
        "this call needs exactly one relation; name the relation "
        "explicitly when several are registered");
  }
  return catalog_.RelationNames().front();
}

}  // namespace themis::core
