#include "core/themis_db.h"

#include "util/logging.h"

namespace themis::core {

ThemisDb::ThemisDb(ThemisOptions options) : options_(std::move(options)) {}

Status ThemisDb::InsertSample(const std::string& name, data::Table sample) {
  if (pending_sample_ != nullptr) {
    return Status::AlreadyExists(
        "a sample is already registered (multi-sample support is future "
        "work)");
  }
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("sample is empty");
  }
  table_name_ = name;
  pending_aggregates_ =
      std::make_unique<aggregate::AggregateSet>(sample.schema());
  pending_sample_ = std::make_unique<data::Table>(std::move(sample));
  return Status::OK();
}

Status ThemisDb::InsertAggregate(const std::string& table_name,
                                 aggregate::AggregateSpec aggregate) {
  if (pending_sample_ == nullptr) {
    return Status::FailedPrecondition("insert the sample first");
  }
  if (table_name != table_name_) {
    return Status::NotFound("unknown table '" + table_name + "'");
  }
  for (size_t attr : aggregate.attrs) {
    if (attr >= pending_sample_->schema()->num_attributes()) {
      return Status::InvalidArgument("aggregate attribute out of range");
    }
  }
  pending_aggregates_->Add(std::move(aggregate));
  model_.reset();
  evaluator_.reset();
  return Status::OK();
}

Status ThemisDb::InsertAggregateFrom(
    const std::string& table_name, const data::Table& population,
    const std::vector<std::string>& attr_names) {
  if (pending_sample_ == nullptr) {
    return Status::FailedPrecondition("insert the sample first");
  }
  std::vector<size_t> attrs;
  for (const std::string& name : attr_names) {
    THEMIS_ASSIGN_OR_RETURN(size_t idx,
                            population.schema()->AttributeIndex(name));
    attrs.push_back(idx);
  }
  return InsertAggregate(table_name,
                         aggregate::ComputeAggregate(population, attrs));
}

Status ThemisDb::Build() {
  if (pending_sample_ == nullptr) {
    return Status::FailedPrecondition("no sample inserted");
  }
  auto model = ThemisModel::Build(pending_sample_->Clone(),
                                  *pending_aggregates_, options_);
  if (!model.ok()) return model.status();
  model_ = std::make_unique<ThemisModel>(std::move(model).value());
  evaluator_ = std::make_unique<HybridEvaluator>(model_.get(), table_name_);
  return Status::OK();
}

Result<sql::QueryResult> ThemisDb::Query(const std::string& sql,
                                         AnswerMode mode) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Build() before querying");
  }
  return evaluator_->Query(sql, mode);
}

Result<std::vector<sql::QueryResult>> ThemisDb::QueryBatch(
    std::span<const std::string> sqls, AnswerMode mode) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Build() before querying");
  }
  return evaluator_->QueryBatch(sqls, mode);
}

Result<double> ThemisDb::PointQuery(
    const std::vector<std::pair<std::string, std::string>>& equalities,
    AnswerMode mode) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Build() before querying");
  }
  const data::SchemaPtr& schema = model_->reweighted_sample().schema();
  std::vector<size_t> attrs;
  data::TupleKey values;
  for (const auto& [attr_name, value_label] : equalities) {
    THEMIS_ASSIGN_OR_RETURN(size_t idx, schema->AttributeIndex(attr_name));
    auto code = schema->domain(idx).Code(value_label);
    if (!code.ok()) {
      // Value outside the active domain: the open-world estimate is the
      // BN's, but with no domain entry the probability is zero.
      return 0.0;
    }
    attrs.push_back(idx);
    values.push_back(*code);
  }
  return evaluator_->PointEstimate(attrs, values, mode);
}

}  // namespace themis::core
