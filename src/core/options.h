#ifndef THEMIS_CORE_OPTIONS_H_
#define THEMIS_CORE_OPTIONS_H_

#include <cstdint>

#include "bn/learn.h"
#include "linalg/nnls.h"
#include "reweight/ipf.h"

namespace themis::core {

/// Which sample reweighting technique the model uses (Sec 4.1). The paper's
/// hybrid uses IPF (its best reweighter, Fig 14).
enum class ReweightMethod { kUniform, kLinReg, kIpf };

const char* ReweightMethodName(ReweightMethod method);

/// Build-time configuration of a Themis model.
struct ThemisOptions {
  ReweightMethod reweight = ReweightMethod::kIpf;
  reweight::IpfOptions ipf;
  linalg::NnlsOptions nnls;

  /// Bayesian network learning settings (variant, tree restriction, solver).
  bn::BnLearnOptions bn;

  /// K: number of BN-generated samples used to answer GROUP BY queries
  /// (Sec 4.2.4; the paper uses K = 10).
  size_t bn_group_by_samples = 10;

  /// Rows per generated BN sample; 0 means "same as the input sample".
  size_t bn_sample_rows = 0;

  /// Aggregate budget B for t-cherry pruning of the >=2D aggregates
  /// (Sec 5.1); 0 keeps every supplied aggregate.
  size_t aggregate_budget = 0;

  /// |P|; 0 infers it as the largest total count among the aggregates.
  double population_size = 0;

  /// Disables the probabilistic model entirely (reweighting-only model);
  /// used by the baseline configurations in the experiments.
  bool enable_bn = true;

  /// Memoization of BN marginals/probabilities in the inference engine:
  /// repeated and batched queries reuse prior computation (the serving
  /// analogue of the Table 6 reuse experiment). Answers are bitwise
  /// identical with the cache on or off.
  bool enable_inference_cache = true;

  /// LRU bound on memoized inference results; 0 means unbounded.
  size_t inference_cache_capacity = 4096;

  /// Cost-aware alternative to the entry-count bound: when positive, the
  /// inference cache is bounded by the approximate bytes of its entries
  /// (big marginal tables weigh more than scalar probabilities, and an
  /// entry larger than the whole budget is never admitted).
  size_t inference_cache_bytes = 0;

  /// LRU bound on logical plans cached by normalized SQL text.
  size_t plan_cache_capacity = 256;

  /// Plan-level result memo: (plan fingerprint, mode) -> QueryResult for
  /// GROUP BY / passthrough plans, so repeated traffic skips execution
  /// entirely. Invalidated by Build() (the evaluator is rebuilt).
  bool enable_result_memo = true;

  /// LRU bound on memoized query results; 0 means unbounded.
  size_t result_memo_capacity = 256;

  /// Cost-aware alternative to `result_memo_capacity`: when positive, the
  /// result memo is bounded by the approximate bytes of its entries
  /// (weighed by result row count and label sizes), so one huge GROUP BY
  /// answer cannot displace hundreds of small ones — and an answer larger
  /// than the whole budget is never admitted. A `core::Catalog` splits
  /// this budget (and `inference_cache_bytes`) evenly across its
  /// relations at Build time.
  size_t result_memo_bytes = 0;

  /// Worker threads of the execution runtime (cross-query batch fan-out,
  /// per-plan K BN-sample executors, sharded scans — one shared pool).
  /// 0 = util::DefaultParallelism() (THEMIS_NUM_THREADS env override,
  /// else hardware concurrency).
  size_t num_threads = 0;

  /// Rows per shard of the executor's sharded scans, hash-join build
  /// sides, and hash-join probes. 0 = auto (THEMIS_SHARD_ROWS env
  /// override, else the cache-aware policy in sql::ResolveShardRows: a
  /// ~256 KiB per-shard working set over the query's scanned columns).
  /// The shard layout — and with it the float summation order — depends
  /// only on this value, the query, and the table, so answers stay
  /// bitwise identical across pool sizes; changing the value may
  /// legitimately reorder float sums.
  size_t shard_rows = 0;

  /// Single-flight query coalescing: concurrent executions of the same
  /// (plan fingerprint, mode) attach to the first one's in-flight result
  /// instead of re-executing — the companion of the result memo for the
  /// window *before* the first completion fills it. Answers are bitwise
  /// identical with coalescing on or off; followers that hit their own
  /// deadline detach without cancelling the leader, and a cancelled
  /// leader's execution survives while followers still want it. Only
  /// memoizable plans coalesce. Can also be toggled at run time via
  /// HybridEvaluator::set_coalescing_enabled (the bench uses that to
  /// measure the uncoalesced baseline).
  bool enable_single_flight = true;

  /// Serving admission bound: how many wire requests a server::QueryServer
  /// fronting this catalog may have in flight (queued or executing on the
  /// pool) before it rejects new ones with ResourceExhausted. 0 disables
  /// admission control (never reject).
  size_t max_inflight = 256;

  /// Serving default deadline: requests that arrive without their own
  /// `deadline_ms` wire field inherit this budget (milliseconds from
  /// admission). An expired request unwinds cooperatively at the next
  /// per-shard check and answers kDeadlineExceeded. 0 = no default
  /// deadline.
  uint64_t default_deadline_ms = 0;

  /// Request-trace sampling: trace every Nth served request (per-stage
  /// span timings feeding the METRICS stage histograms and the slow-query
  /// log). 0 disables sampling; the always-on end-to-end request-latency
  /// histogram is unaffected. Untraced requests pay a single null-pointer
  /// check per recording site.
  size_t trace_sample_n = 0;

  /// Slow-query threshold in milliseconds: any request whose end-to-end
  /// latency can exceed this is traced regardless of `trace_sample_n`
  /// (i.e. a positive threshold traces every request, and only those at
  /// or over the threshold enter the slow-query log). 0 disables the
  /// threshold; sampled traces then enter the log unconditionally.
  uint64_t slow_query_ms = 0;

  /// Capacity K of the bounded slow-query log (the K worst traces by
  /// end-to-end latency, surfaced via STATS). 0 disables the log.
  size_t slow_query_log_k = 32;

  /// Wire-level response byte cache: a server::QueryServer fronting this
  /// catalog caches the fully encoded one-line wire payload of memoizable
  /// OK answers, keyed by (relation, plan fingerprint, mode), and serves
  /// repeats straight from the cached bytes on the I/O thread — zero JSON
  /// encoding, zero pool handoff. Invalidated alongside the result memo
  /// by Insert*/Build/DropRelation; served bytes are always bitwise
  /// identical to a fresh encode.
  bool enable_response_cache = true;

  /// Byte budget of the response byte cache (cost-aware LRU admission,
  /// like `result_memo_bytes`); 0 means unbounded.
  size_t response_cache_bytes = 32ull << 20;

  uint64_t seed = 42;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_OPTIONS_H_
