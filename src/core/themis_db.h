#ifndef THEMIS_CORE_THEMIS_DB_H_
#define THEMIS_CORE_THEMIS_DB_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "util/status.h"

namespace themis::core {

/// The user-facing open-world database facade: insert biased sample
/// relations and the published population aggregates, build, and issue SQL
/// queries that are answered approximately *as if over the population*
/// (OWQP). A thin shell over core::Catalog — many independently-modeled
/// relations coexist in one instance, share one thread pool, and answer
/// concurrently:
///
///   ThemisDb db;
///   db.InsertSample("flights", std::move(biased_flights));
///   db.InsertAggregate("flights", per_state_counts);
///   db.InsertSample("imdb", std::move(biased_imdb));
///   db.InsertAggregate("imdb", per_year_counts);
///   THEMIS_CHECK_OK(db.Build());   // learns both models in parallel
///   auto result = db.Query(
///       "SELECT origin_state, COUNT(*) FROM flights "
///       "GROUP BY origin_state");  // routed by the FROM table
class ThemisDb {
 public:
  explicit ThemisDb(ThemisOptions options = {});

  /// Registers a biased sample as a new relation; its name is the SQL
  /// table name queries route by. AlreadyExists on a duplicate name.
  Status InsertSample(const std::string& name, data::Table sample);

  /// Adds one population aggregate over the named relation's attributes.
  /// NotFound when no such relation exists.
  Status InsertAggregate(const std::string& table_name,
                         aggregate::AggregateSpec aggregate);

  /// Convenience: computes GROUP BY COUNT(*) over `attr_names` on
  /// `population` and inserts it — how a data provider would publish Γ.
  Status InsertAggregateFrom(const std::string& table_name,
                             const data::Table& population,
                             const std::vector<std::string>& attr_names);

  /// Learns every relation's model, in parallel on the shared pool. Must
  /// be called after inserts and before queries; call again after adding
  /// aggregates to rebuild (only relations with new aggregates relearn).
  Status Build();

  /// Learns one relation's model, leaving the others untouched.
  Status Build(const std::string& name);

  /// Removes a relation — sample, aggregates, model, and caches.
  Status DropRelation(const std::string& name);

  /// True when at least one relation exists and every relation is built.
  bool built() const { return catalog_.all_built(); }
  bool built(const std::string& name) const { return catalog_.built(name); }

  /// Answers SQL approximately over the population (hybrid by default),
  /// routed to the relation named by the FROM clause. NotFound("no
  /// relation 'x'") for an unknown table, FailedPrecondition for a
  /// registered-but-unbuilt one.
  Result<sql::QueryResult> Query(
      const std::string& sql,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// Answers a batch of queries, possibly spanning relations: routes and
  /// plans everything first (warming the plan caches and deduplicating
  /// repeated texts), then submits whole plans — interleaved across
  /// relations — to the shared thread pool. Results line up with the
  /// input order and are bitwise identical to a sequential Query() loop
  /// at any pool size.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      std::span<const std::string> sqls,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// Point-query convenience against the named relation: COUNT(*) WHERE
  /// attr1=v1 AND ... by name.
  Result<double> PointQuery(
      const std::string& relation,
      const std::vector<std::pair<std::string, std::string>>& equalities,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// Single-relation convenience: as above when exactly one relation is
  /// registered; FailedPrecondition otherwise.
  Result<double> PointQuery(
      const std::vector<std::pair<std::string, std::string>>& equalities,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// The named relation's model/evaluator (after Build); null when
  /// unknown or unbuilt.
  const ThemisModel* model(const std::string& name) const {
    return catalog_.model(name);
  }
  const HybridEvaluator* evaluator(const std::string& name) const {
    return catalog_.evaluator(name);
  }

  /// Single-relation conveniences: the sole relation's model/evaluator,
  /// null when zero or several relations are registered.
  const ThemisModel* model() const;
  const HybridEvaluator* evaluator() const;

  /// The underlying multi-relation catalog.
  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

 private:
  /// The sole relation's name; FailedPrecondition when there are 0 or >1.
  Result<std::string> SoleRelation() const;

  Catalog catalog_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_THEMIS_DB_H_
