#ifndef THEMIS_CORE_THEMIS_DB_H_
#define THEMIS_CORE_THEMIS_DB_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/model.h"
#include "util/status.h"

namespace themis::core {

/// The user-facing open-world database facade: insert a biased sample and
/// the published population aggregates, build, and issue SQL queries that
/// are answered approximately *as if over the population* (OWQP).
///
///   ThemisDb db;
///   db.InsertSample("flights", std::move(biased_sample));
///   db.InsertAggregate("flights", per_state_counts);
///   THEMIS_CHECK_OK(db.Build());
///   auto result = db.Query(
///       "SELECT origin_state, COUNT(*) FROM flights "
///       "GROUP BY origin_state");
class ThemisDb {
 public:
  explicit ThemisDb(ThemisOptions options = {});

  /// Registers the biased sample relation. Exactly one sample is supported
  /// (multi-sample integration is the paper's future work).
  Status InsertSample(const std::string& name, data::Table sample);

  /// Adds one population aggregate over the sample's attributes (by name).
  Status InsertAggregate(const std::string& table_name,
                         aggregate::AggregateSpec aggregate);

  /// Convenience: computes GROUP BY COUNT(*) over `attr_names` on
  /// `population` and inserts it — how a data provider would publish Γ.
  Status InsertAggregateFrom(const std::string& table_name,
                             const data::Table& population,
                             const std::vector<std::string>& attr_names);

  /// Learns the model. Must be called after inserts and before queries;
  /// call again after adding aggregates to rebuild.
  Status Build();

  bool built() const { return evaluator_ != nullptr; }

  /// Answers SQL approximately over the population (hybrid by default).
  Result<sql::QueryResult> Query(
      const std::string& sql,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// Answers a batch of queries: plans everything first (warming the plan
  /// cache and deduplicating repeated texts), then submits whole plans to
  /// the shared thread pool so distinct queries run concurrently, with
  /// each GROUP BY plan's K BN-sample executors nesting on the same pool.
  /// Results line up with the input order and are bitwise identical to a
  /// sequential Query() loop at any pool size.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      std::span<const std::string> sqls,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// Point-query convenience: COUNT(*) WHERE attr1=v1 AND ... by name.
  Result<double> PointQuery(
      const std::vector<std::pair<std::string, std::string>>& equalities,
      AnswerMode mode = AnswerMode::kHybrid) const;

  /// The underlying model (after Build).
  const ThemisModel* model() const { return model_.get(); }

  /// The underlying evaluator/engine (after Build); null before.
  const HybridEvaluator* evaluator() const { return evaluator_.get(); }

 private:
  ThemisOptions options_;
  std::string table_name_;
  std::unique_ptr<data::Table> pending_sample_;
  std::unique_ptr<aggregate::AggregateSet> pending_aggregates_;
  std::unique_ptr<ThemisModel> model_;
  std::unique_ptr<HybridEvaluator> evaluator_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_THEMIS_DB_H_
