#include "core/catalog.h"

#include <algorithm>
#include <utility>

#include "core/query_plan.h"
#include "util/logging.h"

namespace themis::core {

Catalog::Catalog(ThemisOptions options, util::ThreadPool* pool)
    : options_(std::move(options)),
      route_cache_(std::make_unique<RouteCache>()),
      mutation_listeners_(std::make_unique<MutationListeners>()) {
  pool_ = util::ResolvePool(pool, options_.num_threads, owned_pool_);
}

uint64_t Catalog::AddMutationListener(MutationListener listener) const {
  std::lock_guard<std::mutex> lock(mutation_listeners_->mu);
  const uint64_t id = mutation_listeners_->next_id++;
  mutation_listeners_->listeners.emplace(id, std::move(listener));
  return id;
}

void Catalog::RemoveMutationListener(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutation_listeners_->mu);
  mutation_listeners_->listeners.erase(id);
}

void Catalog::NotifyMutation(const std::string& relation) const {
  // Listeners run under the registry lock: registration is rare (server
  // start/stop) and mutations never race queries, so contention is moot;
  // holding the lock keeps removal well-ordered against a firing listener.
  std::lock_guard<std::mutex> lock(mutation_listeners_->mu);
  for (const auto& [id, listener] : mutation_listeners_->listeners) {
    listener(relation);
  }
}

Status Catalog::InsertSample(const std::string& name, data::Table sample,
                             RelationConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name is empty");
  }
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("sample for relation '" + name +
                                   "' is empty");
  }
  const std::string table_name =
      config.table_name.empty() ? name : std::move(config.table_name);
  // FROM-routing resolves relation names, so a table alias that shadows
  // another relation's name (or a name shadowing another's alias) would
  // silently route queries to the wrong relation — reject it up front.
  for (const auto& [existing_name, existing] : relations_) {
    if (table_name != name && table_name == existing_name) {
      return Status::InvalidArgument(
          "table name '" + table_name + "' of relation '" + name +
          "' shadows the relation '" + existing_name + "'");
    }
    if (existing.table_name != existing_name && existing.table_name == name) {
      return Status::InvalidArgument(
          "relation name '" + name + "' shadows the table name of relation '" +
          existing_name + "'");
    }
  }
  Relation relation;
  relation.table_name = table_name;
  relation.base_options =
      config.options.has_value() ? std::move(*config.options) : options_;
  relation.pending_aggregates =
      std::make_unique<aggregate::AggregateSet>(sample.schema());
  relation.pending_sample =
      std::make_unique<data::Table>(std::move(sample));
  relations_.emplace(name, std::move(relation));
  NotifyMutation(name);
  return Status::OK();
}

Status Catalog::InsertAggregate(const std::string& name,
                                aggregate::AggregateSpec aggregate) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  Relation& relation = it->second;
  for (size_t attr : aggregate.attrs) {
    if (attr >= relation.pending_sample->schema()->num_attributes()) {
      return Status::InvalidArgument("aggregate attribute out of range for '" +
                                     name + "'");
    }
  }
  relation.pending_aggregates->Add(std::move(aggregate));
  // New knowledge invalidates this relation's model and with it the
  // relation's inference cache and result memo; other relations keep
  // serving their memoized answers untouched.
  relation.model.reset();
  relation.evaluator.reset();
  NotifyMutation(name);
  return Status::OK();
}

Status Catalog::InsertAggregateFrom(
    const std::string& name, const data::Table& population,
    const std::vector<std::string>& attr_names) {
  if (relations_.count(name) == 0) {
    return Status::NotFound("no relation '" + name + "'");
  }
  std::vector<size_t> attrs;
  for (const std::string& attr_name : attr_names) {
    THEMIS_ASSIGN_OR_RETURN(size_t idx,
                            population.schema()->AttributeIndex(attr_name));
    attrs.push_back(idx);
  }
  return InsertAggregate(name,
                         aggregate::ComputeAggregate(population, attrs));
}

Status Catalog::Build(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  Relation& relation = it->second;
  // Split the catalog-wide cache-byte budgets evenly across the relations
  // registered right now: one relation cannot starve the others' caches.
  ThemisOptions effective = relation.base_options;
  const size_t n = std::max<size_t>(1, relations_.size());
  if (effective.inference_cache_bytes > 0) {
    effective.inference_cache_bytes =
        std::max<size_t>(1, effective.inference_cache_bytes / n);
  }
  if (effective.result_memo_bytes > 0) {
    effective.result_memo_bytes =
        std::max<size_t>(1, effective.result_memo_bytes / n);
  }
  auto model = ThemisModel::Build(relation.pending_sample->Clone(),
                                  *relation.pending_aggregates, effective);
  if (!model.ok()) return model.status();
  relation.model = std::make_unique<ThemisModel>(std::move(model).value());
  relation.evaluator = std::make_unique<HybridEvaluator>(
      relation.model.get(), relation.table_name, pool_, name);
  NotifyMutation(name);
  return Status::OK();
}

Status Catalog::BuildAll() {
  if (relations_.empty()) {
    return Status::FailedPrecondition("no sample inserted");
  }
  std::vector<std::string> names = RelationNames();
  std::vector<Status> statuses(names.size());
  // Model learning is embarrassingly parallel across relations; each build
  // may further fan out on the same pool (nesting never deadlocks). Only
  // un-built relations learn (inserting aggregates un-builds exactly the
  // touched relation), so already-built neighbors keep their models and
  // warm caches.
  pool_->ParallelFor(0, names.size(), [&](size_t i) {
    if (!built(names[i])) statuses[i] = Build(names[i]);
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status Catalog::DropRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  relations_.erase(it);
  // Survivors inherit the dropped relation's cache-byte share right away
  // — a smaller catalog serves the same budget, not a shrunken one.
  RebalanceCacheBudgets();
  NotifyMutation(name);
  return Status::OK();
}

void Catalog::RebalanceCacheBudgets() {
  if (relations_.empty()) return;
  const size_t n = relations_.size();
  for (auto& [name, relation] : relations_) {
    if (relation.evaluator == nullptr) continue;
    const ThemisOptions& base = relation.base_options;
    // Grow-only: a survivor built when the catalog was smaller may hold
    // more than base/n already (shares are fixed at build time); clamping
    // it down would evict warm entries mid-serving, which is exactly what
    // this rebalance exists to avoid. Shrinking happens only through the
    // relation's own rebuild.
    const auto grown = [n](size_t budget, size_t current) -> size_t {
      if (budget == 0) return 0;  // not byte-budgeted: leave untouched
      return std::max(current, std::max<size_t>(1, budget / n));
    };
    const size_t inference_current =
        relation.evaluator->inference_engine() != nullptr
            ? relation.evaluator->inference_engine()->cache_stats().capacity
            : 0;
    const size_t memo_current =
        relation.evaluator->result_memo_stats().capacity;
    relation.evaluator->SetCacheBudgets(
        grown(base.inference_cache_bytes, inference_current),
        grown(base.result_memo_bytes, memo_current));
  }
}

bool Catalog::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

bool Catalog::built(const std::string& name) const {
  auto it = relations_.find(name);
  return it != relations_.end() && it->second.evaluator != nullptr;
}

bool Catalog::all_built() const {
  if (relations_.empty()) return false;
  for (const auto& [name, relation] : relations_) {
    if (relation.evaluator == nullptr) return false;
  }
  return true;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

const ThemisModel* Catalog::model(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.model.get();
}

const HybridEvaluator* Catalog::evaluator(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.evaluator.get();
}

Result<RelationStats> Catalog::StatsFor(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  RelationStats stats;
  const HybridEvaluator* evaluator = it->second.evaluator.get();
  if (evaluator == nullptr) return stats;  // registered, not built
  stats.built = true;
  stats.plan_cache_hits = evaluator->planner().cache_hits();
  stats.plan_cache_misses = evaluator->planner().cache_misses();
  if (evaluator->inference_engine() != nullptr) {
    stats.inference_cache = evaluator->inference_engine()->cache_stats();
  }
  stats.result_memo = evaluator->result_memo_stats();
  stats.executor = evaluator->executor_stats();
  return stats;
}

std::map<std::string, RelationStats> Catalog::Stats() const {
  std::map<std::string, RelationStats> out;
  for (const auto& [name, relation] : relations_) {
    out.emplace(name, *StatsFor(name));
  }
  return out;
}

Result<const Catalog::Relation*> Catalog::FindBuilt(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  if (it->second.evaluator == nullptr) {
    return Status::FailedPrecondition("relation '" + name +
                                      "' is not built; call Build(\"" + name +
                                      "\") first");
  }
  return &it->second;
}

Result<std::string> Catalog::RouteFor(const std::string& sql) const {
  {
    std::lock_guard<std::mutex> lock(route_cache_->mu);
    if (auto hit = route_cache_->cache.Get(sql)) return *hit;
  }
  THEMIS_ASSIGN_OR_RETURN(std::string from, FirstFromTable(sql));
  std::lock_guard<std::mutex> lock(route_cache_->mu);
  route_cache_->cache.Put(sql, from);
  return from;
}

Result<sql::QueryResult> Catalog::Query(const std::string& sql,
                                        AnswerMode mode,
                                        const util::CancelToken* cancel,
                                        obs::TraceContext* trace) const {
  THEMIS_ASSIGN_OR_RETURN(std::string from, RouteFor(sql));
  return QueryOn(from, sql, mode, cancel, trace);
}

Result<sql::QueryResult> Catalog::QueryOn(const std::string& relation,
                                          const std::string& sql,
                                          AnswerMode mode,
                                          const util::CancelToken* cancel,
                                          obs::TraceContext* trace) const {
  THEMIS_ASSIGN_OR_RETURN(const Relation* entry, FindBuilt(relation));
  return entry->evaluator->Query(sql, mode, cancel, trace);
}

std::vector<Result<sql::QueryResult>> Catalog::QueryMany(
    std::span<const QueryItem> items) const {
  // Per-item route + plan with per-item fault isolation: one bad request
  // records its error in its own slot and its batch-mates still run.
  std::vector<Result<sql::QueryResult>> results(
      items.size(), Result<sql::QueryResult>(Status::Internal("not run")));
  std::vector<const HybridEvaluator*> evaluators(items.size(), nullptr);
  std::vector<QueryPlanPtr> plans(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const QueryItem& item = items[i];
    std::string route = item.relation;
    if (route.empty()) {
      auto from = RouteFor(item.sql);
      if (!from.ok()) {
        results[i] = from.status();
        continue;
      }
      route = std::move(*from);
    }
    auto entry = FindBuilt(route);
    if (!entry.ok()) {
      results[i] = entry.status();
      continue;
    }
    auto plan = (*entry)->evaluator->Plan(item.sql);
    if (!plan.ok()) {
      results[i] = plan.status();
      continue;
    }
    evaluators[i] = (*entry)->evaluator.get();
    plans[i] = std::move(*plan);
  }
  // Whole plans are pool tasks, exactly as in QueryBatch; duplicate items
  // inside one micro-batch coalesce through the evaluator's single-flight
  // layer like any other concurrent duplicates.
  pool_->ParallelFor(0, items.size(), [&](size_t i) {
    if (plans[i] == nullptr) return;  // planning already failed
    results[i] = evaluators[i]->ExecutePlan(*plans[i], items[i].mode,
                                            items[i].cancel, items[i].trace);
  });
  return results;
}

void Catalog::SetCoalescingEnabled(bool enabled) const {
  for (const auto& [name, relation] : relations_) {
    if (relation.evaluator != nullptr) {
      relation.evaluator->set_coalescing_enabled(enabled);
    }
  }
}

Result<std::vector<sql::QueryResult>> Catalog::QueryBatch(
    std::span<const std::string> sqls, AnswerMode mode,
    const util::CancelToken* cancel, obs::TraceContext* trace) const {
  // Route + plan everything first: repeated texts share one plan through
  // each relation's plan cache, and routing errors, malformed SQL, or an
  // unbuilt relation fail before any execution starts.
  std::vector<const HybridEvaluator*> evaluators;
  std::vector<QueryPlanPtr> plans;
  evaluators.reserve(sqls.size());
  plans.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    THEMIS_ASSIGN_OR_RETURN(std::string from, RouteFor(sql));
    THEMIS_ASSIGN_OR_RETURN(const Relation* entry, FindBuilt(from));
    THEMIS_ASSIGN_OR_RETURN(QueryPlanPtr plan, entry->evaluator->Plan(sql));
    evaluators.push_back(entry->evaluator.get());
    plans.push_back(std::move(plan));
  }
  // Whole plans are pool tasks, interleaved across relations; each GROUP
  // BY plan's K-executor fan-out nests on the same pool.
  std::vector<Result<sql::QueryResult>> results(
      plans.size(), Result<sql::QueryResult>(Status::Internal("not run")));
  pool_->ParallelFor(0, plans.size(), [&](size_t i) {
    results[i] = evaluators[i]->ExecutePlan(*plans[i], mode, cancel, trace);
  });
  std::vector<sql::QueryResult> out;
  out.reserve(plans.size());
  for (Result<sql::QueryResult>& result : results) {
    // Report the lowest-index failure so batch errors are deterministic.
    if (!result.ok()) return result.status();
    out.push_back(std::move(*result));
  }
  return out;
}

Result<double> Catalog::PointQuery(
    const std::string& relation,
    const std::vector<std::pair<std::string, std::string>>& equalities,
    AnswerMode mode) const {
  THEMIS_ASSIGN_OR_RETURN(const Relation* entry, FindBuilt(relation));
  const data::SchemaPtr& schema =
      entry->model->reweighted_sample().schema();
  std::vector<size_t> attrs;
  data::TupleKey values;
  for (const auto& [attr_name, value_label] : equalities) {
    THEMIS_ASSIGN_OR_RETURN(size_t idx, schema->AttributeIndex(attr_name));
    auto code = schema->domain(idx).Code(value_label);
    if (!code.ok()) {
      // Value outside the active domain: the open-world estimate is the
      // BN's, but with no domain entry the probability is zero.
      return 0.0;
    }
    attrs.push_back(idx);
    values.push_back(*code);
  }
  return entry->evaluator->PointEstimate(attrs, values, mode);
}

}  // namespace themis::core
