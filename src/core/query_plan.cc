#include "core/query_plan.h"

#include <cctype>
#include <utility>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace themis::core {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kPoint:
      return "Point";
    case PlanKind::kGroupBy:
      return "GroupBy";
    case PlanKind::kPassthrough:
      return "Passthrough";
  }
  return "?";
}

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_literal = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'') in_literal = true;
  }
  return out;
}

Result<std::string> FirstFromTable(const std::string& sql) {
  THEMIS_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens,
                          sql::Tokenize(sql));
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].IsKeyword("FROM") &&
        tokens[i + 1].type == sql::TokenType::kIdentifier) {
      return tokens[i + 1].text;
    }
  }
  return Status::ParseError("no FROM <table> clause in '" + sql + "'");
}

QueryPlanner::QueryPlanner(data::SchemaPtr schema, bool has_bn,
                           size_t plan_cache_capacity, std::string relation)
    : schema_(std::move(schema)),
      has_bn_(has_bn),
      relation_(std::move(relation)),
      cache_(plan_cache_capacity) {}

size_t QueryPlanner::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t QueryPlanner::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

QueryPlan QueryPlanner::PlanStatement(sql::SelectStatement stmt) const {
  QueryPlan plan;
  plan.stmt = std::move(stmt);
  if (!has_bn_) {
    plan.kind = PlanKind::kPassthrough;
    return plan;
  }
  plan.kind = PlanKind::kGroupBy;

  // Point shape: single table, lone COUNT(*), no GROUP BY, and a WHERE of
  // only column = literal conjuncts.
  const sql::SelectStatement& s = plan.stmt;
  if (s.tables.size() != 1 || !s.group_by.empty() || s.items.size() != 1 ||
      s.items[0].func != sql::AggFunc::kCount || s.where.empty()) {
    return plan;
  }
  std::vector<size_t> attrs;
  data::TupleKey values;
  for (const sql::Predicate& pred : s.where) {
    if (pred.is_join || pred.op != sql::CompareOp::kEq ||
        pred.literals.size() != 1) {
      return plan;  // not a pure point query; keep the group-by route
    }
    auto attr = schema_->AttributeIndex(pred.lhs.column);
    if (!attr.ok()) return plan;
    auto code = schema_->domain(*attr).Code(pred.literals[0].text);
    if (!code.ok()) {
      // Constant outside the active domain: probability zero either way.
      plan.kind = PlanKind::kPoint;
      plan.point_attrs.clear();
      plan.point_values.clear();
      plan.out_of_domain = true;
      return plan;
    }
    attrs.push_back(*attr);
    values.push_back(*code);
  }
  plan.kind = PlanKind::kPoint;
  plan.point_attrs = std::move(attrs);
  plan.point_values = std::move(values);
  return plan;
}

Result<QueryPlanPtr> QueryPlanner::Plan(const std::string& sql) const {
  const std::string key = NormalizeSql(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto cached = cache_.Get(key)) {
      ++hits_;
      return *cached;
    }
    ++misses_;
  }
  THEMIS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  QueryPlan planned = PlanStatement(std::move(stmt));
  planned.relation = relation_;
  planned.fingerprint = relation_.empty() ? key : relation_ + '\x1f' + key;
  auto plan = std::make_shared<const QueryPlan>(std::move(planned));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, plan);
  }
  return plan;
}

}  // namespace themis::core
