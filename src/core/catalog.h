#ifndef THEMIS_CORE_CATALOG_H_
#define THEMIS_CORE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/model.h"
#include "util/lru_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace themis::core {

/// Live cache counters of one catalog relation — the payload of the
/// serving front-end's STATS verb. All counters reset when the relation
/// rebuilds (its evaluator is recreated).
struct RelationStats {
  bool built = false;
  /// Plan-cache counters (normalized-SQL -> logical plan).
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  /// BN marginal/probability memo; zero-valued when the model has no BN.
  bn::InferenceCacheStats inference_cache;
  /// Plan->result memo.
  ResultMemoStats result_memo;
  /// Scan-path counters summed over the relation's sample and BN-sample
  /// executors (rows scanned/passed, groups emitted, join build/probe).
  sql::ExecutorStats executor;
};

/// Per-relation overrides applied at InsertSample time.
struct RelationConfig {
  /// Build options for this relation; the catalog-wide options otherwise.
  /// `num_threads` inside a per-relation override is ignored — the
  /// catalog's single pool runs every relation.
  std::optional<ThemisOptions> options;

  /// The name the sample is registered under for SQL execution; defaults
  /// to the relation name. Distinct relations may share a table name (the
  /// MethodSuite registers four differently-modeled relations all visible
  /// as "sample") — such relations are addressed with QueryOn, since
  /// FROM-routing resolves *relation* names.
  std::string table_name;
};

/// A catalog of independently-modeled relations — the multi-relation core
/// the single-sample ThemisDb fronts. Each entry owns its biased sample,
/// its published aggregates, its learned ThemisModel, and its
/// HybridEvaluator (with per-relation plan cache, inference cache, and
/// plan->result memo); every evaluator runs on the catalog's one
/// util::ThreadPool, and the catalog-wide `inference_cache_bytes` /
/// `result_memo_bytes` budgets are split evenly across the registered
/// relations at Build time (each relation's share is fixed when it
/// builds, so relations added later do not shrink already-built
/// neighbors' shares until those rebuild; dropping a relation, however,
/// re-inflates the survivors' shares immediately and in place).
///
/// Queries route by the FROM table: `Query`/`QueryBatch` resolve the first
/// FROM identifier against the relation names and dispatch to that
/// relation's evaluator, stamping the relation into every plan fingerprint
/// so memo entries never collide across relations. `QueryBatch` interleaves
/// plans from different relations on the shared pool; each answer is
/// bitwise identical to the same query on a dedicated single-relation
/// instance at any pool size.
///
/// Thread-safe for concurrent const use (Query/QueryBatch/PointQuery);
/// mutations (Insert*/Build*/DropRelation) must not race queries.
class Catalog {
 public:
  explicit Catalog(ThemisOptions options = {},
                   util::ThreadPool* pool = nullptr);

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new relation. AlreadyExists when the name is taken,
  /// InvalidArgument when the sample is empty or when the name/table-name
  /// pair would shadow another relation's and mislead FROM-routing.
  Status InsertSample(const std::string& name, data::Table sample,
                      RelationConfig config = {});

  /// Adds one population aggregate to the named relation. NotFound when no
  /// such relation exists; resets the relation's built model (call
  /// Build(name) again).
  Status InsertAggregate(const std::string& name,
                         aggregate::AggregateSpec aggregate);

  /// Convenience: computes GROUP BY COUNT(*) over `attr_names` on
  /// `population` and inserts it — how a data provider would publish Γ.
  Status InsertAggregateFrom(const std::string& name,
                             const data::Table& population,
                             const std::vector<std::string>& attr_names);

  /// (Re)learns the named relation's model and creates a fresh evaluator,
  /// unconditionally. The catalog-wide cache-byte budgets are split by
  /// the relation count at this moment; a relation built earlier keeps
  /// its then-larger share until it rebuilds (see ROADMAP: budget
  /// rebalancing).
  Status Build(const std::string& name);

  /// Builds every relation that is not already built (inserting
  /// aggregates un-builds exactly the touched relation), learning the
  /// models in parallel on the shared pool; built relations keep their
  /// models and warm caches. Returns the first failure in relation-name
  /// order (the other relations still build).
  Status BuildAll();

  /// Removes the relation entirely — sample, aggregates, model, evaluator,
  /// and with them its plan cache, inference cache, and result memo.
  Status DropRelation(const std::string& name);

  bool Has(const std::string& name) const;
  /// False for unknown names as well as registered-but-unbuilt ones.
  bool built(const std::string& name) const;
  /// True when at least one relation exists and every relation is built.
  bool all_built() const;
  size_t num_relations() const { return relations_.size(); }
  /// Registered relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  /// The named relation's model/evaluator; null when unknown or unbuilt.
  const ThemisModel* model(const std::string& name) const;
  const HybridEvaluator* evaluator(const std::string& name) const;

  /// Live cache counters of the named relation (all-zero with
  /// built=false for a registered-but-unbuilt one). NotFound when no such
  /// relation exists.
  Result<RelationStats> StatsFor(const std::string& name) const;

  /// StatsFor every registered relation, keyed by relation name — what
  /// the serving front-end's STATS verb reports.
  std::map<std::string, RelationStats> Stats() const;

  /// Answers SQL against the relation named by its FROM clause.
  /// NotFound("no relation 'x'") for an unknown FROM table,
  /// FailedPrecondition for a registered-but-unbuilt one.
  ///
  /// `cancel` (optional) carries the serving layer's per-request deadline
  /// / disconnect signal into plan execution: it is polled once on entry
  /// and once per shard in the executor loops, and a fired token answers
  /// kDeadlineExceeded / kCancelled instead of finishing the plan. A
  /// token that never fires leaves the answer bitwise identical to
  /// passing nullptr.
  ///
  /// `trace` (optional) is the per-request obs::TraceContext — spans for
  /// plan lookup, single-flight wait, execution, and executor shard loops
  /// record into it; null (the default) costs one pointer check per site.
  Result<sql::QueryResult> Query(const std::string& sql,
                                 AnswerMode mode = AnswerMode::kHybrid,
                                 const util::CancelToken* cancel = nullptr,
                                 obs::TraceContext* trace = nullptr) const;

  /// Answers SQL against an explicitly named relation (bypasses
  /// FROM-routing; required when relations share a SQL table name).
  Result<sql::QueryResult> QueryOn(
      const std::string& relation, const std::string& sql,
      AnswerMode mode = AnswerMode::kHybrid,
      const util::CancelToken* cancel = nullptr,
      obs::TraceContext* trace = nullptr) const;

  /// Batched answering across relations: routes and plans every query
  /// first (malformed SQL or an unknown relation fails before any work
  /// runs), then submits whole plans — interleaved across relations — to
  /// the shared pool. Results line up with the input order and are bitwise
  /// identical to a sequential Query() loop at any pool size. One
  /// `cancel` token covers the whole batch.
  Result<std::vector<sql::QueryResult>> QueryBatch(
      std::span<const std::string> sqls,
      AnswerMode mode = AnswerMode::kHybrid,
      const util::CancelToken* cancel = nullptr,
      obs::TraceContext* trace = nullptr) const;

  /// One request of a QueryMany micro-batch — the server-side analogue of
  /// a QueryBatch entry, with per-item routing, mode, and cancellation.
  struct QueryItem {
    std::string sql;
    /// Explicitly pinned relation (Catalog::QueryOn semantics); empty
    /// routes by the FROM table.
    std::string relation;
    AnswerMode mode = AnswerMode::kHybrid;
    const util::CancelToken* cancel = nullptr;
    /// Per-item trace (nullable, like `cancel`): each micro-batch member
    /// keeps its own span record even though they share one pool task.
    obs::TraceContext* trace = nullptr;
  };

  /// Executes a micro-batch of independent requests with per-item fault
  /// isolation: unlike QueryBatch (one client's batch — all-or-nothing),
  /// each item carries its own route/plan/execution outcome, so one
  /// malformed query or expired deadline never fails its batch-mates.
  /// Plans run as one ParallelFor over the shared pool; each answer is
  /// bitwise identical to the same request through Query/QueryOn. How the
  /// serving layer submits the N>1 requests of one epoll drain pass as a
  /// single pool task.
  std::vector<Result<sql::QueryResult>> QueryMany(
      std::span<const QueryItem> items) const;

  /// The relation name `sql` routes to (its first FROM identifier) —
  /// the public face of the memoized route cache. The serving layer uses
  /// it to key response-cache invalidation by the routed relation even
  /// when the wire request carried no explicit relation.
  Result<std::string> Route(const std::string& sql) const {
    return RouteFor(sql);
  }

  /// A callback fired synchronously from every relation mutation
  /// (InsertSample / InsertAggregate / Build / DropRelation) with the
  /// touched relation's name — how the serving layer's response byte
  /// cache invalidates alongside the result memo. Listeners run on the
  /// mutating thread and must not call back into the catalog.
  using MutationListener = std::function<void(const std::string& relation)>;

  /// Registers a mutation listener, returning an id for removal.
  /// Const-qualified (listener state is heap-held, like the route cache,
  /// keeping the catalog movable) so a server fronting a const catalog
  /// can subscribe.
  uint64_t AddMutationListener(MutationListener listener) const;
  void RemoveMutationListener(uint64_t id) const;

  /// Forwards set_coalescing_enabled to every built relation's evaluator —
  /// the run-time toggle for single-flight query coalescing (answers are
  /// bitwise identical either way; the serving bench measures the
  /// uncoalesced baseline through this).
  void SetCoalescingEnabled(bool enabled) const;

  /// Point-query convenience against a named relation: COUNT(*) WHERE
  /// attr1=v1 AND ... by attribute name.
  Result<double> PointQuery(
      const std::string& relation,
      const std::vector<std::pair<std::string, std::string>>& equalities,
      AnswerMode mode = AnswerMode::kHybrid) const;

  const ThemisOptions& options() const { return options_; }
  util::ThreadPool* pool() const { return pool_; }

 private:
  struct Relation {
    std::string table_name;
    ThemisOptions base_options;  // before the shared-budget split
    std::unique_ptr<data::Table> pending_sample;
    std::unique_ptr<aggregate::AggregateSet> pending_aggregates;
    std::unique_ptr<ThemisModel> model;
    std::unique_ptr<HybridEvaluator> evaluator;
  };

  /// The named relation, with precise statuses: NotFound when unknown,
  /// FailedPrecondition when not built.
  Result<const Relation*> FindBuilt(const std::string& name) const;

  /// Re-splits the catalog-wide cache-byte budgets over the relations
  /// registered right now and applies each built relation's new share in
  /// place. Grow-only: a survivor already holding more than its new
  /// share (built when the catalog was smaller) keeps it — warm entries
  /// are never evicted by someone else's drop; shrinking happens only
  /// through the relation's own rebuild. Called by DropRelation so
  /// survivors inherit a dropped neighbor's share immediately.
  void RebalanceCacheBudgets();

  /// The relation name `sql` routes to (its first FROM identifier),
  /// memoized by exact text — the route depends only on the text, never
  /// on catalog state, so entries cannot go stale.
  Result<std::string> RouteFor(const std::string& sql) const;

  /// Heap-allocated so the catalog stays movable despite the mutex.
  struct RouteCache {
    std::mutex mu;
    LruCache<std::string, std::string> cache{1024};
  };

  /// Fires every registered mutation listener for `relation`.
  void NotifyMutation(const std::string& relation) const;

  /// Heap-allocated so the catalog stays movable despite the mutex.
  struct MutationListeners {
    std::mutex mu;
    uint64_t next_id = 1;
    std::map<uint64_t, MutationListener> listeners;
  };

  ThemisOptions options_;
  std::unique_ptr<RouteCache> route_cache_;
  std::unique_ptr<MutationListeners> mutation_listeners_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  // when num_threads is set
  util::ThreadPool* pool_ = nullptr;
  /// Ordered so RelationNames/BuildAll walk deterministically.
  std::map<std::string, Relation> relations_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_CATALOG_H_
