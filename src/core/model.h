#ifndef THEMIS_CORE_MODEL_H_
#define THEMIS_CORE_MODEL_H_

#include <memory>
#include <vector>

#include "aggregate/aggregate.h"
#include "bn/bayes_net.h"
#include "core/options.h"
#include "data/table.h"
#include "util/status.h"

namespace themis::core {

/// Timing/diagnostic record of a model build, used by the Table 8 / Fig 16
/// benchmarks.
struct BuildStats {
  double reweight_seconds = 0;
  double bn_structure_seconds = 0;
  double bn_parameter_seconds = 0;
  double generate_seconds = 0;
  bool reweight_converged = true;
  int reweight_iterations = 0;
  size_t aggregates_used = 0;
};

/// The model M(Γ, S) of Sec 4: a reweighted sample plus a Bayesian-network
/// approximation of the population distribution, built from a biased sample
/// and population aggregates. Queries are answered by the HybridEvaluator.
class ThemisModel {
 public:
  /// Runs the full build pipeline: infer |P| → prune Γ to the budget →
  /// reweight S → learn the BN → pre-generate the K BN sample tables used
  /// for GROUP BY answering.
  static Result<ThemisModel> Build(data::Table sample,
                                   aggregate::AggregateSet aggregates,
                                   const ThemisOptions& options = {});

  const ThemisOptions& options() const { return options_; }
  double population_size() const { return population_size_; }

  /// The sample with learned weights (queried via SUM(weight)).
  const data::Table& reweighted_sample() const { return sample_; }

  /// The learned population model; null when options.enable_bn is false.
  const bn::BayesianNetwork* network() const { return network_.get(); }

  /// The K pre-generated, uniformly-scaled BN samples (empty if no BN).
  const std::vector<data::Table>& bn_samples() const { return bn_samples_; }

  /// The aggregates actually used after pruning.
  const aggregate::AggregateSet& aggregates() const { return aggregates_; }

  const BuildStats& build_stats() const { return build_stats_; }

 private:
  ThemisModel(data::Table sample, aggregate::AggregateSet aggregates,
              ThemisOptions options)
      : sample_(std::move(sample)),
        aggregates_(std::move(aggregates)),
        options_(std::move(options)) {}

  data::Table sample_;
  aggregate::AggregateSet aggregates_;
  ThemisOptions options_;
  double population_size_ = 0;
  std::shared_ptr<bn::BayesianNetwork> network_;
  std::vector<data::Table> bn_samples_;
  BuildStats build_stats_;
};

}  // namespace themis::core

#endif  // THEMIS_CORE_MODEL_H_
