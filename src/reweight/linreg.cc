#include "reweight/linreg.h"

#include <numeric>

#include "linalg/matrix.h"
#include "reweight/incidence.h"
#include "reweight/reweighter.h"
#include "util/logging.h"

namespace themis::reweight {

namespace {

/// Column layout of the one-hot encoding: intercept at 0, then one block of
/// N_i columns per covered attribute.
struct OneHotLayout {
  std::vector<size_t> covered_attrs;
  std::vector<size_t> offsets;  // offsets[i] = first column of attr block i
  size_t num_columns = 1;       // starts at 1 for the intercept

  explicit OneHotLayout(const data::Schema& schema,
                        const std::vector<size_t>& covered) {
    covered_attrs = covered;
    for (size_t a : covered_attrs) {
      offsets.push_back(num_columns);
      num_columns += schema.domain(a).size();
    }
  }

  size_t ColumnFor(size_t covered_index, data::ValueCode code) const {
    return offsets[covered_index] + static_cast<size_t>(code);
  }
};

/// Builds XS: the nS x m_{0/1} one-hot matrix of the sample over the
/// covered attributes (Example 4.1).
linalg::Matrix BuildOneHot(const data::Table& sample,
                           const OneHotLayout& layout) {
  linalg::Matrix xs(sample.num_rows(), layout.num_columns);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    double* row = xs.RowData(r);
    row[0] = 1.0;  // intercept
    for (size_t i = 0; i < layout.covered_attrs.size(); ++i) {
      const data::ValueCode code = sample.Get(r, layout.covered_attrs[i]);
      if (code >= 0) row[layout.ColumnFor(i, code)] = 1.0;
    }
  }
  return xs;
}

}  // namespace

Status LinRegReweighter::Reweight(data::Table& sample,
                                  const aggregate::AggregateSet& aggregates,
                                  double population_size) {
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("LinReg: empty sample");
  }
  if (aggregates.empty()) {
    // Degenerate case: no constraints; fall back to uniform weights.
    sample.FillWeights(1.0);
    SumNormalize(sample, population_size);
    return Status::OK();
  }
  const data::Schema& schema = *sample.schema();
  OneHotLayout layout(schema, aggregates.CoveredAttributes());

  linalg::Matrix xs = BuildOneHot(sample, layout);
  IncidenceSystem sys = BuildIncidence(sample, aggregates);
  linalg::Matrix design = sys.g.MultiplyDense(xs);

  // Drop all-zero rows (groups with no sample participants) along with
  // their y entries, then append the intercept-encouraging row
  // [nS, 0, ..., 0] with target nS.
  linalg::Matrix a;
  linalg::Vector y;
  for (size_t r = 0; r < design.rows(); ++r) {
    bool all_zero = true;
    for (size_t c = 0; c < design.cols(); ++c) {
      if (design(r, c) != 0.0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;
    linalg::Vector row(design.RowData(r), design.RowData(r) + design.cols());
    a.AppendRow(row);
    y.push_back(sys.y[r]);
  }
  const double ns = static_cast<double>(sample.num_rows());
  linalg::Vector intercept_row(layout.num_columns, 0.0);
  intercept_row[0] = ns;
  a.AppendRow(intercept_row);
  y.push_back(ns);

  auto nnls = linalg::Nnls(a, y, options_);
  if (!nnls.ok()) return nnls.status();
  beta_ = nnls->x;

  // w(t) = beta . t_{0/1}.
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    double w = beta_[0];
    for (size_t i = 0; i < layout.covered_attrs.size(); ++i) {
      const data::ValueCode code = sample.Get(r, layout.covered_attrs[i]);
      if (code >= 0) w += beta_[layout.ColumnFor(i, code)];
    }
    sample.set_weight(r, w);
  }
  SumNormalize(sample, population_size);
  return Status::OK();
}

}  // namespace themis::reweight
