#ifndef THEMIS_REWEIGHT_REWEIGHTER_H_
#define THEMIS_REWEIGHT_REWEIGHTER_H_

#include <string>

#include "aggregate/aggregate.h"
#include "data/table.h"
#include "util/status.h"

namespace themis::reweight {

/// Common interface of the sample reweighting techniques (Sec 4.1). A
/// reweighter assigns each sample tuple t a weight w(t) — the number of
/// population tuples it represents — in place in the table's weight column.
class Reweighter {
 public:
  virtual ~Reweighter() = default;

  /// Name used in experiment output ("AQP", "LinReg", "IPF").
  virtual std::string name() const = 0;

  /// Computes weights for `sample` given the aggregates and the
  /// (approximate) population size n.
  virtual Status Reweight(data::Table& sample,
                          const aggregate::AggregateSet& aggregates,
                          double population_size) = 0;
};

/// Multiplicatively rescales all weights so they sum to `population_size`
/// (the paper's final sum-normalization step). No-op on empty tables.
void SumNormalize(data::Table& sample, double population_size);

}  // namespace themis::reweight

#endif  // THEMIS_REWEIGHT_REWEIGHTER_H_
