#ifndef THEMIS_REWEIGHT_IPF_H_
#define THEMIS_REWEIGHT_IPF_H_

#include "reweight/reweighter.h"

namespace themis::reweight {

/// Options for Iterative Proportional Fitting.
struct IpfOptions {
  /// Maximum sweeps over all aggregate constraints (Alg 1's maxIter).
  int max_iterations = 200;
  /// Relative satisfaction tolerance: converged when every constraint j
  /// has |G[j]·w − y[j]| ≤ tolerance · max(1, y[j]).
  double tolerance = 1e-8;
  /// When true (default off), sum-normalize the final weights to the
  /// population size. The raw IPF fixed point already matches each
  /// aggregate's total when a feasible scaling exists, so this is off by
  /// default to preserve exact marginal satisfaction.
  bool sum_normalize = false;
};

struct IpfStats {
  int iterations = 0;       ///< sweeps actually performed
  bool converged = false;   ///< all constraints satisfied within tolerance
  double max_violation = 0; ///< final max relative constraint violation
};

/// Iterative Proportional Fitting (Sec 4.1.2, Alg 1): treats every tuple
/// weight as an independent unknown and rescales the participants of each
/// unsatisfied aggregate group in turn until all constraints hold (or the
/// iteration budget is exhausted — e.g. when the sample is missing tuples,
/// Example 4.2, in which case the approximate weights are still returned).
class IpfReweighter : public Reweighter {
 public:
  explicit IpfReweighter(IpfOptions options = {}) : options_(options) {}

  std::string name() const override { return "IPF"; }

  Status Reweight(data::Table& sample,
                  const aggregate::AggregateSet& aggregates,
                  double population_size) override;

  /// Statistics from the last Reweight call.
  const IpfStats& stats() const { return stats_; }

 private:
  IpfOptions options_;
  IpfStats stats_;
};

}  // namespace themis::reweight

#endif  // THEMIS_REWEIGHT_IPF_H_
