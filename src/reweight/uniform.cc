#include "reweight/uniform.h"

namespace themis::reweight {

void SumNormalize(data::Table& sample, double population_size) {
  const double total = sample.TotalWeight();
  if (total <= 0 || sample.num_rows() == 0) return;
  const double scale = population_size / total;
  for (double& w : sample.mutable_weights()) w *= scale;
}

Status UniformReweighter::Reweight(data::Table& sample,
                                   const aggregate::AggregateSet& aggregates,
                                   double population_size) {
  (void)aggregates;  // uniform reweighting ignores Γ
  sample.FillWeights(1.0);
  SumNormalize(sample, population_size);
  return Status::OK();
}

}  // namespace themis::reweight
