#include "reweight/ipf.h"

#include <algorithm>
#include <cmath>

#include "reweight/incidence.h"
#include "util/logging.h"

namespace themis::reweight {

Status IpfReweighter::Reweight(data::Table& sample,
                               const aggregate::AggregateSet& aggregates,
                               double population_size) {
  stats_ = IpfStats{};
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("IPF: empty sample");
  }
  sample.FillWeights(1.0);
  if (aggregates.empty()) {
    SumNormalize(sample, population_size);
    return Status::OK();
  }

  IncidenceSystem sys = BuildIncidence(sample, aggregates);
  std::vector<double>& w = sample.mutable_weights();

  auto max_relative_violation = [&]() {
    double worst = 0;
    for (size_t j = 0; j < sys.g.rows(); ++j) {
      if (sys.g.Row(j).empty()) continue;  // unsatisfiable: no participants
      const double got = sys.g.RowDot(j, w);
      const double want = sys.y[j];
      worst = std::max(worst,
                       std::abs(got - want) / std::max(1.0, std::abs(want)));
    }
    return worst;
  };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    for (size_t j = 0; j < sys.g.rows(); ++j) {
      auto participants = sys.g.Row(j);
      if (participants.empty()) continue;
      const double got = sys.g.RowDot(j, w);
      const double want = sys.y[j];
      if (got == want) continue;
      if (got <= 0.0) continue;  // weights already driven to zero
      const double s = want / got;
      for (size_t c : participants) w[c] *= s;
    }
    stats_.iterations = iter + 1;
    stats_.max_violation = max_relative_violation();
    if (stats_.max_violation <= options_.tolerance) {
      stats_.converged = true;
      break;
    }
  }

  if (options_.sum_normalize) SumNormalize(sample, population_size);
  return Status::OK();
}

}  // namespace themis::reweight
