#ifndef THEMIS_REWEIGHT_LINREG_H_
#define THEMIS_REWEIGHT_LINREG_H_

#include "linalg/nnls.h"
#include "reweight/reweighter.h"

namespace themis::reweight {

/// Linear-regression reweighting (Sec 4.1.1). Assumes w(t) = β · t_{0/1}
/// where t_{0/1} is the one-hot encoding of t over the aggregate-covered
/// attributes (plus an intercept column). Solves
///   [G0/1 XS] β = y
/// as a *non-negative* least squares problem (β ≥ 0 so every tuple gets a
/// non-negative weight), with two of the paper's modifications:
///  - all-zero rows of G0/1 XS (groups absent from the sample) are dropped
///    together with their y entries;
///  - an extra row [nS, 0, ..., 0] with target nS is appended to encourage
///    a positive intercept so every tuple gets some positive weight.
/// Weights are sum-normalized to the population size afterwards.
class LinRegReweighter : public Reweighter {
 public:
  explicit LinRegReweighter(linalg::NnlsOptions options = {})
      : options_(options) {}

  std::string name() const override { return "LinReg"; }

  Status Reweight(data::Table& sample,
                  const aggregate::AggregateSet& aggregates,
                  double population_size) override;

  /// The fitted coefficients from the last Reweight call (intercept first,
  /// then one block per covered attribute). Exposed for tests/inspection.
  const linalg::Vector& beta() const { return beta_; }

 private:
  linalg::NnlsOptions options_;
  linalg::Vector beta_;
};

}  // namespace themis::reweight

#endif  // THEMIS_REWEIGHT_LINREG_H_
