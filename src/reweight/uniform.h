#ifndef THEMIS_REWEIGHT_UNIFORM_H_
#define THEMIS_REWEIGHT_UNIFORM_H_

#include "reweight/reweighter.h"

namespace themis::reweight {

/// The default AQP approach: uniform reweighting w(t) = |P| / |S| for every
/// tuple, equivalent to w(t) ≡ 1 followed by sum-normalization (Sec 4.1.1).
/// This is the baseline Themis is measured against.
class UniformReweighter : public Reweighter {
 public:
  std::string name() const override { return "AQP"; }

  Status Reweight(data::Table& sample,
                  const aggregate::AggregateSet& aggregates,
                  double population_size) override;
};

}  // namespace themis::reweight

#endif  // THEMIS_REWEIGHT_UNIFORM_H_
