#include "reweight/incidence.h"

namespace themis::reweight {

IncidenceSystem BuildIncidence(const data::Table& sample,
                               const aggregate::AggregateSet& aggregates) {
  IncidenceSystem sys;
  sys.g = linalg::BinaryCsrMatrix(sample.num_rows());
  for (size_t ai = 0; ai < aggregates.size(); ++ai) {
    const aggregate::AggregateSpec& spec = aggregates[ai];
    auto groups = sample.GroupRows(spec.attrs);
    for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
      const auto& [key, count] = spec.groups[gi];
      auto it = groups.find(key);
      if (it != groups.end()) {
        sys.g.AppendRow(it->second);
      } else {
        sys.g.AppendRow({});
      }
      sys.y.push_back(count);
      sys.row_origin.emplace_back(ai, gi);
    }
  }
  return sys;
}

}  // namespace themis::reweight
