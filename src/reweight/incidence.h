#ifndef THEMIS_REWEIGHT_INCIDENCE_H_
#define THEMIS_REWEIGHT_INCIDENCE_H_

#include <vector>

#include "aggregate/aggregate.h"
#include "data/table.h"
#include "linalg/csr_matrix.h"
#include "linalg/vector_ops.h"

namespace themis::reweight {

/// The constraint system shared by both reweighting techniques (Sec 4.1):
/// the 0/1 incidence matrix G0/1 with one row per aggregate group and one
/// column per sample tuple (entry 1 iff the tuple participates in the
/// group), and the target vector y of aggregate counts, y = Γ^C_1 ⊕ ... ⊕
/// Γ^C_B.
struct IncidenceSystem {
  linalg::BinaryCsrMatrix g{0};
  linalg::Vector y;
  /// For row r: which aggregate it came from and its group key, for
  /// debugging and tests.
  std::vector<std::pair<size_t, size_t>> row_origin;  // (agg idx, group idx)
};

/// Builds the incidence system for `sample` against `aggregates` following
/// Example 4.1. Rows appear in aggregate order, groups in each aggregate's
/// stored order. Rows with no participating sample tuple are *kept* here;
/// the regression reweighter drops them (the paper drops all-zero rows of
/// G0/1 XS) and IPF skips them.
IncidenceSystem BuildIncidence(const data::Table& sample,
                               const aggregate::AggregateSet& aggregates);

}  // namespace themis::reweight

#endif  // THEMIS_REWEIGHT_INCIDENCE_H_
