#ifndef THEMIS_BN_INFERENCE_ENGINE_H_
#define THEMIS_BN_INFERENCE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bn/inference.h"
#include "util/lru_cache.h"

namespace themis::bn {

/// Snapshot of the engine's memoization counters.
struct InferenceCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  /// Entries refused admission under a byte budget (entry alone too big).
  size_t rejections = 0;
  size_t entries = 0;
  /// Total cost of the resident entries: approximate bytes under a byte
  /// budget, the entry count otherwise.
  size_t cost = 0;
  /// The active bound in the same units as `cost` (0 = unbounded).
  /// Changes when the catalog rebalances budgets after DropRelation.
  size_t capacity = 0;

  double HitRate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Approximate in-memory footprint of a memoized marginal: key tuples,
/// mass doubles, and hash-node overhead per group. The admission cost of
/// marginal entries under a byte budget.
size_t ApproxMarginalBytes(const stats::FreqTable& table);

/// The unified inference entry point: wraps VariableElimination with a
/// thread-safe LRU memo table of computed probabilities and marginals,
/// keyed by (sorted target set, canonicalized evidence). Every
/// query-path caller goes through an engine, so repeated and batched
/// queries reuse prior computation across queries — the serving-side
/// analogue of the paper's Table 6 reuse experiment.
///
/// Marginals are always *computed* over the sorted target set and
/// reordered to the requested order on the way out, so answers are
/// bitwise identical whether the cache is enabled or not.
class InferenceEngine {
 public:
  struct Options {
    bool enable_cache = true;
    /// Maximum number of memoized results; 0 means unbounded.
    size_t cache_capacity = 4096;
    /// When positive, overrides `cache_capacity` with a cost-aware bound:
    /// entries are weighted by their approximate bytes (marginal tables by
    /// ApproxMarginalBytes, probabilities by a small constant), so one
    /// huge marginal cannot silently displace thousands of cheap entries
    /// — and is rejected outright if it alone exceeds the budget. Each
    /// engine serves exactly one model; a core::Catalog splits its
    /// catalog-wide byte budget evenly across relations before it reaches
    /// this knob, so the relations' engines divide one admission budget
    /// (each engine's share is fixed at its relation's build time).
    size_t cache_bytes = 0;
  };

  explicit InferenceEngine(const BayesianNetwork* network);
  InferenceEngine(const BayesianNetwork* network, Options options);

  const BayesianNetwork* network() const { return network_; }

  /// Pr(evidence): probability that a population tuple takes exactly the
  /// listed values on the listed attributes. Memoized.
  Result<double> Probability(const Evidence& evidence) const;

  /// Normalized joint over `targets`, optionally given `evidence`.
  /// Memoized on the canonical (sorted-target) form.
  Result<stats::FreqTable> Marginal(const std::vector<size_t>& targets) const;
  Result<stats::FreqTable> Marginal(const std::vector<size_t>& targets,
                                    const Evidence& evidence) const;

  bool cache_enabled() const;
  void set_cache_enabled(bool enabled);

  /// Rebounds a cost-aware cache in place (no-op for an engine built
  /// without Options::cache_bytes, or when `cache_bytes` is 0): growing
  /// keeps every warm entry, shrinking evicts LRU-first. How a catalog
  /// re-inflates surviving relations' shares after DropRelation.
  void set_cache_bytes(size_t cache_bytes);

  /// Drops every memoized entry and resets the counters.
  void ClearCache();

  InferenceCacheStats cache_stats() const;

 private:
  struct CacheValue {
    double probability = 0;
    std::shared_ptr<const stats::FreqTable> marginal;  // null for P-entries
  };

  /// Admission cost of one cache entry under the active policy.
  size_t EntryCost(const CacheValue& value) const;

  const BayesianNetwork* network_;
  VariableElimination ve_;
  bool cost_aware_;  // true when Options::cache_bytes > 0
  /// Atomic so the hot paths snapshot it without taking mu_; a toggle
  /// racing an in-flight call at worst stores into (or skips) the cache
  /// once, which ClearCache() tidies up.
  mutable std::atomic<bool> cache_enabled_;
  mutable std::mutex mu_;
  mutable LruCache<std::string, CacheValue> cache_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace themis::bn

#endif  // THEMIS_BN_INFERENCE_ENGINE_H_
