#ifndef THEMIS_BN_SCORE_H_
#define THEMIS_BN_SCORE_H_

#include <memory>
#include <vector>

#include "aggregate/aggregate.h"
#include "data/table.h"
#include "stats/freq_table.h"
#include "util/status.h"

namespace themis::bn {

/// Abstraction over "where do family statistics come from" during structure
/// learning: phase 1 scores moves from the population aggregates Γ, phase 2
/// from the sample S (Alg 2's D ← Γ / D ← S).
class ScoreSource {
 public:
  virtual ~ScoreSource() = default;

  /// True if the joint distribution of `attrs` can be computed from this
  /// source — for Γ, all attrs must appear together in one aggregate
  /// (BuildEdges' support test); for S, always true.
  virtual bool HasSupport(const std::vector<size_t>& attrs) const = 0;

  /// Joint counts over `attrs`, scaled to `total()` observations.
  virtual Result<stats::FreqTable> JointCounts(
      const std::vector<size_t>& attrs) const = 0;

  /// Number of observations behind the counts (n for Γ, nS for S).
  virtual double total() const = 0;
};

/// Family statistics from the sample S.
class SampleScoreSource : public ScoreSource {
 public:
  explicit SampleScoreSource(const data::Table* sample) : sample_(sample) {}

  bool HasSupport(const std::vector<size_t>& attrs) const override;
  Result<stats::FreqTable> JointCounts(
      const std::vector<size_t>& attrs) const override;
  double total() const override;

 private:
  const data::Table* sample_;
};

/// Family statistics from the aggregates Γ.
class AggregateScoreSource : public ScoreSource {
 public:
  explicit AggregateScoreSource(const aggregate::AggregateSet* aggregates)
      : aggregates_(aggregates) {}

  bool HasSupport(const std::vector<size_t>& attrs) const override;
  Result<stats::FreqTable> JointCounts(
      const std::vector<size_t>& attrs) const override;
  double total() const override;

 private:
  const aggregate::AggregateSet* aggregates_;
};

/// BIC score of the family (child | parents): the maximized family
/// log-likelihood minus the (log N / 2) · q_i(r_i − 1) complexity penalty.
/// Structure score is the sum of family scores; the learner works with
/// per-family deltas. `child_domain` / parent domain sizes come from the
/// schema.
Result<double> FamilyBicScore(const ScoreSource& source,
                              const data::Schema& schema, size_t child,
                              const std::vector<size_t>& parents);

}  // namespace themis::bn

#endif  // THEMIS_BN_SCORE_H_
