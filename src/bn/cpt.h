#ifndef THEMIS_BN_CPT_H_
#define THEMIS_BN_CPT_H_

#include <vector>

#include "data/schema.h"
#include "data/tuple_key.h"
#include "util/random.h"
#include "util/status.h"

namespace themis::bn {

/// Conditional probability table Pr(X_child | Pa(X_child)) with dense
/// storage: one probability row (simplex over child values) per parent
/// configuration. Parent configurations are mixed-radix encoded in the
/// order of `parents()`.
class Cpt {
 public:
  Cpt() = default;

  /// `parents` are attribute indices (sorted); sizes are the domain sizes.
  Cpt(size_t child, size_t child_size, std::vector<size_t> parents,
      std::vector<size_t> parent_sizes);

  size_t child() const { return child_; }
  size_t child_size() const { return child_size_; }
  const std::vector<size_t>& parents() const { return parents_; }
  const std::vector<size_t>& parent_sizes() const { return parent_sizes_; }
  size_t num_configs() const { return num_configs_; }

  /// Number of free parameters q_i (r_i - 1), the BIC complexity term.
  size_t NumFreeParameters() const {
    return num_configs_ * (child_size_ - 1);
  }

  /// Mixed-radix index of a parent configuration given codes aligned with
  /// parents().
  size_t ConfigIndex(const data::TupleKey& parent_codes) const;

  /// Inverse of ConfigIndex.
  data::TupleKey DecodeConfig(size_t config) const;

  double Prob(size_t config, data::ValueCode child_value) const {
    return probs_[config * child_size_ + static_cast<size_t>(child_value)];
  }
  void SetProb(size_t config, data::ValueCode child_value, double p) {
    probs_[config * child_size_ + static_cast<size_t>(child_value)] = p;
  }

  /// Raw flat storage, laid out [config][child_value].
  const std::vector<double>& flat() const { return probs_; }
  std::vector<double>& mutable_flat() { return probs_; }

  /// Sets every row to the uniform distribution.
  void FillUniform();

  /// Rescales each config row to sum to one (uniform if a row is all-zero).
  void NormalizeRows();

  /// Verifies every row is a simplex within `tol`.
  bool RowsAreSimplexes(double tol = 1e-6) const;

  /// Draws a child value given a parent configuration.
  data::ValueCode Sample(size_t config, Rng& rng) const;

 private:
  size_t child_ = 0;
  size_t child_size_ = 0;
  std::vector<size_t> parents_;
  std::vector<size_t> parent_sizes_;
  size_t num_configs_ = 1;
  std::vector<double> probs_;
};

}  // namespace themis::bn

#endif  // THEMIS_BN_CPT_H_
