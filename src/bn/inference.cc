#include "bn/inference.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace themis::bn {

namespace {

/// Sparse factor: attribute list (sorted ascending) and a hash map from
/// value tuples (in attribute order) to non-negative reals.
struct Factor {
  std::vector<size_t> attrs;
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> values;

  bool Contains(size_t attr) const {
    return std::binary_search(attrs.begin(), attrs.end(), attr);
  }
};

/// Builds the factor for `node`'s CPT with evidence applied: evidence
/// attributes are fixed to their values and dropped from the factor scope.
Factor CptFactor(const BayesianNetwork& bn, size_t node,
                 const Evidence& evidence) {
  const Cpt& cpt = bn.cpt(node);
  // Scope before evidence: parents + child, sorted.
  std::vector<size_t> scope = cpt.parents();
  scope.push_back(node);
  std::sort(scope.begin(), scope.end());

  Factor f;
  for (size_t a : scope) {
    if (evidence.count(a) == 0) f.attrs.push_back(a);
  }

  // Position of each free scope attribute within the factor key.
  for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
    const data::TupleKey parent_codes = cpt.DecodeConfig(cfg);
    // Check evidence on parents.
    bool parents_ok = true;
    for (size_t i = 0; i < cpt.parents().size(); ++i) {
      auto it = evidence.find(cpt.parents()[i]);
      if (it != evidence.end() && it->second != parent_codes[i]) {
        parents_ok = false;
        break;
      }
    }
    if (!parents_ok) continue;

    auto child_ev = evidence.find(node);
    const size_t j_begin =
        child_ev == evidence.end() ? 0 : static_cast<size_t>(child_ev->second);
    const size_t j_end = child_ev == evidence.end()
                             ? cpt.child_size()
                             : static_cast<size_t>(child_ev->second) + 1;
    for (size_t j = j_begin; j < j_end; ++j) {
      const double p = cpt.Prob(cfg, static_cast<data::ValueCode>(j));
      if (p == 0.0) continue;
      data::TupleKey key;
      key.reserve(f.attrs.size());
      for (size_t a : f.attrs) {
        if (a == node) {
          key.push_back(static_cast<data::ValueCode>(j));
        } else {
          // a is a free parent; find its position in parents().
          auto pit = std::find(cpt.parents().begin(), cpt.parents().end(), a);
          key.push_back(
              parent_codes[static_cast<size_t>(pit - cpt.parents().begin())]);
        }
      }
      f.values[key] += p;
    }
  }
  return f;
}

/// Product of two sparse factors (hash join on the shared attributes).
Factor Multiply(const Factor& a, const Factor& b) {
  // Merged scope, sorted.
  Factor out;
  std::set_union(a.attrs.begin(), a.attrs.end(), b.attrs.begin(),
                 b.attrs.end(), std::back_inserter(out.attrs));

  // Positions of shared attrs in a and b; positions of each factor's attrs
  // in the merged key.
  std::vector<size_t> shared;
  std::set_intersection(a.attrs.begin(), a.attrs.end(), b.attrs.begin(),
                        b.attrs.end(), std::back_inserter(shared));
  auto positions_in = [](const std::vector<size_t>& subset,
                         const std::vector<size_t>& full) {
    std::vector<size_t> pos;
    pos.reserve(subset.size());
    for (size_t s : subset) {
      pos.push_back(static_cast<size_t>(
          std::lower_bound(full.begin(), full.end(), s) - full.begin()));
    }
    return pos;
  };
  const std::vector<size_t> shared_in_a = positions_in(shared, a.attrs);
  const std::vector<size_t> shared_in_b = positions_in(shared, b.attrs);
  const std::vector<size_t> a_in_out = positions_in(a.attrs, out.attrs);
  const std::vector<size_t> b_in_out = positions_in(b.attrs, out.attrs);

  // Index b by its shared-attribute sub-key.
  std::unordered_map<data::TupleKey,
                     std::vector<const std::pair<const data::TupleKey, double>*>,
                     data::TupleKeyHash>
      b_index;
  for (const auto& entry : b.values) {
    data::TupleKey sub(shared_in_b.size());
    for (size_t i = 0; i < shared_in_b.size(); ++i) {
      sub[i] = entry.first[shared_in_b[i]];
    }
    b_index[sub].push_back(&entry);
  }

  for (const auto& [akey, aval] : a.values) {
    data::TupleKey sub(shared_in_a.size());
    for (size_t i = 0; i < shared_in_a.size(); ++i) sub[i] = akey[shared_in_a[i]];
    auto it = b_index.find(sub);
    if (it == b_index.end()) continue;
    for (const auto* bentry : it->second) {
      data::TupleKey key(out.attrs.size());
      for (size_t i = 0; i < a.attrs.size(); ++i) key[a_in_out[i]] = akey[i];
      for (size_t i = 0; i < b.attrs.size(); ++i) {
        key[b_in_out[i]] = bentry->first[i];
      }
      out.values[key] += aval * bentry->second;
    }
  }
  return out;
}

/// Sums attribute `attr` out of `f`.
Factor SumOut(const Factor& f, size_t attr) {
  Factor out;
  size_t pos = 0;
  for (size_t i = 0; i < f.attrs.size(); ++i) {
    if (f.attrs[i] == attr) {
      pos = i;
    } else {
      out.attrs.push_back(f.attrs[i]);
    }
  }
  for (const auto& [key, v] : f.values) {
    data::TupleKey sub;
    sub.reserve(key.size() - 1);
    for (size_t i = 0; i < key.size(); ++i) {
      if (i != pos) sub.push_back(key[i]);
    }
    out.values[sub] += v;
  }
  return out;
}

/// Runs variable elimination: multiplies/eliminates until only the target
/// attributes remain, returning the single resulting factor.
Factor Eliminate(const BayesianNetwork& bn,
                 const std::vector<size_t>& targets,
                 const Evidence& evidence) {
  std::vector<Factor> factors;
  factors.reserve(bn.num_nodes());
  for (size_t v = 0; v < bn.num_nodes(); ++v) {
    factors.push_back(CptFactor(bn, v, evidence));
  }

  std::set<size_t> keep(targets.begin(), targets.end());
  std::set<size_t> to_eliminate;
  for (size_t v = 0; v < bn.num_nodes(); ++v) {
    if (keep.count(v) == 0 && evidence.count(v) == 0) to_eliminate.insert(v);
  }

  while (!to_eliminate.empty()) {
    // Min-work heuristic: eliminate the variable whose combined factor has
    // the fewest entries.
    size_t best_var = 0;
    size_t best_cost = SIZE_MAX;
    for (size_t var : to_eliminate) {
      size_t cost = 0;
      for (const Factor& f : factors) {
        if (f.Contains(var)) cost += f.values.size();
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_var = var;
      }
    }

    std::vector<Factor> remaining;
    Factor combined;
    bool have = false;
    for (Factor& f : factors) {
      if (f.Contains(best_var)) {
        if (!have) {
          combined = std::move(f);
          have = true;
        } else {
          combined = Multiply(combined, f);
        }
      } else {
        remaining.push_back(std::move(f));
      }
    }
    if (have) remaining.push_back(SumOut(combined, best_var));
    factors = std::move(remaining);
    to_eliminate.erase(best_var);
  }

  // Multiply everything that remains (scopes ⊆ targets, possibly empty).
  Factor result;
  result.values[{}] = 1.0;
  for (const Factor& f : factors) result = Multiply(result, f);
  return result;
}

}  // namespace

Result<double> VariableElimination::Probability(
    const Evidence& evidence) const {
  if (evidence.empty()) return 1.0;
  for (const auto& [attr, code] : evidence) {
    if (attr >= network_->num_nodes()) {
      return Status::InvalidArgument("evidence attribute out of range");
    }
    if (code < 0 ||
        static_cast<size_t>(code) >=
            network_->schema()->domain(attr).size()) {
      return Status::InvalidArgument("evidence value out of domain");
    }
  }
  Factor f = Eliminate(*network_, {}, evidence);
  double p = 0;
  for (const auto& [key, v] : f.values) p += v;
  return p;
}

Result<stats::FreqTable> VariableElimination::Marginal(
    const std::vector<size_t>& targets) const {
  return Marginal(targets, Evidence{});
}

Result<stats::FreqTable> VariableElimination::Marginal(
    const std::vector<size_t>& targets, const Evidence& evidence) const {
  if (targets.empty()) {
    return Status::InvalidArgument("Marginal requires at least one target");
  }
  for (size_t t : targets) {
    if (t >= network_->num_nodes()) {
      return Status::InvalidArgument("target attribute out of range");
    }
    if (evidence.count(t)) {
      return Status::InvalidArgument("target overlaps evidence");
    }
  }
  Factor f = Eliminate(*network_, targets, evidence);

  // Reorder the factor keys (sorted attrs) into the requested target order
  // and normalize.
  std::vector<size_t> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> pos(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    pos[i] = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), targets[i]) -
        sorted.begin());
  }
  double total = 0;
  for (const auto& [key, v] : f.values) total += v;
  if (total <= 0) {
    return Status::FailedPrecondition(
        "evidence has zero probability under the network");
  }
  stats::FreqTable out(targets);
  for (const auto& [key, v] : f.values) {
    data::TupleKey reordered(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) reordered[i] = key[pos[i]];
    out.Add(reordered, v / total);
  }
  return out;
}

}  // namespace themis::bn
