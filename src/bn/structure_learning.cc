#include "bn/structure_learning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "bn/score.h"
#include "util/logging.h"

namespace themis::bn {

namespace {

enum class MoveType { kAdd, kRemove, kReverse };

struct Move {
  MoveType type;
  size_t from;
  size_t to;
  double delta;
};

/// Memoizing family-score evaluator for one phase. Unsupported families
/// report NotFound; the caller treats those moves as disallowed
/// (BuildEdges' support restriction, Alg 3).
class ScoreCache {
 public:
  ScoreCache(const ScoreSource& source, const data::Schema& schema)
      : source_(source), schema_(schema) {}

  /// Family score, or NaN if unsupported.
  double Score(size_t child, std::vector<size_t> parents) {
    std::sort(parents.begin(), parents.end());
    std::vector<size_t> key = parents;
    key.push_back(child);  // child last, parents sorted: unique key
    key.push_back(SIZE_MAX);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    auto result = FamilyBicScore(source_, schema_, child, parents);
    const double score =
        result.ok() ? *result : std::numeric_limits<double>::quiet_NaN();
    cache_.emplace(std::move(key), score);
    return score;
  }

  bool Supported(size_t child, const std::vector<size_t>& parents) {
    return !std::isnan(Score(child, parents));
  }

 private:
  const ScoreSource& source_;
  const data::Schema& schema_;
  std::map<std::vector<size_t>, double> cache_;
};

std::vector<size_t> WithParent(const std::vector<size_t>& parents,
                               size_t extra) {
  std::vector<size_t> out = parents;
  out.push_back(extra);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> WithoutParent(const std::vector<size_t>& parents,
                                  size_t removed) {
  std::vector<size_t> out;
  for (size_t p : parents) {
    if (p != removed) out.push_back(p);
  }
  return out;
}

/// One hill-climbing phase. Returns the number of moves applied.
int RunPhase(Dag& dag, ScoreCache& scores,
             const std::set<std::pair<size_t, size_t>>& locked,
             const StructureLearnOptions& options, int moves_budget) {
  const size_t m = dag.num_nodes();
  int moves = 0;
  while (moves < moves_budget) {
    Move best{MoveType::kAdd, 0, 0, options.min_delta};
    bool found = false;

    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        if (i == j) continue;
        const std::vector<size_t>& pj = dag.Parents(j);

        if (!dag.HasEdge(i, j) && !dag.HasEdge(j, i)) {
          // Add i -> j.
          if (pj.size() >= options.max_parents) continue;
          if (dag.WouldCreateCycle(i, j)) continue;
          std::vector<size_t> new_pj = WithParent(pj, i);
          if (!scores.Supported(j, new_pj)) continue;
          if (!scores.Supported(j, pj)) continue;
          const double delta = scores.Score(j, new_pj) - scores.Score(j, pj);
          if (delta > best.delta) {
            best = {MoveType::kAdd, i, j, delta};
            found = true;
          }
        } else if (dag.HasEdge(i, j)) {
          const bool is_locked = locked.count({i, j}) > 0;
          // Remove i -> j.
          if (!is_locked) {
            std::vector<size_t> new_pj = WithoutParent(pj, i);
            if (scores.Supported(j, new_pj) && scores.Supported(j, pj)) {
              const double delta =
                  scores.Score(j, new_pj) - scores.Score(j, pj);
              if (delta > best.delta) {
                best = {MoveType::kRemove, i, j, delta};
                found = true;
              }
            }
          }
          // Reverse i -> j (to j -> i).
          if (!is_locked && dag.Parents(i).size() < options.max_parents) {
            Dag tmp = dag;
            THEMIS_CHECK_OK(tmp.RemoveEdge(i, j));
            if (!tmp.WouldCreateCycle(j, i)) {
              std::vector<size_t> new_pj = WithoutParent(pj, i);
              std::vector<size_t> new_pi = WithParent(dag.Parents(i), j);
              if (scores.Supported(j, new_pj) &&
                  scores.Supported(i, new_pi) && scores.Supported(j, pj) &&
                  scores.Supported(i, dag.Parents(i))) {
                const double delta =
                    scores.Score(j, new_pj) + scores.Score(i, new_pi) -
                    scores.Score(j, pj) - scores.Score(i, dag.Parents(i));
                if (delta > best.delta) {
                  best = {MoveType::kReverse, i, j, delta};
                  found = true;
                }
              }
            }
          }
        }
      }
    }

    if (!found) break;
    switch (best.type) {
      case MoveType::kAdd:
        THEMIS_CHECK_OK(dag.AddEdge(best.from, best.to));
        break;
      case MoveType::kRemove:
        THEMIS_CHECK_OK(dag.RemoveEdge(best.from, best.to));
        break;
      case MoveType::kReverse:
        THEMIS_CHECK_OK(dag.ReverseEdge(best.from, best.to));
        break;
    }
    ++moves;
  }
  return moves;
}

}  // namespace

Result<StructureLearnResult> LearnStructure(
    const data::SchemaPtr& schema, const data::Table* sample,
    const aggregate::AggregateSet* aggregates,
    const StructureLearnOptions& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("LearnStructure: null schema");
  }
  const bool use_aggregates =
      options.source != StructureSource::kSampleOnly && aggregates != nullptr &&
      !aggregates->empty();
  const bool use_sample =
      options.source != StructureSource::kAggregatesOnly && sample != nullptr &&
      sample->num_rows() > 0;
  if (!use_aggregates && !use_sample) {
    return Status::InvalidArgument(
        "LearnStructure: no usable structure source");
  }

  StructureLearnResult result{Dag(schema->num_attributes()), {}, 0, 0};

  // Phase 1: build from Γ with support-restricted moves.
  if (use_aggregates) {
    AggregateScoreSource gamma_source(aggregates);
    ScoreCache scores(gamma_source, *schema);
    result.moves +=
        RunPhase(result.dag, scores, {}, options, options.max_moves);
    for (const auto& e : result.dag.Edges()) result.locked_edges.insert(e);
  }

  // Phase 2: continue from S; Γ-phase edges are locked in.
  if (use_sample) {
    SampleScoreSource s_source(sample);
    ScoreCache scores(s_source, *schema);
    result.moves += RunPhase(result.dag, scores, result.locked_edges,
                             options, options.max_moves - result.moves);
    // Final score is reported against the sample when available.
    double total = 0;
    for (size_t v = 0; v < result.dag.num_nodes(); ++v) {
      const double s = scores.Score(v, result.dag.Parents(v));
      if (!std::isnan(s)) total += s;
    }
    result.final_score = total;
  } else {
    AggregateScoreSource gamma_source(aggregates);
    ScoreCache scores(gamma_source, *schema);
    double total = 0;
    for (size_t v = 0; v < result.dag.num_nodes(); ++v) {
      const double s = scores.Score(v, result.dag.Parents(v));
      if (!std::isnan(s)) total += s;
    }
    result.final_score = total;
  }
  return result;
}

}  // namespace themis::bn
