#include "bn/parameter_learning.h"

#include <algorithm>
#include <set>

#include "bn/inference_engine.h"
#include "util/logging.h"

namespace themis::bn {

namespace {

/// Flat variable index of θ_{node, j, k}: config-major like Cpt storage.
size_t VarIndex(const Cpt& cpt, size_t config, size_t j) {
  return config * cpt.child_size() + j;
}

/// Family counts from the (weighted) sample for the node, flattened to the
/// CPT layout. Missing combinations are zero.
linalg::Vector FamilyCountsFromSample(const data::Table& sample,
                                      const Cpt& cpt) {
  linalg::Vector counts(cpt.num_configs() * cpt.child_size(), 0.0);
  const auto& child_col = sample.column(cpt.child());
  std::vector<const std::vector<data::ValueCode>*> parent_cols;
  for (size_t p : cpt.parents()) parent_cols.push_back(&sample.column(p));
  data::TupleKey parent_codes(cpt.parents().size());
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    bool ok = true;
    for (size_t i = 0; i < parent_cols.size(); ++i) {
      parent_codes[i] = (*parent_cols[i])[r];
      if (parent_codes[i] < 0) {
        ok = false;
        break;
      }
    }
    if (!ok || child_col[r] < 0) continue;
    const size_t cfg = cpt.ConfigIndex(parent_codes);
    counts[VarIndex(cpt, cfg, static_cast<size_t>(child_col[r]))] +=
        sample.weight(r);
  }
  return counts;
}

/// Plain per-family MLE (kSampleOnly): empirical rows, uniform where the
/// parent configuration was never observed.
void MleFromCounts(Cpt& cpt, const linalg::Vector& counts) {
  for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
    double total = 0;
    for (size_t j = 0; j < cpt.child_size(); ++j) {
      total += counts[VarIndex(cpt, cfg, j)];
    }
    for (size_t j = 0; j < cpt.child_size(); ++j) {
      const double p =
          total > 0 ? counts[VarIndex(cpt, cfg, j)] / total
                    : 1.0 / static_cast<double>(cpt.child_size());
      cpt.SetProb(cfg, static_cast<data::ValueCode>(j), p);
    }
  }
}

}  // namespace

Status LearnParameters(BayesianNetwork& network, const data::Table* sample,
                       const aggregate::AggregateSet* aggregates,
                       const ParameterLearnOptions& options,
                       ParameterLearnStats* stats) {
  ParameterLearnStats local_stats;
  const bool use_aggregates = options.source == ParameterSource::kBoth &&
                              aggregates != nullptr && !aggregates->empty();
  if (sample == nullptr && !use_aggregates) {
    return Status::InvalidArgument(
        "LearnParameters: need a sample or aggregates");
  }

  const std::vector<size_t> topo = network.dag().TopologicalOrder();
  for (size_t node : topo) {
    Cpt& cpt = network.mutable_cpt(node);
    linalg::Vector counts =
        sample != nullptr
            ? FamilyCountsFromSample(*sample, cpt)
            : linalg::Vector(cpt.num_configs() * cpt.child_size(), 0.0);

    if (!use_aggregates) {
      MleFromCounts(cpt, counts);
      continue;
    }

    // Build the constrained MLE problem for this factor.
    solver::ConstrainedMleProblem problem;
    problem.counts = counts;
    problem.groups.reserve(cpt.num_configs());
    for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
      solver::SimplexGroup g;
      g.vars.reserve(cpt.child_size());
      for (size_t j = 0; j < cpt.child_size(); ++j) {
        g.vars.push_back(VarIndex(cpt, cfg, j));
      }
      problem.groups.push_back(std::move(g));
    }

    // The parents' joint distribution Pr(Pa(X_i) = k): ancestors are
    // already solved (topological order) and unsolved descendants
    // marginalize to one, so exact inference on the partially-solved
    // network is correct. These probabilities become the constant
    // coefficients of the linear constraints (Sec 5.2).
    stats::FreqTable parent_joint;
    if (!cpt.parents().empty()) {
      // The network mutates as each factor is solved, so memoizing across
      // nodes would serve stale marginals — run the engine uncached.
      InferenceEngine engine(&network,
                            InferenceEngine::Options{/*enable_cache=*/false,
                                                     /*cache_capacity=*/0});
      auto pj = engine.Marginal(cpt.parents());
      if (!pj.ok()) return pj.status();
      parent_joint = std::move(pj).value();
    }

    // Family attribute set {X_i} ∪ Pa(X_i).
    std::vector<size_t> family = cpt.parents();
    family.push_back(node);
    std::sort(family.begin(), family.end());

    // Collect constraints: every aggregate mentioning the node contributes
    // on the intersection of its γ with the family (marginalized), each
    // distinct intersection used once (smallest-dimension aggregate wins —
    // least marginalization, most faithful counts).
    std::set<std::vector<size_t>> used_projections;
    std::vector<const aggregate::AggregateSpec*> specs;
    for (const auto& spec : aggregates->specs()) specs.push_back(&spec);
    std::sort(specs.begin(), specs.end(),
              [](const auto* a, const auto* b) {
                return a->dimension() < b->dimension();
              });

    for (const auto* spec : specs) {
      if (!std::binary_search(spec->attrs.begin(), spec->attrs.end(), node)) {
        continue;
      }
      std::vector<size_t> projection;
      std::set_intersection(spec->attrs.begin(), spec->attrs.end(),
                            family.begin(), family.end(),
                            std::back_inserter(projection));
      // Must still contain the child to constrain this factor.
      if (!std::binary_search(projection.begin(), projection.end(), node)) {
        continue;
      }
      if (!used_projections.insert(projection).second) continue;

      stats::FreqTable marg = spec->ToFreqTable().MarginalizeTo(projection);
      const double total = marg.TotalMass();
      if (total <= 0) continue;

      // Positions: node within projection; constrained parents (Q) within
      // projection and within the cpt's parent list.
      const size_t node_pos = static_cast<size_t>(
          std::lower_bound(projection.begin(), projection.end(), node) -
          projection.begin());
      std::vector<size_t> q_pos_in_proj;
      std::vector<size_t> q_pos_in_parents;
      for (size_t i = 0; i < projection.size(); ++i) {
        if (projection[i] == node) continue;
        q_pos_in_proj.push_back(i);
        auto pit = std::find(cpt.parents().begin(), cpt.parents().end(),
                             projection[i]);
        THEMIS_CHECK(pit != cpt.parents().end());
        q_pos_in_parents.push_back(
            static_cast<size_t>(pit - cpt.parents().begin()));
      }

      for (const auto& [key, c] : marg.entries()) {
        solver::LinearConstraint constraint;
        constraint.target = c / total;
        const data::ValueCode j0 = key[node_pos];
        if (j0 < 0 || static_cast<size_t>(j0) >= cpt.child_size()) continue;
        if (cpt.parents().empty()) {
          constraint.terms.emplace_back(
              VarIndex(cpt, 0, static_cast<size_t>(j0)), 1.0);
        } else {
          for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
            const data::TupleKey parent_codes = cpt.DecodeConfig(cfg);
            bool match = true;
            for (size_t qi = 0; qi < q_pos_in_proj.size(); ++qi) {
              if (parent_codes[q_pos_in_parents[qi]] !=
                  key[q_pos_in_proj[qi]]) {
                match = false;
                break;
              }
            }
            if (!match) continue;
            const double m_k = parent_joint.Mass(parent_codes);
            if (m_k <= 0) continue;
            constraint.terms.emplace_back(
                VarIndex(cpt, cfg, static_cast<size_t>(j0)), m_k);
          }
        }
        if (!constraint.terms.empty()) {
          problem.constraints.push_back(std::move(constraint));
        }
      }
    }

    if (problem.constraints.empty() && sample != nullptr) {
      // No aggregate touches this factor: closed-form MLE (Example 5.1's
      // "DT is solved in closed form").
      MleFromCounts(cpt, counts);
      continue;
    }

    auto solution = solver::SolveConstrainedMle(problem, options.solver);
    if (!solution.ok()) return solution.status();
    local_stats.constrained_nodes += 1;
    local_stats.total_constraints +=
        static_cast<int>(problem.constraints.size());
    local_stats.total_solver_iterations += solution->iterations;
    local_stats.max_violation =
        std::max(local_stats.max_violation, solution->max_violation);
    // Write θ back; clamp the tiny negatives the approximate solver can
    // produce, as the paper does (their footnote 7), then re-normalize.
    for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
      for (size_t j = 0; j < cpt.child_size(); ++j) {
        cpt.SetProb(cfg, static_cast<data::ValueCode>(j),
                    std::max(0.0, solution->theta[VarIndex(cpt, cfg, j)]));
      }
    }
    cpt.NormalizeRows();
  }

  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace themis::bn
