#include "bn/inference_engine.h"

#include <algorithm>
#include <utility>

namespace themis::bn {

namespace {

/// Canonical evidence rendering: "a=v" pairs sorted by attribute index.
void AppendEvidence(const Evidence& evidence, std::string* key) {
  std::vector<std::pair<size_t, data::ValueCode>> sorted(evidence.begin(),
                                                         evidence.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [attr, code] : sorted) {
    key->append(std::to_string(attr));
    key->push_back('=');
    key->append(std::to_string(code));
    key->push_back(',');
  }
}

std::string ProbabilityKey(const Evidence& evidence) {
  std::string key = "P|";
  AppendEvidence(evidence, &key);
  return key;
}

std::string MarginalKey(const std::vector<size_t>& sorted_targets,
                        const Evidence& evidence) {
  std::string key = "M|";
  for (size_t t : sorted_targets) {
    key.append(std::to_string(t));
    key.push_back(',');
  }
  key.push_back('|');
  AppendEvidence(evidence, &key);
  return key;
}

/// Reorders a table computed over sorted targets into the requested
/// target order (values untouched, keys permuted).
stats::FreqTable ReorderTo(const stats::FreqTable& table,
                           const std::vector<size_t>& targets) {
  if (table.attrs() == targets) return table;
  std::vector<size_t> pos(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    pos[i] = static_cast<size_t>(
        std::find(table.attrs().begin(), table.attrs().end(), targets[i]) -
        table.attrs().begin());
  }
  stats::FreqTable out(targets);
  for (const auto& [key, mass] : table.entries()) {
    data::TupleKey reordered(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) reordered[i] = key[pos[i]];
    out.Add(reordered, mass);
  }
  return out;
}

}  // namespace

size_t ApproxMarginalBytes(const stats::FreqTable& table) {
  // Per group: the TupleKey codes, the mass double, and unordered_map node
  // overhead (bucket pointer + node header, ~48 bytes on 64-bit).
  constexpr size_t kNodeOverhead = 48;
  return sizeof(stats::FreqTable) +
         table.num_groups() *
             (table.attrs().size() * sizeof(data::ValueCode) +
              sizeof(double) + kNodeOverhead);
}

InferenceEngine::InferenceEngine(const BayesianNetwork* network)
    : InferenceEngine(network, Options()) {}

InferenceEngine::InferenceEngine(const BayesianNetwork* network,
                                 Options options)
    : network_(network),
      ve_(network),
      cost_aware_(options.cache_bytes > 0),
      cache_enabled_(options.enable_cache),
      cache_(options.cache_bytes > 0 ? options.cache_bytes
                                     : options.cache_capacity) {}

size_t InferenceEngine::EntryCost(const CacheValue& value) const {
  if (!cost_aware_) return 1;
  if (value.marginal == nullptr) {
    // Scalar probability: key string + value + list/map overhead.
    return sizeof(CacheValue) + 64;
  }
  return sizeof(CacheValue) + ApproxMarginalBytes(*value.marginal);
}

bool InferenceEngine::cache_enabled() const {
  return cache_enabled_.load(std::memory_order_relaxed);
}

void InferenceEngine::set_cache_enabled(bool enabled) {
  cache_enabled_.store(enabled, std::memory_order_relaxed);
}

void InferenceEngine::set_cache_bytes(size_t cache_bytes) {
  if (!cost_aware_ || cache_bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  cache_.set_capacity(cache_bytes);
}

void InferenceEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
  hits_ = 0;
  misses_ = 0;
}

InferenceCacheStats InferenceEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  InferenceCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = cache_.evictions();
  stats.rejections = cache_.rejections();
  stats.entries = cache_.size();
  stats.cost = cache_.total_cost();
  stats.capacity = cache_.capacity();
  return stats;
}

Result<double> InferenceEngine::Probability(const Evidence& evidence) const {
  const bool enabled = cache_enabled();
  std::string key;
  if (enabled) {
    key = ProbabilityKey(evidence);  // pure; built outside the lock
    std::lock_guard<std::mutex> lock(mu_);
    if (auto cached = cache_.Get(key)) {
      ++hits_;
      return cached->probability;
    }
    ++misses_;
  }
  THEMIS_ASSIGN_OR_RETURN(double p, ve_.Probability(evidence));
  if (enabled) {
    CacheValue value{p, nullptr};
    const size_t cost = EntryCost(value);
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, std::move(value), cost);
  }
  return p;
}

Result<stats::FreqTable> InferenceEngine::Marginal(
    const std::vector<size_t>& targets) const {
  return Marginal(targets, Evidence{});
}

Result<stats::FreqTable> InferenceEngine::Marginal(
    const std::vector<size_t>& targets, const Evidence& evidence) const {
  std::vector<size_t> sorted = targets;
  std::sort(sorted.begin(), sorted.end());

  const bool enabled = cache_enabled();
  std::string key;
  if (enabled) {
    key = MarginalKey(sorted, evidence);
    std::shared_ptr<const stats::FreqTable> hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto cached = cache_.Get(key)) {
        ++hits_;
        hit = cached->marginal;
      } else {
        ++misses_;
      }
    }
    // Reorder outside the lock: the entry is immutable once published.
    if (hit != nullptr) return ReorderTo(*hit, targets);
  }
  // Compute over the canonical order even when the cache is off so both
  // configurations take the identical arithmetic path.
  THEMIS_ASSIGN_OR_RETURN(stats::FreqTable table,
                          ve_.Marginal(sorted, evidence));
  if (!enabled) return ReorderTo(table, targets);
  auto shared = std::make_shared<const stats::FreqTable>(std::move(table));
  {
    CacheValue value{0.0, shared};
    const size_t cost = EntryCost(value);
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, std::move(value), cost);
  }
  return ReorderTo(*shared, targets);
}

}  // namespace themis::bn
