#include "bn/child_network.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace themis::bn {

namespace {

struct NodeSpec {
  const char* name;
  int domain_size;
};

/// The 20 CHILD nodes with their published domain sizes.
constexpr NodeSpec kNodes[] = {
    {"BirthAsphyxia", 2}, {"Disease", 6},     {"Age", 3},
    {"Sick", 2},          {"DuctFlow", 3},    {"CardiacMixing", 4},
    {"LungParench", 3},   {"LungFlow", 3},    {"LVH", 2},
    {"Grunting", 2},      {"HypDistrib", 2},  {"HypoxiaInO2", 3},
    {"CO2", 3},           {"ChestXray", 5},   {"LVHreport", 2},
    {"GruntingReport", 2},{"LowerBodyO2", 3}, {"RUQO2", 3},
    {"CO2Report", 2},     {"XrayReport", 5},
};

/// The 25 published arcs, by node name.
constexpr std::pair<const char*, const char*> kArcs[] = {
    {"BirthAsphyxia", "Disease"},
    {"Disease", "Sick"},
    {"Disease", "DuctFlow"},
    {"Disease", "CardiacMixing"},
    {"Disease", "LungParench"},
    {"Disease", "LungFlow"},
    {"Disease", "LVH"},
    {"Disease", "Age"},
    {"Sick", "Age"},
    {"Sick", "Grunting"},
    {"LungParench", "Grunting"},
    {"LVH", "LVHreport"},
    {"DuctFlow", "HypDistrib"},
    {"CardiacMixing", "HypDistrib"},
    {"CardiacMixing", "HypoxiaInO2"},
    {"LungParench", "HypoxiaInO2"},
    {"LungParench", "CO2"},
    {"LungParench", "ChestXray"},
    {"LungFlow", "ChestXray"},
    {"Grunting", "GruntingReport"},
    {"HypDistrib", "LowerBodyO2"},
    {"HypoxiaInO2", "LowerBodyO2"},
    {"HypoxiaInO2", "RUQO2"},
    {"CO2", "CO2Report"},
    {"ChestXray", "XrayReport"},
};

}  // namespace

BayesianNetwork MakeChildNetwork(uint64_t seed) {
  auto schema = std::make_shared<data::Schema>();
  for (const NodeSpec& spec : kNodes) {
    std::vector<std::string> labels;
    for (int v = 0; v < spec.domain_size; ++v) {
      labels.push_back(std::string(spec.name) + "_" + std::to_string(v));
    }
    schema->AddAttribute(spec.name, std::move(labels));
  }

  Dag dag(schema->num_attributes());
  for (const auto& [from, to] : kArcs) {
    auto fi = schema->AttributeIndex(from);
    auto ti = schema->AttributeIndex(to);
    THEMIS_CHECK(fi.ok() && ti.ok());
    THEMIS_CHECK_OK(dag.AddEdge(*fi, *ti));
  }

  BayesianNetwork network(schema, dag);
  // Deterministic skewed CPT rows: p_j ∝ exp(2 g_j), g ~ N(0,1). The skew
  // keeps the network far from uniform so structure/parameter recovery is
  // actually tested.
  Rng rng(seed);
  for (size_t v = 0; v < network.num_nodes(); ++v) {
    Cpt& cpt = network.mutable_cpt(v);
    for (size_t cfg = 0; cfg < cpt.num_configs(); ++cfg) {
      double total = 0;
      std::vector<double> row(cpt.child_size());
      for (size_t j = 0; j < cpt.child_size(); ++j) {
        row[j] = std::exp(2.0 * rng.Normal(0, 1));
        total += row[j];
      }
      for (size_t j = 0; j < cpt.child_size(); ++j) {
        cpt.SetProb(cfg, static_cast<data::ValueCode>(j), row[j] / total);
      }
    }
  }
  return network;
}

}  // namespace themis::bn
