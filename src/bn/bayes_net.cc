#include "bn/bayes_net.h"

#include "util/logging.h"

namespace themis::bn {

Cpt MakeCptShell(const data::Schema& schema, const Dag& dag, size_t node) {
  const std::vector<size_t>& parents = dag.Parents(node);
  std::vector<size_t> parent_sizes;
  parent_sizes.reserve(parents.size());
  for (size_t p : parents) parent_sizes.push_back(schema.domain(p).size());
  Cpt cpt(node, schema.domain(node).size(), parents, parent_sizes);
  cpt.FillUniform();
  return cpt;
}

BayesianNetwork::BayesianNetwork(data::SchemaPtr schema, Dag dag)
    : schema_(std::move(schema)), dag_(std::move(dag)) {
  THEMIS_CHECK(schema_ != nullptr);
  THEMIS_CHECK(dag_.num_nodes() == schema_->num_attributes());
  cpts_.reserve(dag_.num_nodes());
  for (size_t v = 0; v < dag_.num_nodes(); ++v) {
    cpts_.push_back(MakeCptShell(*schema_, dag_, v));
  }
  topo_order_ = dag_.TopologicalOrder();
}

double BayesianNetwork::JointProbability(
    const std::vector<data::ValueCode>& full) const {
  THEMIS_CHECK(full.size() == num_nodes());
  double p = 1.0;
  for (size_t v = 0; v < num_nodes(); ++v) {
    const Cpt& cpt = cpts_[v];
    data::TupleKey parent_codes(cpt.parents().size());
    for (size_t i = 0; i < cpt.parents().size(); ++i) {
      parent_codes[i] = full[cpt.parents()[i]];
    }
    p *= cpt.Prob(cpt.ConfigIndex(parent_codes), full[v]);
    if (p == 0.0) return 0.0;
  }
  return p;
}

std::vector<data::ValueCode> BayesianNetwork::SampleTuple(Rng& rng) const {
  std::vector<data::ValueCode> tuple(num_nodes(), data::kNullCode);
  for (size_t v : topo_order_) {
    const Cpt& cpt = cpts_[v];
    data::TupleKey parent_codes(cpt.parents().size());
    for (size_t i = 0; i < cpt.parents().size(); ++i) {
      parent_codes[i] = tuple[cpt.parents()[i]];
      THEMIS_DCHECK(parent_codes[i] != data::kNullCode);
    }
    tuple[v] = cpt.Sample(cpt.ConfigIndex(parent_codes), rng);
  }
  return tuple;
}

data::Table BayesianNetwork::SampleTable(size_t num_rows,
                                         double population_size,
                                         Rng& rng) const {
  data::Table table(schema_);
  const double w =
      num_rows == 0 ? 0.0 : population_size / static_cast<double>(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    table.AppendRow(SampleTuple(rng));
    table.set_weight(r, w);
  }
  return table;
}

size_t BayesianNetwork::NumFreeParameters() const {
  size_t s = 0;
  for (const Cpt& cpt : cpts_) s += cpt.NumFreeParameters();
  return s;
}

}  // namespace themis::bn
