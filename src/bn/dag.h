#ifndef THEMIS_BN_DAG_H_
#define THEMIS_BN_DAG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace themis::bn {

/// Directed acyclic graph over attribute indices 0..n-1. Stores parent
/// lists (the natural representation for Bayesian-network factors
/// Pr(X_i | Pa(X_i))) and enforces acyclicity on mutation.
class Dag {
 public:
  explicit Dag(size_t num_nodes) : parents_(num_nodes) {}

  size_t num_nodes() const { return parents_.size(); }

  bool HasEdge(size_t from, size_t to) const;

  /// Adds from -> to. Fails if it exists or would create a cycle.
  Status AddEdge(size_t from, size_t to);

  /// Removes from -> to. Fails if absent.
  Status RemoveEdge(size_t from, size_t to);

  /// Reverses from -> to. Fails if absent or reversal creates a cycle.
  Status ReverseEdge(size_t from, size_t to);

  /// True if adding from -> to would create a directed cycle.
  bool WouldCreateCycle(size_t from, size_t to) const;

  /// Parents of `node`, sorted ascending.
  const std::vector<size_t>& Parents(size_t node) const {
    return parents_[node];
  }

  /// Children of `node` (computed), sorted ascending.
  std::vector<size_t> Children(size_t node) const;

  size_t num_edges() const;

  /// All edges as (from, to) pairs, deterministic order.
  std::vector<std::pair<size_t, size_t>> Edges() const;

  /// A topological order (parents before children).
  std::vector<size_t> TopologicalOrder() const;

  /// All ancestors of `node` (transitive parents), excluding `node`.
  std::vector<size_t> Ancestors(size_t node) const;

  /// "X2 -> X5, X0 -> X2, ..." for debugging.
  std::string ToString() const;

 private:
  /// True if `target` is reachable from `start` along directed edges.
  bool Reaches(size_t start, size_t target) const;

  std::vector<std::vector<size_t>> parents_;
};

}  // namespace themis::bn

#endif  // THEMIS_BN_DAG_H_
