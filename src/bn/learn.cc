#include "bn/learn.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/timer.h"

namespace themis::bn {

const char* BnVariantName(BnVariant variant) {
  switch (variant) {
    case BnVariant::kSS:
      return "SS";
    case BnVariant::kSB:
      return "SB";
    case BnVariant::kBS:
      return "BS";
    case BnVariant::kBB:
      return "BB";
    case BnVariant::kAB:
      return "AB";
  }
  return "?";
}

Result<BayesianNetwork> LearnBayesNet(
    const data::SchemaPtr& schema, const data::Table* sample,
    const aggregate::AggregateSet* aggregates,
    const BnLearnOptions& options, BnLearnStats* stats) {
  StructureLearnOptions structure_options = options.structure;
  ParameterLearnOptions parameter_options = options.parameters;
  switch (options.variant) {
    case BnVariant::kSS:
      structure_options.source = StructureSource::kSampleOnly;
      parameter_options.source = ParameterSource::kSampleOnly;
      break;
    case BnVariant::kSB:
      structure_options.source = StructureSource::kSampleOnly;
      parameter_options.source = ParameterSource::kBoth;
      break;
    case BnVariant::kBS:
      structure_options.source = StructureSource::kBoth;
      parameter_options.source = ParameterSource::kSampleOnly;
      break;
    case BnVariant::kBB:
      structure_options.source = StructureSource::kBoth;
      parameter_options.source = ParameterSource::kBoth;
      break;
    case BnVariant::kAB:
      structure_options.source = StructureSource::kAggregatesOnly;
      parameter_options.source = ParameterSource::kBoth;
      break;
  }

  Timer timer;
  THEMIS_ASSIGN_OR_RETURN(
      StructureLearnResult structure,
      LearnStructure(schema, sample, aggregates, structure_options));
  const double structure_seconds = timer.Seconds();

  BayesianNetwork network(schema, structure.dag);

  timer.Restart();
  ParameterLearnStats parameter_stats;
  THEMIS_RETURN_IF_ERROR(LearnParameters(network, sample, aggregates,
                                         parameter_options,
                                         &parameter_stats));

  // AB: attributes outside Γ's coverage stay disconnected and uniform (the
  // paper's uniformity assumption) — overwrite whatever the sample said.
  if (options.variant == BnVariant::kAB && aggregates != nullptr) {
    std::vector<size_t> covered = aggregates->CoveredAttributes();
    std::set<size_t> covered_set(covered.begin(), covered.end());
    for (size_t v = 0; v < network.num_nodes(); ++v) {
      if (covered_set.count(v) == 0) {
        network.mutable_cpt(v).FillUniform();
      }
    }
  }

  if (stats != nullptr) {
    stats->structure = std::move(structure);
    stats->parameters = parameter_stats;
    stats->structure_seconds = structure_seconds;
    stats->parameter_seconds = timer.Seconds();
  }
  return network;
}

}  // namespace themis::bn
