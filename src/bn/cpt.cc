#include "bn/cpt.h"

#include <cmath>

#include "util/logging.h"

namespace themis::bn {

Cpt::Cpt(size_t child, size_t child_size, std::vector<size_t> parents,
         std::vector<size_t> parent_sizes)
    : child_(child),
      child_size_(child_size),
      parents_(std::move(parents)),
      parent_sizes_(std::move(parent_sizes)) {
  THEMIS_CHECK(child_size_ > 0);
  THEMIS_CHECK(parents_.size() == parent_sizes_.size());
  num_configs_ = 1;
  for (size_t s : parent_sizes_) {
    THEMIS_CHECK(s > 0);
    num_configs_ *= s;
  }
  probs_.assign(num_configs_ * child_size_, 0.0);
}

size_t Cpt::ConfigIndex(const data::TupleKey& parent_codes) const {
  THEMIS_DCHECK(parent_codes.size() == parents_.size());
  size_t idx = 0;
  for (size_t i = 0; i < parents_.size(); ++i) {
    THEMIS_DCHECK(parent_codes[i] >= 0 &&
                  static_cast<size_t>(parent_codes[i]) < parent_sizes_[i]);
    idx = idx * parent_sizes_[i] + static_cast<size_t>(parent_codes[i]);
  }
  return idx;
}

data::TupleKey Cpt::DecodeConfig(size_t config) const {
  data::TupleKey codes(parents_.size());
  for (size_t ii = 0; ii < parents_.size(); ++ii) {
    const size_t i = parents_.size() - 1 - ii;
    codes[i] = static_cast<data::ValueCode>(config % parent_sizes_[i]);
    config /= parent_sizes_[i];
  }
  return codes;
}

void Cpt::FillUniform() {
  const double p = 1.0 / static_cast<double>(child_size_);
  for (double& v : probs_) v = p;
}

void Cpt::NormalizeRows() {
  for (size_t cfg = 0; cfg < num_configs_; ++cfg) {
    double total = 0;
    for (size_t j = 0; j < child_size_; ++j) {
      total += probs_[cfg * child_size_ + j];
    }
    if (total <= 0) {
      for (size_t j = 0; j < child_size_; ++j) {
        probs_[cfg * child_size_ + j] =
            1.0 / static_cast<double>(child_size_);
      }
    } else {
      for (size_t j = 0; j < child_size_; ++j) {
        probs_[cfg * child_size_ + j] /= total;
      }
    }
  }
}

bool Cpt::RowsAreSimplexes(double tol) const {
  for (size_t cfg = 0; cfg < num_configs_; ++cfg) {
    double total = 0;
    for (size_t j = 0; j < child_size_; ++j) {
      const double p = probs_[cfg * child_size_ + j];
      if (p < -tol || !std::isfinite(p)) return false;
      total += p;
    }
    if (std::abs(total - 1.0) > tol) return false;
  }
  return true;
}

data::ValueCode Cpt::Sample(size_t config, Rng& rng) const {
  const double r = rng.UniformDouble();
  double acc = 0;
  for (size_t j = 0; j < child_size_; ++j) {
    acc += probs_[config * child_size_ + j];
    if (r < acc) return static_cast<data::ValueCode>(j);
  }
  return static_cast<data::ValueCode>(child_size_ - 1);
}

}  // namespace themis::bn
