#ifndef THEMIS_BN_PARAMETER_LEARNING_H_
#define THEMIS_BN_PARAMETER_LEARNING_H_

#include "aggregate/aggregate.h"
#include "bn/bayes_net.h"
#include "data/table.h"
#include "solver/constrained_mle.h"
#include "util/status.h"

namespace themis::bn {

/// Where parameter information comes from (the second letter of the
/// paper's SS/SB/BS/AB/BB variant names).
enum class ParameterSource {
  kSampleOnly,  ///< S: per-family MLE from the sample
  kBoth,        ///< B: sample MLE constrained by the aggregates (Eq. 2)
};

struct ParameterLearnOptions {
  ParameterSource source = ParameterSource::kBoth;
  solver::ConstrainedMleOptions solver;
};

struct ParameterLearnStats {
  int constrained_nodes = 0;      ///< nodes solved with ≥1 agg constraint
  int total_constraints = 0;      ///< aggregate constraints added in total
  long total_solver_iterations = 0;
  double max_violation = 0;       ///< worst residual across all nodes
};

/// Fills the CPTs of `network` in topological order (Sec 5.2: parents are
/// solved before children so ancestor probabilities are constants in each
/// child's constraints).
///
/// With ParameterSource::kBoth, each node's factor is the solution of the
/// simplified constrained MLE (Eq. 2): the sample's family counts maximize
/// likelihood while every aggregate whose attributes intersect the family
/// in a set containing the child contributes linear equality constraints
/// (aggregates are first marginalized onto that intersection, as in
/// Example 5.1 where the (O,DE) aggregate becomes a constraint over O
/// alone). With kSampleOnly, plain per-family MLE is used (uniform rows
/// for unseen parent configurations).
Status LearnParameters(BayesianNetwork& network, const data::Table* sample,
                       const aggregate::AggregateSet* aggregates,
                       const ParameterLearnOptions& options = {},
                       ParameterLearnStats* stats = nullptr);

}  // namespace themis::bn

#endif  // THEMIS_BN_PARAMETER_LEARNING_H_
