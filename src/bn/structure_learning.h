#ifndef THEMIS_BN_STRUCTURE_LEARNING_H_
#define THEMIS_BN_STRUCTURE_LEARNING_H_

#include <set>
#include <vector>

#include "aggregate/aggregate.h"
#include "bn/dag.h"
#include "data/table.h"
#include "util/status.h"

namespace themis::bn {

/// Where structure information comes from (the first letter of the paper's
/// SS/SB/BS/AB/BB variant names, Sec 6.6).
enum class StructureSource {
  kSampleOnly,      ///< S: phase 2 only, greedy HC over the sample
  kAggregatesOnly,  ///< A: phase 1 only; uncovered attrs stay disconnected
  kBoth,            ///< B: the paper's two-phase algorithm (Alg 2)
};

struct StructureLearnOptions {
  StructureSource source = StructureSource::kBoth;
  /// Restrict to at most this many parents per node. The paper's
  /// experiments limit networks to trees (max_parents = 1, Sec 6.1).
  size_t max_parents = 1;
  /// Minimum score improvement to accept a move (guards float noise).
  double min_delta = 1e-9;
  /// Safety bound on hill-climbing moves.
  int max_moves = 10000;
};

struct StructureLearnResult {
  Dag dag{0};
  /// Edges added during the Γ phase; these were "locked in" and phase 2
  /// could not remove or reverse them (Sec 4.2.2).
  std::set<std::pair<size_t, size_t>> locked_edges;
  double final_score = 0;
  int moves = 0;
};

/// Two-phase greedy hill-climbing structure learning (Alg 2 / Alg 3): BIC-
/// scored moves (add / remove / reverse), phase 1 restricted to moves whose
/// families have joint support in Γ, phase-1 edges locked against later
/// removal, phase 2 continuing over the sample.
Result<StructureLearnResult> LearnStructure(
    const data::SchemaPtr& schema, const data::Table* sample,
    const aggregate::AggregateSet* aggregates,
    const StructureLearnOptions& options = {});

}  // namespace themis::bn

#endif  // THEMIS_BN_STRUCTURE_LEARNING_H_
