#include "bn/dag.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace themis::bn {

bool Dag::HasEdge(size_t from, size_t to) const {
  THEMIS_DCHECK(from < num_nodes() && to < num_nodes());
  const auto& p = parents_[to];
  return std::binary_search(p.begin(), p.end(), from);
}

bool Dag::Reaches(size_t start, size_t target) const {
  // DFS along child edges; graph is small (tens of nodes).
  std::vector<bool> visited(num_nodes(), false);
  std::vector<size_t> stack = {start};
  while (!stack.empty()) {
    size_t u = stack.back();
    stack.pop_back();
    if (u == target) return true;
    if (visited[u]) continue;
    visited[u] = true;
    for (size_t v = 0; v < num_nodes(); ++v) {
      if (HasEdge(u, v) && !visited[v]) stack.push_back(v);
    }
  }
  return false;
}

bool Dag::WouldCreateCycle(size_t from, size_t to) const {
  if (from == to) return true;
  return Reaches(to, from);
}

Status Dag::AddEdge(size_t from, size_t to) {
  if (from >= num_nodes() || to >= num_nodes()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (HasEdge(from, to)) return Status::AlreadyExists("edge exists");
  if (WouldCreateCycle(from, to)) {
    return Status::FailedPrecondition("edge would create a cycle");
  }
  auto& p = parents_[to];
  p.insert(std::upper_bound(p.begin(), p.end(), from), from);
  return Status::OK();
}

Status Dag::RemoveEdge(size_t from, size_t to) {
  if (!HasEdge(from, to)) return Status::NotFound("edge absent");
  auto& p = parents_[to];
  p.erase(std::find(p.begin(), p.end(), from));
  return Status::OK();
}

Status Dag::ReverseEdge(size_t from, size_t to) {
  if (!HasEdge(from, to)) return Status::NotFound("edge absent");
  THEMIS_RETURN_IF_ERROR(RemoveEdge(from, to));
  Status add = AddEdge(to, from);
  if (!add.ok()) {
    // Roll back.
    THEMIS_CHECK_OK(AddEdge(from, to));
    return add;
  }
  return Status::OK();
}

std::vector<size_t> Dag::Children(size_t node) const {
  std::vector<size_t> out;
  for (size_t v = 0; v < num_nodes(); ++v) {
    if (HasEdge(node, v)) out.push_back(v);
  }
  return out;
}

size_t Dag::num_edges() const {
  size_t s = 0;
  for (const auto& p : parents_) s += p.size();
  return s;
}

std::vector<std::pair<size_t, size_t>> Dag::Edges() const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t to = 0; to < num_nodes(); ++to) {
    for (size_t from : parents_[to]) out.emplace_back(from, to);
  }
  return out;
}

std::vector<size_t> Dag::TopologicalOrder() const {
  std::vector<size_t> in_degree(num_nodes());
  for (size_t v = 0; v < num_nodes(); ++v) {
    in_degree[v] = parents_[v].size();
  }
  std::vector<size_t> order;
  std::vector<size_t> ready;
  for (size_t v = 0; v < num_nodes(); ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    size_t u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (size_t v = 0; v < num_nodes(); ++v) {
      if (HasEdge(u, v) && --in_degree[v] == 0) ready.push_back(v);
    }
  }
  THEMIS_CHECK(order.size() == num_nodes()) << "graph has a cycle";
  return order;
}

std::vector<size_t> Dag::Ancestors(size_t node) const {
  std::vector<bool> visited(num_nodes(), false);
  std::vector<size_t> stack(parents_[node].begin(), parents_[node].end());
  while (!stack.empty()) {
    size_t u = stack.back();
    stack.pop_back();
    if (visited[u]) continue;
    visited[u] = true;
    for (size_t p : parents_[u]) {
      if (!visited[p]) stack.push_back(p);
    }
  }
  std::vector<size_t> out;
  for (size_t v = 0; v < num_nodes(); ++v) {
    if (visited[v]) out.push_back(v);
  }
  return out;
}

std::string Dag::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : Edges()) {
    parts.push_back(StrFormat("X%zu -> X%zu", from, to));
  }
  return Join(parts, ", ");
}

}  // namespace themis::bn
