#include "bn/score.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace themis::bn {

bool SampleScoreSource::HasSupport(const std::vector<size_t>&) const {
  return true;
}

Result<stats::FreqTable> SampleScoreSource::JointCounts(
    const std::vector<size_t>& attrs) const {
  std::vector<size_t> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  return stats::FreqTable::FromTable(*sample_, sorted);
}

double SampleScoreSource::total() const {
  return sample_->TotalWeight();
}

bool AggregateScoreSource::HasSupport(
    const std::vector<size_t>& attrs) const {
  return aggregates_->HasJointSupport(attrs);
}

Result<stats::FreqTable> AggregateScoreSource::JointCounts(
    const std::vector<size_t>& attrs) const {
  return aggregates_->JointDistribution(attrs);
}

double AggregateScoreSource::total() const {
  double best = 0;
  for (const auto& spec : aggregates_->specs()) {
    best = std::max(best, spec.TotalCount());
  }
  return best;
}

Result<double> FamilyBicScore(const ScoreSource& source,
                              const data::Schema& schema, size_t child,
                              const std::vector<size_t>& parents) {
  std::vector<size_t> family = parents;
  family.push_back(child);
  std::sort(family.begin(), family.end());
  if (!source.HasSupport(family)) {
    return Status::NotFound("family lacks support in the score source");
  }
  THEMIS_ASSIGN_OR_RETURN(stats::FreqTable joint,
                          source.JointCounts(family));
  const double joint_total = joint.TotalMass();
  if (joint_total <= 0) {
    return Status::FailedPrecondition("empty family statistics");
  }
  const double n = source.total();
  // Scale the joint to N observations (aggregate marginals may carry a
  // different total than the designated N).
  const double scale = n / joint_total;

  // Maximized log-likelihood: sum over (j, k) of N_jk log(N_jk / N_k).
  double ll = 0;
  if (parents.empty()) {
    for (const auto& [key, c] : joint.entries()) {
      if (c <= 0) continue;
      const double njk = c * scale;
      ll += njk * std::log(njk / n);
    }
  } else {
    std::vector<size_t> sorted_parents = parents;
    std::sort(sorted_parents.begin(), sorted_parents.end());
    stats::FreqTable parent_marginal = joint.MarginalizeTo(sorted_parents);
    // Position of the parent attributes within the family key.
    std::vector<size_t> ppos;
    for (size_t p : sorted_parents) {
      auto it = std::find(family.begin(), family.end(), p);
      ppos.push_back(static_cast<size_t>(it - family.begin()));
    }
    for (const auto& [key, c] : joint.entries()) {
      if (c <= 0) continue;
      data::TupleKey pkey(ppos.size());
      for (size_t i = 0; i < ppos.size(); ++i) pkey[i] = key[ppos[i]];
      const double nk = parent_marginal.Mass(pkey) * scale;
      const double njk = c * scale;
      ll += njk * std::log(njk / nk);
    }
  }

  // Complexity penalty over the *full* domain sizes: q_i (r_i - 1).
  double q = 1;
  for (size_t p : parents) q *= static_cast<double>(schema.domain(p).size());
  const double params =
      q * (static_cast<double>(schema.domain(child).size()) - 1.0);
  return ll - 0.5 * std::log(std::max(n, 2.0)) * params;
}

}  // namespace themis::bn
