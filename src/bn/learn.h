#ifndef THEMIS_BN_LEARN_H_
#define THEMIS_BN_LEARN_H_

#include <string>

#include "bn/parameter_learning.h"
#include "bn/structure_learning.h"
#include "util/status.h"

namespace themis::bn {

/// The five Bayesian-network learning variants compared in Sec 6.6. The
/// first letter is the structure source, the second the parameter source:
/// S = sample only, B = both sample and aggregates, A = aggregates only
/// (uncovered attributes become disconnected uniform nodes).
enum class BnVariant { kSS, kSB, kBS, kBB, kAB };

const char* BnVariantName(BnVariant variant);

struct BnLearnOptions {
  BnVariant variant = BnVariant::kBB;
  StructureLearnOptions structure;
  ParameterLearnOptions parameters;
};

struct BnLearnStats {
  StructureLearnResult structure;
  ParameterLearnStats parameters;
  double structure_seconds = 0;
  double parameter_seconds = 0;
};

/// End-to-end BN learning: structure (two-phase hill climbing) then
/// parameters (constrained MLE in topological order), honoring the variant
/// selection. For kAB, attributes not covered by Γ remain disconnected with
/// uniform CPTs (the paper's uniformity assumption).
Result<BayesianNetwork> LearnBayesNet(
    const data::SchemaPtr& schema, const data::Table* sample,
    const aggregate::AggregateSet* aggregates,
    const BnLearnOptions& options = {}, BnLearnStats* stats = nullptr);

}  // namespace themis::bn

#endif  // THEMIS_BN_LEARN_H_
