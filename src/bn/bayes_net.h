#ifndef THEMIS_BN_BAYES_NET_H_
#define THEMIS_BN_BAYES_NET_H_

#include <vector>

#include "bn/cpt.h"
#include "bn/dag.h"
#include "data/table.h"
#include "util/random.h"
#include "util/status.h"

namespace themis::bn {

/// A discrete Bayesian network over the attributes of a schema: a DAG plus
/// one CPT per attribute. This is Themis's approximate model of the
/// population probability distribution (Sec 4.2).
class BayesianNetwork {
 public:
  /// Builds a network with the given structure; CPTs are allocated (sized
  /// from the schema's domains) but start uniform. Use the parameter
  /// learning routines or SetCpt to fill them.
  BayesianNetwork(data::SchemaPtr schema, Dag dag);

  const data::SchemaPtr& schema() const { return schema_; }
  const Dag& dag() const { return dag_; }

  const Cpt& cpt(size_t node) const { return cpts_[node]; }
  Cpt& mutable_cpt(size_t node) { return cpts_[node]; }

  size_t num_nodes() const { return cpts_.size(); }

  /// Joint probability of a full assignment (one code per attribute):
  /// the product of the factor probabilities.
  double JointProbability(const std::vector<data::ValueCode>& full) const;

  /// Draws one full tuple by forward (logic) sampling in topological order.
  std::vector<data::ValueCode> SampleTuple(Rng& rng) const;

  /// Generates `num_rows` forward samples as a table sharing the schema,
  /// each row weighted `population_size / num_rows` so the table is a
  /// uniformly-scaled representative sample of the modeled population
  /// (Sec 4.2.4).
  data::Table SampleTable(size_t num_rows, double population_size,
                          Rng& rng) const;

  /// Total number of free parameters across all CPTs.
  size_t NumFreeParameters() const;

 private:
  data::SchemaPtr schema_;
  Dag dag_;
  std::vector<Cpt> cpts_;
  std::vector<size_t> topo_order_;
};

/// Allocates the CPT shell (parents + domain sizes, uniform rows) for
/// `node` under `dag` — helper shared by learning code.
Cpt MakeCptShell(const data::Schema& schema, const Dag& dag, size_t node);

}  // namespace themis::bn

#endif  // THEMIS_BN_BAYES_NET_H_
