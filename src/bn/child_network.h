#ifndef THEMIS_BN_CHILD_NETWORK_H_
#define THEMIS_BN_CHILD_NETWORK_H_

#include "bn/bayes_net.h"

namespace themis::bn {

/// The CHILD Bayesian network (Spiegelhalter's congenital heart disease
/// network from the bnlearn repository): 20 discrete nodes, 25 arcs. The
/// paper samples its synthetic CHILD dataset (n = 20,000) from this
/// network to evaluate aggregate pruning (Fig 15).
///
/// The structure (nodes, domains, arcs) is the published one; the CPTs are
/// synthetic — generated deterministically from `seed` with skewed
/// Dirichlet-style rows — because the exact published tables are not
/// bundled here. This preserves what Fig 15 measures: a known ground-truth
/// network to compare learned models against (see DESIGN.md,
/// substitutions).
BayesianNetwork MakeChildNetwork(uint64_t seed = 7);

}  // namespace themis::bn

#endif  // THEMIS_BN_CHILD_NETWORK_H_
