#ifndef THEMIS_BN_INFERENCE_H_
#define THEMIS_BN_INFERENCE_H_

#include <unordered_map>
#include <vector>

#include "bn/bayes_net.h"
#include "stats/freq_table.h"
#include "util/status.h"

namespace themis::bn {

/// A partial assignment: attribute index -> value code.
using Evidence = std::unordered_map<size_t, data::ValueCode>;

/// Exact inference on a discrete BN via variable elimination with sparse
/// (hash-map) factors. Used for Themis's probabilistic point-query
/// answering, n * Pr(X1 = x1, ..., Xd = xd) (Sec 4.2.4), and for computing
/// parent-joint distributions during constrained parameter learning.
class VariableElimination {
 public:
  explicit VariableElimination(const BayesianNetwork* network)
      : network_(network) {}

  /// Pr(evidence): probability that a population tuple takes exactly the
  /// listed values on the listed attributes.
  Result<double> Probability(const Evidence& evidence) const;

  /// Joint distribution over `targets` (normalized). Targets must be
  /// distinct attribute indices.
  Result<stats::FreqTable> Marginal(const std::vector<size_t>& targets) const;

  /// Joint distribution over `targets` given `evidence` (normalized over
  /// the evidence-consistent worlds). Targets and evidence must be
  /// disjoint.
  Result<stats::FreqTable> Marginal(const std::vector<size_t>& targets,
                                    const Evidence& evidence) const;

 private:
  const BayesianNetwork* network_;
};

}  // namespace themis::bn

#endif  // THEMIS_BN_INFERENCE_H_
