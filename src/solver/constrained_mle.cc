#include "solver/constrained_mle.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace themis::solver {

namespace {

/// Validates the problem shape: every variable in exactly one group,
/// non-negative counts/coefficients, variable indices in range.
Status Validate(const ConstrainedMleProblem& p) {
  const size_t n = p.counts.size();
  std::vector<int> membership(n, 0);
  for (const auto& g : p.groups) {
    for (size_t v : g.vars) {
      if (v >= n) return Status::InvalidArgument("group variable out of range");
      ++membership[v];
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (membership[v] != 1) {
      return Status::InvalidArgument(
          "variable " + std::to_string(v) +
          " must appear in exactly one simplex group");
    }
    if (p.counts[v] < 0) {
      return Status::InvalidArgument("negative count");
    }
  }
  for (const auto& c : p.constraints) {
    if (c.target < 0) return Status::InvalidArgument("negative target");
    for (const auto& [v, coeff] : c.terms) {
      if (v >= n) return Status::InvalidArgument("constraint var out of range");
      if (coeff < 0) {
        return Status::InvalidArgument("negative constraint coefficient");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<ConstrainedMleSolution> SolveConstrainedMle(
    const ConstrainedMleProblem& problem,
    const ConstrainedMleOptions& options) {
  THEMIS_RETURN_IF_ERROR(Validate(problem));
  const size_t n = problem.counts.size();
  ConstrainedMleSolution sol;
  sol.theta.assign(n, 0.0);

  // Initialize from the smoothed empirical distribution, per simplex group.
  for (const auto& g : problem.groups) {
    double total = 0;
    for (size_t v : g.vars) total += problem.counts[v] + options.smoothing;
    if (total <= 0) {
      // No data at all for this parent configuration: uniform.
      for (size_t v : g.vars) {
        sol.theta[v] = 1.0 / static_cast<double>(g.vars.size());
      }
    } else {
      for (size_t v : g.vars) {
        sol.theta[v] = (problem.counts[v] + options.smoothing) / total;
      }
    }
  }

  auto constraint_violation = [&](const LinearConstraint& c) {
    double got = 0;
    for (const auto& [v, coeff] : c.terms) got += coeff * sol.theta[v];
    return std::abs(got - c.target) / std::max(1.0, std::abs(c.target));
  };

  auto max_violation = [&]() {
    double worst = 0;
    for (const auto& c : problem.constraints) {
      worst = std::max(worst, constraint_violation(c));
    }
    for (const auto& g : problem.groups) {
      double s = 0;
      for (size_t v : g.vars) s += sol.theta[v];
      worst = std::max(worst, std::abs(s - 1.0));
    }
    return worst;
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Scale each violated aggregate constraint's support uniformly; a
    // uniform multiplicative factor restores a homogeneous linear
    // constraint exactly.
    for (const auto& c : problem.constraints) {
      double got = 0;
      for (const auto& [v, coeff] : c.terms) got += coeff * sol.theta[v];
      if (got <= 0) {
        if (c.target <= 0) continue;
        // All mass on the support was lost (can happen with zero smoothing
        // and zero counts); seed uniformly so the constraint can act.
        for (const auto& [v, coeff] : c.terms) {
          if (coeff > 0) sol.theta[v] = 1e-12;
        }
        got = 0;
        for (const auto& [v, coeff] : c.terms) got += coeff * sol.theta[v];
        if (got <= 0) continue;
      }
      const double s = c.target / got;
      if (s == 1.0) continue;
      for (const auto& [v, coeff] : c.terms) {
        if (coeff > 0) sol.theta[v] *= s;
      }
    }
    // Re-normalize every simplex group.
    for (const auto& g : problem.groups) {
      double total = 0;
      for (size_t v : g.vars) total += sol.theta[v];
      if (total <= 0) {
        for (size_t v : g.vars) {
          sol.theta[v] = 1.0 / static_cast<double>(g.vars.size());
        }
      } else {
        for (size_t v : g.vars) sol.theta[v] /= total;
      }
    }
    sol.iterations = iter + 1;
    sol.max_violation = max_violation();
    if (sol.max_violation <= options.tolerance) {
      sol.converged = true;
      break;
    }
  }

  sol.log_likelihood = 0;
  for (size_t v = 0; v < n; ++v) {
    if (problem.counts[v] > 0) {
      sol.log_likelihood +=
          problem.counts[v] * std::log(std::max(sol.theta[v], 1e-300));
    }
  }
  return sol;
}

}  // namespace themis::solver
