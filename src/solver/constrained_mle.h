#ifndef THEMIS_SOLVER_CONSTRAINED_MLE_H_
#define THEMIS_SOLVER_CONSTRAINED_MLE_H_

#include <utility>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace themis::solver {

/// One simplex block: the listed variables must be non-negative and sum to
/// one. For BN parameter learning there is one block per parent
/// configuration k, containing θ_{i,j,k} for all child values j.
struct SimplexGroup {
  std::vector<size_t> vars;
};

/// One linear equality constraint Σ coeff_v · θ_v = target with
/// *non-negative* coefficients. After the Sec 5.2 simplification every
/// aggregate constraint on a factor has this form: the coefficients are
/// the (already-solved, hence constant) ancestor probabilities.
struct LinearConstraint {
  std::vector<std::pair<size_t, double>> terms;  // (variable, coefficient)
  double target = 0;
};

/// The per-factor constrained maximum-likelihood problem of Eq. 2 after
/// simplification:
///   minimize  −Σ_v counts_v · log θ_v
///   subject to θ ≥ 0, each SimplexGroup sums to 1, and all
///   LinearConstraints hold.
struct ConstrainedMleProblem {
  /// Observation counts (sample statistics); may contain zeros.
  linalg::Vector counts;
  /// Partition of the variables into simplex blocks. Every variable must
  /// appear in exactly one group.
  std::vector<SimplexGroup> groups;
  /// Aggregate-derived equality constraints (may be empty).
  std::vector<LinearConstraint> constraints;
};

struct ConstrainedMleOptions {
  int max_iterations = 2000;
  /// Converged when every constraint (incl. simplexes) is satisfied within
  /// this relative tolerance.
  double tolerance = 1e-9;
  /// Additive smoothing applied to the counts when initializing, so that
  /// zero-count states can still receive mass demanded by constraints
  /// (e.g. the sample has no 500-mile flights but Γ says 20% exist).
  double smoothing = 1e-6;
};

struct ConstrainedMleSolution {
  linalg::Vector theta;
  int iterations = 0;
  bool converged = false;
  double max_violation = 0;
  /// Σ counts_v log θ_v at the solution (0·log 0 treated as 0).
  double log_likelihood = 0;
};

/// Solves the problem with iterative proportional scaling: starting from
/// the (smoothed) empirical distribution, repeatedly rescale the support of
/// each violated constraint and re-normalize each simplex until all
/// constraints hold. For feasible systems this converges to the
/// I-projection of the empirical distribution onto the constraint set,
/// which is the constrained MLE; for infeasible systems (noisy aggregates)
/// it returns the approximate fixed point with `converged=false`, matching
/// the approximate solving behaviour the paper reports.
Result<ConstrainedMleSolution> SolveConstrainedMle(
    const ConstrainedMleProblem& problem,
    const ConstrainedMleOptions& options = {});

}  // namespace themis::solver

#endif  // THEMIS_SOLVER_CONSTRAINED_MLE_H_
