#ifndef THEMIS_AGGREGATE_PRUNING_H_
#define THEMIS_AGGREGATE_PRUNING_H_

#include <vector>

#include "aggregate/aggregate.h"
#include "util/random.h"
#include "util/status.h"

namespace themis::aggregate {

/// Aggregate selection (Sec 5.1): given many candidate aggregates and a
/// budget B, choose the B most informative ones using a modified k-order
/// t-cherry junction tree construction (Alg 4). Cluster-separator pairs are
/// scored I(X_C) - I(X_S); only clusters with support in Γ are considered
/// (the mutual information must be computable from Γ alone); multiple tree
/// iterations are allowed when B exceeds the attribute count, and duplicate
/// clusters are disallowed.
///
/// Returns the indices into `candidates` of the selected aggregates, in
/// selection order, at most `budget` of them.
std::vector<size_t> SelectAggregatesTCherry(
    const std::vector<AggregateSpec>& candidates, size_t budget);

/// Baseline for Fig 15: selects `budget` candidates uniformly at random.
std::vector<size_t> SelectAggregatesRandom(
    const std::vector<AggregateSpec>& candidates, size_t budget, Rng& rng);

}  // namespace themis::aggregate

#endif  // THEMIS_AGGREGATE_PRUNING_H_
