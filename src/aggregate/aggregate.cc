#include "aggregate/aggregate.h"

#include <algorithm>
#include <limits>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace themis::aggregate {

double AggregateSpec::TotalCount() const {
  double s = 0;
  for (const auto& [k, c] : groups) s += c;
  return s;
}

stats::FreqTable AggregateSpec::ToFreqTable() const {
  stats::FreqTable table(attrs);
  for (const auto& [k, c] : groups) table.Add(k, c);
  return table;
}

std::string AggregateSpec::Describe(const data::Schema& schema) const {
  std::vector<std::string> names;
  for (size_t a : attrs) names.push_back(schema.attribute_name(a));
  return StrFormat("agg(%s): %zu groups, total %.0f",
                   Join(names, ",").c_str(), groups.size(), TotalCount());
}

AggregateSpec ComputeAggregate(const data::Table& population,
                               std::vector<size_t> attrs) {
  std::sort(attrs.begin(), attrs.end());
  AggregateSpec spec;
  spec.attrs = attrs;
  auto groups = population.GroupWeights(attrs);
  spec.groups.reserve(groups.size());
  for (auto& [key, count] : groups) {
    spec.groups.emplace_back(key, count);
  }
  // Deterministic ordering for reproducibility.
  std::sort(spec.groups.begin(), spec.groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return spec;
}

void PerturbAggregate(AggregateSpec& agg, double sigma, Rng& rng) {
  for (auto& [key, count] : agg.groups) {
    count = std::max(0.0, count * (1.0 + rng.Normal(0.0, sigma)));
  }
}

std::vector<size_t> AggregateSet::CoveredAttributes() const {
  std::set<size_t> covered;
  for (const auto& spec : specs_) {
    covered.insert(spec.attrs.begin(), spec.attrs.end());
  }
  return {covered.begin(), covered.end()};
}

size_t AggregateSet::TotalGroups() const {
  size_t s = 0;
  for (const auto& spec : specs_) s += spec.num_groups();
  return s;
}

const AggregateSpec* AggregateSet::Find(
    const std::vector<size_t>& attrs) const {
  std::vector<size_t> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& spec : specs_) {
    if (spec.attrs == sorted) return &spec;
  }
  return nullptr;
}

bool AggregateSet::HasJointSupport(const std::vector<size_t>& attrs) const {
  if (attrs.empty()) return true;
  for (const auto& spec : specs_) {
    bool all = true;
    for (size_t a : attrs) {
      if (!std::binary_search(spec.attrs.begin(), spec.attrs.end(), a)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Result<stats::FreqTable> AggregateSet::JointDistribution(
    const std::vector<size_t>& attrs) const {
  const AggregateSpec* best = nullptr;
  for (const auto& spec : specs_) {
    bool all = true;
    for (size_t a : attrs) {
      if (!std::binary_search(spec.attrs.begin(), spec.attrs.end(), a)) {
        all = false;
        break;
      }
    }
    if (all && (best == nullptr || spec.dimension() < best->dimension())) {
      best = &spec;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        "no aggregate jointly supports the requested attributes");
  }
  std::vector<size_t> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  return best->ToFreqTable().MarginalizeTo(sorted);
}

}  // namespace themis::aggregate
