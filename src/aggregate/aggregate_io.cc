#include "aggregate/aggregate_io.h"

#include <algorithm>
#include <fstream>

#include "util/string_util.h"

namespace themis::aggregate {

Status WriteAggregateCsv(const AggregateSpec& spec,
                         const data::Schema& schema,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  for (size_t attr : spec.attrs) {
    out << CsvEscape(schema.attribute_name(attr)) << ",";
  }
  out << "count\n";
  for (const auto& [key, count] : spec.groups) {
    for (size_t i = 0; i < spec.attrs.size(); ++i) {
      out << CsvEscape(schema.domain(spec.attrs[i]).Label(key[i])) << ",";
    }
    out << count << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<AggregateSpec> ReadAggregateCsv(data::Schema& schema,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for read");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty aggregate file '" + path + "'");
  }
  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 2 || Trim(header.back()) != "count") {
    return Status::ParseError(
        "aggregate CSV header must be attr[,attr...],count");
  }
  AggregateSpec spec;
  std::vector<size_t> file_attrs;  // attrs in file column order
  for (size_t i = 0; i + 1 < header.size(); ++i) {
    THEMIS_ASSIGN_OR_RETURN(
        size_t idx, schema.AttributeIndex(std::string(Trim(header[i]))));
    file_attrs.push_back(idx);
  }
  // Keys must follow sorted-attr order (AggregateSpec invariant).
  std::vector<size_t> sorted = file_attrs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> positions(file_attrs.size());
  for (size_t i = 0; i < file_attrs.size(); ++i) {
    positions[i] = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), file_attrs[i]) -
        sorted.begin());
  }
  spec.attrs = sorted;

  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::ParseError(
          StrFormat("'%s' line %zu: expected %zu fields, got %zu",
                    path.c_str(), line_no, header.size(), fields.size()));
    }
    data::TupleKey key(file_attrs.size());
    for (size_t i = 0; i < file_attrs.size(); ++i) {
      key[positions[i]] = schema.domain(file_attrs[i])
                              .Intern(std::string(Trim(fields[i])));
    }
    char* end = nullptr;
    const double count = std::strtod(fields.back().c_str(), &end);
    if (end == fields.back().c_str() || count < 0) {
      return Status::ParseError(StrFormat("'%s' line %zu: bad count '%s'",
                                          path.c_str(), line_no,
                                          fields.back().c_str()));
    }
    spec.groups.emplace_back(std::move(key), count);
  }
  std::sort(spec.groups.begin(), spec.groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return spec;
}

}  // namespace themis::aggregate
