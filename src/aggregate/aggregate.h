#ifndef THEMIS_AGGREGATE_AGGREGATE_H_
#define THEMIS_AGGREGATE_AGGREGATE_H_

#include <string>
#include <utility>
#include <vector>

#include "data/table.h"
#include "stats/freq_table.h"
#include "util/random.h"
#include "util/status.h"

namespace themis::aggregate {

/// One population aggregate Γ_i = G_{γi, COUNT(*)}(P): a GROUP BY COUNT(*)
/// result over attribute set γi, as published by a statistics agency or
/// data-transparency report (Sec 3). Counts need not be exact — Themis
/// treats them as marginal constraints to be (approximately) satisfied.
struct AggregateSpec {
  /// γi: attribute indices into the shared schema, kept sorted.
  std::vector<size_t> attrs;
  /// The M_i (attribute-values, count) pairs (a_{i,k}, c_{i,k}).
  std::vector<std::pair<data::TupleKey, double>> groups;

  size_t dimension() const { return attrs.size(); }
  size_t num_groups() const { return groups.size(); }

  /// Sum of all group counts (≈ population size when γi covers every
  /// population tuple).
  double TotalCount() const;

  /// View as a frequency table (for entropy / MI computations).
  stats::FreqTable ToFreqTable() const;

  /// Human-readable description "agg(O,DE): 7 groups, total 10".
  std::string Describe(const data::Schema& schema) const;
};

/// Computes the exact aggregate over `population` for `attrs` (sorted
/// internally). Weights are honored so this also works on weighted tables.
AggregateSpec ComputeAggregate(const data::Table& population,
                               std::vector<size_t> attrs);

/// Adds independent relative noise to every count: c <- max(0, c * (1 +
/// eps)), eps ~ N(0, sigma). Models perturbed / differentially-private
/// published aggregates (Sec 3).
void PerturbAggregate(AggregateSpec& agg, double sigma, Rng& rng);

/// The set Γ of all available population aggregates.
class AggregateSet {
 public:
  AggregateSet() = default;
  explicit AggregateSet(data::SchemaPtr schema)
      : schema_(std::move(schema)) {}

  const data::SchemaPtr& schema() const { return schema_; }

  void Add(AggregateSpec spec) { specs_.push_back(std::move(spec)); }

  size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }
  const AggregateSpec& operator[](size_t i) const { return specs_[i]; }
  const std::vector<AggregateSpec>& specs() const { return specs_; }

  /// Union of all γi — the attributes Γ knows anything about. May be a
  /// strict subset of the schema (aggregates need not cover everything).
  std::vector<size_t> CoveredAttributes() const;

  /// Total number of groups (= constraints) across all aggregates.
  size_t TotalGroups() const;

  /// Returns the aggregate whose γ equals `attrs` (sorted), if present.
  const AggregateSpec* Find(const std::vector<size_t>& attrs) const;

  /// True if every attribute in `attrs` appears *together* in some single
  /// aggregate — the support test used by structure learning and pruning
  /// ("the attributes appear together in some aggregate", Sec 4.2.2).
  bool HasJointSupport(const std::vector<size_t>& attrs) const;

  /// Joint distribution of `attrs` computed from the smallest aggregate
  /// whose γ contains `attrs`, marginalized down; NotFound without support.
  Result<stats::FreqTable> JointDistribution(
      const std::vector<size_t>& attrs) const;

 private:
  data::SchemaPtr schema_;
  std::vector<AggregateSpec> specs_;
};

}  // namespace themis::aggregate

#endif  // THEMIS_AGGREGATE_AGGREGATE_H_
