#ifndef THEMIS_AGGREGATE_AGGREGATE_IO_H_
#define THEMIS_AGGREGATE_AGGREGATE_IO_H_

#include <string>

#include "aggregate/aggregate.h"

namespace themis::aggregate {

/// Serialization of published aggregates as CSV — the wire format a data
/// provider would actually publish (one file per GROUP BY COUNT(*) report):
///
///   o_st,d_st,count
///   FL,FL,2
///   FL,NY,1
///   ...
///
/// The header names the grouped attributes (resolved against `schema`) and
/// must end with a "count" column.

/// Writes `spec` to `path` using `schema` for attribute/value names.
Status WriteAggregateCsv(const AggregateSpec& spec,
                         const data::Schema& schema,
                         const std::string& path);

/// Reads an aggregate published as CSV. Attribute names must exist in
/// `schema`; group values are interned into the schema's domains (a
/// published report may legitimately mention values the sample lacks).
Result<AggregateSpec> ReadAggregateCsv(data::Schema& schema,
                                       const std::string& path);

}  // namespace themis::aggregate

#endif  // THEMIS_AGGREGATE_AGGREGATE_IO_H_
