#include "aggregate/pruning.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "stats/info.h"
#include "util/logging.h"

namespace themis::aggregate {

namespace {

/// A candidate cluster with one of its (k-1)-element separators, scored by
/// I(X_C) - I(X_S) computed from the candidate aggregate itself.
struct ClusterSeparator {
  size_t candidate_index;       // into `candidates`
  std::vector<size_t> cluster;  // == candidates[candidate_index].attrs
  std::vector<size_t> separator;
  double score;
};

/// Enumerates every (cluster, separator) pair from the candidate
/// aggregates. Support in Γ is implied: each candidate *is* an aggregate,
/// so its joint (and any marginal) is computable from Γ alone.
std::vector<ClusterSeparator> GenClusterSeparatorPairs(
    const std::vector<AggregateSpec>& candidates,
    const std::set<size_t>& excluded_candidates) {
  std::vector<ClusterSeparator> pairs;
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (excluded_candidates.count(ci)) continue;
    const AggregateSpec& spec = candidates[ci];
    if (spec.dimension() < 2) continue;  // 1D aggregates are kept elsewhere
    stats::FreqTable joint = spec.ToFreqTable();
    const double cluster_info = stats::InformationContent(joint);
    // One pair per leave-one-out separator.
    for (size_t drop = 0; drop < spec.attrs.size(); ++drop) {
      ClusterSeparator cs;
      cs.candidate_index = ci;
      cs.cluster = spec.attrs;
      cs.separator = spec.attrs;
      cs.separator.erase(cs.separator.begin() + static_cast<long>(drop));
      const double sep_info =
          cs.separator.size() < 2
              ? 0.0
              : stats::InformationContent(
                    joint.MarginalizeTo(cs.separator));
      cs.score = cluster_info - sep_info;
      pairs.push_back(std::move(cs));
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ClusterSeparator& a, const ClusterSeparator& b) {
              return a.score > b.score;
            });
  return pairs;
}

bool IsSubset(const std::vector<size_t>& small,
              const std::vector<size_t>& big) {
  for (size_t v : small) {
    if (!std::binary_search(big.begin(), big.end(), v)) return false;
  }
  return true;
}

}  // namespace

std::vector<size_t> SelectAggregatesTCherry(
    const std::vector<AggregateSpec>& candidates, size_t budget) {
  std::vector<size_t> selected;
  if (budget == 0) return selected;
  std::set<size_t> used;  // candidate indices already chosen (any tree)

  std::vector<ClusterSeparator> pool =
      GenClusterSeparatorPairs(candidates, used);
  if (pool.empty()) return selected;

  // Tree state: clusters of the current tree and attributes covered so far.
  std::vector<std::vector<size_t>> tree_clusters;
  std::set<size_t> covered;

  auto start_tree = [&]() -> bool {
    pool = GenClusterSeparatorPairs(candidates, used);
    if (pool.empty()) return false;
    const ClusterSeparator& seed = pool.front();
    tree_clusters = {seed.cluster};
    covered.clear();
    covered.insert(seed.cluster.begin(), seed.cluster.end());
    used.insert(seed.candidate_index);
    selected.push_back(seed.candidate_index);
    return true;
  };

  if (!start_tree()) return selected;

  // Attributes appearing anywhere in the candidate pool — "all attributes
  // covered" is relative to what the candidates can reach.
  std::set<size_t> all_attrs;
  for (const auto& spec : candidates) {
    if (spec.dimension() >= 2) {
      all_attrs.insert(spec.attrs.begin(), spec.attrs.end());
    }
  }

  while (selected.size() < budget) {
    // Greedy step: best unused pair whose separator is contained in some
    // tree cluster and which covers a new attribute.
    bool added = false;
    for (const ClusterSeparator& cs : pool) {
      if (used.count(cs.candidate_index)) continue;
      bool separator_ok = false;
      for (const auto& cluster : tree_clusters) {
        if (IsSubset(cs.separator, cluster)) {
          separator_ok = true;
          break;
        }
      }
      if (!separator_ok) continue;
      bool new_attr = false;
      for (size_t a : cs.cluster) {
        if (!covered.count(a)) {
          new_attr = true;
          break;
        }
      }
      if (!new_attr) continue;
      tree_clusters.push_back(cs.cluster);
      covered.insert(cs.cluster.begin(), cs.cluster.end());
      used.insert(cs.candidate_index);
      selected.push_back(cs.candidate_index);
      added = true;
      break;
    }
    if (added) continue;
    // Either all attributes are covered or the tree cannot grow; start a
    // new tree over the remaining candidates (Alg 4's multi-iteration
    // extension for budgets above the attribute count).
    if (!start_tree()) break;
  }
  if (selected.size() > budget) selected.resize(budget);
  return selected;
}

std::vector<size_t> SelectAggregatesRandom(
    const std::vector<AggregateSpec>& candidates, size_t budget, Rng& rng) {
  std::vector<size_t> idx(candidates.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  if (idx.size() > budget) idx.resize(budget);
  return idx;
}

}  // namespace themis::aggregate
