#include "linalg/cholesky.h"

#include <cmath>

namespace themis::linalg {

Result<Cholesky> Cholesky::Factor(const Matrix& a, double jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j) + jitter;
    for (size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite at pivot " + std::to_string(j));
    }
    l(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  THEMIS_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = 0; ii < n; ++ii) {
    const size_t i = n - 1 - ii;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

double Cholesky::LogDet() const {
  double s = 0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: dimension mismatch");
  }
  if (a.cols() == 0) return Vector{};
  Matrix gram = a.Gram();
  Vector atb = a.TransposeMatVec(b);
  // Scale the ridge to the matrix magnitude so behaviour is invariant to
  // units; escalate when the unregularized factorization fails.
  double scale = 0.0;
  for (size_t i = 0; i < gram.rows(); ++i) scale = std::max(scale, gram(i, i));
  if (scale == 0.0) scale = 1.0;
  for (double ridge : {0.0, 1e-12, 1e-9, 1e-6, 1e-3}) {
    auto chol = Cholesky::Factor(gram, ridge * scale);
    if (chol.ok()) return chol->Solve(atb);
  }
  return Status::FailedPrecondition("LeastSquares: system is singular");
}

}  // namespace themis::linalg
