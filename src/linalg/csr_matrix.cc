#include "linalg/csr_matrix.h"

#include "util/logging.h"

namespace themis::linalg {

void BinaryCsrMatrix::AppendRow(const std::vector<size_t>& col_indices) {
  for (size_t c : col_indices) {
    THEMIS_DCHECK(c < cols_);
    col_idx_.push_back(c);
  }
  row_ptr_.push_back(col_idx_.size());
}

std::span<const size_t> BinaryCsrMatrix::Row(size_t r) const {
  THEMIS_DCHECK(r + 1 < row_ptr_.size());
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

Vector BinaryCsrMatrix::MatVec(const Vector& x) const {
  THEMIS_CHECK(x.size() == cols_);
  Vector y(rows(), 0.0);
  for (size_t r = 0; r < rows(); ++r) y[r] = RowDot(r, x);
  return y;
}

double BinaryCsrMatrix::RowDot(size_t r, const Vector& x) const {
  double s = 0;
  for (size_t c : Row(r)) s += x[c];
  return s;
}

Matrix BinaryCsrMatrix::MultiplyDense(const Matrix& x) const {
  THEMIS_CHECK(x.rows() == cols_);
  Matrix out(rows(), x.cols());
  for (size_t r = 0; r < rows(); ++r) {
    double* orow = out.RowData(r);
    for (size_t c : Row(r)) {
      const double* xrow = x.RowData(c);
      for (size_t j = 0; j < x.cols(); ++j) orow[j] += xrow[j];
    }
  }
  return out;
}

}  // namespace themis::linalg
