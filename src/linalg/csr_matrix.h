#ifndef THEMIS_LINALG_CSR_MATRIX_H_
#define THEMIS_LINALG_CSR_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace themis::linalg {

/// Sparse binary matrix in compressed-sparse-row form. Themis uses this for
/// the G0/1 incidence matrix of Sec 4.1: rows are aggregate groups,
/// columns are sample tuples, and entry (r, c) is 1 iff tuple c participates
/// in group r. Only the positions of ones are stored.
class BinaryCsrMatrix {
 public:
  /// Incrementally build with AppendRow.
  BinaryCsrMatrix(size_t cols) : cols_(cols) { row_ptr_.push_back(0); }

  /// Appends a row whose set bits are `col_indices` (need not be sorted;
  /// duplicates are not allowed and not checked).
  void AppendRow(const std::vector<size_t>& col_indices);

  size_t rows() const { return row_ptr_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t nonzeros() const { return col_idx_.size(); }

  /// Column indices of the ones in row r.
  std::span<const size_t> Row(size_t r) const;

  /// y = G x (size rows()).
  Vector MatVec(const Vector& x) const;

  /// Dot product of row r with x (the "G0/1[j] . w" of Alg 1).
  double RowDot(size_t r, const Vector& x) const;

  /// Dense product G * X where X is nS x m dense; result rows() x m.
  /// This computes the paper's [G0/1 XS] regression design matrix.
  Matrix MultiplyDense(const Matrix& x) const;

 private:
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_idx_;
};

}  // namespace themis::linalg

#endif  // THEMIS_LINALG_CSR_MATRIX_H_
