#ifndef THEMIS_LINALG_CHOLESKY_H_
#define THEMIS_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace themis::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Fails with FailedPrecondition if A is not (numerically) SPD.
class Cholesky {
 public:
  /// Factorizes `a` (which must be square and symmetric). A small ridge
  /// `jitter` is added to the diagonal to regularize near-singular systems;
  /// pass 0 for an exact factorization.
  static Result<Cholesky> Factor(const Matrix& a, double jitter = 0.0);

  /// Solves A x = b using the stored factor.
  Vector Solve(const Vector& b) const;

  /// log(det A) from the factor diagonal.
  double LogDet() const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Solves the linear least squares problem min ||A x - b||_2 via normal
/// equations with adaptive ridge regularization: A^T A x = A^T b. Robust to
/// rank deficiency (returns the ridge-regularized solution in that case).
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

}  // namespace themis::linalg

#endif  // THEMIS_LINALG_CHOLESKY_H_
