#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace themis::linalg {

double Dot(const Vector& a, const Vector& b) {
  THEMIS_DCHECK(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double Sum(const Vector& a) {
  double s = 0;
  for (double v : a) s += v;
  return s;
}

void Axpy(double alpha, const Vector& x, Vector& y) {
  THEMIS_DCHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

double Max(const Vector& a) {
  THEMIS_DCHECK(!a.empty());
  return *std::max_element(a.begin(), a.end());
}

double Min(const Vector& a) {
  THEMIS_DCHECK(!a.empty());
  return *std::min_element(a.begin(), a.end());
}

Vector Subtract(const Vector& a, const Vector& b) {
  THEMIS_DCHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(const Vector& a, const Vector& b) {
  THEMIS_DCHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace themis::linalg
