#ifndef THEMIS_LINALG_NNLS_H_
#define THEMIS_LINALG_NNLS_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace themis::linalg {

/// Options for the non-negative least squares solver.
struct NnlsOptions {
  /// Tolerance on the dual feasibility (max gradient over the active set).
  double tolerance = 1e-10;
  /// Safety bound on outer iterations (roughly #columns in practice).
  int max_iterations = 10000;
};

struct NnlsResult {
  Vector x;              ///< the non-negative solution
  double residual_norm;  ///< ||A x - b||_2 at the solution
  int iterations;        ///< outer-loop iterations used
};

/// Solves min ||A x - b||_2 subject to x >= 0 with the Lawson-Hanson
/// active-set algorithm. This is the constrained least-squares routine used
/// by the linear-regression reweighter (Sec 4.1.1 of the paper), which
/// requires all regression coefficients beta to be non-negative so every
/// sample tuple receives a non-negative weight.
Result<NnlsResult> Nnls(const Matrix& a, const Vector& b,
                        const NnlsOptions& options = {});

}  // namespace themis::linalg

#endif  // THEMIS_LINALG_NNLS_H_
