#ifndef THEMIS_LINALG_MATRIX_H_
#define THEMIS_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace themis::linalg {

/// Dense row-major matrix of doubles. Sized for the solver workloads in
/// Themis (constraint systems with at most a few thousand rows/columns);
/// all operations are straightforward O(n^3)/O(n^2) loops.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data (row vectors). All rows must
  /// have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) {
    THEMIS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    THEMIS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i (row-major contiguous storage).
  double* RowData(size_t i) { return data_.data() + i * cols_; }
  const double* RowData(size_t i) const { return data_.data() + i * cols_; }

  /// y = A x.
  Vector MatVec(const Vector& x) const;

  /// y = A^T x.
  Vector TransposeMatVec(const Vector& x) const;

  /// C = A * B.
  Matrix MatMul(const Matrix& other) const;

  /// Returns A^T.
  Matrix Transpose() const;

  /// Returns A^T A (symmetric positive semidefinite Gram matrix).
  Matrix Gram() const;

  /// Appends a row (must match cols(); first row on an empty matrix sets
  /// the column count).
  void AppendRow(const Vector& row);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Multi-line debug rendering.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace themis::linalg

#endif  // THEMIS_LINALG_MATRIX_H_
