#ifndef THEMIS_LINALG_VECTOR_OPS_H_
#define THEMIS_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace themis::linalg {

/// Dense column vectors are plain std::vector<double>; these free functions
/// provide the BLAS-1 style operations the solvers need.
using Vector = std::vector<double>;

/// Dot product. Sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& a);

/// Sum of all elements.
double Sum(const Vector& a);

/// y += alpha * x. Sizes must match.
void Axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void Scale(double alpha, Vector& x);

/// Element-wise maximum entry (requires non-empty vector).
double Max(const Vector& a);

/// Element-wise minimum entry (requires non-empty vector).
double Min(const Vector& a);

/// Returns a - b.
Vector Subtract(const Vector& a, const Vector& b);

/// Returns a + b.
Vector Add(const Vector& a, const Vector& b);

}  // namespace themis::linalg

#endif  // THEMIS_LINALG_VECTOR_OPS_H_
