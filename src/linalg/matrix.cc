#include "linalg/matrix.h"

#include <cmath>

#include "util/string_util.h"

namespace themis::linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    THEMIS_CHECK(rows[i].size() == m.cols_) << "ragged rows";
    for (size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::MatVec(const Vector& x) const {
  THEMIS_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    double s = 0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  THEMIS_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  THEMIS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowData(k);
      double* orow = out.RowData(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double a = row[i];
      if (a == 0.0) continue;
      double* orow = out.RowData(i);
      for (size_t j = i; j < cols_; ++j) orow[j] += a * row[j];
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i)
    for (size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  return out;
}

void Matrix::AppendRow(const Vector& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  THEMIS_CHECK(row.size() == cols_) << "row size mismatch";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

double Matrix::FrobeniusNorm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out += StrFormat("%10.4f ", (*this)(i, j));
    }
    out += "\n";
  }
  return out;
}

}  // namespace themis::linalg
