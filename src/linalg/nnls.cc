#include "linalg/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/cholesky.h"

namespace themis::linalg {

namespace {

/// Extracts the submatrix of `a` consisting of the columns listed in `cols`.
Matrix SelectColumns(const Matrix& a, const std::vector<size_t>& cols) {
  Matrix out(a.rows(), cols.size());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.RowData(i);
    double* orow = out.RowData(i);
    for (size_t j = 0; j < cols.size(); ++j) orow[j] = row[cols[j]];
  }
  return out;
}

}  // namespace

Result<NnlsResult> Nnls(const Matrix& a, const Vector& b,
                        const NnlsOptions& options) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("Nnls: dimension mismatch");
  }
  const size_t n = a.cols();
  Vector x(n, 0.0);
  std::vector<bool> passive(n, false);
  std::vector<size_t> passive_list;

  // Gradient of 1/2||Ax-b||^2 is A^T(Ax - b); Lawson-Hanson works with
  // w = A^T(b - Ax), the negative gradient.
  Vector residual = b;  // b - A*0
  Vector w = a.TransposeMatVec(residual);

  int iter = 0;
  while (iter++ < options.max_iterations) {
    // Pick the most-violating variable in the active (zero) set.
    double best = options.tolerance;
    size_t best_j = n;
    for (size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == n) break;  // KKT satisfied
    passive[best_j] = true;
    passive_list.push_back(best_j);

    // Inner loop: solve the unconstrained LS problem on the passive set and
    // walk back along the segment to keep feasibility.
    while (true) {
      Matrix ap = SelectColumns(a, passive_list);
      auto z_result = LeastSquares(ap, b);
      if (!z_result.ok()) return z_result.status();
      const Vector& z = *z_result;

      bool all_positive = true;
      for (double v : z) {
        if (v <= 0.0) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        for (size_t j = 0; j < passive_list.size(); ++j) {
          x[passive_list[j]] = z[j];
        }
        break;
      }
      // alpha = min over z_p <= 0 of x_p / (x_p - z_p).
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < passive_list.size(); ++j) {
        if (z[j] <= 0.0) {
          const double xp = x[passive_list[j]];
          const double denom = xp - z[j];
          if (denom > 0) alpha = std::min(alpha, xp / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (size_t j = 0; j < passive_list.size(); ++j) {
        const size_t col = passive_list[j];
        x[col] += alpha * (z[j] - x[col]);
      }
      // Deactivate variables driven to (numerical) zero.
      std::vector<size_t> next_list;
      for (size_t col : passive_list) {
        if (x[col] > 1e-14) {
          next_list.push_back(col);
        } else {
          x[col] = 0.0;
          passive[col] = false;
        }
      }
      passive_list = std::move(next_list);
      if (passive_list.empty()) break;
    }

    Vector ax = a.MatVec(x);
    residual = Subtract(b, ax);
    w = a.TransposeMatVec(residual);
  }

  NnlsResult result;
  result.x = std::move(x);
  result.residual_norm = Norm2(residual);
  result.iterations = iter;
  return result;
}

}  // namespace themis::linalg
