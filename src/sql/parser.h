#ifndef THEMIS_SQL_PARSER_H_
#define THEMIS_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace themis::sql {

/// Parses the supported SQL subset (see SelectStatement) into an AST.
Result<SelectStatement> Parse(const std::string& sql);

}  // namespace themis::sql

#endif  // THEMIS_SQL_PARSER_H_
