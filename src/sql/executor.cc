#include "sql/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <numeric>
#include <sstream>
#include <utility>

#include "simd/simd.h"
#include "sql/parser.h"
#include "util/cpu_topology.h"
#include "util/string_util.h"

namespace themis::sql {

namespace {

/// A column reference resolved to (table position, attribute index).
struct BoundColumn {
  size_t table = 0;
  size_t attr = 0;
};

struct BoundTable {
  const data::Table* table = nullptr;
  std::string alias;
};

/// A non-join predicate compiled to a per-domain-code match mask, so row
/// evaluation is a single array lookup.
struct Filter {
  BoundColumn column;
  std::vector<char> code_matches;  // indexed by value code
};

struct AggItem {
  AggFunc func = AggFunc::kCount;
  BoundColumn column;  // unused for COUNT(*)
};

/// A SELECT statement bound against the registered tables: resolved
/// tables and columns, compiled filters, join pairs, and per-code numeric
/// caches — everything both execution paths (vectorized and reference)
/// need before touching a row.
struct BoundQuery {
  std::vector<BoundTable> tables;
  std::vector<Filter> filters;
  std::vector<std::pair<BoundColumn, BoundColumn>> joins;
  std::vector<BoundColumn> group_columns;
  std::vector<AggItem> agg_items;
  /// Per agg item: NumericValueOfLabel per domain code (empty for COUNT).
  std::vector<std::vector<double>> numeric_cache;
  std::vector<std::string> group_names;
  std::vector<std::string> value_names;
};

/// Default rows per scan shard when the caller gives no column
/// information. Never derived from the pool size, so the shard layout —
/// and with it the float summation order — depends only on the table and
/// the (fixed) shard size, keeping sharded results bitwise identical
/// across pool sizes.
constexpr size_t kDefaultShardRows = 8192;
/// Auto shard policy: row-count clamp bounds around the cache-probed
/// working-set target (AutoShardTargetBytes).
constexpr size_t kMinAutoShardRows = 1024;
constexpr size_t kMaxAutoShardRows = 262144;

Result<BoundQuery> Bind(
    const SelectStatement& stmt,
    const std::unordered_map<std::string, const data::Table*>& catalog) {
  BoundQuery q;
  // --- Bind tables. ---
  if (stmt.tables.empty() || stmt.tables.size() > 2) {
    return Status::Unimplemented("only 1- and 2-table queries supported");
  }
  for (const TableRef& ref : stmt.tables) {
    auto it = catalog.find(ref.name);
    if (it == catalog.end()) {
      return Status::NotFound("no relation '" + ref.name + "' registered");
    }
    q.tables.push_back({it->second, ref.alias});
  }

  // --- Bind columns. ---
  auto bind = [&](const ColumnRef& ref) -> Result<BoundColumn> {
    BoundColumn bound;
    bool found = false;
    for (size_t t = 0; t < q.tables.size(); ++t) {
      if (!ref.table_alias.empty() &&
          !EqualsIgnoreCase(ref.table_alias, q.tables[t].alias)) {
        continue;
      }
      auto idx = q.tables[t].table->schema()->AttributeIndex(ref.column);
      if (idx.ok()) {
        if (found) {
          return Result<BoundColumn>(Status::InvalidArgument(
              "ambiguous column '" + ref.ToString() + "'"));
        }
        bound = {t, *idx};
        found = true;
      }
    }
    if (!found) {
      return Result<BoundColumn>(
          Status::NotFound("column '" + ref.ToString() + "' not found"));
    }
    return bound;
  };

  // --- Split predicates into per-table filters and join conditions. ---
  for (const Predicate& pred : stmt.where) {
    THEMIS_ASSIGN_OR_RETURN(BoundColumn lhs, bind(pred.lhs));
    if (pred.is_join) {
      THEMIS_ASSIGN_OR_RETURN(BoundColumn rhs, bind(pred.rhs_column));
      if (lhs.table == rhs.table) {
        return Status::Unimplemented(
            "same-table column equality not supported");
      }
      if (lhs.table > rhs.table) std::swap(lhs, rhs);
      q.joins.emplace_back(lhs, rhs);
      continue;
    }
    const data::Domain& domain =
        q.tables[lhs.table].table->schema()->domain(lhs.attr);
    Filter filter;
    filter.column = lhs;
    filter.code_matches.assign(domain.size(), 0);
    switch (pred.op) {
      case CompareOp::kEq:
      case CompareOp::kNe:
      case CompareOp::kIn: {
        std::vector<char>& m = filter.code_matches;
        for (const Literal& lit : pred.literals) {
          auto code = domain.Code(lit.text);
          if (code.ok()) m[static_cast<size_t>(*code)] = 1;
        }
        if (pred.op == CompareOp::kNe) {
          for (char& c : m) c = !c;
        }
        break;
      }
      default: {
        if (pred.literals.size() != 1) {
          return Status::InvalidArgument("ordered comparison needs 1 literal");
        }
        const Literal& lit = pred.literals[0];
        const double target = lit.is_number
                                  ? lit.number
                                  : NumericValueOfLabel(lit.text);
        if (std::isnan(target)) {
          return Status::InvalidArgument(
              "non-numeric literal in ordered comparison");
        }
        for (size_t code = 0; code < domain.size(); ++code) {
          const double v = NumericValueOfLabel(
              domain.Label(static_cast<data::ValueCode>(code)));
          if (std::isnan(v)) continue;  // unmatched
          bool ok = false;
          switch (pred.op) {
            case CompareOp::kLt: ok = v < target; break;
            case CompareOp::kLe: ok = v <= target; break;
            case CompareOp::kGt: ok = v > target; break;
            case CompareOp::kGe: ok = v >= target; break;
            default: break;
          }
          filter.code_matches[code] = ok ? 1 : 0;
        }
        break;
      }
    }
    q.filters.push_back(std::move(filter));
  }

  // --- Bind SELECT / GROUP BY columns. ---
  for (const ColumnRef& ref : stmt.group_by) {
    THEMIS_ASSIGN_OR_RETURN(BoundColumn bc, bind(ref));
    q.group_columns.push_back(bc);
    q.group_names.push_back(ref.ToString());
  }
  for (const SelectItem& item : stmt.items) {
    if (item.func == AggFunc::kNone) continue;  // plain group column
    AggItem agg;
    agg.func = item.func;
    if (item.func != AggFunc::kCount) {
      THEMIS_ASSIGN_OR_RETURN(agg.column, bind(item.column));
    }
    q.agg_items.push_back(agg);
    std::string name = !item.alias.empty() ? item.alias
                       : item.func == AggFunc::kCount
                           ? "count"
                           : (item.func == AggFunc::kSum ? "sum_" : "avg_") +
                                 item.column.ToString();
    q.value_names.push_back(std::move(name));
  }

  // Numeric per-code caches for SUM/AVG columns.
  q.numeric_cache.resize(q.agg_items.size());
  for (size_t i = 0; i < q.agg_items.size(); ++i) {
    if (q.agg_items[i].func == AggFunc::kCount) continue;
    const BoundColumn& bc = q.agg_items[i].column;
    const data::Domain& domain =
        q.tables[bc.table].table->schema()->domain(bc.attr);
    std::vector<double> values(domain.size());
    for (size_t code = 0; code < domain.size(); ++code) {
      values[code] = NumericValueOfLabel(
          domain.Label(static_cast<data::ValueCode>(code)));
    }
    q.numeric_cache[i] = std::move(values);
  }

  // The seed executor surfaced this at execution time, after all column
  // binding — keep that error precedence.
  if (q.tables.size() == 2 && q.joins.empty()) {
    return Status::Unimplemented(
        "cross joins without join predicates are not supported");
  }
  return q;
}

/// Shard size for `q`: explicit request, else the executor's
/// construction-time THEMIS_SHARD_ROWS snapshot (`env_override`), else
/// the cache-aware auto size derived from the scanned-column working set
/// of the sharded table (the probe side for joins). Depends only on the
/// query and table — never the pool — so the shard layout is pool-size
/// independent.
/// The cache-aware auto size: ~AutoShardTargetBytes() of scanned data per
/// shard, clamped to sane bounds.
size_t AutoShardRows(size_t bytes_per_row) {
  return std::clamp(AutoShardTargetBytes() / bytes_per_row, kMinAutoShardRows,
                    kMaxAutoShardRows);
}

size_t ResolvedShardRowsFor(const BoundQuery& q, size_t requested,
                            size_t env_override) {
  if (requested > 0) return requested;
  if (env_override > 0) return env_override;
  const size_t t = q.tables.size() == 1 ? 0 : 1;
  std::vector<size_t> attrs;
  for (const Filter& f : q.filters) {
    if (f.column.table == t) attrs.push_back(f.column.attr);
  }
  for (const BoundColumn& gc : q.group_columns) {
    if (gc.table == t) attrs.push_back(gc.attr);
  }
  for (const AggItem& item : q.agg_items) {
    if (item.func != AggFunc::kCount && item.column.table == t) {
      attrs.push_back(item.column.attr);
    }
  }
  for (const auto& [lhs, rhs] : q.joins) {
    attrs.push_back(t == 0 ? lhs.attr : rhs.attr);
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return AutoShardRows(data::Table::ScanBytesPerRow(attrs.size()));
}

// ---------------------------------------------------------------------
// Reference path: the pre-vectorization executor, retained verbatim as
// the bitwise oracle for differential tests and bench_executor. Label
// strings key an ordered map; every row allocates temporaries.
// ---------------------------------------------------------------------

/// Per-row aggregate accumulators for one group (reference path).
struct Accumulator {
  double count_weight = 0;                 // Σ w (COUNT(*))
  std::vector<double> weighted_sums;       // Σ w·v per SUM/AVG item
  std::vector<double> weight_totals;       // Σ w per SUM/AVG item
};

using GroupMap = std::map<std::vector<std::string>, Accumulator>;

QueryResult ExecuteRowAtATime(const BoundQuery& q, util::ThreadPool* pool,
                              size_t kShardRows) {
  const auto& tables = q.tables;
  const auto& filters = q.filters;
  const auto& joins = q.joins;
  const auto& group_columns = q.group_columns;
  const auto& agg_items = q.agg_items;
  const auto& numeric_cache = q.numeric_cache;

  QueryResult result;
  result.group_names = q.group_names;
  result.value_names = q.value_names;

  auto passes = [&](size_t t, size_t row) {
    for (const Filter& f : filters) {
      if (f.column.table != t) continue;
      const data::ValueCode code = tables[t].table->Get(row, f.column.attr);
      if (code < 0 || static_cast<size_t>(code) >= f.code_matches.size() ||
          !f.code_matches[static_cast<size_t>(code)]) {
        return false;
      }
    }
    return true;
  };

  GroupMap groups;
  // Lazily sizes a group's per-item vectors on first touch (shared by the
  // row path and the shard-merge path).
  auto group_slot = [&](GroupMap& into,
                        const std::vector<std::string>& key) -> Accumulator& {
    Accumulator& acc = into[key];
    if (acc.weighted_sums.empty()) {
      acc.weighted_sums.assign(agg_items.size(), 0.0);
      acc.weight_totals.assign(agg_items.size(), 0.0);
    }
    return acc;
  };
  auto accumulate = [&](GroupMap& into, const std::vector<size_t>& rows,
                        double weight) {
    // `rows[t]` is the current row of table t.
    std::vector<std::string> key;
    key.reserve(group_columns.size());
    for (const BoundColumn& gc : group_columns) {
      const data::ValueCode code =
          tables[gc.table].table->Get(rows[gc.table], gc.attr);
      key.push_back(
          tables[gc.table].table->schema()->domain(gc.attr).Label(code));
    }
    Accumulator& acc = group_slot(into, key);
    acc.count_weight += weight;
    for (size_t i = 0; i < agg_items.size(); ++i) {
      if (agg_items[i].func == AggFunc::kCount) continue;
      const BoundColumn& bc = agg_items[i].column;
      const data::ValueCode code =
          tables[bc.table].table->Get(rows[bc.table], bc.attr);
      const double v = numeric_cache[i][static_cast<size_t>(code)];
      if (std::isnan(v)) continue;
      acc.weighted_sums[i] += weight * v;
      acc.weight_totals[i] += weight;
    }
  };

  // Folds per-shard partial aggregates into `groups` in shard-index
  // order — deterministic regardless of which worker ran which shard.
  auto merge_shards = [&](std::vector<GroupMap>& shard_groups) {
    for (GroupMap& shard : shard_groups) {
      for (auto& [key, partial] : shard) {
        Accumulator& acc = group_slot(groups, key);
        acc.count_weight += partial.count_weight;
        for (size_t i = 0; i < agg_items.size(); ++i) {
          acc.weighted_sums[i] += partial.weighted_sums[i];
          acc.weight_totals[i] += partial.weight_totals[i];
        }
      }
    }
  };

  if (tables.size() == 1) {
    const data::Table& t0 = *tables[0].table;
    const size_t num_rows = t0.num_rows();
    if (pool != nullptr && num_rows >= 2 * kShardRows) {
      // Sharded scan: each shard folds its row range into a private group
      // map (only const reads of shared state), then shards merge in index
      // order.
      const size_t num_shards = (num_rows + kShardRows - 1) / kShardRows;
      std::vector<GroupMap> shard_groups(num_shards);
      pool->ParallelFor(0, num_shards, [&](size_t s) {
        const size_t lo = s * kShardRows;
        const size_t hi = std::min(num_rows, lo + kShardRows);
        for (size_t r = lo; r < hi; ++r) {
          if (!passes(0, r)) continue;
          accumulate(shard_groups[s], {r}, t0.weight(r));
        }
      });
      merge_shards(shard_groups);
    } else {
      for (size_t r = 0; r < num_rows; ++r) {
        if (!passes(0, r)) continue;
        accumulate(groups, {r}, t0.weight(r));
      }
    }
  } else {
    // Hash join: build on table 0, probe with table 1. Keys are label
    // strings so tables with different schemas still join correctly.
    const data::Table& t0 = *tables[0].table;
    const data::Table& t1 = *tables[1].table;
    std::unordered_map<std::string, std::vector<size_t>> build;
    for (size_t r = 0; r < t0.num_rows(); ++r) {
      if (!passes(0, r)) continue;
      std::string key;
      for (const auto& [lhs, rhs] : joins) {
        key += t0.schema()->domain(lhs.attr).Label(t0.Get(r, lhs.attr));
        key += '\x1f';
      }
      build[key].push_back(r);
    }
    // Probe with table 1. The build side stays sequential (its map is
    // shared read-only by every prober); the probe side shards by fixed
    // row ranges like the single-table scan — each shard probes into a
    // private group map over const state, then shards merge in index
    // order, so the answer is bitwise identical at any pool size.
    auto probe_range = [&](GroupMap& into, size_t lo, size_t hi) {
      for (size_t r1 = lo; r1 < hi; ++r1) {
        if (!passes(1, r1)) continue;
        std::string key;
        for (const auto& [lhs, rhs] : joins) {
          key += t1.schema()->domain(rhs.attr).Label(t1.Get(r1, rhs.attr));
          key += '\x1f';
        }
        auto it = build.find(key);
        if (it == build.end()) continue;
        for (size_t r0 : it->second) {
          accumulate(into, {r0, r1}, t0.weight(r0) * t1.weight(r1));
        }
      }
    };
    const size_t probe_rows = t1.num_rows();
    if (pool != nullptr && probe_rows >= 2 * kShardRows) {
      const size_t num_shards = (probe_rows + kShardRows - 1) / kShardRows;
      std::vector<GroupMap> shard_groups(num_shards);
      pool->ParallelFor(0, num_shards, [&](size_t s) {
        const size_t lo = s * kShardRows;
        probe_range(shard_groups[s], lo,
                    std::min(probe_rows, lo + kShardRows));
      });
      merge_shards(shard_groups);
    } else {
      probe_range(groups, 0, probe_rows);
    }
  }

  // Global aggregates (no GROUP BY) always yield exactly one row, even
  // when no input rows qualify.
  if (group_columns.empty() && groups.empty()) {
    Accumulator zero;
    zero.weighted_sums.assign(agg_items.size(), 0.0);
    zero.weight_totals.assign(agg_items.size(), 0.0);
    groups.emplace(std::vector<std::string>{}, std::move(zero));
  }

  // --- Materialize rows (std::map keeps them sorted by group key). ---
  for (auto& [key, acc] : groups) {
    ResultRow row;
    row.group = key;
    for (size_t i = 0; i < agg_items.size(); ++i) {
      switch (agg_items[i].func) {
        case AggFunc::kCount:
          row.values.push_back(acc.count_weight);
          break;
        case AggFunc::kSum:
          row.values.push_back(acc.weighted_sums[i]);
          break;
        case AggFunc::kAvg:
          row.values.push_back(acc.weight_totals[i] > 0
                                   ? acc.weighted_sums[i] / acc.weight_totals[i]
                                   : 0.0);
          break;
        case AggFunc::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

// ---------------------------------------------------------------------
// Vectorized path: selection vectors, packed code keys, flat aggregation.
//
// Bitwise identity with the reference path holds because per-group float
// sums depend only on (a) row iteration order within a shard, (b) the
// shard layout, and (c) the shard-index merge order — never on how the
// group container orders its keys, since distinct groups accumulate into
// disjoint slots. All three are identical here, and groups sort by their
// decoded labels at materialization, matching the reference's ordered
// map. Codes must be valid for their domains (Domain::Label's CHECK
// precondition, same as the reference).
// ---------------------------------------------------------------------

/// splitmix64 finalizer — mixes packed keys before open addressing.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Flat per-group accumulators keyed by a packed uint64 group key: open
/// addressing with linear probing over (key, group-index) slot arrays,
/// accumulator blocks of `stride` doubles appended in first-touch order.
/// No per-row or per-group heap allocation beyond the amortized array
/// growth.
class PackedGroupTable {
 public:
  explicit PackedGroupTable(size_t stride) : stride_(stride) { Rehash(16); }

  void Reserve(size_t groups) {
    keys_.reserve(groups);
    acc_.reserve(groups * stride_);
    size_t cap = 16;
    while (cap * 7 < groups * 10) cap <<= 1;
    if (cap > slot_keys_.size()) Rehash(cap);
  }

  /// The group's accumulator block, zero-initialized on first touch.
  double* Slot(uint64_t key) {
    size_t i = MixKey(key) & mask_;
    while (true) {
      const uint32_t g = slot_groups_[i];
      if (g == kEmpty) break;
      if (slot_keys_[i] == key) return acc_.data() + g * stride_;
      i = (i + 1) & mask_;
    }
    if ((keys_.size() + 1) * 10 > slot_keys_.size() * 7) {
      Rehash(slot_keys_.size() * 2);
      i = MixKey(key) & mask_;
      while (slot_groups_[i] != kEmpty) i = (i + 1) & mask_;
    }
    const uint32_t g = static_cast<uint32_t>(keys_.size());
    slot_keys_[i] = key;
    slot_groups_[i] = g;
    keys_.push_back(key);
    acc_.resize(acc_.size() + stride_, 0.0);
    return acc_.data() + g * stride_;
  }

  size_t num_groups() const { return keys_.size(); }
  uint64_t key(size_t g) const { return keys_[g]; }
  const double* acc(size_t g) const { return acc_.data() + g * stride_; }

  /// Adds `other`'s partials group-by-group (in its first-touch order;
  /// per-group arithmetic is order-independent across groups).
  void MergeFrom(const PackedGroupTable& other) {
    for (size_t g = 0; g < other.num_groups(); ++g) {
      double* dst = Slot(other.key(g));
      const double* src = other.acc(g);
      for (size_t k = 0; k < stride_; ++k) dst[k] += src[k];
    }
  }

 private:
  static constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();

  void Rehash(size_t capacity) {
    slot_keys_.assign(capacity, 0);
    slot_groups_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
    for (size_t g = 0; g < keys_.size(); ++g) {
      size_t i = MixKey(keys_[g]) & mask_;
      while (slot_groups_[i] != kEmpty) i = (i + 1) & mask_;
      slot_keys_[i] = keys_[g];
      slot_groups_[i] = static_cast<uint32_t>(g);
    }
  }

  size_t stride_;
  size_t mask_ = 0;
  std::vector<uint64_t> slot_keys_;
  std::vector<uint32_t> slot_groups_;
  std::vector<uint64_t> keys_;  // first-touch order
  std::vector<double> acc_;     // num_groups() * stride_
};

/// Small-array fallback when the group key widths exceed 64 bits: the
/// same flat accumulator blocks, indexed by TupleKey.
class WideGroupTable {
 public:
  explicit WideGroupTable(size_t stride) : stride_(stride) {}

  double* Slot(const data::TupleKey& key) {
    auto [it, inserted] =
        index_.try_emplace(key, static_cast<uint32_t>(keys_.size()));
    if (inserted) {
      keys_.push_back(key);
      acc_.resize(acc_.size() + stride_, 0.0);
    }
    return acc_.data() + it->second * stride_;
  }

  size_t num_groups() const { return keys_.size(); }
  const data::TupleKey& key(size_t g) const { return keys_[g]; }
  const double* acc(size_t g) const { return acc_.data() + g * stride_; }

  void MergeFrom(const WideGroupTable& other) {
    for (size_t g = 0; g < other.num_groups(); ++g) {
      double* dst = Slot(other.key(g));
      const double* src = other.acc(g);
      for (size_t k = 0; k < stride_; ++k) dst[k] += src[k];
    }
  }

 private:
  size_t stride_;
  std::unordered_map<data::TupleKey, uint32_t, data::TupleKeyHash> index_;
  std::vector<data::TupleKey> keys_;  // first-touch order
  std::vector<double> acc_;
};

/// A filter compiled for the SIMD kernels: raw code column plus the match
/// table re-encoded as uint8 and padded by simd::kMatchPadBytes (the AVX2
/// path gathers 32-bit lanes from it). The reference path keeps the
/// original unpadded Filter::code_matches untouched.
struct VecFilter {
  const data::ValueCode* col = nullptr;
  std::vector<uint8_t> match;
  uint32_t domain_size = 0;
};

/// Per-query vectorized context: the kernel table, raw column pointers,
/// per-table compiled filters, the group-key codec, and the flat
/// accumulator layout [count, sum_0, total_0, ...].
struct VecContext {
  const simd::Kernels* kernels = nullptr;
  size_t stride = 1;
  bool group_packed = true;
  std::vector<VecFilter> filters[2];  // indexed by table position
  data::PackedKeyCodec gcodec;
  std::vector<const data::ValueCode*> gcols;
  std::vector<uint8_t> gtables;
  std::vector<const data::Domain*> gdomains;

  struct AggCol {
    const data::ValueCode* col = nullptr;
    const double* numeric = nullptr;
    uint32_t domain_size = 0;
    uint8_t table = 0;
    bool is_count = true;
  };
  std::vector<AggCol> aggs;

  /// One row's contribution; rows[t] is table t's current row. The add
  /// order per slot matches the reference Accumulator exactly. Codes must
  /// be valid for their domains — the reference path crashes loudly on a
  /// stray code (Domain::Label's CHECK); here the asserts give debug
  /// builds the same crash parity at zero release cost.
  void Update(double* acc, const size_t* rows, double w) const {
    acc[0] += w;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggCol& a = aggs[i];
      if (a.is_count) continue;
      const uint32_t code = static_cast<uint32_t>(a.col[rows[a.table]]);
      assert(code < a.domain_size);
      const double v = a.numeric[code];
      if (std::isnan(v)) continue;
      acc[2 * i + 1] += w * v;
      acc[2 * i + 2] += w;
    }
  }

  uint64_t PackedKeyOf(const size_t* rows) const {
    uint64_t key = 0;
    for (size_t j = 0; j < gcols.size(); ++j) {
      const uint32_t code =
          static_cast<uint32_t>(gcols[j][rows[gtables[j]]]);
      assert(code < gdomains[j]->size());
      key |= static_cast<uint64_t>(code) << gcodec.shift(j);
    }
    return key;
  }

  void WideKeyOf(const size_t* rows, data::TupleKey& buf) const {
    buf.clear();
    for (size_t j = 0; j < gcols.size(); ++j) {
      const data::ValueCode code = gcols[j][rows[gtables[j]]];
      assert(code >= 0 &&
             static_cast<size_t>(code) < gdomains[j]->size());
      buf.push_back(code);
    }
  }
};

/// Adapters giving the scan/join kernels one Slot(rows) shape for both
/// group-key representations.
struct PackedGroups {
  const VecContext* ctx;
  PackedGroupTable table;
  PackedGroups(const VecContext& c, size_t reserve)
      : ctx(&c), table(c.stride) {
    if (reserve > 0) table.Reserve(reserve);
  }
  double* Slot(const size_t* rows) {
    return table.Slot(ctx->PackedKeyOf(rows));
  }
  void MergeFrom(const PackedGroups& o) { table.MergeFrom(o.table); }
  size_t num_groups() const { return table.num_groups(); }
  const double* acc(size_t g) const { return table.acc(g); }
  void Labels(size_t g, std::vector<std::string>& out) const {
    const uint64_t key = table.key(g);
    for (size_t j = 0; j < ctx->gdomains.size(); ++j) {
      out.push_back(ctx->gdomains[j]->Label(ctx->gcodec.Component(key, j)));
    }
  }
};

struct WideGroups {
  const VecContext* ctx;
  WideGroupTable table;
  data::TupleKey buf;
  WideGroups(const VecContext& c, size_t /*reserve*/)
      : ctx(&c), table(c.stride) {}
  double* Slot(const size_t* rows) {
    ctx->WideKeyOf(rows, buf);
    return table.Slot(buf);
  }
  void MergeFrom(const WideGroups& o) { table.MergeFrom(o.table); }
  size_t num_groups() const { return table.num_groups(); }
  const double* acc(size_t g) const { return table.acc(g); }
  void Labels(size_t g, std::vector<std::string>& out) const {
    const data::TupleKey& key = table.key(g);
    for (size_t j = 0; j < ctx->gdomains.size(); ++j) {
      out.push_back(ctx->gdomains[j]->Label(key[j]));
    }
  }
};

/// Evaluates every filter on table `t` over rows [lo, hi) into `sel`
/// (ascending row ids): the first filter scans its code column with the
/// FilterScan kernel, each further filter compacts the survivors in
/// place with FilterCompact — one column pass per filter instead of a
/// filter-list walk per row. `filter_rows` counts rows evaluated, once
/// per filter applied.
void BuildSelection(const VecContext& ctx, size_t t, size_t lo, size_t hi,
                    std::vector<uint32_t>& sel, uint64_t& filter_rows) {
  const std::vector<VecFilter>& filters = ctx.filters[t];
  if (filters.empty()) {  // no filters on this table: all rows pass
    sel.resize(hi - lo);
    std::iota(sel.begin(), sel.end(), static_cast<uint32_t>(lo));
    return;
  }
  sel.resize(hi - lo);  // FilterScan needs full range capacity
  const VecFilter& f0 = filters[0];
  size_t n = ctx.kernels->FilterScan(f0.col, static_cast<uint32_t>(lo),
                                     static_cast<uint32_t>(hi),
                                     f0.match.data(), f0.domain_size,
                                     sel.data());
  filter_rows += hi - lo;
  for (size_t i = 1; i < filters.size(); ++i) {
    const VecFilter& f = filters[i];
    filter_rows += n;
    n = ctx.kernels->FilterCompact(f.col, f.match.data(), f.domain_size,
                                   sel.data(), n);
  }
  sel.resize(n);
}

/// Reusable per-shard gather buffers for the batched accumulate.
struct VecScratch {
  std::vector<uint64_t> keys;
  std::vector<double> weights;
  std::vector<std::vector<double>> values;  // per agg item (count: unused)
};

/// Batched accumulate for packed group keys: pack every selected row's
/// group key (GatherPack per column), gather the weights and each SUM/AVG
/// column's numeric values, then fold rows into their group slots in
/// ascending row order with exactly the reference Accumulator's add
/// sequence — the gathers move bits, never arithmetic, so this is
/// bitwise identical to the per-row path. Returns rows batched through
/// the gather kernels.
size_t AccumulateRows(const VecContext& ctx, PackedGroups& groups,
                      const uint32_t* sel, size_t n, const double* weights,
                      VecScratch& scratch) {
  const simd::Kernels& k = *ctx.kernels;
  scratch.keys.resize(n);
  if (ctx.gcols.empty()) {
    std::fill(scratch.keys.begin(), scratch.keys.end(), 0);
  } else {
    for (size_t j = 0; j < ctx.gcols.size(); ++j) {
      k.GatherPack(ctx.gcols[j], sel, n, ctx.gcodec.shift(j),
                   scratch.keys.data(), j == 0);
    }
  }
  scratch.weights.resize(n);
  k.GatherDoubles(weights, sel, n, scratch.weights.data());
  scratch.values.resize(ctx.aggs.size());
  for (size_t a = 0; a < ctx.aggs.size(); ++a) {
    if (ctx.aggs[a].is_count) continue;
    scratch.values[a].resize(n);
    k.GatherNumeric(ctx.aggs[a].col, sel, ctx.aggs[a].numeric, n,
                    scratch.values[a].data());
  }
  for (size_t i = 0; i < n; ++i) {
    double* acc = groups.table.Slot(scratch.keys[i]);
    const double w = scratch.weights[i];
    acc[0] += w;
    for (size_t a = 0; a < ctx.aggs.size(); ++a) {
      if (ctx.aggs[a].is_count) continue;
      const double v = scratch.values[a][i];
      if (std::isnan(v)) continue;
      acc[2 * a + 1] += w * v;
      acc[2 * a + 2] += w;
    }
  }
  return n;
}

/// Wide-key (TupleKey) fallback: per-row accumulate, no gather batching.
size_t AccumulateRows(const VecContext& ctx, WideGroups& groups,
                      const uint32_t* sel, size_t n, const double* weights,
                      VecScratch& /*scratch*/) {
  for (size_t i = 0; i < n; ++i) {
    const size_t rows[2] = {sel[i], 0};
    ctx.Update(groups.Slot(rows), rows, weights[sel[i]]);
  }
  return 0;
}

/// Shared cancellation state of one execution: the per-shard poll point
/// of cooperative cancellation. Shards call Admit() before doing work —
/// the first shard to observe a fired token records its status (under a
/// mutex, so TSan-clean) and flips the relaxed fast-path flag; every
/// later shard then skips its body without re-polling the clock. A null
/// token makes Admit() a single relaxed load.
struct CancelScope {
  const util::CancelToken* token = nullptr;
  std::atomic<bool> fired{false};
  std::mutex mu;
  Status status = Status::OK();

  bool Admit() {
    if (token == nullptr) return true;
    if (fired.load(std::memory_order_relaxed)) return false;
    Status now = token->Check();
    if (now.ok()) return true;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (status.ok()) status = std::move(now);
    }
    fired.store(true, std::memory_order_relaxed);
    return false;
  }

  /// The recorded failure, once every shard has retired (no concurrent
  /// Admit racing the read).
  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mu);
    return status;
  }
};

/// Single-table GROUP BY scan. Sequential execution (pool-less or small
/// table) chunks rows only to bound the selection buffer — accumulation
/// stays in global row order into `out`, exactly like the reference's
/// row loop. Pooled execution on >= 2 shards gives each shard a private
/// group table and merges them in shard-index order, reproducing the
/// reference's summation tree.
template <typename GroupsT>
void ScanSingleTable(const VecContext& ctx, const BoundQuery& q,
                     util::ThreadPool* pool, size_t kShardRows,
                     size_t group_reserve, GroupsT& out,
                     ExecutorStats& stats, CancelScope& cancel) {
  const data::Table& t0 = *q.tables[0].table;
  const size_t num_rows = t0.num_rows();
  const double* weights = t0.weights().data();
  stats.rows_scanned += num_rows;
  if (pool != nullptr && num_rows >= 2 * kShardRows) {
    const size_t num_shards = (num_rows + kShardRows - 1) / kShardRows;
    const size_t shard_reserve = std::min(group_reserve, kShardRows);
    std::vector<GroupsT> shard_groups;
    shard_groups.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shard_groups.emplace_back(ctx, shard_reserve);
    }
    std::vector<ExecutorStats> shard_stats(num_shards);
    pool->ParallelFor(0, num_shards, [&](size_t s) {
      if (!cancel.Admit()) return;
      const size_t lo = s * kShardRows;
      const size_t hi = std::min(num_rows, lo + kShardRows);
      std::vector<uint32_t> sel;
      VecScratch scratch;
      ExecutorStats& local = shard_stats[s];
      local.shards_executed += 1;
      BuildSelection(ctx, 0, lo, hi, sel, local.filter_kernel_rows);
      local.rows_passed += sel.size();
      local.gather_kernel_rows += AccumulateRows(
          ctx, shard_groups[s], sel.data(), sel.size(), weights, scratch);
    });
    for (const GroupsT& shard : shard_groups) out.MergeFrom(shard);
    for (const ExecutorStats& s : shard_stats) stats += s;
  } else {
    std::vector<uint32_t> sel;
    VecScratch scratch;
    sel.reserve(std::min(num_rows, kShardRows));
    for (size_t lo = 0; lo < num_rows; lo += kShardRows) {
      if (!cancel.Admit()) return;
      const size_t hi = std::min(num_rows, lo + kShardRows);
      stats.shards_executed += 1;
      BuildSelection(ctx, 0, lo, hi, sel, stats.filter_kernel_rows);
      stats.rows_passed += sel.size();
      stats.gather_kernel_rows +=
          AccumulateRows(ctx, out, sel.data(), sel.size(), weights, scratch);
    }
  }
}

/// Per-join-column probe codes, gathered (and domain-translated) for one
/// selection batch; -1 marks a probe label with no build-side code.
using ProbeCodes = std::vector<std::vector<data::ValueCode>>;

/// Code-native join-key maker backed by a packed uint64. `translations`
/// bridge probe codes into the build side's code space when the two
/// domains differ (empty vector = same Domain object, codes agree).
struct PackedJoinKey {
  using Key = uint64_t;
  using Map = std::unordered_map<uint64_t, std::vector<uint32_t>>;
  data::PackedKeyCodec codec;
  std::vector<const data::ValueCode*> build_cols;
  std::vector<const data::ValueCode*> probe_cols;
  std::vector<std::vector<data::ValueCode>> translations;

  /// Batched build insert: GatherPack the selected rows' keys (one kernel
  /// pass per join column), then append each row to its key's list in
  /// selection order. Returns rows batched through the gather kernels.
  size_t InsertBuildRows(const simd::Kernels& k, const uint32_t* sel,
                         size_t n, std::vector<uint64_t>& keybuf,
                         Map& map) const {
    keybuf.resize(n);
    for (size_t j = 0; j < build_cols.size(); ++j) {
      k.GatherPack(build_cols[j], sel, n, codec.shift(j), keybuf.data(),
                   j == 0);
    }
    for (size_t i = 0; i < n; ++i) map[keybuf[i]].push_back(sel[i]);
    return n;
  }

  /// Batched probe-code gather + per-domain translation into `codes`.
  void GatherProbe(const simd::Kernels& k, const uint32_t* sel, size_t n,
                   ProbeCodes& codes) const {
    codes.resize(probe_cols.size());
    for (size_t j = 0; j < probe_cols.size(); ++j) {
      codes[j].resize(n);
      k.GatherCodes(probe_cols[j], sel, n, codes[j].data());
      if (!translations[j].empty()) {
        k.TranslateCodes(codes[j].data(), translations[j].data(), n,
                         codes[j].data());
      }
    }
  }

  /// Assembles row i's probe key from the gathered codes; false when a
  /// probe label has no code on the build side (no match).
  bool ProbeKeyAt(const ProbeCodes& codes, size_t i, Key& key) const {
    key = 0;
    for (size_t j = 0; j < codes.size(); ++j) {
      const data::ValueCode c = codes[j][i];
      if (c < 0) return false;
      key |= static_cast<uint64_t>(static_cast<uint32_t>(c))
             << codec.shift(j);
    }
    return true;
  }
};

/// TupleKey fallback for join keys wider than 64 bits. Probe codes still
/// gather/translate through the kernels; key assembly and build inserts
/// stay per-row.
struct WideJoinKey {
  using Key = data::TupleKey;
  using Map =
      std::unordered_map<data::TupleKey, std::vector<uint32_t>,
                         data::TupleKeyHash>;
  std::vector<const data::ValueCode*> build_cols;
  std::vector<const data::ValueCode*> probe_cols;
  std::vector<std::vector<data::ValueCode>> translations;

  size_t InsertBuildRows(const simd::Kernels& /*k*/, const uint32_t* sel,
                         size_t n, std::vector<uint64_t>& /*keybuf*/,
                         Map& map) const {
    Key key;
    for (size_t i = 0; i < n; ++i) {
      key.clear();
      for (size_t j = 0; j < build_cols.size(); ++j) {
        key.push_back(build_cols[j][sel[i]]);
      }
      map[key].push_back(sel[i]);
    }
    return 0;
  }

  void GatherProbe(const simd::Kernels& k, const uint32_t* sel, size_t n,
                   ProbeCodes& codes) const {
    codes.resize(probe_cols.size());
    for (size_t j = 0; j < probe_cols.size(); ++j) {
      codes[j].resize(n);
      k.GatherCodes(probe_cols[j], sel, n, codes[j].data());
      if (!translations[j].empty()) {
        k.TranslateCodes(codes[j].data(), translations[j].data(), n,
                         codes[j].data());
      }
    }
  }

  bool ProbeKeyAt(const ProbeCodes& codes, size_t i, Key& key) const {
    key.clear();
    for (size_t j = 0; j < codes.size(); ++j) {
      const data::ValueCode c = codes[j][i];
      if (c < 0) return false;
      key.push_back(c);
    }
    return true;
  }
};

/// Hash join on code-native keys. Large build sides shard across the
/// pool: shard maps merge by appending row lists in shard-index order, so
/// every key's rows stay in ascending row order — the build table's
/// content (and with it the probe-side accumulation order) is identical
/// to a sequential build at any pool size. The probe side shards by row
/// range like the single-table scan.
template <typename JoinT, typename GroupsT>
void JoinTables(const VecContext& ctx, const BoundQuery& q,
                const JoinT& join, util::ThreadPool* pool, size_t kShardRows,
                size_t group_reserve, GroupsT& out, ExecutorStats& stats,
                CancelScope& cancel) {
  const data::Table& t0 = *q.tables[0].table;
  const data::Table& t1 = *q.tables[1].table;
  const double* w0 = t0.weights().data();
  const double* w1 = t1.weights().data();

  // --- Build side. ---
  const size_t build_rows = t0.num_rows();
  stats.rows_scanned += build_rows;
  typename JoinT::Map build;
  if (pool != nullptr && build_rows >= 2 * kShardRows) {
    const size_t num_shards = (build_rows + kShardRows - 1) / kShardRows;
    std::vector<typename JoinT::Map> shard_maps(num_shards);
    std::vector<ExecutorStats> shard_stats(num_shards);
    pool->ParallelFor(0, num_shards, [&](size_t s) {
      if (!cancel.Admit()) return;
      const size_t lo = s * kShardRows;
      const size_t hi = std::min(build_rows, lo + kShardRows);
      std::vector<uint32_t> sel;
      std::vector<uint64_t> keybuf;
      ExecutorStats& local = shard_stats[s];
      local.shards_executed += 1;
      BuildSelection(ctx, 0, lo, hi, sel, local.filter_kernel_rows);
      local.rows_passed += sel.size();
      local.join_build_rows += sel.size();
      local.gather_kernel_rows += join.InsertBuildRows(
          *ctx.kernels, sel.data(), sel.size(), keybuf, shard_maps[s]);
    });
    for (typename JoinT::Map& shard : shard_maps) {
      for (auto& [key, rows] : shard) {
        auto& dst = build[key];
        dst.insert(dst.end(), rows.begin(), rows.end());
      }
    }
    for (const ExecutorStats& s : shard_stats) stats += s;
  } else {
    std::vector<uint32_t> sel;
    std::vector<uint64_t> keybuf;
    for (size_t lo = 0; lo < build_rows; lo += kShardRows) {
      if (!cancel.Admit()) return;
      const size_t hi = std::min(build_rows, lo + kShardRows);
      stats.shards_executed += 1;
      BuildSelection(ctx, 0, lo, hi, sel, stats.filter_kernel_rows);
      stats.rows_passed += sel.size();
      stats.join_build_rows += sel.size();
      stats.gather_kernel_rows += join.InsertBuildRows(
          *ctx.kernels, sel.data(), sel.size(), keybuf, build);
    }
  }

  // --- Probe side. ---
  const size_t probe_rows = t1.num_rows();
  stats.rows_scanned += probe_rows;
  auto probe_range = [&](GroupsT& groups, size_t lo, size_t hi,
                         ExecutorStats& local) {
    std::vector<uint32_t> sel;
    ProbeCodes codes;
    BuildSelection(ctx, 1, lo, hi, sel, local.filter_kernel_rows);
    local.rows_passed += sel.size();
    local.join_probe_rows += sel.size();
    join.GatherProbe(*ctx.kernels, sel.data(), sel.size(), codes);
    local.gather_kernel_rows += sel.size();
    typename JoinT::Key key{};
    for (size_t i = 0; i < sel.size(); ++i) {
      if (!join.ProbeKeyAt(codes, i, key)) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      const uint32_t r1 = sel[i];
      const double weight1 = w1[r1];
      for (const uint32_t r0 : it->second) {
        const size_t rows[2] = {r0, r1};
        ctx.Update(groups.Slot(rows), rows, w0[r0] * weight1);
      }
    }
  };
  if (pool != nullptr && probe_rows >= 2 * kShardRows) {
    const size_t num_shards = (probe_rows + kShardRows - 1) / kShardRows;
    const size_t shard_reserve = std::min(group_reserve, kShardRows);
    std::vector<GroupsT> shard_groups;
    shard_groups.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shard_groups.emplace_back(ctx, shard_reserve);
    }
    std::vector<ExecutorStats> shard_stats(num_shards);
    pool->ParallelFor(0, num_shards, [&](size_t s) {
      if (!cancel.Admit()) return;
      const size_t lo = s * kShardRows;
      shard_stats[s].shards_executed += 1;
      probe_range(shard_groups[s], lo, std::min(probe_rows, lo + kShardRows),
                  shard_stats[s]);
    });
    for (const GroupsT& shard : shard_groups) out.MergeFrom(shard);
    for (const ExecutorStats& s : shard_stats) stats += s;
  } else {
    for (size_t lo = 0; lo < probe_rows; lo += kShardRows) {
      if (!cancel.Admit()) return;
      stats.shards_executed += 1;
      probe_range(out, lo, std::min(probe_rows, lo + kShardRows), stats);
    }
  }
}

/// Decodes, sorts, and emits the groups. Sorting the decoded label
/// vectors reproduces the reference's std::map<vector<string>> order
/// exactly (labels are unique per domain, so code order != label order
/// is corrected here and only here).
template <typename GroupsT>
QueryResult MaterializeGroups(const GroupsT& groups, const BoundQuery& q) {
  QueryResult result;
  result.group_names = q.group_names;
  result.value_names = q.value_names;
  const size_t num_aggs = q.agg_items.size();

  // Global aggregates (no GROUP BY) always yield exactly one row, even
  // when no input rows qualify.
  if (q.group_columns.empty() && groups.num_groups() == 0) {
    ResultRow row;
    row.values.assign(num_aggs, 0.0);
    result.rows.push_back(std::move(row));
    return result;
  }

  std::vector<std::pair<std::vector<std::string>, size_t>> order;
  order.reserve(groups.num_groups());
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    std::vector<std::string> labels;
    labels.reserve(q.group_columns.size());
    groups.Labels(g, labels);
    order.emplace_back(std::move(labels), g);
  }
  std::sort(order.begin(), order.end());  // keys are distinct: total order

  result.rows.reserve(order.size());
  for (auto& [labels, g] : order) {
    const double* acc = groups.acc(g);
    ResultRow row;
    row.group = std::move(labels);
    row.values.reserve(num_aggs);
    for (size_t i = 0; i < num_aggs; ++i) {
      switch (q.agg_items[i].func) {
        case AggFunc::kCount:
          row.values.push_back(acc[0]);
          break;
        case AggFunc::kSum:
          row.values.push_back(acc[2 * i + 1]);
          break;
        case AggFunc::kAvg:
          row.values.push_back(
              acc[2 * i + 2] > 0 ? acc[2 * i + 1] / acc[2 * i + 2] : 0.0);
          break;
        case AggFunc::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

QueryResult ExecuteVectorized(const BoundQuery& q, const simd::Kernels& k,
                              util::ThreadPool* pool, size_t kShardRows,
                              ExecutorStats& stats, CancelScope& cancel) {
  VecContext ctx;
  ctx.kernels = &k;
  ctx.stride = 1 + 2 * q.agg_items.size();
  // Compile the filters for the kernels: uint8 match tables padded by
  // kMatchPadBytes (the bound Filter stays unpadded for the reference
  // path).
  for (const Filter& f : q.filters) {
    VecFilter vf;
    vf.col = q.tables[f.column.table].table->column(f.column.attr).data();
    vf.domain_size = static_cast<uint32_t>(f.code_matches.size());
    vf.match.reserve(f.code_matches.size() + simd::kMatchPadBytes);
    vf.match.assign(f.code_matches.begin(), f.code_matches.end());
    vf.match.resize(f.code_matches.size() + simd::kMatchPadBytes, 0);
    ctx.filters[f.column.table].push_back(std::move(vf));
  }
  ctx.aggs.resize(q.agg_items.size());
  for (size_t i = 0; i < q.agg_items.size(); ++i) {
    VecContext::AggCol& a = ctx.aggs[i];
    a.is_count = q.agg_items[i].func == AggFunc::kCount;
    if (!a.is_count) {
      const BoundColumn& bc = q.agg_items[i].column;
      a.col = q.tables[bc.table].table->column(bc.attr).data();
      a.numeric = q.numeric_cache[i].data();
      a.domain_size = static_cast<uint32_t>(q.numeric_cache[i].size());
      a.table = static_cast<uint8_t>(bc.table);
    }
  }
  std::vector<size_t> gsizes;
  for (const BoundColumn& gc : q.group_columns) {
    const data::Domain& domain =
        q.tables[gc.table].table->schema()->domain(gc.attr);
    ctx.gcols.push_back(q.tables[gc.table].table->column(gc.attr).data());
    ctx.gtables.push_back(static_cast<uint8_t>(gc.table));
    ctx.gdomains.push_back(&domain);
    gsizes.push_back(domain.size());
  }
  ctx.gcodec = data::PackedKeyCodec(gsizes);
  ctx.group_packed = ctx.gcodec.packable();

  // Reserve the group table from the domain cardinality product where
  // that is cheap to know and small enough to be worth pre-sizing.
  size_t group_reserve = 1;
  if (ctx.group_packed) {
    for (const data::Domain* d : ctx.gdomains) {
      group_reserve *= std::max<size_t>(1, d->size());
      if (group_reserve > (1u << 16)) {
        group_reserve = 1u << 16;
        break;
      }
    }
  }

  if (q.tables.size() == 1) {
    if (ctx.group_packed) {
      PackedGroups groups(ctx, group_reserve);
      ScanSingleTable(ctx, q, pool, kShardRows, group_reserve, groups, stats,
                      cancel);
      return MaterializeGroups(groups, q);
    }
    WideGroups groups(ctx, group_reserve);
    ScanSingleTable(ctx, q, pool, kShardRows, group_reserve, groups, stats,
                    cancel);
    return MaterializeGroups(groups, q);
  }

  // --- Join: compile the key columns and domain translations. ---
  const data::Table& t0 = *q.tables[0].table;
  const data::Table& t1 = *q.tables[1].table;
  std::vector<size_t> jsizes;
  std::vector<const data::ValueCode*> build_cols;
  std::vector<const data::ValueCode*> probe_cols;
  std::vector<std::vector<data::ValueCode>> translations;
  for (const auto& [lhs, rhs] : q.joins) {
    const data::Domain& d0 = t0.schema()->domain(lhs.attr);
    const data::Domain& d1 = t1.schema()->domain(rhs.attr);
    jsizes.push_back(d0.size());
    build_cols.push_back(t0.column(lhs.attr).data());
    probe_cols.push_back(t1.column(rhs.attr).data());
    // Same Domain object (e.g. a self-join): codes already agree.
    translations.push_back(&d0 == &d1 ? std::vector<data::ValueCode>{}
                                      : d1.TranslateTo(d0));
  }
  data::PackedKeyCodec jcodec(jsizes);

  auto run_join = [&](const auto& join) -> QueryResult {
    if (ctx.group_packed) {
      PackedGroups groups(ctx, group_reserve);
      JoinTables(ctx, q, join, pool, kShardRows, group_reserve, groups,
                 stats, cancel);
      return MaterializeGroups(groups, q);
    }
    WideGroups groups(ctx, group_reserve);
    JoinTables(ctx, q, join, pool, kShardRows, group_reserve, groups, stats,
               cancel);
    return MaterializeGroups(groups, q);
  };
  if (jcodec.packable()) {
    return run_join(PackedJoinKey{std::move(jcodec), std::move(build_cols),
                                  std::move(probe_cols),
                                  std::move(translations)});
  }
  return run_join(WideJoinKey{std::move(build_cols), std::move(probe_cols),
                              std::move(translations)});
}

}  // namespace

size_t AutoShardTargetBytes() {
  return util::CpuTopology::Host().ShardTargetBytes();
}

size_t ShardRowsEnvOverride() {
  if (const char* env = std::getenv("THEMIS_SHARD_ROWS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 0;
}

size_t ResolveShardRows(size_t requested, size_t bytes_per_row) {
  if (requested > 0) return requested;
  if (const size_t env = ShardRowsEnvOverride(); env > 0) return env;
  if (bytes_per_row == 0) return kDefaultShardRows;
  return AutoShardRows(bytes_per_row);
}

double NumericValueOfLabel(const std::string& label) {
  if (label.size() >= 2 && label.front() == '[' && label.back() == ')') {
    // Equi-width bucket label "[lo,hi)": midpoint.
    const size_t comma = label.find(',');
    if (comma != std::string::npos) {
      const double lo = std::strtod(label.c_str() + 1, nullptr);
      const double hi = std::strtod(label.c_str() + comma + 1, nullptr);
      return (lo + hi) / 2.0;
    }
  }
  char* end = nullptr;
  const double v = std::strtod(label.c_str(), &end);
  if (end == label.c_str() || end != label.c_str() + label.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v;
}

std::map<std::string, double> QueryResult::ValueMap(
    size_t value_index) const {
  std::map<std::string, double> out;
  for (const ResultRow& row : rows) {
    std::string key = Join(row.group, "|");
    if (value_index < row.values.size()) {
      out[key] = row.values[value_index];
    }
  }
  return out;
}

std::string QueryResult::ToString() const {
  std::ostringstream out;
  for (const auto& name : group_names) out << name << "\t";
  for (const auto& name : value_names) out << name << "\t";
  out << "\n";
  for (const ResultRow& row : rows) {
    for (const auto& g : row.group) out << g << "\t";
    for (double v : row.values) out << StrFormat("%.3f", v) << "\t";
    out << "\n";
  }
  return out.str();
}

Executor::Executor()
    : counters_(std::make_unique<StatCounters>()),
      env_shard_rows_(ShardRowsEnvOverride()),
      kernels_(&simd::KernelsFor(simd::FromEnv())) {}

void Executor::RegisterTable(const std::string& name,
                             const data::Table* table) {
  catalog_[name] = table;
}

Result<QueryResult> Executor::Query(const std::string& sql,
                                    util::ThreadPool* pool,
                                    size_t shard_rows,
                                    const util::CancelToken* cancel,
                                    obs::TraceContext* trace) const {
  THEMIS_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt, pool, shard_rows, cancel, trace);
}

Result<QueryResult> Executor::Execute(const SelectStatement& stmt,
                                      util::ThreadPool* pool,
                                      size_t shard_rows,
                                      const util::CancelToken* cancel,
                                      obs::TraceContext* trace) const {
  // Entry poll: an already-expired deadline (or a disconnected client)
  // unwinds before any shard runs, so small unsharded queries still honor
  // cancellation deterministically.
  {
    Status admit = util::CheckCancel(cancel);
    if (!admit.ok()) {
      counters_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
      return admit;
    }
  }
  THEMIS_ASSIGN_OR_RETURN(BoundQuery q, Bind(stmt, catalog_));
  const size_t kShardRows =
      ResolvedShardRowsFor(q, shard_rows, env_shard_rows_);
  // Row ids travel as uint32 through selection vectors and build tables,
  // and the AVX2 gathers index with *signed* 32-bit lanes, so rows must
  // stay below 2^31; a table beyond that (not reachable with in-memory
  // samples) takes the reference path, which carries size_t rows. That
  // path doesn't observe per-filter/join flow, so only the coarse
  // counters update.
  for (const BoundTable& bt : q.tables) {
    if (bt.table->num_rows() >
        static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
      obs::ScopedSpan span(trace, obs::Stage::kExecutorScan);
      QueryResult wide = ExecuteRowAtATime(q, pool, kShardRows);
      uint64_t scanned = 0;
      for (const BoundTable& scanned_table : q.tables) {
        scanned += scanned_table.table->num_rows();
      }
      counters_->rows_scanned.fetch_add(scanned, std::memory_order_relaxed);
      counters_->groups_emitted.fetch_add(wide.rows.size(),
                                          std::memory_order_relaxed);
      return wide;
    }
  }
  ExecutorStats local;
  CancelScope scope;
  scope.token = cancel;
  QueryResult result = [&] {
    // The shard-loop span: everything from the first filter kernel to the
    // sorted materialization, the executor's share of a request's
    // end-to-end latency in METRICS' stage histograms.
    obs::ScopedSpan span(trace, obs::Stage::kExecutorScan);
    return ExecuteVectorized(q, *kernels_, pool, kShardRows, local, scope);
  }();
  local.groups_emitted = result.rows.size();
  counters_->rows_scanned.fetch_add(local.rows_scanned,
                                    std::memory_order_relaxed);
  counters_->rows_passed.fetch_add(local.rows_passed,
                                   std::memory_order_relaxed);
  counters_->groups_emitted.fetch_add(local.groups_emitted,
                                      std::memory_order_relaxed);
  counters_->join_build_rows.fetch_add(local.join_build_rows,
                                       std::memory_order_relaxed);
  counters_->join_probe_rows.fetch_add(local.join_probe_rows,
                                       std::memory_order_relaxed);
  counters_->filter_kernel_rows.fetch_add(local.filter_kernel_rows,
                                          std::memory_order_relaxed);
  counters_->gather_kernel_rows.fetch_add(local.gather_kernel_rows,
                                          std::memory_order_relaxed);
  counters_->shards_executed.fetch_add(local.shards_executed,
                                       std::memory_order_relaxed);
  if (scope.fired.load(std::memory_order_relaxed)) {
    // Partial aggregates from the shards that did run are discarded — a
    // cancelled query answers with its status, never an incomplete table.
    counters_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
    return scope.TakeStatus();
  }
  return result;
}

Result<QueryResult> Executor::ExecuteReference(const SelectStatement& stmt,
                                               util::ThreadPool* pool,
                                               size_t shard_rows) const {
  THEMIS_ASSIGN_OR_RETURN(BoundQuery q, Bind(stmt, catalog_));
  // Same shard layout as Execute, so the two paths' pooled answers are
  // directly comparable bit for bit.
  return ExecuteRowAtATime(
      q, pool, ResolvedShardRowsFor(q, shard_rows, env_shard_rows_));
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.simd_backend = simd::BackendName(kernels_->backend);
  s.rows_scanned = counters_->rows_scanned.load(std::memory_order_relaxed);
  s.rows_passed = counters_->rows_passed.load(std::memory_order_relaxed);
  s.groups_emitted =
      counters_->groups_emitted.load(std::memory_order_relaxed);
  s.join_build_rows =
      counters_->join_build_rows.load(std::memory_order_relaxed);
  s.join_probe_rows =
      counters_->join_probe_rows.load(std::memory_order_relaxed);
  s.filter_kernel_rows =
      counters_->filter_kernel_rows.load(std::memory_order_relaxed);
  s.gather_kernel_rows =
      counters_->gather_kernel_rows.load(std::memory_order_relaxed);
  s.shards_executed =
      counters_->shards_executed.load(std::memory_order_relaxed);
  s.queries_cancelled =
      counters_->queries_cancelled.load(std::memory_order_relaxed);
  return s;
}

}  // namespace themis::sql
