#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sql/parser.h"
#include "util/string_util.h"

namespace themis::sql {

namespace {

/// A column reference resolved to (table position, attribute index).
struct BoundColumn {
  size_t table = 0;
  size_t attr = 0;
};

struct BoundTable {
  const data::Table* table = nullptr;
  std::string alias;
};

/// Per-row aggregate accumulators for one group.
struct Accumulator {
  double count_weight = 0;                 // Σ w (COUNT(*))
  std::vector<double> weighted_sums;       // Σ w·v per SUM/AVG item
  std::vector<double> weight_totals;       // Σ w per SUM/AVG item
};

using GroupMap = std::map<std::vector<std::string>, Accumulator>;

/// Default rows per scan shard. Never derived from the pool size, so the
/// shard layout — and with it the float summation order — depends only on
/// the table and the (fixed) shard size, keeping sharded results bitwise
/// identical across pool sizes.
constexpr size_t kDefaultShardRows = 8192;

}  // namespace

size_t ResolveShardRows(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("THEMIS_SHARD_ROWS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return kDefaultShardRows;
}

double NumericValueOfLabel(const std::string& label) {
  if (label.size() >= 2 && label.front() == '[' && label.back() == ')') {
    // Equi-width bucket label "[lo,hi)": midpoint.
    const size_t comma = label.find(',');
    if (comma != std::string::npos) {
      const double lo = std::strtod(label.c_str() + 1, nullptr);
      const double hi = std::strtod(label.c_str() + comma + 1, nullptr);
      return (lo + hi) / 2.0;
    }
  }
  char* end = nullptr;
  const double v = std::strtod(label.c_str(), &end);
  if (end == label.c_str() || end != label.c_str() + label.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v;
}

std::map<std::string, double> QueryResult::ValueMap(
    size_t value_index) const {
  std::map<std::string, double> out;
  for (const ResultRow& row : rows) {
    std::string key = Join(row.group, "|");
    if (value_index < row.values.size()) {
      out[key] = row.values[value_index];
    }
  }
  return out;
}

std::string QueryResult::ToString() const {
  std::ostringstream out;
  for (const auto& name : group_names) out << name << "\t";
  for (const auto& name : value_names) out << name << "\t";
  out << "\n";
  for (const ResultRow& row : rows) {
    for (const auto& g : row.group) out << g << "\t";
    for (double v : row.values) out << StrFormat("%.3f", v) << "\t";
    out << "\n";
  }
  return out.str();
}

void Executor::RegisterTable(const std::string& name,
                             const data::Table* table) {
  catalog_[name] = table;
}

Result<QueryResult> Executor::Query(const std::string& sql,
                                    util::ThreadPool* pool,
                                    size_t shard_rows) const {
  THEMIS_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt, pool, shard_rows);
}

Result<QueryResult> Executor::Execute(const SelectStatement& stmt,
                                      util::ThreadPool* pool,
                                      size_t shard_rows) const {
  const size_t kShardRows = ResolveShardRows(shard_rows);
  // --- Bind tables. ---
  if (stmt.tables.empty() || stmt.tables.size() > 2) {
    return Status::Unimplemented("only 1- and 2-table queries supported");
  }
  std::vector<BoundTable> tables;
  for (const TableRef& ref : stmt.tables) {
    auto it = catalog_.find(ref.name);
    if (it == catalog_.end()) {
      return Status::NotFound("no relation '" + ref.name + "' registered");
    }
    tables.push_back({it->second, ref.alias});
  }

  // --- Bind columns. ---
  auto bind = [&](const ColumnRef& ref) -> Result<BoundColumn> {
    BoundColumn bound;
    bool found = false;
    for (size_t t = 0; t < tables.size(); ++t) {
      if (!ref.table_alias.empty() &&
          !EqualsIgnoreCase(ref.table_alias, tables[t].alias)) {
        continue;
      }
      auto idx = tables[t].table->schema()->AttributeIndex(ref.column);
      if (idx.ok()) {
        if (found) {
          return Result<BoundColumn>(Status::InvalidArgument(
              "ambiguous column '" + ref.ToString() + "'"));
        }
        bound = {t, *idx};
        found = true;
      }
    }
    if (!found) {
      return Result<BoundColumn>(
          Status::NotFound("column '" + ref.ToString() + "' not found"));
    }
    return bound;
  };

  // --- Split predicates into per-table filters and join conditions. ---
  // For a filter, precompute a per-domain-code match mask so row evaluation
  // is a single array lookup.
  struct Filter {
    BoundColumn column;
    std::vector<char> code_matches;  // indexed by value code
  };
  std::vector<Filter> filters;
  std::vector<std::pair<BoundColumn, BoundColumn>> joins;
  for (const Predicate& pred : stmt.where) {
    THEMIS_ASSIGN_OR_RETURN(BoundColumn lhs, bind(pred.lhs));
    if (pred.is_join) {
      THEMIS_ASSIGN_OR_RETURN(BoundColumn rhs, bind(pred.rhs_column));
      if (lhs.table == rhs.table) {
        return Status::Unimplemented(
            "same-table column equality not supported");
      }
      if (lhs.table > rhs.table) std::swap(lhs, rhs);
      joins.emplace_back(lhs, rhs);
      continue;
    }
    const data::Domain& domain =
        tables[lhs.table].table->schema()->domain(lhs.attr);
    Filter filter;
    filter.column = lhs;
    filter.code_matches.assign(domain.size(), 0);
    switch (pred.op) {
      case CompareOp::kEq:
      case CompareOp::kNe:
      case CompareOp::kIn: {
        std::vector<char>& m = filter.code_matches;
        for (const Literal& lit : pred.literals) {
          auto code = domain.Code(lit.text);
          if (code.ok()) m[static_cast<size_t>(*code)] = 1;
        }
        if (pred.op == CompareOp::kNe) {
          for (char& c : m) c = !c;
        }
        break;
      }
      default: {
        if (pred.literals.size() != 1) {
          return Status::InvalidArgument("ordered comparison needs 1 literal");
        }
        const Literal& lit = pred.literals[0];
        const double target = lit.is_number
                                  ? lit.number
                                  : NumericValueOfLabel(lit.text);
        if (std::isnan(target)) {
          return Status::InvalidArgument(
              "non-numeric literal in ordered comparison");
        }
        for (size_t code = 0; code < domain.size(); ++code) {
          const double v = NumericValueOfLabel(
              domain.Label(static_cast<data::ValueCode>(code)));
          if (std::isnan(v)) continue;  // unmatched
          bool ok = false;
          switch (pred.op) {
            case CompareOp::kLt: ok = v < target; break;
            case CompareOp::kLe: ok = v <= target; break;
            case CompareOp::kGt: ok = v > target; break;
            case CompareOp::kGe: ok = v >= target; break;
            default: break;
          }
          filter.code_matches[code] = ok ? 1 : 0;
        }
        break;
      }
    }
    filters.push_back(std::move(filter));
  }

  // --- Bind SELECT / GROUP BY columns. ---
  std::vector<BoundColumn> group_columns;
  QueryResult result;
  for (const ColumnRef& ref : stmt.group_by) {
    THEMIS_ASSIGN_OR_RETURN(BoundColumn bc, bind(ref));
    group_columns.push_back(bc);
    result.group_names.push_back(ref.ToString());
  }
  struct AggItem {
    AggFunc func;
    BoundColumn column;  // unused for COUNT(*)
  };
  std::vector<AggItem> agg_items;
  for (const SelectItem& item : stmt.items) {
    if (item.func == AggFunc::kNone) continue;  // plain group column
    AggItem agg;
    agg.func = item.func;
    if (item.func != AggFunc::kCount) {
      THEMIS_ASSIGN_OR_RETURN(agg.column, bind(item.column));
    }
    agg_items.push_back(agg);
    std::string name = !item.alias.empty() ? item.alias
                       : item.func == AggFunc::kCount
                           ? "count"
                           : (item.func == AggFunc::kSum ? "sum_" : "avg_") +
                                 item.column.ToString();
    result.value_names.push_back(std::move(name));
  }

  // --- Row iteration. ---
  // Candidate rows per table after filters.
  auto passes = [&](size_t t, size_t row) {
    for (const Filter& f : filters) {
      if (f.column.table != t) continue;
      const data::ValueCode code = tables[t].table->Get(row, f.column.attr);
      if (code < 0 || static_cast<size_t>(code) >= f.code_matches.size() ||
          !f.code_matches[static_cast<size_t>(code)]) {
        return false;
      }
    }
    return true;
  };

  // Numeric per-code caches for SUM/AVG columns.
  auto numeric_for = [&](const BoundColumn& bc) {
    const data::Domain& domain =
        tables[bc.table].table->schema()->domain(bc.attr);
    std::vector<double> values(domain.size());
    for (size_t code = 0; code < domain.size(); ++code) {
      values[code] =
          NumericValueOfLabel(domain.Label(static_cast<data::ValueCode>(code)));
    }
    return values;
  };
  std::vector<std::vector<double>> numeric_cache(agg_items.size());
  for (size_t i = 0; i < agg_items.size(); ++i) {
    if (agg_items[i].func != AggFunc::kCount) {
      numeric_cache[i] = numeric_for(agg_items[i].column);
    }
  }

  GroupMap groups;
  // Lazily sizes a group's per-item vectors on first touch (shared by the
  // row path and the shard-merge path).
  auto group_slot = [&](GroupMap& into,
                        const std::vector<std::string>& key) -> Accumulator& {
    Accumulator& acc = into[key];
    if (acc.weighted_sums.empty()) {
      acc.weighted_sums.assign(agg_items.size(), 0.0);
      acc.weight_totals.assign(agg_items.size(), 0.0);
    }
    return acc;
  };
  auto accumulate = [&](GroupMap& into, const std::vector<size_t>& rows,
                        double weight) {
    // `rows[t]` is the current row of table t.
    std::vector<std::string> key;
    key.reserve(group_columns.size());
    for (const BoundColumn& gc : group_columns) {
      const data::ValueCode code =
          tables[gc.table].table->Get(rows[gc.table], gc.attr);
      key.push_back(
          tables[gc.table].table->schema()->domain(gc.attr).Label(code));
    }
    Accumulator& acc = group_slot(into, key);
    acc.count_weight += weight;
    for (size_t i = 0; i < agg_items.size(); ++i) {
      if (agg_items[i].func == AggFunc::kCount) continue;
      const BoundColumn& bc = agg_items[i].column;
      const data::ValueCode code =
          tables[bc.table].table->Get(rows[bc.table], bc.attr);
      const double v = numeric_cache[i][static_cast<size_t>(code)];
      if (std::isnan(v)) continue;
      acc.weighted_sums[i] += weight * v;
      acc.weight_totals[i] += weight;
    }
  };

  // Folds per-shard partial aggregates into `groups` in shard-index
  // order — deterministic regardless of which worker ran which shard.
  auto merge_shards = [&](std::vector<GroupMap>& shard_groups) {
    for (GroupMap& shard : shard_groups) {
      for (auto& [key, partial] : shard) {
        Accumulator& acc = group_slot(groups, key);
        acc.count_weight += partial.count_weight;
        for (size_t i = 0; i < agg_items.size(); ++i) {
          acc.weighted_sums[i] += partial.weighted_sums[i];
          acc.weight_totals[i] += partial.weight_totals[i];
        }
      }
    }
  };

  if (tables.size() == 1) {
    const data::Table& t0 = *tables[0].table;
    const size_t num_rows = t0.num_rows();
    if (pool != nullptr && num_rows >= 2 * kShardRows) {
      // Sharded scan: each shard folds its row range into a private group
      // map (only const reads of shared state), then shards merge in index
      // order.
      const size_t num_shards = (num_rows + kShardRows - 1) / kShardRows;
      std::vector<GroupMap> shard_groups(num_shards);
      pool->ParallelFor(0, num_shards, [&](size_t s) {
        const size_t lo = s * kShardRows;
        const size_t hi = std::min(num_rows, lo + kShardRows);
        for (size_t r = lo; r < hi; ++r) {
          if (!passes(0, r)) continue;
          accumulate(shard_groups[s], {r}, t0.weight(r));
        }
      });
      merge_shards(shard_groups);
    } else {
      for (size_t r = 0; r < num_rows; ++r) {
        if (!passes(0, r)) continue;
        accumulate(groups, {r}, t0.weight(r));
      }
    }
  } else {
    if (joins.empty()) {
      return Status::Unimplemented(
          "cross joins without join predicates are not supported");
    }
    // Hash join: build on table 0, probe with table 1. Keys are label
    // strings so tables with different schemas still join correctly.
    const data::Table& t0 = *tables[0].table;
    const data::Table& t1 = *tables[1].table;
    std::unordered_map<std::string, std::vector<size_t>> build;
    for (size_t r = 0; r < t0.num_rows(); ++r) {
      if (!passes(0, r)) continue;
      std::string key;
      for (const auto& [lhs, rhs] : joins) {
        key += t0.schema()->domain(lhs.attr).Label(t0.Get(r, lhs.attr));
        key += '\x1f';
      }
      build[key].push_back(r);
    }
    // Probe with table 1. The build side stays sequential (its map is
    // shared read-only by every prober); the probe side shards by fixed
    // row ranges like the single-table scan — each shard probes into a
    // private group map over const state, then shards merge in index
    // order, so the answer is bitwise identical at any pool size.
    auto probe_range = [&](GroupMap& into, size_t lo, size_t hi) {
      for (size_t r1 = lo; r1 < hi; ++r1) {
        if (!passes(1, r1)) continue;
        std::string key;
        for (const auto& [lhs, rhs] : joins) {
          key += t1.schema()->domain(rhs.attr).Label(t1.Get(r1, rhs.attr));
          key += '\x1f';
        }
        auto it = build.find(key);
        if (it == build.end()) continue;
        for (size_t r0 : it->second) {
          accumulate(into, {r0, r1}, t0.weight(r0) * t1.weight(r1));
        }
      }
    };
    const size_t probe_rows = t1.num_rows();
    if (pool != nullptr && probe_rows >= 2 * kShardRows) {
      const size_t num_shards = (probe_rows + kShardRows - 1) / kShardRows;
      std::vector<GroupMap> shard_groups(num_shards);
      pool->ParallelFor(0, num_shards, [&](size_t s) {
        const size_t lo = s * kShardRows;
        probe_range(shard_groups[s], lo,
                    std::min(probe_rows, lo + kShardRows));
      });
      merge_shards(shard_groups);
    } else {
      probe_range(groups, 0, probe_rows);
    }
  }

  // Global aggregates (no GROUP BY) always yield exactly one row, even
  // when no input rows qualify.
  if (group_columns.empty() && groups.empty()) {
    Accumulator zero;
    zero.weighted_sums.assign(agg_items.size(), 0.0);
    zero.weight_totals.assign(agg_items.size(), 0.0);
    groups.emplace(std::vector<std::string>{}, std::move(zero));
  }

  // --- Materialize rows (std::map keeps them sorted by group key). ---
  for (auto& [key, acc] : groups) {
    ResultRow row;
    row.group = key;
    for (size_t i = 0; i < agg_items.size(); ++i) {
      switch (agg_items[i].func) {
        case AggFunc::kCount:
          row.values.push_back(acc.count_weight);
          break;
        case AggFunc::kSum:
          row.values.push_back(acc.weighted_sums[i]);
          break;
        case AggFunc::kAvg:
          row.values.push_back(acc.weight_totals[i] > 0
                                   ? acc.weighted_sums[i] / acc.weight_totals[i]
                                   : 0.0);
          break;
        case AggFunc::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace themis::sql
