#include "sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace themis::sql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? sql[i + off] : '\0';
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        if (sql[i] == '.') seen_dot = true;
        ++i;
      }
      token.type = TokenType::kNumber;
      token.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = value;
    } else {
      token.type = TokenType::kSymbol;
      // Two-character operators first.
      if ((c == '<' && (peek(1) == '=' || peek(1) == '>')) ||
          (c == '>' && peek(1) == '=')) {
        token.text = sql.substr(i, 2);
        i += 2;
      } else if (std::string("(),*.=<>;").find(c) != std::string::npos) {
        token.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at position " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace themis::sql
