#ifndef THEMIS_SQL_LEXER_H_
#define THEMIS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace themis::sql {

/// Tokenizes a SQL string into the token stream consumed by the parser.
/// Supports identifiers, numeric literals, single-quoted strings (with ''
/// escaping), and the operator/punctuation set of the supported grammar.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace themis::sql

#endif  // THEMIS_SQL_LEXER_H_
