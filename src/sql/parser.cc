#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace themis::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    THEMIS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    THEMIS_RETURN_IF_ERROR(ParseSelectList(&stmt));
    THEMIS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    THEMIS_RETURN_IF_ERROR(ParseTableList(&stmt));
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      THEMIS_RETURN_IF_ERROR(ParseWhere(&stmt));
    }
    if (Cur().IsKeyword("GROUP")) {
      Advance();
      THEMIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      THEMIS_RETURN_IF_ERROR(ParseGroupBy(&stmt));
    }
    if (Cur().IsSymbol(";")) Advance();
    if (Cur().type != TokenType::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at position " +
                              std::to_string(Cur().position) + " (near '" +
                              Cur().text + "')");
  }

  Status ExpectKeyword(const char* kw) {
    if (!Cur().IsKeyword(kw)) {
      return Err(std::string("expected ") + kw);
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!Cur().IsSymbol(s)) {
      return Err(std::string("expected '") + s + "'");
    }
    Advance();
    return Status::OK();
  }

  /// ident ('.' ident)?  — the first identifier is a table alias only when
  /// a dot follows.
  Result<ColumnRef> ParseColumnRef() {
    if (Cur().type != TokenType::kIdentifier) {
      return Result<ColumnRef>(Err("expected column name"));
    }
    ColumnRef ref;
    ref.column = Cur().text;
    Advance();
    if (Cur().IsSymbol(".")) {
      Advance();
      if (Cur().type != TokenType::kIdentifier) {
        return Result<ColumnRef>(Err("expected column after '.'"));
      }
      ref.table_alias = ref.column;
      ref.column = Cur().text;
      Advance();
    }
    return ref;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    while (true) {
      SelectItem item;
      if (Cur().IsKeyword("COUNT")) {
        Advance();
        THEMIS_RETURN_IF_ERROR(ExpectSymbol("("));
        THEMIS_RETURN_IF_ERROR(ExpectSymbol("*"));
        THEMIS_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.func = AggFunc::kCount;
      } else if (Cur().IsKeyword("SUM") || Cur().IsKeyword("AVG")) {
        item.func = Cur().IsKeyword("SUM") ? AggFunc::kSum : AggFunc::kAvg;
        Advance();
        THEMIS_RETURN_IF_ERROR(ExpectSymbol("("));
        THEMIS_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        THEMIS_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        THEMIS_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      if (Cur().IsKeyword("AS")) {
        Advance();
        if (Cur().type != TokenType::kIdentifier) {
          return Err("expected alias after AS");
        }
        item.alias = Cur().text;
        Advance();
      }
      stmt->items.push_back(std::move(item));
      if (!Cur().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseTableList(SelectStatement* stmt) {
    while (true) {
      if (Cur().type != TokenType::kIdentifier) {
        return Err("expected table name");
      }
      TableRef ref;
      ref.name = Cur().text;
      ref.alias = ref.name;
      Advance();
      if (Cur().IsKeyword("AS")) {
        Advance();
        if (Cur().type != TokenType::kIdentifier) {
          return Err("expected alias after AS");
        }
        ref.alias = Cur().text;
        Advance();
      } else if (Cur().type == TokenType::kIdentifier &&
                 !Cur().IsKeyword("WHERE") && !Cur().IsKeyword("GROUP")) {
        ref.alias = Cur().text;
        Advance();
      }
      stmt->tables.push_back(std::move(ref));
      if (!Cur().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<Literal> ParseLiteral() {
    Literal lit;
    if (Cur().type == TokenType::kString) {
      lit.text = Cur().text;
    } else if (Cur().type == TokenType::kNumber) {
      lit.text = Cur().text;
      lit.is_number = true;
      lit.number = std::strtod(Cur().text.c_str(), nullptr);
    } else {
      return Result<Literal>(Err("expected literal"));
    }
    Advance();
    return lit;
  }

  Status ParseWhere(SelectStatement* stmt) {
    while (true) {
      Predicate pred;
      THEMIS_ASSIGN_OR_RETURN(pred.lhs, ParseColumnRef());
      if (Cur().IsKeyword("IN")) {
        Advance();
        pred.op = CompareOp::kIn;
        THEMIS_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          THEMIS_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          pred.literals.push_back(std::move(lit));
          if (!Cur().IsSymbol(",")) break;
          Advance();
        }
        THEMIS_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        if (Cur().IsSymbol("=")) {
          pred.op = CompareOp::kEq;
        } else if (Cur().IsSymbol("<>")) {
          pred.op = CompareOp::kNe;
        } else if (Cur().IsSymbol("<=")) {
          pred.op = CompareOp::kLe;
        } else if (Cur().IsSymbol("<")) {
          pred.op = CompareOp::kLt;
        } else if (Cur().IsSymbol(">=")) {
          pred.op = CompareOp::kGe;
        } else if (Cur().IsSymbol(">")) {
          pred.op = CompareOp::kGt;
        } else {
          return Err("expected comparison operator");
        }
        Advance();
        // Column-vs-column (join) is only meaningful for equality.
        if (Cur().type == TokenType::kIdentifier &&
            (Next().IsSymbol(".") || pred.op == CompareOp::kEq)) {
          if (pred.op != CompareOp::kEq) {
            return Err("column-to-column comparison supports only '='");
          }
          pred.is_join = true;
          THEMIS_ASSIGN_OR_RETURN(pred.rhs_column, ParseColumnRef());
        } else {
          THEMIS_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          pred.literals.push_back(std::move(lit));
        }
      }
      stmt->where.push_back(std::move(pred));
      if (!Cur().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseGroupBy(SelectStatement* stmt) {
    while (true) {
      THEMIS_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      stmt->group_by.push_back(std::move(ref));
      if (!Cur().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& sql) {
  THEMIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace themis::sql
