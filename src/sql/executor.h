#ifndef THEMIS_SQL_EXECUTOR_H_
#define THEMIS_SQL_EXECUTOR_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "sql/ast.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace themis::sql {

/// One output row: the group-by key (display labels, empty for global
/// aggregates) and one value per aggregate select item.
struct ResultRow {
  std::vector<std::string> group;
  std::vector<double> values;
};

/// Result of executing a SELECT. Rows are sorted by group key for
/// deterministic output.
struct QueryResult {
  std::vector<std::string> group_names;
  std::vector<std::string> value_names;
  std::vector<ResultRow> rows;

  /// Maps "g1|g2|..." group keys to the value at `value_index`; convenient
  /// for comparing a truth result against an estimate.
  std::map<std::string, double> ValueMap(size_t value_index = 0) const;

  /// Pretty-printed table for examples and benchmarks.
  std::string ToString() const;
};

/// Numeric interpretation of a domain label for SUM/AVG and ordered
/// comparisons: plain numbers parse directly; equi-width bucket labels
/// "[lo,hi)" evaluate to their midpoint; anything else is NaN.
double NumericValueOfLabel(const std::string& label);

/// Rows per shard of sharded scans and hash-join probes: `requested` when
/// positive, else the THEMIS_SHARD_ROWS environment variable when set to a
/// positive integer, else 8192. This is how ThemisOptions::shard_rows
/// (0 = auto) resolves — the first step toward NUMA-/cache-aware sizing.
size_t ResolveShardRows(size_t requested);

/// Executes SQL over registered, weighted, in-memory tables. COUNT(*) is
/// evaluated as SUM(weight) and joins multiply weights, so queries over a
/// reweighted sample estimate the corresponding population answers
/// (Sec 4.1).
class Executor {
 public:
  /// Registers `table` under `name` (pointer must outlive the executor).
  void RegisterTable(const std::string& name, const data::Table* table);

  /// Parses and executes `sql`.
  Result<QueryResult> Query(const std::string& sql,
                            util::ThreadPool* pool = nullptr,
                            size_t shard_rows = 0) const;

  /// Executes a parsed statement. With a pool, large single-table scans
  /// and the probe side of hash joins are sharded by row range across the
  /// pool's workers (the join's build side stays sequential). The shard
  /// layout is fixed by the row count and `shard_rows` (0 = auto, see
  /// ResolveShardRows) alone — never the pool size — and partial
  /// aggregates merge in shard order, so the result is bitwise identical
  /// for every pool size (including a 1-thread pool); only the pool-less
  /// call takes the unsharded path, whose float summation order differs.
  Result<QueryResult> Execute(const SelectStatement& stmt,
                              util::ThreadPool* pool = nullptr,
                              size_t shard_rows = 0) const;

 private:
  std::unordered_map<std::string, const data::Table*> catalog_;
};

}  // namespace themis::sql

#endif  // THEMIS_SQL_EXECUTOR_H_
