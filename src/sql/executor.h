#ifndef THEMIS_SQL_EXECUTOR_H_
#define THEMIS_SQL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "sql/ast.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace themis::sql {

/// One output row: the group-by key (display labels, empty for global
/// aggregates) and one value per aggregate select item.
struct ResultRow {
  std::vector<std::string> group;
  std::vector<double> values;
};

/// Result of executing a SELECT. Rows are sorted by group key for
/// deterministic output.
struct QueryResult {
  std::vector<std::string> group_names;
  std::vector<std::string> value_names;
  std::vector<ResultRow> rows;

  /// Maps "g1|g2|..." group keys to the value at `value_index`; convenient
  /// for comparing a truth result against an estimate.
  std::map<std::string, double> ValueMap(size_t value_index = 0) const;

  /// Pretty-printed table for examples and benchmarks.
  std::string ToString() const;
};

/// Numeric interpretation of a domain label for SUM/AVG and ordered
/// comparisons: plain numbers parse directly; equi-width bucket labels
/// "[lo,hi)" evaluate to their midpoint; anything else is NaN.
double NumericValueOfLabel(const std::string& label);

/// The THEMIS_SHARD_ROWS environment override as a row count, or 0 when
/// the variable is unset or not a positive integer. Each Executor
/// snapshots this once at construction — queries never re-read the
/// environment, so a mid-run setenv cannot change the shard layout (and
/// with it the float summation order) of a live executor.
size_t ShardRowsEnvOverride();

/// Per-shard working-set target of the automatic shard policy, derived
/// from the probed cache topology (util::CpuTopology::Host()): half the
/// L2 clamped to [256 KiB, 2 MiB], or 256 KiB when the probe found
/// nothing. Constant for the process lifetime, so the shard layout — and
/// with it the float summation order — is stable across runs on one host.
size_t AutoShardTargetBytes();

/// Rows per shard of sharded scans and hash-join probes: `requested` when
/// positive, else the THEMIS_SHARD_ROWS environment variable when set to a
/// positive integer, else automatic. The automatic size targets an
/// AutoShardTargetBytes() per-shard working set: with `bytes_per_row` > 0
/// (bytes the scan touches per row, see data::Table::ScanBytesPerRow) it
/// returns AutoShardTargetBytes() / bytes_per_row clamped to
/// [1024, 262144]; with bytes_per_row 0 (caller has no column
/// information) it returns the legacy 8192. Deterministic for a fixed
/// query, table, and host — never derived from the pool size — so the
/// shard layout, and with it the float summation order, is identical at
/// every pool size. This is how ThemisOptions::shard_rows (0 = auto)
/// resolves.
size_t ResolveShardRows(size_t requested, size_t bytes_per_row = 0);

/// Live counters of one Executor, aggregated over every query it has run
/// (all answer modes funnel through here, so these are the system-wide
/// scan-path counters surfaced by Catalog::Stats() and the server's
/// STATS verb). Queries on tables beyond uint32 rows fall back to the
/// reference path and update only rows_scanned and groups_emitted.
struct ExecutorStats {
  /// Active SIMD kernel backend ("scalar" / "sse4" / "avx2" / "neon"),
  /// resolved once at Executor construction (simd::FromEnv). Summing
  /// stats keeps the first non-empty name — every executor in a process
  /// resolves the same backend unless THEMIS_SIMD changed between
  /// constructions.
  std::string simd_backend;
  uint64_t rows_scanned = 0;     ///< rows fed through the filter pipeline
  uint64_t rows_passed = 0;      ///< rows surviving every filter
  uint64_t groups_emitted = 0;   ///< result rows materialized
  uint64_t join_build_rows = 0;  ///< rows inserted into join build tables
  uint64_t join_probe_rows = 0;  ///< filtered rows probed into build tables
  /// Rows evaluated by the FilterScan/FilterCompact kernels (counted once
  /// per filter applied, so a 2-filter scan counts each row twice).
  uint64_t filter_kernel_rows = 0;
  /// Selected rows batched through the gather/pack kernels (group-key
  /// packing, join-key build, probe-code gather).
  uint64_t gather_kernel_rows = 0;
  /// Shards (pooled) / chunks (sequential) whose scan, join-build, or
  /// join-probe body actually ran. A cancelled query executes fewer
  /// shards than its layout calls for — the observable the cancellation
  /// tests assert on.
  uint64_t shards_executed = 0;
  /// Executions that unwound early with kCancelled / kDeadlineExceeded
  /// instead of finishing the plan.
  uint64_t queries_cancelled = 0;

  ExecutorStats& operator+=(const ExecutorStats& other) {
    if (simd_backend.empty()) simd_backend = other.simd_backend;
    rows_scanned += other.rows_scanned;
    rows_passed += other.rows_passed;
    groups_emitted += other.groups_emitted;
    join_build_rows += other.join_build_rows;
    join_probe_rows += other.join_probe_rows;
    filter_kernel_rows += other.filter_kernel_rows;
    gather_kernel_rows += other.gather_kernel_rows;
    shards_executed += other.shards_executed;
    queries_cancelled += other.queries_cancelled;
    return *this;
  }
};

/// Executes SQL over registered, weighted, in-memory tables. COUNT(*) is
/// evaluated as SUM(weight) and joins multiply weights, so queries over a
/// reweighted sample estimate the corresponding population answers
/// (Sec 4.1).
///
/// The execution pipeline is code-native and vectorized: filters evaluate
/// per shard into selection vectors (one pass per filter over the
/// dictionary-code column, no per-row filter-list walk), GROUP BY keys
/// pack the group columns' codes into one uint64_t (TupleKey fallback
/// when the widths exceed 64 bits) aggregated into a flat open-addressing
/// table, and hash joins build/probe on packed code keys (differing
/// domains are bridged by a once-per-domain code translation). Labels are
/// decoded only at result materialization, where groups sort by their
/// decoded labels — so output order, float summation order, and hence
/// bitwise results are identical to the retained row-at-a-time reference
/// path at every pool size.
///
/// The integer inner loops (filter compare + compact, group/join key
/// gather + pack, code translation, weight/numeric gathers) run on the
/// simd::Kernels backend resolved once at construction from THEMIS_SIMD
/// (default: most capable of AVX2 / SSE4 / NEON the host supports). The
/// kernels move integers and copy doubles only — all float arithmetic
/// stays scalar, in row order — so the SIMD and scalar backends are
/// bitwise identical by construction; executor_diff_test proves it.
class Executor {
 public:
  Executor();

  /// Registers `table` under `name` (pointer must outlive the executor).
  void RegisterTable(const std::string& name, const data::Table* table);

  /// Parses and executes `sql`. `trace` (optional, like `cancel`) records
  /// the shard-loop portion of the execution as an obs::Stage::
  /// kExecutorScan span; a null trace costs one pointer check.
  Result<QueryResult> Query(const std::string& sql,
                            util::ThreadPool* pool = nullptr,
                            size_t shard_rows = 0,
                            const util::CancelToken* cancel = nullptr,
                            obs::TraceContext* trace = nullptr) const;

  /// Executes a parsed statement. With a pool, large single-table scans,
  /// the build side of large hash joins, and hash-join probes are sharded
  /// by row range across the pool's workers. The shard layout is fixed by
  /// the row count and `shard_rows` (0 = auto, see ResolveShardRows)
  /// alone — never the pool size — and partial aggregates merge in shard
  /// order, so the result is bitwise identical for every pool size
  /// (including a 1-thread pool); only the pool-less call takes the
  /// unsharded path, whose float summation order differs.
  ///
  /// `cancel` (optional) is polled once on entry and once per shard/chunk
  /// in the scan, join-build, and join-probe loops: a fired token makes
  /// the remaining shards no-ops and the call returns the token's
  /// kCancelled / kDeadlineExceeded status instead of a partial answer.
  /// Completed answers are unaffected — a token that never fires leaves
  /// the execution (and its bitwise result) identical to passing nullptr.
  Result<QueryResult> Execute(const SelectStatement& stmt,
                              util::ThreadPool* pool = nullptr,
                              size_t shard_rows = 0,
                              const util::CancelToken* cancel = nullptr,
                              obs::TraceContext* trace = nullptr) const;

  /// The retained row-at-a-time reference implementation (the
  /// pre-vectorization executor, kept verbatim): label-string group and
  /// join keys in ordered maps, per-row temporaries. Differential tests
  /// and bench_executor check the vectorized path is bitwise identical to
  /// — and measure its speedup over — this path. Does not update stats()
  /// and does not poll any cancel token (it is the oracle, never the
  /// serving path).
  Result<QueryResult> ExecuteReference(const SelectStatement& stmt,
                                       util::ThreadPool* pool = nullptr,
                                       size_t shard_rows = 0) const;

  /// Snapshot of the cumulative per-executor counters (thread-safe;
  /// queries running concurrently with the snapshot may be partially
  /// counted).
  ExecutorStats stats() const;

 private:
  struct StatCounters {
    std::atomic<uint64_t> rows_scanned{0};
    std::atomic<uint64_t> rows_passed{0};
    std::atomic<uint64_t> groups_emitted{0};
    std::atomic<uint64_t> join_build_rows{0};
    std::atomic<uint64_t> join_probe_rows{0};
    std::atomic<uint64_t> filter_kernel_rows{0};
    std::atomic<uint64_t> gather_kernel_rows{0};
    std::atomic<uint64_t> shards_executed{0};
    std::atomic<uint64_t> queries_cancelled{0};
  };

  std::unordered_map<std::string, const data::Table*> catalog_;
  /// Heap-allocated so the executor stays movable despite the atomics;
  /// queries tally locally and add here once at the end.
  std::unique_ptr<StatCounters> counters_;
  /// THEMIS_SHARD_ROWS, read once at construction: no getenv on the
  /// query hot path, and the shard layout (which fixes the float
  /// summation order) cannot drift if the environment changes mid-run.
  size_t env_shard_rows_ = 0;
  /// The SIMD kernel table, resolved once at construction from
  /// THEMIS_SIMD (same snapshot discipline as env_shard_rows_): tests pin
  /// backends per instance via setenv before construction, and a live
  /// executor's kernels never change. Points at a static table.
  const simd::Kernels* kernels_ = nullptr;
};

}  // namespace themis::sql

#endif  // THEMIS_SQL_EXECUTOR_H_
