#ifndef THEMIS_SQL_AST_H_
#define THEMIS_SQL_AST_H_

#include <string>
#include <vector>

namespace themis::sql {

/// Column reference, optionally qualified: "o_st" or "t.o_st".
struct ColumnRef {
  std::string table_alias;  // empty if unqualified
  std::string column;

  std::string ToString() const {
    return table_alias.empty() ? column : table_alias + "." + column;
  }
};

enum class AggFunc { kNone, kCount, kSum, kAvg };

/// One item of the SELECT list: a plain group column or an aggregate.
struct SelectItem {
  AggFunc func = AggFunc::kNone;
  ColumnRef column;  // unused for COUNT(*)
  std::string alias; // optional "AS name"
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

/// A literal in a predicate: string or number.
struct Literal {
  std::string text;
  bool is_number = false;
  double number = 0;
};

/// A conjunct of the WHERE clause: either column-vs-literal(s) or a join
/// equality column-vs-column.
struct Predicate {
  ColumnRef lhs;
  CompareOp op = CompareOp::kEq;
  std::vector<Literal> literals;  // 1 value, or the IN list
  bool is_join = false;
  ColumnRef rhs_column;  // when is_join
};

struct TableRef {
  std::string name;
  std::string alias;  // defaults to name
};

/// The supported statement shape:
///   SELECT items FROM t [, t2] [WHERE p AND p ...] [GROUP BY cols]
struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  std::vector<Predicate> where;
  std::vector<ColumnRef> group_by;
};

}  // namespace themis::sql

#endif  // THEMIS_SQL_AST_H_
