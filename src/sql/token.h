#ifndef THEMIS_SQL_TOKEN_H_
#define THEMIS_SQL_TOKEN_H_

#include <string>

namespace themis::sql {

enum class TokenType {
  kIdentifier,  // flights, o_st  (also keywords, matched case-insensitively)
  kNumber,      // 120, 3.5
  kString,      // 'CA'
  kSymbol,      // ( ) , * . = < <= > >= <> ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // raw text (string tokens hold the unquoted value)
  size_t position = 0;

  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword match for identifier tokens.
  bool IsKeyword(const char* kw) const;
};

}  // namespace themis::sql

#endif  // THEMIS_SQL_TOKEN_H_
