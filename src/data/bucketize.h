#ifndef THEMIS_DATA_BUCKETIZE_H_
#define THEMIS_DATA_BUCKETIZE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace themis::data {

/// Equi-width bucketizer for continuous attributes. Themis supports
/// continuous data types by bucketizing their active domains (Sec 3,
/// footnote 2); this mirrors the paper's preprocessing step.
class EquiWidthBucketizer {
 public:
  /// `lo`/`hi` bound the value range; `num_buckets` >= 1. Values outside
  /// the range are clamped into the first/last bucket.
  EquiWidthBucketizer(double lo, double hi, size_t num_buckets);

  size_t num_buckets() const { return num_buckets_; }

  /// Bucket index for `value`, in [0, num_buckets()).
  size_t Bucket(double value) const;

  /// Display label for bucket b, "[lo,hi)" style.
  std::string Label(size_t b) const;

  /// All labels in bucket order (these become the attribute's domain).
  std::vector<std::string> Labels() const;

  /// Midpoint of bucket b, used when a numeric stand-in for the bucket is
  /// needed (e.g. AVG over a bucketized attribute).
  double Midpoint(size_t b) const;

 private:
  double lo_;
  double hi_;
  size_t num_buckets_;
  double width_;
};

}  // namespace themis::data

#endif  // THEMIS_DATA_BUCKETIZE_H_
