#include "data/table.h"

#include "util/logging.h"

namespace themis::data {

Table::Table(SchemaPtr schema) : schema_(std::move(schema)) {
  THEMIS_CHECK(schema_ != nullptr);
  columns_.resize(schema_->num_attributes());
}

void Table::AppendRow(const std::vector<ValueCode>& codes) {
  THEMIS_CHECK(codes.size() == columns_.size())
      << "row arity " << codes.size() << " != schema arity "
      << columns_.size();
  for (size_t a = 0; a < codes.size(); ++a) columns_[a].push_back(codes[a]);
  weights_.push_back(1.0);
  ++num_rows_;
}

void Table::AppendRowLabels(const std::vector<std::string>& labels) {
  THEMIS_CHECK(labels.size() == columns_.size());
  std::vector<ValueCode> codes(labels.size());
  for (size_t a = 0; a < labels.size(); ++a) {
    codes[a] = schema_->domain(a).Intern(labels[a]);
  }
  AppendRow(codes);
}

double Table::TotalWeight() const {
  double s = 0;
  for (double w : weights_) s += w;
  return s;
}

void Table::FillWeights(double w) {
  for (double& x : weights_) x = w;
}

TupleKey Table::KeyFor(size_t row, const std::vector<size_t>& attrs) const {
  TupleKey key(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) key[i] = columns_[attrs[i]][row];
  return key;
}

std::unordered_map<TupleKey, std::vector<size_t>, TupleKeyHash>
Table::GroupRows(const std::vector<size_t>& attrs) const {
  std::unordered_map<TupleKey, std::vector<size_t>, TupleKeyHash> groups;
  for (size_t r = 0; r < num_rows_; ++r) {
    groups[KeyFor(r, attrs)].push_back(r);
  }
  return groups;
}

std::unordered_map<TupleKey, double, TupleKeyHash> Table::GroupWeights(
    const std::vector<size_t>& attrs) const {
  std::unordered_map<TupleKey, double, TupleKeyHash> groups;
  for (size_t r = 0; r < num_rows_; ++r) {
    groups[KeyFor(r, attrs)] += weights_[r];
  }
  return groups;
}

Table Table::Filter(const std::vector<bool>& keep) const {
  THEMIS_CHECK(keep.size() == num_rows_);
  Table out(schema_);
  for (size_t r = 0; r < num_rows_; ++r) {
    if (!keep[r]) continue;
    std::vector<ValueCode> codes(columns_.size());
    for (size_t a = 0; a < columns_.size(); ++a) codes[a] = columns_[a][r];
    out.AppendRow(codes);
    out.set_weight(out.num_rows() - 1, weights_[r]);
  }
  return out;
}

Table Table::Clone() const {
  Table out(schema_);
  out.num_rows_ = num_rows_;
  out.columns_ = columns_;
  out.weights_ = weights_;
  return out;
}

}  // namespace themis::data
