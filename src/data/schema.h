#ifndef THEMIS_DATA_SCHEMA_H_
#define THEMIS_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/domain.h"
#include "util/status.h"

namespace themis::data {

/// Ordered list of attributes A = {A1..Am} with their active domains.
/// Shared (by shared_ptr) between a population, its samples, and the
/// aggregate set so value codes agree everywhere.
class Schema {
 public:
  Schema() = default;

  /// Adds an attribute with an initially-empty domain; returns its index.
  size_t AddAttribute(const std::string& name);

  /// Adds an attribute with a fixed domain; returns its index.
  size_t AddAttribute(const std::string& name,
                      std::vector<std::string> labels);

  size_t num_attributes() const { return domains_.size(); }

  /// Index of attribute `name`, or NotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;

  Domain& domain(size_t i) { return domains_[i]; }
  const Domain& domain(size_t i) const { return domains_[i]; }

  const std::string& attribute_name(size_t i) const {
    return domains_[i].name();
  }

  /// All attribute names in order.
  std::vector<std::string> AttributeNames() const;

  /// Active-domain sizes of `attrs` in order — the input to a
  /// PackedKeyCodec over those attributes.
  std::vector<size_t> DomainSizes(const std::vector<size_t>& attrs) const;

 private:
  std::vector<Domain> domains_;
  std::unordered_map<std::string, size_t> index_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace themis::data

#endif  // THEMIS_DATA_SCHEMA_H_
