#ifndef THEMIS_DATA_TUPLE_KEY_H_
#define THEMIS_DATA_TUPLE_KEY_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "data/domain.h"

namespace themis::data {

/// Composite key over a subset of attribute values; used for group-by
/// hashing, sample-membership lookups, and aggregate-group identification.
using TupleKey = std::vector<ValueCode>;

struct TupleKeyHash {
  size_t operator()(const TupleKey& key) const {
    // FNV-1a over the codes.
    size_t h = 1469598103934665603ull;
    for (ValueCode v : key) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace themis::data

#endif  // THEMIS_DATA_TUPLE_KEY_H_
