#ifndef THEMIS_DATA_TUPLE_KEY_H_
#define THEMIS_DATA_TUPLE_KEY_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "data/domain.h"

namespace themis::data {

/// Composite key over a subset of attribute values; used for group-by
/// hashing, sample-membership lookups, and aggregate-group identification.
using TupleKey = std::vector<ValueCode>;

struct TupleKeyHash {
  size_t operator()(const TupleKey& key) const {
    // FNV-1a over the codes.
    size_t h = 1469598103934665603ull;
    for (ValueCode v : key) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Fixed-width bit layout packing a composite code key into one uint64_t.
/// Component i occupies bits [shift(i), shift(i)+bits(i)) where bits(i) is
/// just wide enough for codes 0..N_i-1 of a domain with N_i labels. The
/// codec is `packable()` when the widths sum to <= 64 bits; callers fall
/// back to a TupleKey otherwise. Codes must be valid for their domains
/// (0 <= code < N_i) — the same precondition Domain::Label enforces.
class PackedKeyCodec {
 public:
  PackedKeyCodec() = default;
  explicit PackedKeyCodec(const std::vector<size_t>& domain_sizes) {
    shifts_.reserve(domain_sizes.size());
    masks_.reserve(domain_sizes.size());
    size_t total = 0;
    for (size_t n : domain_sizes) {
      const unsigned bits =
          std::max<unsigned>(1, std::bit_width(n > 1 ? n - 1 : 1));
      shifts_.push_back(static_cast<uint32_t>(total));
      masks_.push_back(bits >= 64 ? ~0ull : (1ull << bits) - 1);
      total += bits;
    }
    packable_ = total <= 64;
  }

  bool packable() const { return packable_; }

  /// Bit offset of component i — callers' hot loops OR `code << shift(i)`
  /// terms together to encode a key.
  uint32_t shift(size_t i) const { return shifts_[i]; }

  ValueCode Component(uint64_t key, size_t i) const {
    return static_cast<ValueCode>((key >> shifts_[i]) & masks_[i]);
  }

 private:
  std::vector<uint32_t> shifts_;
  std::vector<uint64_t> masks_;
  bool packable_ = true;
};

}  // namespace themis::data

#endif  // THEMIS_DATA_TUPLE_KEY_H_
