#include "data/bucketize.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace themis::data {

EquiWidthBucketizer::EquiWidthBucketizer(double lo, double hi,
                                         size_t num_buckets)
    : lo_(lo), hi_(hi), num_buckets_(num_buckets) {
  THEMIS_CHECK(num_buckets >= 1);
  THEMIS_CHECK(hi > lo);
  width_ = (hi - lo) / static_cast<double>(num_buckets);
}

size_t EquiWidthBucketizer::Bucket(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return num_buckets_ - 1;
  size_t b = static_cast<size_t>((value - lo_) / width_);
  return std::min(b, num_buckets_ - 1);
}

std::string EquiWidthBucketizer::Label(size_t b) const {
  THEMIS_CHECK(b < num_buckets_);
  const double lo = lo_ + width_ * static_cast<double>(b);
  return StrFormat("[%g,%g)", lo, lo + width_);
}

std::vector<std::string> EquiWidthBucketizer::Labels() const {
  std::vector<std::string> out;
  out.reserve(num_buckets_);
  for (size_t b = 0; b < num_buckets_; ++b) out.push_back(Label(b));
  return out;
}

double EquiWidthBucketizer::Midpoint(size_t b) const {
  THEMIS_CHECK(b < num_buckets_);
  return lo_ + width_ * (static_cast<double>(b) + 0.5);
}

}  // namespace themis::data
