#ifndef THEMIS_DATA_TABLE_H_
#define THEMIS_DATA_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "data/tuple_key.h"
#include "util/status.h"

namespace themis::data {

/// In-memory columnar relation. Every row carries a weight (default 1.0)
/// so reweighted samples and uniformly-scaled samples are queried
/// identically: COUNT(*) over the population becomes SUM(weight) over the
/// table (Sec 4.1 of the paper).
class Table {
 public:
  explicit Table(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return columns_.size(); }

  /// Appends a row of value codes (one per attribute) with weight 1.
  void AppendRow(const std::vector<ValueCode>& codes);

  /// Appends a row given display labels, interning them into the domains.
  void AppendRowLabels(const std::vector<std::string>& labels);

  ValueCode Get(size_t row, size_t attr) const {
    return columns_[attr][row];
  }
  void Set(size_t row, size_t attr, ValueCode v) { columns_[attr][row] = v; }

  double weight(size_t row) const { return weights_[row]; }
  void set_weight(size_t row, double w) { weights_[row] = w; }
  const std::vector<double>& weights() const { return weights_; }
  std::vector<double>& mutable_weights() { return weights_; }

  /// Sum of all row weights (the table's estimate of the population size).
  double TotalWeight() const;

  /// Resets every weight to `w`.
  void FillWeights(double w);

  /// Full column access (for tight loops in solvers/executors).
  const std::vector<ValueCode>& column(size_t attr) const {
    return columns_[attr];
  }

  /// Approximate bytes a scan touches per row when it reads `num_columns`
  /// code columns plus the weight column — the working-set input to the
  /// executor's cache-aware auto shard policy.
  static constexpr size_t ScanBytesPerRow(size_t num_columns) {
    return num_columns * sizeof(ValueCode) + sizeof(double);
  }

  /// Key of `row` restricted to `attrs` (attribute indices).
  TupleKey KeyFor(size_t row, const std::vector<size_t>& attrs) const;

  /// Group-by over `attrs`: maps each distinct key to the row ids in that
  /// group. This is the workhorse behind aggregate computation, incidence
  /// matrix construction, and sample-membership tests.
  std::unordered_map<TupleKey, std::vector<size_t>, TupleKeyHash> GroupRows(
      const std::vector<size_t>& attrs) const;

  /// Group-by over `attrs` summing weights per group (COUNT(*) semantics on
  /// a weighted table).
  std::unordered_map<TupleKey, double, TupleKeyHash> GroupWeights(
      const std::vector<size_t>& attrs) const;

  /// Returns a new table with the same schema containing rows where
  /// `keep[row]` is true (weights preserved).
  Table Filter(const std::vector<bool>& keep) const;

  /// Deep copy.
  Table Clone() const;

 private:
  SchemaPtr schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<ValueCode>> columns_;  // [attr][row]
  std::vector<double> weights_;
};

}  // namespace themis::data

#endif  // THEMIS_DATA_TABLE_H_
