#include "data/csv.h"

#include <fstream>

#include "util/string_util.h"

namespace themis::data {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  const Schema& schema = *table.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    out << CsvEscape(schema.attribute_name(a)) << ",";
  }
  out << "weight\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      out << CsvEscape(schema.domain(a).Label(table.Get(r, a))) << ",";
    }
    out << table.weight(r) << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for read");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty CSV file '" + path + "'");
  }
  std::vector<std::string> header = SplitCsvLine(line);
  bool has_weight = !header.empty() && header.back() == "weight";
  size_t num_attrs = has_weight ? header.size() - 1 : header.size();
  if (num_attrs == 0) {
    return Status::ParseError("CSV '" + path + "' has no attribute columns");
  }
  auto schema = std::make_shared<Schema>();
  for (size_t a = 0; a < num_attrs; ++a) {
    schema->AddAttribute(std::string(Trim(header[a])));
  }
  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::ParseError(StrFormat(
          "CSV '%s' line %zu: expected %zu fields, got %zu", path.c_str(),
          line_no, header.size(), fields.size()));
    }
    std::vector<std::string> labels(fields.begin(),
                                    fields.begin() + num_attrs);
    table.AppendRowLabels(labels);
    if (has_weight) {
      char* end = nullptr;
      double w = std::strtod(fields.back().c_str(), &end);
      if (end == fields.back().c_str()) {
        return Status::ParseError(
            StrFormat("CSV '%s' line %zu: bad weight '%s'", path.c_str(),
                      line_no, fields.back().c_str()));
      }
      table.set_weight(table.num_rows() - 1, w);
    }
  }
  return table;
}

}  // namespace themis::data
