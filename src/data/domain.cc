#include "data/domain.h"

#include "util/logging.h"

namespace themis::data {

Domain::Domain(std::string name, std::vector<std::string> labels)
    : name_(std::move(name)), labels_(std::move(labels)) {
  for (size_t i = 0; i < labels_.size(); ++i) {
    auto [it, inserted] =
        index_.emplace(labels_[i], static_cast<ValueCode>(i));
    THEMIS_CHECK(inserted) << "duplicate label '" << labels_[i]
                           << "' in domain " << name_;
  }
}

ValueCode Domain::Intern(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  ValueCode code = static_cast<ValueCode>(labels_.size());
  labels_.push_back(label);
  index_.emplace(label, code);
  return code;
}

Result<ValueCode> Domain::Code(const std::string& label) const {
  auto it = index_.find(label);
  if (it == index_.end()) {
    return Status::NotFound("value '" + label + "' not in domain of " +
                            name_);
  }
  return it->second;
}

bool Domain::Contains(const std::string& label) const {
  return index_.count(label) > 0;
}

std::vector<ValueCode> Domain::TranslateTo(const Domain& target) const {
  std::vector<ValueCode> out(labels_.size(), kNullCode);
  for (size_t c = 0; c < labels_.size(); ++c) {
    auto code = target.Code(labels_[c]);
    if (code.ok()) out[c] = *code;
  }
  return out;
}

const std::string& Domain::Label(ValueCode code) const {
  THEMIS_CHECK(code >= 0 && static_cast<size_t>(code) < labels_.size())
      << "code " << code << " out of range for domain " << name_;
  return labels_[static_cast<size_t>(code)];
}

}  // namespace themis::data
