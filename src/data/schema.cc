#include "data/schema.h"

#include "util/logging.h"

namespace themis::data {

size_t Schema::AddAttribute(const std::string& name) {
  THEMIS_CHECK(index_.count(name) == 0)
      << "duplicate attribute '" << name << "'";
  size_t idx = domains_.size();
  domains_.emplace_back(name);
  index_.emplace(name, idx);
  return idx;
}

size_t Schema::AddAttribute(const std::string& name,
                            std::vector<std::string> labels) {
  THEMIS_CHECK(index_.count(name) == 0)
      << "duplicate attribute '" << name << "'";
  size_t idx = domains_.size();
  domains_.emplace_back(name, std::move(labels));
  index_.emplace(name, idx);
  return idx;
}

Result<size_t> Schema::AttributeIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema");
  }
  return it->second;
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const auto& d : domains_) names.push_back(d.name());
  return names;
}

std::vector<size_t> Schema::DomainSizes(
    const std::vector<size_t>& attrs) const {
  std::vector<size_t> sizes;
  sizes.reserve(attrs.size());
  for (size_t a : attrs) sizes.push_back(domains_[a].size());
  return sizes;
}

}  // namespace themis::data
