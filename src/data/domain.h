#ifndef THEMIS_DATA_DOMAIN_H_
#define THEMIS_DATA_DOMAIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace themis::data {

/// Dictionary-encoded value: an index into the attribute's active domain.
/// Themis assumes each attribute's active domain is discrete and ordered
/// (Sec 3); continuous attributes are bucketized first.
using ValueCode = int32_t;
inline constexpr ValueCode kNullCode = -1;

/// The active domain of one attribute: its name and the ordered list of
/// distinct values (as display labels). Codes are positions in that list.
class Domain {
 public:
  Domain() = default;
  explicit Domain(std::string name) : name_(std::move(name)) {}
  Domain(std::string name, std::vector<std::string> labels);

  const std::string& name() const { return name_; }

  /// Number of distinct values N_i.
  size_t size() const { return labels_.size(); }

  /// Adds `label` if absent; returns its code either way.
  ValueCode Intern(const std::string& label);

  /// Code for `label`, or error if it is not in the active domain.
  Result<ValueCode> Code(const std::string& label) const;

  /// True if `label` is in the active domain.
  bool Contains(const std::string& label) const;

  /// Label for `code`. code must be in [0, size()).
  const std::string& Label(ValueCode code) const;

  const std::vector<std::string>& labels() const { return labels_; }

  /// Per-code translation into `target`'s code space: out[c] is the code
  /// of Label(c) in `target`, or kNullCode when that label is absent
  /// there. Lets join probes compare dictionary codes directly when the
  /// two sides' domains differ (label equality == translated-code
  /// equality, since labels are unique within a domain).
  std::vector<ValueCode> TranslateTo(const Domain& target) const;

 private:
  std::string name_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, ValueCode> index_;
};

}  // namespace themis::data

#endif  // THEMIS_DATA_DOMAIN_H_
