#ifndef THEMIS_DATA_CSV_H_
#define THEMIS_DATA_CSV_H_

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace themis::data {

/// Writes `table` to `path` as CSV: header row of attribute names plus a
/// trailing "weight" column; one row per tuple using display labels.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV produced by WriteCsv (or any header-first CSV whose final
/// column may optionally be named "weight"). Labels are interned into a
/// fresh schema.
Result<Table> ReadCsv(const std::string& path);

}  // namespace themis::data

#endif  // THEMIS_DATA_CSV_H_
