#ifndef THEMIS_OBS_TRACE_H_
#define THEMIS_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "util/cancel.h"

namespace themis::obs {

/// The serving stages a request's wall-clock decomposes into. Stage spans
/// may nest or repeat (a batch request records one kExecute span per
/// member; the executor records one kExecutorScan span per plan), so each
/// stage keeps a count alongside its summed duration.
enum class Stage {
  kParse = 0,            // wire line -> WireRequest
  kAdmission,            // parse end -> admission decision
  kQueueWait,            // admitted -> pool task starts running
  kPlanLookup,           // SQL -> plan (plan cache) + result-memo probe
  kSingleFlightWait,     // follower parked on another request's flight
  kExecute,              // uncached plan execution (evaluator level)
  kExecutorScan,         // sql::Executor shard-loop portion of kExecute
  kSerialize,            // QueryResult -> response line
  kCount,
};

constexpr size_t kNumStages = static_cast<size_t>(Stage::kCount);

/// Stable label used in METRICS ("stage" label value) and slow-log JSON.
const char* StageName(Stage stage);

/// Per-stage aggregate of one request's trace, with begin/end relative to
/// the trace's start so tests can assert span ordering.
struct StageSpan {
  uint64_t count = 0;
  int64_t total_ns = 0;
  int64_t first_begin_rel_ns = -1;  // -1 when the stage never ran
  int64_t last_end_rel_ns = -1;
};

/// One slow-query log entry: the request plus its per-stage breakdown.
struct SlowQueryEntry {
  std::string sql;
  std::string relation;
  std::string fingerprint;
  std::string status;  // "OK" or the error code name
  int64_t total_ns = 0;
  std::array<StageSpan, kNumStages> stages{};
};

/// Per-request trace record, carried alongside util::CancelToken through
/// the serving stack. Null pointer == tracing off for this request; every
/// recording site is a single null check in that case, which is what makes
/// the sampled-off overhead unmeasurable.
///
/// Thread-safety: RecordSpan may be called concurrently (batch members and
/// executor shards run on pool threads), so the per-stage accumulators are
/// relaxed atomics. SetPlanInfo/SetSql/set_status are single-writer (the
/// thread driving the request at that point in its lifecycle).
class TraceContext {
 public:
  TraceContext() : start_ns_(util::SteadyNowNs()) {}
  /// Anchors the trace at an earlier clock reading — the serving layer
  /// stamps the request line's arrival before it knows whether the
  /// request will be traced, then back-dates the trace to that stamp so
  /// relative span offsets cover the whole request.
  explicit TraceContext(int64_t start_ns) : start_ns_(start_ns) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  int64_t start_ns() const { return start_ns_; }

  /// Records one [begin_ns, end_ns] monotonic-clock span for a stage.
  void RecordSpan(Stage stage, int64_t begin_ns, int64_t end_ns);

  /// Called once the plan is known (on whichever pool thread resolved it).
  void SetPlanInfo(const std::string& relation, const std::string& fingerprint);

  void SetSql(std::string sql);
  void SetStatus(std::string status);

  /// Freezes this trace into a slow-log entry with `total_ns` end-to-end.
  SlowQueryEntry Finish(int64_t total_ns) const;

  /// Summed duration of a stage so far (tests and histogram flush).
  int64_t StageTotalNs(Stage stage) const;
  uint64_t StageCount(Stage stage) const;

 private:
  struct StageAccum {
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> total_ns{0};
    std::atomic<int64_t> first_begin_ns{std::numeric_limits<int64_t>::max()};
    std::atomic<int64_t> last_end_ns{std::numeric_limits<int64_t>::min()};
  };

  const int64_t start_ns_;
  std::array<StageAccum, kNumStages> stages_{};
  mutable std::mutex info_mu_;  // guards the strings below against Finish()
  std::string sql_;
  std::string relation_;
  std::string fingerprint_;
  std::string status_ = "OK";

  friend class TraceContextTestPeer;
};

/// RAII span: stamps the monotonic clock on entry and records on exit.
/// A null trace costs one pointer check and no clock reads.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, Stage stage)
      : trace_(trace),
        stage_(stage),
        begin_ns_(trace != nullptr ? util::SteadyNowNs() : 0) {}

  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->RecordSpan(stage_, begin_ns_, util::SteadyNowNs());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* trace_;
  Stage stage_;
  int64_t begin_ns_;
};

/// Bounded in-memory log of the K worst (slowest) traces seen so far.
/// Offer() keeps the top-K by total_ns under a mutex — called once per
/// *traced* request (sampled or over-threshold), so the lock is far off
/// the per-request fast path.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  /// Admits the entry if the log has room or the entry is slower than the
  /// current fastest resident. Returns true if admitted.
  bool Offer(SlowQueryEntry entry);

  /// Entries sorted slowest-first.
  std::vector<SlowQueryEntry> Snapshot() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;  // unordered; sorted on Snapshot
};

}  // namespace themis::obs

#endif  // THEMIS_OBS_TRACE_H_
