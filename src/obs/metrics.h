#ifndef THEMIS_OBS_METRICS_H_
#define THEMIS_OBS_METRICS_H_

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace themis::obs {

/// The server-owned aggregate the serving path records into: one
/// always-on end-to-end request-latency histogram, one histogram per
/// trace stage (fed only by traced requests), and the bounded slow-query
/// log. Lives for the server's lifetime; all members are internally
/// thread-safe.
struct ServingMetrics {
  explicit ServingMetrics(size_t slow_log_capacity)
      : slow_log(slow_log_capacity) {}

  Histogram request_latency;  // ns; recorded once per served request
  std::array<Histogram, kNumStages> stage_latency;  // ns; traced requests
  SlowQueryLog slow_log;
};

/// Prometheus text-format (0.0.4) builders. Each Append* emits the
/// `# HELP` / `# TYPE` header the first time a family name is used in
/// `out` is the caller's responsibility — callers group all samples of a
/// family together and call AppendHeader once before them.
namespace prom {

using Labels = std::vector<std::pair<std::string, std::string>>;

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const std::string& type);

void AppendSample(std::string* out, const std::string& name,
                  const Labels& labels, double value);

/// Emits one histogram family member (`name_bucket{...,le=...}` lines in
/// cumulative form plus `name_sum` / `name_count`) from a nanosecond
/// snapshot, converted to seconds over the default serving bucket ladder.
/// The fine log-linear bins are collapsed onto the ladder by assigning
/// each bin to the smallest `le` that covers its upper bound, so the
/// exposed buckets are conservative (never under-count a latency) and
/// monotone by construction.
void AppendHistogramNs(std::string* out, const std::string& name,
                       const Labels& labels, const Histogram::Snapshot& snap);

/// The ladder AppendHistogramNs exposes, in seconds (without +Inf).
const std::vector<double>& DefaultLatencyBucketsSeconds();

}  // namespace prom

}  // namespace themis::obs

#endif  // THEMIS_OBS_METRICS_H_
