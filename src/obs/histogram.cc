#include "obs/histogram.h"

#include <algorithm>

namespace themis::obs {

size_t Histogram::BucketIndex(int64_t value) {
  if (value < 64) return value < 0 ? 0 : static_cast<size_t>(value);
  const uint64_t v = static_cast<uint64_t>(value);
  const int msb = 63 - __builtin_clzll(v);  // >= 6 here
  const int shift = msb - 5;
  return 64 + static_cast<size_t>(msb - 6) * kSubBuckets +
         static_cast<size_t>((v >> shift) - kSubBuckets);
}

int64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 64) return static_cast<int64_t>(index);
  const size_t group = (index - 64) / kSubBuckets;
  const size_t sub = (index - 64) % kSubBuckets;
  const int shift = static_cast<int>(group) + 1;
  return (static_cast<int64_t>(sub + kSubBuckets + 1) << shift) - 1;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& shard = ShardForThisThread();
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.max.load(std::memory_order_relaxed);
  while (seen < value && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Shard& Histogram::ShardForThisThread() {
  // A cheap stable per-thread index: the address of a thread_local byte
  // hashes threads across shards without any registration step.
  static thread_local char tls_anchor;
  const auto key = reinterpret_cast<uintptr_t>(&tls_anchor);
  return shards_[(key >> 6) % kShards];
}

int64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=1 targets the last sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Never report past the true max (the last bucket's upper bound can
      // exceed it by the bucket width).
      return std::min(BucketUpperBound(i), max);
    }
  }
  return max;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot out;
  out.buckets.assign(kNumBuckets, 0);
  for (const Shard& shard : shards_) {
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

}  // namespace themis::obs
