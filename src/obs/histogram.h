#ifndef THEMIS_OBS_HISTOGRAM_H_
#define THEMIS_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace themis::obs {

/// Lock-cheap log-bucketed (HDR-style) latency histogram.
///
/// Bucketing is log-linear over non-negative integer values (nanoseconds
/// in the serving path): values below 64 get exact unit buckets, and every
/// power-of-two range above that is split into 32 equal sub-buckets, so
/// the recorded→reported relative error is bounded by 1/32 (~3.1%) at any
/// magnitude up to int64 range. The bucket index is pure integer math
/// (count-leading-zeros plus a shift) — no floats, no log() — so the same
/// value always lands in the same bucket on every platform.
///
/// Concurrency: Record() touches only relaxed atomics in one of a small
/// fixed set of cache-line-padded shards (picked per thread), so writer
/// threads almost never contend. Snapshot() merges the shards with plain
/// integer adds; because every per-bucket counter is an integer, merging
/// is exact and order-invariant — merging shard A into B gives bitwise
/// the same snapshot as B into A (proven by unit test).
class Histogram {
 public:
  /// Values 0..63 exact, then 32 sub-buckets per power of two up to the
  /// full int64 range: 64 + (62 - 5) * 32 buckets.
  static constexpr size_t kSubBuckets = 32;
  static constexpr size_t kNumBuckets = 64 + 57 * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index for a value; negative values clamp to bucket 0.
  static size_t BucketIndex(int64_t value);

  /// Inclusive upper bound of a bucket — the value Quantile() reports for
  /// samples that landed in it (>= every value the bucket can hold, so
  /// quantiles never under-report).
  static int64_t BucketUpperBound(size_t index);

  /// Records one sample. Wait-free except for the max update (a bounded
  /// CAS loop that only retries while the max is actually moving).
  void Record(int64_t value);

  /// A merged, immutable view. All integer state, so two snapshots can be
  /// combined exactly with Merge() in any order.
  struct Snapshot {
    uint64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    std::vector<uint64_t> buckets;  // kNumBuckets wide once populated

    /// Quantile in the recorded unit, q in [0, 1]. Reports the upper
    /// bound of the bucket holding the q-th sample (q=1 reports max
    /// exactly). Returns 0 on an empty snapshot.
    int64_t Quantile(double q) const;

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Exact integer merge; commutative and associative.
    void Merge(const Snapshot& other);
  };

  Snapshot TakeSnapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };

  static constexpr size_t kShards = 4;

  Shard& ShardForThisThread();

  std::array<Shard, kShards> shards_;
};

}  // namespace themis::obs

#endif  // THEMIS_OBS_HISTOGRAM_H_
