#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace themis::obs::prom {
namespace {

/// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendLabels(std::string* out, const Labels& labels) {
  if (labels.empty()) return;
  *out += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) *out += ',';
    *out += labels[i].first;
    *out += "=\"";
    *out += EscapeLabelValue(labels[i].second);
    *out += '"';
  }
  *out += '}';
}

std::string FormatNumber(double value) {
  char buf[64];
  // %.17g round-trips any double; trailing precision is harmless to
  // Prometheus parsers and keeps counts exact up to 2^53.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const std::string& type) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

void AppendSample(std::string* out, const std::string& name,
                  const Labels& labels, double value) {
  *out += name;
  AppendLabels(out, labels);
  *out += ' ';
  *out += FormatNumber(value);
  *out += '\n';
}

const std::vector<double>& DefaultLatencyBucketsSeconds() {
  static const std::vector<double> kBuckets = {
      1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
      1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,  1.0,  2.5,    5.0,
      10.0};
  return kBuckets;
}

void AppendHistogramNs(std::string* out, const std::string& name,
                       const Labels& labels, const Histogram::Snapshot& snap) {
  const std::vector<double>& ladder = DefaultLatencyBucketsSeconds();
  std::vector<uint64_t> per_le(ladder.size() + 1, 0);  // last = +Inf
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;
    const double upper_s =
        static_cast<double>(Histogram::BucketUpperBound(i)) * 1e-9;
    size_t slot = ladder.size();
    for (size_t j = 0; j < ladder.size(); ++j) {
      if (upper_s <= ladder[j]) {
        slot = j;
        break;
      }
    }
    per_le[slot] += snap.buckets[i];
  }
  uint64_t cumulative = 0;
  for (size_t j = 0; j < ladder.size(); ++j) {
    cumulative += per_le[j];
    Labels with_le = labels;
    with_le.emplace_back("le", FormatNumber(ladder[j]));
    AppendSample(out, name + "_bucket", with_le,
                 static_cast<double>(cumulative));
  }
  Labels inf = labels;
  inf.emplace_back("le", "+Inf");
  AppendSample(out, name + "_bucket", inf, static_cast<double>(snap.count));
  AppendSample(out, name + "_sum", labels,
               static_cast<double>(snap.sum) * 1e-9);
  AppendSample(out, name + "_count", labels, static_cast<double>(snap.count));
}

}  // namespace themis::obs::prom
