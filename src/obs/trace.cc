#include "obs/trace.h"

#include <algorithm>

namespace themis::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kAdmission:
      return "admission";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kPlanLookup:
      return "plan_lookup";
    case Stage::kSingleFlightWait:
      return "single_flight_wait";
    case Stage::kExecute:
      return "execute";
    case Stage::kExecutorScan:
      return "executor_scan";
    case Stage::kSerialize:
      return "serialize";
    case Stage::kCount:
      break;
  }
  return "?";
}

void TraceContext::RecordSpan(Stage stage, int64_t begin_ns, int64_t end_ns) {
  if (end_ns < begin_ns) end_ns = begin_ns;
  StageAccum& accum = stages_[static_cast<size_t>(stage)];
  accum.count.fetch_add(1, std::memory_order_relaxed);
  accum.total_ns.fetch_add(end_ns - begin_ns, std::memory_order_relaxed);
  int64_t seen = accum.first_begin_ns.load(std::memory_order_relaxed);
  while (begin_ns < seen && !accum.first_begin_ns.compare_exchange_weak(
                                seen, begin_ns, std::memory_order_relaxed)) {
  }
  seen = accum.last_end_ns.load(std::memory_order_relaxed);
  while (end_ns > seen && !accum.last_end_ns.compare_exchange_weak(
                              seen, end_ns, std::memory_order_relaxed)) {
  }
}

void TraceContext::SetPlanInfo(const std::string& relation,
                               const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(info_mu_);
  relation_ = relation;
  fingerprint_ = fingerprint;
}

void TraceContext::SetSql(std::string sql) {
  std::lock_guard<std::mutex> lock(info_mu_);
  sql_ = std::move(sql);
}

void TraceContext::SetStatus(std::string status) {
  std::lock_guard<std::mutex> lock(info_mu_);
  status_ = std::move(status);
}

SlowQueryEntry TraceContext::Finish(int64_t total_ns) const {
  SlowQueryEntry entry;
  {
    std::lock_guard<std::mutex> lock(info_mu_);
    entry.sql = sql_;
    entry.relation = relation_;
    entry.fingerprint = fingerprint_;
    entry.status = status_;
  }
  entry.total_ns = total_ns;
  for (size_t i = 0; i < kNumStages; ++i) {
    const StageAccum& accum = stages_[i];
    StageSpan& span = entry.stages[i];
    span.count = accum.count.load(std::memory_order_relaxed);
    span.total_ns = accum.total_ns.load(std::memory_order_relaxed);
    if (span.count > 0) {
      span.first_begin_rel_ns =
          accum.first_begin_ns.load(std::memory_order_relaxed) - start_ns_;
      span.last_end_rel_ns =
          accum.last_end_ns.load(std::memory_order_relaxed) - start_ns_;
    }
  }
  return entry;
}

int64_t TraceContext::StageTotalNs(Stage stage) const {
  return stages_[static_cast<size_t>(stage)].total_ns.load(
      std::memory_order_relaxed);
}

uint64_t TraceContext::StageCount(Stage stage) const {
  return stages_[static_cast<size_t>(stage)].count.load(
      std::memory_order_relaxed);
}

bool SlowQueryLog::Offer(SlowQueryEntry entry) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return true;
  }
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.total_ns < b.total_ns;
      });
  if (fastest->total_ns >= entry.total_ns) return false;
  *fastest = std::move(entry);
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
                     return a.total_ns > b.total_ns;
                   });
  return out;
}

}  // namespace themis::obs
