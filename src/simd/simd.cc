#include "simd/simd.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace themis::simd {

namespace {

// --- Scalar reference kernels -----------------------------------------
// The bitwise oracle: every other backend must produce byte-identical
// output (tests/simd_test.cc). Also the fallback on hosts with no SIMD.

size_t FilterScanScalar(const int32_t* col, uint32_t lo, uint32_t hi,
                        const uint8_t* match, uint32_t domain_size,
                        uint32_t* out) {
  size_t n = 0;
  for (uint32_t r = lo; r < hi; ++r) {
    const int32_t c = col[r];
    // One unsigned compare covers both c < 0 and c >= domain_size
    // (domains never approach 2^31 codes).
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      out[n++] = r;
    }
  }
  return n;
}

size_t FilterCompactScalar(const int32_t* col, const uint8_t* match,
                           uint32_t domain_size, uint32_t* sel, size_t n) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = sel[i];
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      sel[out++] = r;
    }
  }
  return out;
}

void GatherPackScalar(const int32_t* col, const uint32_t* sel, size_t n,
                      uint32_t shift, uint64_t* keys, bool first) {
  if (first) {
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint64_t>(static_cast<uint32_t>(col[sel[i]]))
                << shift;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      keys[i] |= static_cast<uint64_t>(static_cast<uint32_t>(col[sel[i]]))
                 << shift;
    }
  }
}

void GatherCodesScalar(const int32_t* col, const uint32_t* sel, size_t n,
                       int32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = col[sel[i]];
}

void TranslateCodesScalar(const int32_t* in, const int32_t* table, size_t n,
                          int32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = table[in[i]];
}

void GatherDoublesScalar(const double* table, const uint32_t* idx, size_t n,
                         double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = table[idx[i]];
}

void GatherNumericScalar(const int32_t* col, const uint32_t* sel,
                         const double* table, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = table[col[sel[i]]];
}

constexpr Kernels kScalarKernels = {
    Backend::kScalar,     FilterScanScalar,    FilterCompactScalar,
    GatherPackScalar,     GatherCodesScalar,   TranslateCodesScalar,
    GatherDoublesScalar,  GatherNumericScalar,
};

}  // namespace

const Kernels& ScalarKernels() { return kScalarKernels; }

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse4: return "sse4";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "scalar";
}

bool Supported(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse4:
#if defined(__x86_64__) || defined(_M_X64)
      return Sse4KernelsOrNull() != nullptr &&
             __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return Avx2KernelsOrNull() != nullptr && __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
      return NeonKernelsOrNull() != nullptr;
  }
  return false;
}

Backend BestSupported() {
  if (Supported(Backend::kAvx2)) return Backend::kAvx2;
  if (Supported(Backend::kSse4)) return Backend::kSse4;
  if (Supported(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend ParseBackend(const char* name, bool* ok) {
  std::string lower;
  for (const char* p = name; p != nullptr && *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (ok != nullptr) *ok = true;
  if (lower == "scalar") return Backend::kScalar;
  if (lower == "sse4") return Backend::kSse4;
  if (lower == "avx2") return Backend::kAvx2;
  if (lower == "neon") return Backend::kNeon;
  if (ok != nullptr) *ok = lower.empty() || lower == "auto";
  return BestSupported();
}

Backend FromEnv() {
  const char* env = std::getenv("THEMIS_SIMD");
  const Backend requested =
      env != nullptr ? ParseBackend(env) : BestSupported();
  return KernelsFor(requested).backend;
}

const Kernels& KernelsFor(Backend backend) {
  // Degrade an unsupported request to the nearest supported backend so a
  // THEMIS_SIMD pin from another machine's config still runs.
  while (true) {
    if (Supported(backend)) {
      switch (backend) {
        case Backend::kScalar: return kScalarKernels;
        case Backend::kSse4: return *Sse4KernelsOrNull();
        case Backend::kAvx2: return *Avx2KernelsOrNull();
        case Backend::kNeon: return *NeonKernelsOrNull();
      }
    }
    switch (backend) {
      case Backend::kAvx2: backend = Backend::kSse4; break;
      default: return kScalarKernels;
    }
  }
}

}  // namespace themis::simd
