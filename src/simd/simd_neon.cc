// NEON kernel backend (AArch64): 4-lane filter compare with tbl-based
// compaction. NEON has no hardware gather, so the gather/translate
// kernels reuse the scalar implementations. On non-AArch64 builds this
// translation unit degenerates to a null table.
#include "simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace themis::simd {

namespace {

/// kCompact.shuf[mask] is a byte table for vqtbl1q_u8 that moves the
/// 4-byte lanes whose mask bit is set to the front, order preserved.
struct CompactLut {
  alignas(16) uint8_t shuf[16][16];
  constexpr CompactLut() : shuf() {
    for (int mask = 0; mask < 16; ++mask) {
      int k = 0;
      for (int bit = 0; bit < 4; ++bit) {
        if (mask & (1 << bit)) {
          for (int b = 0; b < 4; ++b) {
            shuf[mask][4 * k + b] = static_cast<uint8_t>(4 * bit + b);
          }
          ++k;
        }
      }
      for (; k < 4; ++k) {
        for (int b = 0; b < 4; ++b) shuf[mask][4 * k + b] = 0;
      }
    }
  }
};
constexpr CompactLut kCompact;

/// 4-bit pass mask for 4 codes: vectorized bounds check, scalar
/// match-byte lookups on the verified lanes (NEON has no gather).
inline int PassMask(int32x4_t codes, int32x4_t vsize, const uint8_t* match) {
  const uint32x4_t nonneg = vcgeq_s32(codes, vdupq_n_s32(0));
  const uint32x4_t below = vcltq_s32(codes, vsize);
  const uint32x4_t valid = vandq_u32(nonneg, below);
  // Collapse each lane's all-ones/all-zeros to one bit.
  const uint32x4_t bits = vandq_u32(
      valid, (uint32x4_t){1u, 2u, 4u, 8u});
  int mask = static_cast<int>(vaddvq_u32(bits));
  if (mask & 1) mask &= ~(match[vgetq_lane_s32(codes, 0)] ? 0 : 1);
  if (mask & 2) mask &= ~(match[vgetq_lane_s32(codes, 1)] ? 0 : 2);
  if (mask & 4) mask &= ~(match[vgetq_lane_s32(codes, 2)] ? 0 : 4);
  if (mask & 8) mask &= ~(match[vgetq_lane_s32(codes, 3)] ? 0 : 8);
  return mask;
}

size_t FilterScanNeon(const int32_t* col, uint32_t lo, uint32_t hi,
                      const uint8_t* match, uint32_t domain_size,
                      uint32_t* out) {
  const int32x4_t vsize = vdupq_n_s32(static_cast<int32_t>(domain_size));
  const uint32x4_t iota = {0u, 1u, 2u, 3u};
  size_t n = 0;
  uint32_t r = lo;
  for (; r + 4 <= hi; r += 4) {
    const int32x4_t codes = vld1q_s32(col + r);
    const int mask = PassMask(codes, vsize, match);
    const uint32x4_t rows = vaddq_u32(vdupq_n_u32(r), iota);
    const uint8x16_t shuf = vld1q_u8(kCompact.shuf[mask]);
    // Full 4-lane store; n <= r - lo keeps it inside hi - lo capacity.
    vst1q_u32(out + n, vreinterpretq_u32_u8(vqtbl1q_u8(
                           vreinterpretq_u8_u32(rows), shuf)));
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; r < hi; ++r) {
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      out[n++] = r;
    }
  }
  return n;
}

size_t FilterCompactNeon(const int32_t* col, const uint8_t* match,
                         uint32_t domain_size, uint32_t* sel, size_t n) {
  const int32x4_t vsize = vdupq_n_s32(static_cast<int32_t>(domain_size));
  size_t out = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t rows = vld1q_u32(sel + i);
    const int32_t gathered[4] = {col[sel[i]], col[sel[i + 1]],
                                 col[sel[i + 2]], col[sel[i + 3]]};
    const int32x4_t codes = vld1q_s32(gathered);
    const int mask = PassMask(codes, vsize, match);
    const uint8x16_t shuf = vld1q_u8(kCompact.shuf[mask]);
    // In place is safe: out <= i and the source lanes are in registers.
    vst1q_u32(sel + out, vreinterpretq_u32_u8(vqtbl1q_u8(
                             vreinterpretq_u8_u32(rows), shuf)));
    out += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const uint32_t r = sel[i];
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      sel[out++] = r;
    }
  }
  return out;
}

}  // namespace

const Kernels* NeonKernelsOrNull() {
  static const Kernels kernels = [] {
    Kernels k = ScalarKernels();
    k.backend = Backend::kNeon;
    k.FilterScan = FilterScanNeon;
    k.FilterCompact = FilterCompactNeon;
    return k;
  }();
  return &kernels;
}

}  // namespace themis::simd

#else  // !defined(__aarch64__)

namespace themis::simd {
const Kernels* NeonKernelsOrNull() { return nullptr; }
}  // namespace themis::simd

#endif
