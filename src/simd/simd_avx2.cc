// AVX2 kernel backend: 8-lane filter compare + movemask/permute
// compaction, hardware gathers for codes/doubles, and 4-lane 64-bit
// shift-or key packing. Compiled with -mavx2 (see CMakeLists); on other
// architectures this translation unit degenerates to a null table.
#include "simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace themis::simd {

namespace {

/// kCompact.idx[mask] permutes the lanes whose mask bit is set to the
/// front (order preserved) — the standard movemask-indexed compaction
/// table for _mm256_permutevar8x32_epi32.
struct CompactLut {
  alignas(32) uint32_t idx[256][8];
  constexpr CompactLut() : idx() {
    for (int mask = 0; mask < 256; ++mask) {
      int k = 0;
      for (int bit = 0; bit < 8; ++bit) {
        if (mask & (1 << bit)) idx[mask][k++] = static_cast<uint32_t>(bit);
      }
      for (; k < 8; ++k) idx[mask][k] = 0;
    }
  }
};
constexpr CompactLut kCompact;

/// 8-bit pass mask for 8 codes: lane passes when 0 <= c < domain_size and
/// match[c] != 0. Lanes failing the bounds check are masked out of the
/// gather, so no out-of-range byte is ever read.
inline int PassMask(__m256i codes, __m256i vsize, const uint8_t* match) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i negative = _mm256_cmpgt_epi32(zero, codes);
  const __m256i below = _mm256_cmpgt_epi32(vsize, codes);
  const __m256i valid = _mm256_andnot_si256(negative, below);
  // 32-bit gather from the byte table (reads match[c..c+3]; the table is
  // padded by kMatchPadBytes); keep only the addressed byte.
  const __m256i gathered = _mm256_mask_i32gather_epi32(
      zero, reinterpret_cast<const int*>(match), codes, valid, 1);
  const __m256i byte0 =
      _mm256_and_si256(gathered, _mm256_set1_epi32(0xFF));
  const __m256i pass =
      _mm256_andnot_si256(_mm256_cmpeq_epi32(byte0, zero), valid);
  return _mm256_movemask_ps(_mm256_castsi256_ps(pass));
}

size_t FilterScanAvx2(const int32_t* col, uint32_t lo, uint32_t hi,
                      const uint8_t* match, uint32_t domain_size,
                      uint32_t* out) {
  const __m256i vsize = _mm256_set1_epi32(static_cast<int32_t>(domain_size));
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  size_t n = 0;
  uint32_t r = lo;
  for (; r + 8 <= hi; r += 8) {
    const __m256i codes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    const int mask = PassMask(codes, vsize, match);
    const __m256i rows =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int32_t>(r)), iota);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
    // Full 8-lane store: with n <= r - lo and r + 8 <= hi, the write stays
    // inside the caller's hi - lo capacity.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n),
                        _mm256_permutevar8x32_epi32(rows, perm));
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; r < hi; ++r) {
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      out[n++] = r;
    }
  }
  return n;
}

size_t FilterCompactAvx2(const int32_t* col, const uint8_t* match,
                         uint32_t domain_size, uint32_t* sel, size_t n) {
  const __m256i vsize = _mm256_set1_epi32(static_cast<int32_t>(domain_size));
  size_t out = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rows =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i codes =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(col), rows, 4);
    const int mask = PassMask(codes, vsize, match);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
    // In place is safe: out <= i, and the 8 source lanes are already in
    // registers.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + out),
                        _mm256_permutevar8x32_epi32(rows, perm));
    out += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const uint32_t r = sel[i];
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      sel[out++] = r;
    }
  }
  return out;
}

void GatherPackAvx2(const int32_t* col, const uint32_t* sel, size_t n,
                    uint32_t shift, uint64_t* keys, bool first) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rows =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i codes =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(col), rows, 4);
    const __m256i lo =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(codes));
    const __m256i hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(codes, 1));
    const __m256i lo_term = _mm256_sll_epi64(lo, count);
    const __m256i hi_term = _mm256_sll_epi64(hi, count);
    __m256i* dst = reinterpret_cast<__m256i*>(keys + i);
    if (first) {
      _mm256_storeu_si256(dst, lo_term);
      _mm256_storeu_si256(dst + 1, hi_term);
    } else {
      _mm256_storeu_si256(
          dst, _mm256_or_si256(_mm256_loadu_si256(dst), lo_term));
      _mm256_storeu_si256(
          dst + 1, _mm256_or_si256(_mm256_loadu_si256(dst + 1), hi_term));
    }
  }
  for (; i < n; ++i) {
    const uint64_t term =
        static_cast<uint64_t>(static_cast<uint32_t>(col[sel[i]])) << shift;
    if (first) {
      keys[i] = term;
    } else {
      keys[i] |= term;
    }
  }
}

void GatherCodesAvx2(const int32_t* col, const uint32_t* sel, size_t n,
                     int32_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rows =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(col), rows, 4));
  }
  for (; i < n; ++i) out[i] = col[sel[i]];
}

void TranslateCodesAvx2(const int32_t* in, const int32_t* table, size_t n,
                        int32_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i codes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(table), codes,
                               4));
  }
  for (; i < n; ++i) out[i] = table[in[i]];
}

/// All-lanes double gather via the masked form: the plain
/// _mm256_i32gather_pd expands to _mm256_undefined_pd in GCC's headers
/// and trips -Wmaybe-uninitialized there.
inline __m256d GatherPd(const double* table, __m128i idx4) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), table, idx4,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

void GatherDoublesAvx2(const double* table, const uint32_t* idx, size_t n,
                       double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, GatherPd(table, idx4));
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

void GatherNumericAvx2(const int32_t* col, const uint32_t* sel,
                       const double* table, size_t n, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i rows4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __m128i codes4 =
        _mm_i32gather_epi32(reinterpret_cast<const int*>(col), rows4, 4);
    _mm256_storeu_pd(out + i, GatherPd(table, codes4));
  }
  for (; i < n; ++i) out[i] = table[col[sel[i]]];
}

constexpr Kernels kAvx2Kernels = {
    Backend::kAvx2,     FilterScanAvx2,    FilterCompactAvx2,
    GatherPackAvx2,     GatherCodesAvx2,   TranslateCodesAvx2,
    GatherDoublesAvx2,  GatherNumericAvx2,
};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace themis::simd

#else  // !defined(__AVX2__)

namespace themis::simd {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace themis::simd

#endif
