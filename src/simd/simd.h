#ifndef THEMIS_SIMD_SIMD_H_
#define THEMIS_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace themis::simd {

/// The instruction-set backends the kernel layer can run on. Exactly one
/// is selected per consumer (dispatch-by-capability: AVX2 > SSE4 > scalar
/// on x86, NEON > scalar on AArch64), overridable with THEMIS_SIMD.
enum class Backend { kScalar = 0, kSse4 = 1, kAvx2 = 2, kNeon = 3 };

/// FilterScan/FilterCompact may read up to this many bytes past
/// match[domain_size - 1] (the AVX2 path gathers 32-bit lanes from the
/// byte table); callers must pad their match tables accordingly.
inline constexpr size_t kMatchPadBytes = 4;

/// The vectorized inner-loop kernels of the code-native executor, as a
/// table of function pointers bound to one backend. Every kernel moves or
/// compares integers / copies doubles bit-for-bit — no kernel performs
/// float arithmetic — so each backend's output is bitwise identical to
/// the scalar table's by construction; tests/simd_test.cc proves it on
/// adversarial inputs and executor_diff_test proves the end-to-end
/// contract simd == scalar == reference.
///
/// Common contracts: `sel` holds row ids valid for every indexed array;
/// row ids and codes must be < 2^31 (the AVX2 gathers take signed 32-bit
/// indices); `n` may be 0; no alignment requirements on any pointer.
struct Kernels {
  Backend backend = Backend::kScalar;

  /// Scans col[lo, hi) and writes the ascending row ids whose code c
  /// satisfies 0 <= c < domain_size && match[c] != 0 to `out`, returning
  /// how many passed. `out` must have capacity hi - lo; `match` must be
  /// padded by kMatchPadBytes.
  size_t (*FilterScan)(const int32_t* col, uint32_t lo, uint32_t hi,
                       const uint8_t* match, uint32_t domain_size,
                       uint32_t* out);

  /// Compacts sel[0, n) in place to the row ids passing the match table
  /// (same predicate as FilterScan), preserving order; returns the new
  /// count. `match` must be padded by kMatchPadBytes.
  size_t (*FilterCompact)(const int32_t* col, const uint8_t* match,
                          uint32_t domain_size, uint32_t* sel, size_t n);

  /// Packed-key gather: keys[i] op= uint64(uint32(col[sel[i]])) << shift
  /// for i in [0, n), where op is = when `first` (the key's first
  /// component) and |= otherwise. shift < 64. Codes must be non-negative.
  void (*GatherPack)(const int32_t* col, const uint32_t* sel, size_t n,
                     uint32_t shift, uint64_t* keys, bool first);

  /// out[i] = col[sel[i]].
  void (*GatherCodes)(const int32_t* col, const uint32_t* sel, size_t n,
                      int32_t* out);

  /// out[i] = table[in[i]]; every in[i] must be a valid table index
  /// (the executor's per-domain code translations guarantee this).
  void (*TranslateCodes)(const int32_t* in, const int32_t* table, size_t n,
                         int32_t* out);

  /// out[i] = table[idx[i]] over doubles (weight gather).
  void (*GatherDoubles)(const double* table, const uint32_t* idx, size_t n,
                        double* out);

  /// out[i] = table[col[sel[i]]] over doubles (per-code numeric cache
  /// lookup); every gathered code must be a valid table index.
  void (*GatherNumeric)(const int32_t* col, const uint32_t* sel,
                        const double* table, size_t n, double* out);
};

/// Wire/log name of a backend: "scalar", "sse4", "avx2", "neon".
const char* BackendName(Backend backend);

/// True when the host CPU can execute `backend` (scalar always can).
bool Supported(Backend backend);

/// The most capable backend the host supports.
Backend BestSupported();

/// Parses "auto" / "scalar" / "sse4" / "avx2" / "neon" (case-insensitive).
/// "auto", empty, and unknown names resolve to BestSupported(); `ok` (when
/// non-null) reports whether the name was recognized.
Backend ParseBackend(const char* name, bool* ok = nullptr);

/// Resolves the THEMIS_SIMD environment variable (unset = "auto") to a
/// supported backend. A request the host cannot execute degrades to the
/// nearest supported backend (avx2 -> sse4 -> scalar, neon -> scalar).
/// Callers snapshot this once (the Executor does so at construction, like
/// THEMIS_SHARD_ROWS) so a mid-run setenv cannot change live kernels.
Backend FromEnv();

/// The kernel table for `backend`, degraded to the nearest supported
/// backend when the host cannot execute it. The returned reference is to
/// a static table and stays valid forever.
const Kernels& KernelsFor(Backend backend);

/// Implementation detail shared by the per-ISA translation units: the
/// scalar reference kernels (always available; the bitwise oracle every
/// other backend is tested against), and the per-ISA tables, null when
/// the backend was not compiled in.
const Kernels& ScalarKernels();
const Kernels* Sse4KernelsOrNull();
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();

}  // namespace themis::simd

#endif  // THEMIS_SIMD_SIMD_H_
