// SSE4 kernel backend: 4-lane filter compare with byte-shuffle
// compaction. SSE4 has no hardware gather, so the gather/translate
// kernels reuse the scalar implementations — the filter loops are where
// a 128-bit ISA still wins. Compiled with -msse4.2 (see CMakeLists).
#include "simd/simd.h"

#if defined(__SSE4_1__)

#include <smmintrin.h>

namespace themis::simd {

namespace {

/// kCompact.shuf[mask] is a byte shuffle for _mm_shuffle_epi8 that moves
/// the 4-byte lanes whose mask bit is set to the front, order preserved.
struct CompactLut {
  alignas(16) uint8_t shuf[16][16];
  constexpr CompactLut() : shuf() {
    for (int mask = 0; mask < 16; ++mask) {
      int k = 0;
      for (int bit = 0; bit < 4; ++bit) {
        if (mask & (1 << bit)) {
          for (int b = 0; b < 4; ++b) {
            shuf[mask][4 * k + b] = static_cast<uint8_t>(4 * bit + b);
          }
          ++k;
        }
      }
      for (; k < 4; ++k) {
        for (int b = 0; b < 4; ++b) shuf[mask][4 * k + b] = 0;
      }
    }
  }
};
constexpr CompactLut kCompact;

/// 4-bit pass mask for 4 codes. The bounds check is vectorized; the
/// match-byte lookups are scalar (no gather before AVX2) but branch-free
/// on the already-verified lanes.
inline int PassMask(__m128i codes, __m128i vsize, const uint8_t* match) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i negative = _mm_cmpgt_epi32(zero, codes);
  const __m128i below = _mm_cmpgt_epi32(vsize, codes);
  const __m128i valid = _mm_andnot_si128(negative, below);
  int mask = _mm_movemask_ps(_mm_castsi128_ps(valid));
  if (mask & 1) mask &= ~(match[_mm_extract_epi32(codes, 0)] ? 0 : 1);
  if (mask & 2) mask &= ~(match[_mm_extract_epi32(codes, 1)] ? 0 : 2);
  if (mask & 4) mask &= ~(match[_mm_extract_epi32(codes, 2)] ? 0 : 4);
  if (mask & 8) mask &= ~(match[_mm_extract_epi32(codes, 3)] ? 0 : 8);
  return mask;
}

size_t FilterScanSse4(const int32_t* col, uint32_t lo, uint32_t hi,
                      const uint8_t* match, uint32_t domain_size,
                      uint32_t* out) {
  const __m128i vsize = _mm_set1_epi32(static_cast<int32_t>(domain_size));
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  size_t n = 0;
  uint32_t r = lo;
  for (; r + 4 <= hi; r += 4) {
    const __m128i codes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    const int mask = PassMask(codes, vsize, match);
    const __m128i rows =
        _mm_add_epi32(_mm_set1_epi32(static_cast<int32_t>(r)), iota);
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompact.shuf[mask]));
    // Full 4-lane store; n <= r - lo keeps it inside hi - lo capacity.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                     _mm_shuffle_epi8(rows, shuf));
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; r < hi; ++r) {
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      out[n++] = r;
    }
  }
  return n;
}

size_t FilterCompactSse4(const int32_t* col, const uint8_t* match,
                         uint32_t domain_size, uint32_t* sel, size_t n) {
  const __m128i vsize = _mm_set1_epi32(static_cast<int32_t>(domain_size));
  size_t out = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i rows =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __m128i codes = _mm_setr_epi32(
        col[sel[i]], col[sel[i + 1]], col[sel[i + 2]], col[sel[i + 3]]);
    const int mask = PassMask(codes, vsize, match);
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompact.shuf[mask]));
    // In place is safe: out <= i and the source lanes are in registers.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + out),
                     _mm_shuffle_epi8(rows, shuf));
    out += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const uint32_t r = sel[i];
    const int32_t c = col[r];
    if (static_cast<uint32_t>(c) < domain_size && match[c] != 0) {
      sel[out++] = r;
    }
  }
  return out;
}

}  // namespace

const Kernels* Sse4KernelsOrNull() {
  static const Kernels kernels = [] {
    Kernels k = ScalarKernels();
    k.backend = Backend::kSse4;
    k.FilterScan = FilterScanSse4;
    k.FilterCompact = FilterCompactSse4;
    return k;
  }();
  return &kernels;
}

}  // namespace themis::simd

#else  // !defined(__SSE4_1__)

namespace themis::simd {
const Kernels* Sse4KernelsOrNull() { return nullptr; }
}  // namespace themis::simd

#endif
