#ifndef THEMIS_STATS_INFO_H_
#define THEMIS_STATS_INFO_H_

#include "stats/freq_table.h"

namespace themis::stats {

/// Shannon entropy H(X) in nats of a distribution (normalizes internally;
/// requires positive total mass).
double Entropy(const FreqTable& dist);

/// Information content I(X_C) = sum_i H(X_i) - H(X_C) (Sec 5.1). The
/// higher-order generalization of mutual information used to score t-cherry
/// cluster-separator pairs.
double InformationContent(const FreqTable& joint);

/// Mutual information I(X;Y) of a 2-attribute joint distribution.
double MutualInformation(const FreqTable& joint2d);

/// KL divergence KL(p || q) in nats over matching attribute sets. Mass in p
/// outside q's support contributes +infinity unless `epsilon` > 0, in which
/// case q is smoothed by epsilon per group.
double KlDivergence(const FreqTable& p, const FreqTable& q,
                    double epsilon = 0.0);

}  // namespace themis::stats

#endif  // THEMIS_STATS_INFO_H_
