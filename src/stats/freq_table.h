#ifndef THEMIS_STATS_FREQ_TABLE_H_
#define THEMIS_STATS_FREQ_TABLE_H_

#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "data/tuple_key.h"

namespace themis::stats {

/// A (possibly unnormalized) distribution over the joint values of a subset
/// of attributes. Keys are value-code tuples in the order of `attrs`.
class FreqTable {
 public:
  FreqTable() = default;
  explicit FreqTable(std::vector<size_t> attrs) : attrs_(std::move(attrs)) {}

  /// Builds from a weighted table: mass of a key = sum of row weights.
  static FreqTable FromTable(const data::Table& table,
                             const std::vector<size_t>& attrs);

  const std::vector<size_t>& attrs() const { return attrs_; }

  void Add(const data::TupleKey& key, double mass);
  double Mass(const data::TupleKey& key) const;
  double TotalMass() const;
  size_t num_groups() const { return mass_.size(); }

  /// Returns a copy scaled so TotalMass() == 1 (requires positive mass).
  FreqTable Normalized() const;

  /// Marginalizes onto the attribute subset `keep` (indices into the
  /// original table's schema, must be a subset of attrs()).
  FreqTable MarginalizeTo(const std::vector<size_t>& keep) const;

  const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
  entries() const {
    return mass_;
  }

 private:
  std::vector<size_t> attrs_;
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> mass_;
};

}  // namespace themis::stats

#endif  // THEMIS_STATS_FREQ_TABLE_H_
