#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace themis::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double pct) {
  THEMIS_CHECK(!xs.empty());
  THEMIS_CHECK(pct >= 0 && pct <= 100);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50); }

BoxplotSummary Summarize(const std::vector<double>& xs) {
  BoxplotSummary s;
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = Percentile(sorted, 25);
  s.median = Percentile(sorted, 50);
  s.p75 = Percentile(sorted, 75);
  s.mean = Mean(sorted);
  return s;
}

std::string BoxplotSummary::ToString() const {
  return StrFormat("%7.2f /%7.2f /%7.2f /%7.2f /%7.2f  (mean %7.2f)", min,
                   p25, median, p75, max, mean);
}

}  // namespace themis::stats
