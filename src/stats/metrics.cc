#include "stats/metrics.h"

#include <cmath>

namespace themis::stats {

double PercentDifference(double truth, double estimate) {
  if (truth == 0.0 && estimate == 0.0) return 0.0;
  const double denom = std::abs(truth + estimate);
  if (denom == 0.0) return kMaxPercentDifference;
  const double pd = 200.0 * std::abs(truth - estimate) / denom;
  return std::min(pd, kMaxPercentDifference);
}

double GroupByPercentDifference(
    const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
        truth,
    const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
        estimate) {
  if (truth.empty() && estimate.empty()) return 0.0;
  double total = 0;
  size_t count = 0;
  for (const auto& [key, tv] : truth) {
    auto it = estimate.find(key);
    total += (it == estimate.end()) ? kMaxPercentDifference
                                    : PercentDifference(tv, it->second);
    ++count;
  }
  for (const auto& [key, ev] : estimate) {
    if (truth.count(key) == 0) {
      total += kMaxPercentDifference;  // phantom group
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace themis::stats
