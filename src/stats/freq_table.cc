#include "stats/freq_table.h"

#include <algorithm>

#include "util/logging.h"

namespace themis::stats {

FreqTable FreqTable::FromTable(const data::Table& table,
                               const std::vector<size_t>& attrs) {
  FreqTable out(attrs);
  auto groups = table.GroupWeights(attrs);
  out.mass_ = std::move(groups);
  return out;
}

void FreqTable::Add(const data::TupleKey& key, double mass) {
  THEMIS_DCHECK(key.size() == attrs_.size());
  mass_[key] += mass;
}

double FreqTable::Mass(const data::TupleKey& key) const {
  auto it = mass_.find(key);
  return it == mass_.end() ? 0.0 : it->second;
}

double FreqTable::TotalMass() const {
  double s = 0;
  for (const auto& [k, v] : mass_) s += v;
  return s;
}

FreqTable FreqTable::Normalized() const {
  double total = TotalMass();
  THEMIS_CHECK(total > 0) << "cannot normalize empty distribution";
  FreqTable out(attrs_);
  for (const auto& [k, v] : mass_) out.mass_[k] = v / total;
  return out;
}

FreqTable FreqTable::MarginalizeTo(const std::vector<size_t>& keep) const {
  // Positions of kept attributes inside our keys.
  std::vector<size_t> positions;
  positions.reserve(keep.size());
  for (size_t attr : keep) {
    auto it = std::find(attrs_.begin(), attrs_.end(), attr);
    THEMIS_CHECK(it != attrs_.end())
        << "attribute " << attr << " not in this FreqTable";
    positions.push_back(static_cast<size_t>(it - attrs_.begin()));
  }
  FreqTable out(keep);
  for (const auto& [key, v] : mass_) {
    data::TupleKey sub(positions.size());
    for (size_t i = 0; i < positions.size(); ++i) sub[i] = key[positions[i]];
    out.mass_[sub] += v;
  }
  return out;
}

}  // namespace themis::stats
