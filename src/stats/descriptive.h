#ifndef THEMIS_STATS_DESCRIPTIVE_H_
#define THEMIS_STATS_DESCRIPTIVE_H_

#include <string>
#include <vector>

namespace themis::stats {

/// Mean of `xs` (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Linear-interpolated percentile, pct in [0, 100]. Requires non-empty xs.
double Percentile(std::vector<double> xs, double pct);

/// Median (50th percentile).
double Median(std::vector<double> xs);

/// Five-number boxplot summary plus mean; what Figs 3/4/14 of the paper
/// display per method/sample combination.
struct BoxplotSummary {
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
  double mean = 0;

  /// Single-line rendering: "min/p25/med/p75/max (mean)".
  std::string ToString() const;
};

BoxplotSummary Summarize(const std::vector<double>& xs);

}  // namespace themis::stats

#endif  // THEMIS_STATS_DESCRIPTIVE_H_
