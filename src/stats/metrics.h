#ifndef THEMIS_STATS_METRICS_H_
#define THEMIS_STATS_METRICS_H_

#include <unordered_map>

#include "data/tuple_key.h"

namespace themis::stats {

/// Maximum value of the percent-difference metric; attained by missed
/// groups (in truth, absent from the estimate) and phantom groups (in the
/// estimate, absent from the truth).
inline constexpr double kMaxPercentDifference = 200.0;

/// The paper's error metric (Sec 6.3): percent difference
///   200 * |true - est| / |true + est|
/// chosen over percent error so that small true values are not
/// over-weighted and missed/phantom groups saturate at 200.
double PercentDifference(double truth, double estimate);

/// Average percent difference across the union of groups in a truth and an
/// estimated GROUP BY answer. Groups only in the truth (missed) or only in
/// the estimate (phantom) contribute the maximum error of 200 (Sec 6.3).
double GroupByPercentDifference(
    const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
        truth,
    const std::unordered_map<data::TupleKey, double, data::TupleKeyHash>&
        estimate);

}  // namespace themis::stats

#endif  // THEMIS_STATS_METRICS_H_
