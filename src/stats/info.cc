#include "stats/info.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace themis::stats {

double Entropy(const FreqTable& dist) {
  const double total = dist.TotalMass();
  THEMIS_CHECK(total > 0) << "entropy of empty distribution";
  double h = 0;
  for (const auto& [k, v] : dist.entries()) {
    if (v <= 0) continue;
    const double p = v / total;
    h -= p * std::log(p);
  }
  return h;
}

double InformationContent(const FreqTable& joint) {
  double sum_marginals = 0;
  for (size_t attr : joint.attrs()) {
    sum_marginals += Entropy(joint.MarginalizeTo({attr}));
  }
  return sum_marginals - Entropy(joint);
}

double MutualInformation(const FreqTable& joint2d) {
  THEMIS_CHECK(joint2d.attrs().size() == 2)
      << "MutualInformation expects a 2D joint";
  return InformationContent(joint2d);
}

double KlDivergence(const FreqTable& p, const FreqTable& q, double epsilon) {
  const double pt = p.TotalMass();
  const double qt = q.TotalMass() + epsilon * static_cast<double>(
                                                  p.entries().size());
  THEMIS_CHECK(pt > 0 && qt > 0);
  double kl = 0;
  for (const auto& [key, pv] : p.entries()) {
    if (pv <= 0) continue;
    const double pp = pv / pt;
    const double qv = q.Mass(key) + epsilon;
    if (qv <= 0) return std::numeric_limits<double>::infinity();
    kl += pp * std::log(pp / (qv / qt));
  }
  return kl;
}

}  // namespace themis::stats
