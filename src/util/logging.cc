#include "util/logging.h"

#include <sys/time.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace themis {

namespace {

/// THEMIS_LOG_LEVEL, read once at first use (env-snapshot discipline like
/// THEMIS_SIMD / THEMIS_SHARD_ROWS: changing the variable mid-process has
/// no effect). Accepts error/warn(ing)/info/debug, case-sensitive lower
/// like the other knobs; unset or unrecognized keeps the kWarning default.
LogLevel LevelFromEnv() {
  const char* env = std::getenv("THEMIS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<LogLevel> g_log_level{LevelFromEnv()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Wall-clock stamp with millisecond resolution ("2026-08-07 12:34:56.789"),
/// local time — log lines correlate with the operator's clock, while all
/// latency math stays on the monotonic clock.
void AppendTimestamp(std::ostream& out) {
  timeval tv{};
  ::gettimeofday(&tv, nullptr);
  std::tm tm{};
  ::localtime_r(&tv.tv_sec, &tm);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm);
  char ms[8];
  std::snprintf(ms, sizeof(ms), ".%03d", static_cast<int>(tv.tv_usec / 1000));
  out.write(buf, static_cast<std::streamsize>(n));
  out << ms;
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[";
    AppendTimestamp(stream_);
    stream_ << " " << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* expr) {
  stream_ << "[";
  AppendTimestamp(stream_);
  stream_ << " FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace themis
