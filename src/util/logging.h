#ifndef THEMIS_UTIL_LOGGING_H_
#define THEMIS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace themis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level for log output. Messages below this are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line builder; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by
/// THEMIS_CHECK for invariant violations (programming errors, not
/// recoverable conditions -- those use Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define THEMIS_LOG(level)                                               \
  ::themis::internal::LogMessage(::themis::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// Aborts with a message when `cond` is false. For internal invariants only.
#define THEMIS_CHECK(cond)                                            \
  if (!(cond))                                                        \
  ::themis::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define THEMIS_CHECK_OK(expr)                                        \
  do {                                                               \
    ::themis::Status _st = (expr);                                   \
    THEMIS_CHECK(_st.ok()) << _st.ToString();                        \
  } while (0)

#define THEMIS_DCHECK(cond) THEMIS_CHECK(cond)

}  // namespace themis

#endif  // THEMIS_UTIL_LOGGING_H_
