#include "util/status.h"

namespace themis {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kNotConverged, StatusCode::kParseError,
      StatusCode::kInternal,     StatusCode::kUnimplemented,
      StatusCode::kIoError,      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace themis
