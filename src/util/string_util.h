#ifndef THEMIS_UTIL_STRING_UTIL_H_
#define THEMIS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace themis {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view t);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

/// RFC-4180-style CSV field escaping: fields containing commas, quotes or
/// newlines are wrapped in double quotes with embedded quotes doubled
/// (bucket labels like "[0,30)" need this).
std::string CsvEscape(const std::string& field);

/// Splits one CSV line honoring double-quoted fields (inverse of
/// CsvEscape). Keeps empty fields.
std::vector<std::string> SplitCsvLine(std::string_view line);

}  // namespace themis

#endif  // THEMIS_UTIL_STRING_UTIL_H_
