#ifndef THEMIS_UTIL_THREAD_POOL_H_
#define THEMIS_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace themis::util {

/// Worker count for the shared execution runtime: the THEMIS_NUM_THREADS
/// environment variable when set to a positive integer, otherwise
/// max(1, std::thread::hardware_concurrency()).
size_t DefaultParallelism();

/// `requested` when positive, otherwise DefaultParallelism(). This is how
/// ThemisOptions::num_threads (0 = auto) resolves to a pool size.
size_t ResolveParallelism(size_t requested);

class ThreadPool;

/// The three-way pool choice shared by core::Catalog and
/// core::HybridEvaluator: an explicit `pool` wins; else a positive
/// `num_threads` creates a pool into `owned` (the caller keeps it alive);
/// else the process-wide Default() pool. Never returns null.
ThreadPool* ResolvePool(ThreadPool* pool, size_t num_threads,
                        std::unique_ptr<ThreadPool>& owned);

/// Fixed-size thread pool with a FIFO task queue — the single scheduling
/// substrate shared by every parallel site (cross-query QueryBatch fan-out,
/// per-plan K BN-sample executors, sharded scans). One pool, nested freely,
/// no oversubscription.
///
/// Nesting never deadlocks: ParallelFor's caller claims shards itself and,
/// while waiting for stragglers, executes other queued tasks; GetHelping
/// does the same while blocking on a future. A task running on a worker can
/// therefore submit (and wait on) subtasks even when every worker is busy.
class ThreadPool {
 public:
  /// `num_threads` = 0 means DefaultParallelism().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Schedules `fn` and returns its future. Exceptions thrown by `fn`
  /// propagate through the future (std::packaged_task semantics).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> Submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [begin, end) exactly once, fanning shards
  /// across free workers while the calling thread participates (and
  /// counts toward the parallelism: a 1-thread pool runs the whole range
  /// inline, genuinely sequentially). Blocks until every shard finished.
  /// Shard *claiming* order is non-deterministic but every shard sees
  /// only its own index, so determinism is the shard function's to keep.
  /// Rethrows the lowest-index shard exception after all shards complete.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Blocks until `future` is ready, executing queued tasks meanwhile so
  /// waiting inside a pool task cannot starve the pool.
  template <typename R>
  R GetHelping(std::future<R>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
      if (!RunOneTask()) future.wait_for(200us);
    }
    return future.get();
  }

  /// The process-wide pool, created on first use with DefaultParallelism()
  /// workers and intentionally leaked (workers must not be joined during
  /// static destruction).
  static ThreadPool& Default();

 private:
  void Enqueue(std::function<void()> task);

  /// Pops and runs one queued task; false when the queue is empty.
  bool RunOneTask();

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace themis::util

#endif  // THEMIS_UTIL_THREAD_POOL_H_
