#include "util/cpu_topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace themis::util {

namespace {

/// First line of `path` with trailing whitespace stripped; empty when the
/// file is absent or unreadable.
std::string ReadSysfsLine(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.pop_back();
  }
  return line;
}

}  // namespace

size_t ParseCacheSizeToBytes(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return 0;
  size_t multiplier = 1;
  if (*end == 'K' || *end == 'k') {
    multiplier = 1024;
    ++end;
  } else if (*end == 'M' || *end == 'm') {
    multiplier = 1024 * 1024;
    ++end;
  } else if (*end == 'G' || *end == 'g') {
    multiplier = 1024ull * 1024 * 1024;
    ++end;
  }
  if (*end != '\0') return 0;
  return static_cast<size_t>(value) * multiplier;
}

CpuTopology CpuTopology::Detect() {
  CpuTopology topo;
  topo.num_cpus =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  // Walk cpu0's cache indices: each is one cache instance with a level
  // (1/2/3), a type (Data/Instruction/Unified), and a size ("48K").
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + std::to_string(index) + "/";
    const std::string level = ReadSysfsLine(dir + "level");
    if (level.empty()) break;  // indices are contiguous; first gap ends it
    const std::string type = ReadSysfsLine(dir + "type");
    if (type == "Instruction") continue;
    const size_t size = ParseCacheSizeToBytes(ReadSysfsLine(dir + "size"));
    if (size == 0) continue;
    if (level == "1") {
      topo.l1d_bytes = size;
    } else if (level == "2") {
      topo.l2_bytes = size;
    } else if (level == "3") {
      topo.l3_bytes = size;
    } else {
      continue;
    }
    topo.probed = true;
    const size_t line =
        ParseCacheSizeToBytes(ReadSysfsLine(dir + "coherency_line_size"));
    if (line > 0) topo.cache_line_bytes = line;
  }
  return topo;
}

const CpuTopology& CpuTopology::Host() {
  static const CpuTopology topo = Detect();
  return topo;
}

size_t CpuTopology::ShardTargetBytes() const {
  // Half the (usually core-private) L2 leaves room for the group table
  // and selection buffers beside the scanned columns. An L2-less probe
  // falls back to a generous multiple of L1d, and no probe at all keeps
  // the legacy 256 KiB target.
  size_t target = 0;
  if (l2_bytes > 0) {
    target = l2_bytes / 2;
  } else if (l1d_bytes > 0) {
    target = l1d_bytes * 8;
  } else {
    return kFallbackShardTargetBytes;
  }
  return std::clamp<size_t>(target, kFallbackShardTargetBytes,
                            2 * 1024 * 1024);
}

std::string CpuTopology::ToString() const {
  if (!probed) return "cache topology unknown";
  std::ostringstream out;
  auto append = [&out](const char* name, size_t bytes) {
    if (bytes == 0) return;
    if (out.tellp() > 0) out << ", ";
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
      out << name << " " << bytes / (1024 * 1024) << " MiB";
    } else {
      out << name << " " << bytes / 1024 << " KiB";
    }
  };
  append("l1d", l1d_bytes);
  append("l2", l2_bytes);
  append("l3", l3_bytes);
  out << ", line " << cache_line_bytes << " B, " << num_cpus << " cpus";
  return out.str();
}

}  // namespace themis::util
