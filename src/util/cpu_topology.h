#ifndef THEMIS_UTIL_CPU_TOPOLOGY_H_
#define THEMIS_UTIL_CPU_TOPOLOGY_H_

#include <cstddef>
#include <string>

namespace themis::util {

/// Per-shard working-set target when no cache information is available —
/// the pre-probe executor's hard-coded policy, kept as the fallback.
inline constexpr size_t kFallbackShardTargetBytes = 256 * 1024;

/// Cache topology of the host CPU, probed once at startup from sysfs
/// (/sys/devices/system/cpu/cpu0/cache). Sizes are 0 when the level is
/// absent or the probe failed; `probed` is true when at least one data
/// cache level was read successfully. The executor's auto shard policy
/// sizes per-shard working sets from this instead of assuming ~256 KiB.
struct CpuTopology {
  size_t l1d_bytes = 0;
  size_t l2_bytes = 0;
  size_t l3_bytes = 0;
  size_t cache_line_bytes = 64;
  size_t num_cpus = 1;
  bool probed = false;

  /// Runs a fresh probe (reads sysfs). Prefer Host() on hot paths.
  static CpuTopology Detect();

  /// The process-wide topology, probed exactly once on first use and
  /// cached — callers never pay the sysfs walk twice, and every consumer
  /// (shard policy, STATS verb, startup logs) reports the same numbers.
  static const CpuTopology& Host();

  /// Bytes of scanned data one executor shard should target so its
  /// working set sits comfortably in a core-private cache: half the L2
  /// when probed (clamped to [256 KiB, 2 MiB] so an exotic topology
  /// cannot produce degenerate shards), else the 256 KiB fallback.
  /// Deterministic for a fixed machine, so the shard layout — and with
  /// it the float summation order — is stable across runs on one host.
  size_t ShardTargetBytes() const;

  /// "l1d 48 KiB, l2 2048 KiB, l3 260 MiB, line 64 B, 8 cpus" (or
  /// "cache topology unknown" when the probe found nothing).
  std::string ToString() const;
};

/// Parses a sysfs cache-size string ("48K", "2048K", "12M", "131072") to
/// bytes; 0 on malformed input. Exposed for tests.
size_t ParseCacheSizeToBytes(const std::string& text);

}  // namespace themis::util

#endif  // THEMIS_UTIL_CPU_TOPOLOGY_H_
