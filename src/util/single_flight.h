#ifndef THEMIS_UTIL_SINGLE_FLIGHT_H_
#define THEMIS_UTIL_SINGLE_FLIGHT_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/cancel.h"
#include "util/status.h"

namespace themis {
namespace util {

/// Counters of one SingleFlight map (monotonic since construction).
struct SingleFlightStats {
  /// Keys that actually executed (one leader each).
  size_t flights = 0;
  /// Requests that attached to an already-in-flight execution instead of
  /// re-executing — the serving layer's `coalesced_hits`.
  size_t followers = 0;
  /// Followers that detached early (own deadline/cancel fired while the
  /// leader was still computing) and answered their own status.
  size_t detached = 0;
};

/// The cancellation handle a coalesced execution runs under. One exists
/// per in-flight key, owned by the flight; the executor polls it through
/// the virtual CancelToken::Check() like any other token.
///
/// Semantics (the ones the serving layer promises):
///   - Solo (no attached followers): delegates verbatim to the leader's
///     own token — a lone request behaves exactly as if single-flight did
///     not exist (deadline and disconnect-cancel tests stay bitwise).
///   - Collective (>= 1 follower attached): the leader's token is ignored
///     and execution runs until the *latest* attached deadline — the
///     leader's cancellation/deadline no longer kills work a follower
///     still wants, i.e. a follower is promoted to keep the flight alive.
///     A follower with no deadline extends the collective deadline to
///     "none".
///   - A follower detaching (its own deadline fired, or it got its
///     answer) returns governance to the leader's token when it was the
///     last one out.
///   - Cancel() on the FlightToken itself (not used by the serving paths,
///     but inherited) still aborts unconditionally.
///
/// Thread-safety: all state is atomic; Attach/Detach/Check race freely.
class FlightToken final : public CancelToken {
 public:
  /// `leader` may be null (an in-process caller without a token) and must
  /// outlive the flight — the serving layer guarantees it because the
  /// leader blocks inside the flight until execution finishes.
  explicit FlightToken(const CancelToken* leader)
      : leader_(leader),
        collective_deadline_ns_(leader != nullptr ? leader->deadline_ns()
                                                  : kNoDeadlineNs) {}

  /// Registers one follower and extends the collective deadline to cover
  /// it (a follower with no token / no deadline extends it to "none").
  void AttachFollower(const CancelToken* follower) {
    const int64_t wanted =
        follower != nullptr ? follower->deadline_ns() : kNoDeadlineNs;
    int64_t current = collective_deadline_ns_.load(std::memory_order_relaxed);
    while (current < wanted &&
           !collective_deadline_ns_.compare_exchange_weak(
               current, wanted, std::memory_order_relaxed)) {
    }
    active_followers_.fetch_add(1, std::memory_order_acq_rel);
  }

  void DetachFollower() {
    active_followers_.fetch_sub(1, std::memory_order_acq_rel);
  }

  size_t active_followers() const {
    return active_followers_.load(std::memory_order_acquire);
  }

  Status Check() const override {
    if (cancelled()) return Status::Cancelled("request cancelled");
    if (active_followers_.load(std::memory_order_acquire) == 0) {
      return CheckCancel(leader_);  // solo: exactly the leader's semantics
    }
    const int64_t deadline =
        collective_deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadlineNs && SteadyNowNs() >= deadline) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

 private:
  const CancelToken* leader_;
  std::atomic<size_t> active_followers_{0};
  /// Grow-only maximum over the leader's and every follower's deadline.
  std::atomic<int64_t> collective_deadline_ns_;
};

/// Duplicate-suppressing execution map: concurrent Run() calls with the
/// same key execute the work once (the first caller in — the leader — runs
/// it under a FlightToken) and every other caller (a follower) blocks on
/// the leader's completion and shares the value. The memo layer above only
/// fills *after* a computation completes; this closes the window where a
/// thundering herd of identical requests races past a cold memo.
///
/// V must be copy-constructible and constructible from a Status (e.g.
/// Result<T>): a caller whose own token fires answers V(status) — a
/// follower's deadline expiry detaches it without cancelling the leader,
/// and a leader whose token fired mid-flight still publishes the value to
/// its followers before answering its own cancellation.
///
/// Followers block their calling thread (bounded by the flight's
/// execution time). On the shared ThreadPool this is safe — ParallelFor
/// is caller-claims-shards, so a leader always makes progress even when
/// every other pool thread is parked as its follower — but followers poll
/// their own token every few milliseconds so a disconnect or deadline
/// detaches promptly rather than at completion.
template <typename V>
class SingleFlight {
 public:
  SingleFlight() = default;
  SingleFlight(const SingleFlight&) = delete;
  SingleFlight& operator=(const SingleFlight&) = delete;

  /// Executes `execute(token)` once per concurrently-presented `key`.
  /// `self` (nullable) is this caller's own cancellation handle; `execute`
  /// receives the flight's collective token, which must be threaded into
  /// the cancellable work in place of `self`.
  ///
  /// Re-entrancy: a thread that is currently executing some flight's
  /// leader work (this map or any other) never parks as a follower — the
  /// shared ThreadPool runs queued tasks while waiting (GetHelping /
  /// ParallelFor), so a leader can find itself executing a queued
  /// duplicate whose flight completes only when this very thread returns;
  /// following would deadlock (directly on its own key, or as a cycle of
  /// two leaders each following the other's flight). Such a call executes
  /// directly under the caller's own token instead — the answer is
  /// bitwise-identical by contract, only the dedup is skipped.
  template <typename Fn>
  V Run(const std::string& key, const CancelToken* self, Fn&& execute) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(key);
      if (it == flights_.end()) {
        flight = std::make_shared<Flight>(self);
        flights_.emplace(key, flight);
        ++stats_.flights;
        leader = true;
      } else if (LeaderDepth() == 0) {
        flight = it->second;
        ++stats_.followers;
      }
      // else: re-entrant duplicate on a leading thread; fall through and
      // execute directly below, never blocking a thread a flight depends
      // on (and never under mu_).
    }
    if (leader) return RunLeader(key, *flight, self, execute);
    if (flight == nullptr) return execute(self);
    return RunFollower(*flight, self);
  }

  SingleFlightStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Flight {
    explicit Flight(const CancelToken* leader) : token(leader) {}
    FlightToken token;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    /// Set exactly once, before `done`; never mutated after — followers
    /// copy it without holding `mu` past the done check.
    std::unique_ptr<const V> value;
  };

  /// Count of flights whose leader work is running on this thread, across
  /// every SingleFlight instance — the re-entrancy guard Run() consults.
  static int& LeaderDepth() {
    static thread_local int depth = 0;
    return depth;
  }

  struct LeaderScope {
    LeaderScope() { ++LeaderDepth(); }
    ~LeaderScope() { --LeaderDepth(); }
  };

  template <typename Fn>
  V RunLeader(const std::string& key, Flight& flight, const CancelToken* self,
              Fn& execute) {
    // The value (or a Status-wrapped failure) is always published: a
    // leader that threw and unwound without resolving the flight would
    // strand every follower and poison the key.
    V result = [&]() -> V {
      LeaderScope leading;
      try {
        return execute(static_cast<const CancelToken*>(&flight.token));
      } catch (const std::exception& e) {
        return V(Status::Internal(
            std::string("coalesced execution failed: ") + e.what()));
      } catch (...) {
        return V(Status::Internal("coalesced execution failed"));
      }
    }();
    {
      std::lock_guard<std::mutex> lock(flight.mu);
      flight.value = std::make_unique<const V>(std::move(result));
      flight.done = true;
    }
    flight.cv.notify_all();
    {
      // Late callers key a fresh flight from here on; the finished one
      // stays alive through the followers' shared_ptrs.
      std::lock_guard<std::mutex> lock(mu_);
      flights_.erase(key);
    }
    // The leader answers its *own* token: if it fired mid-flight while
    // followers kept the execution alive, the leader reports its own
    // cancellation/deadline even though the value was published.
    if (self != nullptr) {
      Status own = self->Check();
      if (!own.ok()) return V(std::move(own));
    }
    return *flight.value;
  }

  V RunFollower(Flight& flight, const CancelToken* self) {
    flight.token.AttachFollower(self);
    {
      std::unique_lock<std::mutex> lock(flight.mu);
      while (!flight.done) {
        // Bounded waits so a follower notices its own token firing while
        // the leader is still deep in a long scan.
        flight.cv.wait_for(lock, std::chrono::milliseconds(5));
        if (flight.done) break;
        if (self != nullptr) {
          Status own = self->Check();
          if (!own.ok()) {
            lock.unlock();
            flight.token.DetachFollower();
            {
              std::lock_guard<std::mutex> stats_lock(mu_);
              ++stats_.detached;
            }
            return V(std::move(own));
          }
        }
      }
    }
    flight.token.DetachFollower();
    if (self != nullptr) {
      Status own = self->Check();
      if (!own.ok()) return V(std::move(own));
    }
    return *flight.value;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  SingleFlightStats stats_;
};

}  // namespace util
}  // namespace themis

#endif  // THEMIS_UTIL_SINGLE_FLIGHT_H_
