#ifndef THEMIS_UTIL_EVENTFD_H_
#define THEMIS_UTIL_EVENTFD_H_

namespace themis {
namespace util {

/// RAII wrapper over a non-blocking Linux eventfd, used by the epoll
/// serving loop as a cross-thread wakeup: pool threads `Signal()` when a
/// response becomes flushable, the owning I/O thread `Drain()`s the counter
/// when the epoll wait reports the fd readable.
class EventFd {
 public:
  /// Creates the eventfd (EFD_NONBLOCK | EFD_CLOEXEC). `valid()` reports
  /// failure instead of throwing.
  EventFd();
  ~EventFd();

  EventFd(const EventFd&) = delete;
  EventFd& operator=(const EventFd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Adds 1 to the counter, waking any epoll wait watching the fd.
  /// Safe from any thread; EINTR is retried, EAGAIN (counter saturated)
  /// is ignored — the pending wakeup already guarantees delivery.
  void Signal();

  /// Resets the counter to zero. Called by the owning thread once the
  /// wakeup has been observed.
  void Drain();

 private:
  int fd_ = -1;
};

}  // namespace util
}  // namespace themis

#endif  // THEMIS_UTIL_EVENTFD_H_
